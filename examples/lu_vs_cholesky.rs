//! Section III-E, measured: why 2D block-cyclic is the right distribution
//! for LU but not for Cholesky — and how SBC closes the gap.
//!
//! Runs distributed LU (full matrix) and distributed Cholesky (half matrix)
//! with real kernels, counts every transferred tile, and compares the
//! arithmetic intensities normalized by per-node memory `sqrt(M)` — the
//! paper's measure. Also shows the sequential out-of-core ladder.
//!
//! Run with: `cargo run --release --example lu_vs_cholesky`

use sbc::dist::{Distribution, SbcExtended, TwoDBlockCyclic};
use sbc::kernels::{flops_cholesky_total, flops_lu_total};
use sbc::matrix::{lu_residual, random_general};
use sbc::outofcore::{simulate_cholesky_ooc, LoopOrder};
use sbc::runtime::Run;

fn main() {
    let nt = 20;
    let b = 16;
    let seed = 161803;
    let n = nt * b;

    // --- distributed measurements ------------------------------------
    println!("distributed measurements (n = {n}, counted tile transfers):\n");

    // LU on a square 4x4 grid (16 nodes)
    let lu_dist = TwoDBlockCyclic::new(4, 4);
    let lu_out = Run::lu(&lu_dist, nt).block(b).seed(seed).execute().unwrap();
    let lu_stats = &lu_out.stats;
    let a0 = random_general(seed, nt, b);
    assert!(lu_residual(&a0, lu_out.lu_factors()) < 1e-12);
    let m_lu = (nt * nt) as f64 / 16.0; // tiles per node (full matrix)
    let rho_lu = flops_lu_total(n) / (lu_stats.messages as f64 * (b * b) as f64);
    println!(
        "  LU   {:<10}: {:>6} tiles moved, intensity {:>7.1} flops/elem, rho/sqrt(M) = {:.2}",
        lu_dist.name(),
        lu_stats.messages,
        rho_lu,
        rho_lu / (m_lu * (b * b) as f64).sqrt()
    );

    // Cholesky on SBC r=6 (15 nodes) and 2DBC 4x4 (16 nodes)
    for (name, stats) in [
        (
            "chol SBC r=6",
            Run::potrf(&SbcExtended::new(6), nt)
                .block(b)
                .seed(seed)
                .execute()
                .unwrap()
                .stats,
        ),
        (
            "chol 2DBC 4x4",
            Run::potrf(&TwoDBlockCyclic::new(4, 4), nt)
                .block(b)
                .seed(seed)
                .execute()
                .unwrap()
                .stats,
        ),
    ] {
        let p = if name.contains("SBC") { 15.0 } else { 16.0 };
        let m = (nt * nt) as f64 / (2.0 * p); // tiles per node (half matrix)
        let rho = flops_cholesky_total(n) / (stats.messages as f64 * (b * b) as f64);
        println!(
            "  {:<15}: {:>6} tiles moved, intensity {:>7.1} flops/elem, rho/sqrt(M) = {:.2}",
            name,
            stats.messages,
            rho,
            rho / (m * (b * b) as f64).sqrt()
        );
    }
    println!("\n  -> normalized by per-node memory, Cholesky-SBC matches LU-2DBC,");
    println!("     while Cholesky-2DBC sits a factor ~sqrt(2) below (Section III-E).\n");

    // --- sequential out-of-core ladder ---------------------------------
    println!("sequential two-level-memory model (nt = 48 tiles of 4):");
    for cap in [16usize, 32, 64, 128] {
        let ll = simulate_cholesky_ooc(48, 4, cap, LoopOrder::LeftLooking);
        let rl = simulate_cholesky_ooc(48, 4, cap, LoopOrder::RightLooking);
        println!(
            "  M = {:>4} tiles: left-looking intensity {:>6.1}, right-looking {:>6.1}",
            cap,
            ll.intensity(),
            rl.intensity()
        );
    }
    println!("  -> left-looking intensity grows ~sqrt(M) (Bereux's regime);");
    println!("     right-looking streams the trailing matrix and stalls.");
}
