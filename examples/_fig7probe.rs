fn main(){
    use sbc::dist::TwoDBlockCyclic;
    use sbc::simgrid::{Platform, SimConfig, Simulator};
    use sbc::taskgraph::build_potrf;
    for n in [12000usize, 24000, 50000] {
        let d = TwoDBlockCyclic::new(1,1);
        let p = Platform::bora(1);
        print!("n={n}: ");
        for b in [100,200,300,400,500,600,750,1000] {
            let nt = n/b;
            let g = build_potrf(&d, nt);
            let r = Simulator::new(&g,&p,SimConfig::chameleon(b)).run();
            print!("b{b}={:.0} ", r.gflops_per_node(Some(sbc::kernels::flops_cholesky_total(nt*b))));
        }
        println!();
    }
}
