//! Fig 7 probe: single-node POTRF throughput vs. tile size.
//!
//! Sweeps the tile dimension `b` on one simulated `bora` node and prints
//! the resulting GFlop/s per node, reproducing the shape of the paper's
//! Fig 7: throughput rises with `b` (better kernel efficiency) and
//! saturates around `b = 500`. This is the calibration the simulator's
//! `KernelEfficiency` model is fitted against.
//!
//! Run with: `cargo run --release --example fig7_probe`

use sbc::dist::TwoDBlockCyclic;
use sbc::kernels::flops_cholesky_total;
use sbc::simgrid::{Platform, SimConfig, Simulator};
use sbc::taskgraph::build_potrf;

fn main() {
    let d = TwoDBlockCyclic::new(1, 1);
    let p = Platform::bora(1);
    println!("single-node POTRF GFlop/s vs tile size (Fig 7)");
    for n in [12_000usize, 24_000, 50_000] {
        print!("n = {n:>6}: ");
        for b in [100, 200, 300, 400, 500, 600, 750, 1000] {
            let nt = n / b;
            let g = build_potrf(&d, nt);
            let r = Simulator::new(&g, &p, SimConfig::chameleon(b)).run();
            print!(
                "b{b}={:.0} ",
                r.gflops_per_node(Some(flops_cholesky_total(nt * b)))
            );
        }
        println!();
    }
}
