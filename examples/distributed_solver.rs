//! Domain scenario: solving a dense SPD linear system (POSV) distributedly —
//! the workload of Section V-F.1 of the paper (e.g. a kernel/covariance
//! system from a Gaussian-process regression or a boundary-element method).
//!
//! Factorizes with the SBC distribution, keeps the one-tile-wide right-hand
//! side on a 1D row-cyclic layout, solves, validates, and reports the
//! communication split between factorization and solve traffic.
//!
//! Run with: `cargo run --release --example distributed_solver`

use sbc::dist::comm::{potrf_messages, solve_messages};
use sbc::dist::{Distribution, RowCyclic, SbcExtended, TwoDBlockCyclic};
use sbc::matrix::{random_panel, random_spd, solve_residual};
use sbc::runtime::Run;

fn main() {
    let nt = 20;
    let b = 24;
    let seed = 7;

    // P = 15 nodes (r = 6) with the RHS row-cyclic over the same nodes.
    let sbc = SbcExtended::new(6);
    let rhs_dist = RowCyclic::new(sbc.num_nodes());
    println!("solving A x = B with {} + {}", sbc.name(), rhs_dist.name());
    println!(
        "n = {} unknowns, one tile-column of right-hand sides",
        nt * b
    );

    let out = Run::posv(&sbc, &rhs_dist, nt)
        .block(b)
        .seed(seed)
        .execute()
        .unwrap();
    let (x, stats) = (out.solution(), &out.stats);

    // validate: the runtime derives its RHS seed from `seed` (RHS uses
    // seed ^ 0x05EED0FB unless `seed_rhs` overrides it)
    let a0 = random_spd(seed, nt, b);
    let rhs = random_panel(seed ^ 0x05EE_D0FB, nt, b);
    let res = solve_residual(&a0, x, &rhs);
    println!("solve residual: {res:.2e}");
    assert!(res < 1e-10);

    // communication breakdown
    let fact = potrf_messages(&sbc, nt);
    let solve = solve_messages(&sbc, &rhs_dist, nt);
    println!("factorization traffic (analytic): {fact} tiles");
    println!(
        "solve traffic (analytic): {} tiles ({} of A, {} of B)",
        solve.total(),
        solve.a_tiles,
        solve.b_tiles
    );
    println!(
        "measured total: {} tiles <= {} (caching dedups repeat tiles)",
        stats.messages,
        fact + solve.total()
    );
    assert!(stats.messages <= fact + solve.total());

    // the paper's observation: the solve adds distribution-independent
    // traffic, so SBC's relative edge shrinks on POSV vs pure POTRF
    let dbc = TwoDBlockCyclic::new(5, 3);
    let fact_dbc = potrf_messages(&dbc, nt);
    let total_sbc = fact + solve.total();
    let total_dbc = fact_dbc + solve_messages(&dbc, &rhs_dist, nt).total();
    println!(
        "POTRF-only gain vs {}: {:.2}x ; POSV gain: {:.2}x (smaller, as in Fig 13)",
        dbc.name(),
        fact_dbc as f64 / fact as f64,
        total_dbc as f64 / total_sbc as f64
    );
    println!("OK");
}
