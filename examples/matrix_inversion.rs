//! Domain scenario: explicit inversion of an SPD matrix (POTRI) — needed
//! e.g. for dense covariance-matrix inversion in statistics or variance
//! estimation in least squares (Section V-F.2 of the paper).
//!
//! Demonstrates the paper's mixed strategy: POTRF and LAUUM run under SBC
//! (symmetric access pattern → fewer communications), while the TRTRI step
//! — whose accesses are *not* symmetric — runs under 2D block-cyclic, with
//! asynchronous data redistributions in between ("SBC remap 2DBC").
//!
//! Run with: `cargo run --release --example matrix_inversion`

use sbc::dist::comm::{
    lauum_messages, potrf_messages, potri_messages, potri_remap_messages, redistribution_messages,
    trtri_messages,
};
use sbc::dist::{Distribution, SbcExtended, TwoDBlockCyclic};
use sbc::matrix::{inverse_residual, random_spd};
use sbc::runtime::Run;

fn main() {
    let nt = 16;
    let b = 16;
    let seed = 99;

    // Fig 14's setup scaled down: SBC r = 8 needs P = 28; use r = 6 / 5x3.
    let sym = SbcExtended::new(6);
    let bc = TwoDBlockCyclic::new(5, 3);
    println!(
        "inverting an SPD matrix of {} x {} tiles on P = {}",
        nt,
        nt,
        sym.num_nodes()
    );

    // Strategy 1: everything under 2DBC.
    let out_bc = Run::potri(&bc, nt).block(b).seed(seed).execute().unwrap();
    // Strategy 2: the paper's SBC-remap-2DBC workflow.
    let out_remap = Run::potri_remap(&sym, &bc, nt)
        .block(b)
        .seed(seed)
        .execute()
        .unwrap();
    let (inv_bc, stats_bc) = (out_bc.factor(), &out_bc.stats);
    let (inv_remap, stats_remap) = (out_remap.factor(), &out_remap.stats);

    let a0 = random_spd(seed, nt, b);
    let r1 = inverse_residual(&a0, inv_bc);
    let r2 = inverse_residual(&a0, inv_remap);
    println!("residual all-2DBC   : {r1:.2e}");
    println!("residual SBC-remap  : {r2:.2e}");
    assert!(r1 < 1e-9 && r2 < 1e-9);
    // both strategies compute the same inverse (identical kernel sequences)
    for (i, j) in inv_bc.tile_coords() {
        assert!(inv_bc.tile(i, j).max_abs_diff(inv_remap.tile(i, j)) < 1e-12);
    }

    // communication accounting per step (paper-style, steps independent)
    println!("\nper-step analytic tile counts:");
    println!(
        "  all-2DBC : potrf {} + trtri {} + lauum {} = {}",
        potrf_messages(&bc, nt),
        trtri_messages(&bc, nt),
        lauum_messages(&bc, nt),
        potri_messages(&bc, nt)
    );
    println!(
        "  remapped : potrf {} + move {} + trtri {} + move {} + lauum {} = {}",
        potrf_messages(&sym, nt),
        redistribution_messages(&sym, &bc, nt),
        trtri_messages(&bc, nt),
        redistribution_messages(&bc, &sym, nt),
        lauum_messages(&sym, nt),
        potri_remap_messages(&sym, &bc, nt)
    );
    println!(
        "\nmeasured (with cross-step caching): all-2DBC {} vs SBC-remap {}",
        stats_bc.messages, stats_remap.messages
    );
    println!("OK");
}
