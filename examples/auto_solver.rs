//! Automatic distribution selection: the planner picks the layout, the
//! runtime executes it — no distribution named anywhere in user code.
//!
//! The scenario is a solver service: requests arrive as `(operation,
//! matrix size)`, the cluster shape is fixed, and the service must pick
//! the best data distribution per request and amortize that decision
//! across repeats. The planner reproduces the paper's findings on its
//! own: SBC for the symmetric factorizations (Theorem 1), 2DBC for
//! TRTRI/LU, and serves the second identical request from its cache.
//!
//! Run with: `cargo run --release --example auto_solver`

use sbc::planner::{Op, Planner};
use sbc::runtime::PlannedExecutor;
use sbc::simgrid::Platform;

fn main() {
    // A 21-node cluster (the paper's r = 7 sweet spot) and a stream of
    // requests. Execution uses a small tile size so the demo runs real
    // kernels quickly; planning cost is independent of `b`.
    let planner = Planner::new(Platform::bora(21));
    let (nt, b, seed) = (18, 16, 11);

    for op in [Op::Potrf, Op::Trtri, Op::Lu] {
        let plan = planner.plan(op, nt, b);
        println!(
            "{}: planner chose {} ({} analytic messages, model {:.4}s)",
            op.name(),
            plan.choice.describe(),
            plan.cost.messages,
            plan.cost.total_seconds
        );

        let exec = PlannedExecutor::new(plan, seed, seed + 1);
        let out = exec.run();
        println!(
            "  executed on {} node-threads: {} tiles sent, {} bytes",
            plan.choice.nodes_used(),
            out.stats.messages,
            out.stats.bytes
        );
        assert_eq!(
            out.stats.messages, plan.cost.messages,
            "measured == planned traffic"
        );
    }

    // Repeat request: served from the plan cache, no re-search.
    let again = planner.plan(Op::Potrf, nt, b);
    assert!(again.cached);
    println!(
        "repeat potrf request: cache hit ({} plans cached)",
        planner.cache().len()
    );
}
