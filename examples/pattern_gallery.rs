//! Pattern gallery: renders the distribution patterns of Figures 1–6 of the
//! paper as ASCII grids.
//!
//! Run with: `cargo run --example pattern_gallery`

use sbc::dist::sbc::pair_of;
use sbc::dist::{Distribution, SbcBasic, SbcExtended, TwoDBlockCyclic};

/// Prints the lower triangle of the tile → node map.
fn print_lower<D: Distribution>(d: &D, nt: usize) {
    println!("{} over {nt} x {nt} tiles (lower triangle):", d.name());
    for i in 0..nt {
        print!("  ");
        for j in 0..=i {
            print!("{:>3}", d.owner(i, j));
        }
        println!();
    }
    println!();
}

fn main() {
    // Fig 1: 2D block-cyclic, 2 x 3 pattern, P = 6, 12 x 12 tiles.
    print_lower(&TwoDBlockCyclic::new(2, 3), 12);

    // Fig 2: generic SBC pattern r = 4 (P = 6 pair nodes), 12 x 12 tiles.
    // Diagonal positions use the extended construction here.
    print_lower(&SbcExtended::new(4), 12);

    // Fig 3: basic SBC for r = 4: two extra diagonal nodes (6 and 7).
    println!("Basic SBC pattern (Fig 3), r = 4, full 4 x 4 pattern:");
    let basic = SbcBasic::new(4);
    for i in 0..4 {
        print!("  ");
        for j in 0..4 {
            let o = if j <= i {
                basic.owner(i, j)
            } else {
                basic.owner(j, i)
            };
            print!("{o:>3}");
        }
        println!();
    }
    println!();

    // Figs 4-6: extended SBC diagonal patterns for r = 5 and r = 6.
    for r in [5, 6] {
        let d = SbcExtended::new(r);
        println!(
            "Extended SBC r = {r}: P = {} nodes, {} diagonal patterns:",
            d.num_nodes(),
            d.diagonal_patterns().len()
        );
        for (idx, pat) in d.diagonal_patterns().iter().enumerate() {
            print!("  pattern {idx}: diag = [");
            for (pos, &node) in pat.iter().enumerate() {
                let (x, y) = pair_of(node);
                let sep = if pos + 1 == pat.len() { "" } else { ", " };
                print!("{node}={{{x},{y}}}{sep}");
            }
            println!("]");
        }
        println!();
    }

    // The communication set of one tile, as highlighted in Figs 1 and 2:
    // consumers of the TRSM result A[7][1] (row 7 left of col 7 + col 7).
    let nt = 12;
    let j0 = 7;
    let i0 = 1;
    for (name, d) in [
        (
            "2DBC 2x3".to_string(),
            Box::new(TwoDBlockCyclic::new(2, 3)) as Box<dyn Distribution>,
        ),
        ("SBC r=4".to_string(), Box::new(SbcExtended::new(4))),
    ] {
        let mut consumers: Vec<usize> = Vec::new();
        consumers.push(d.owner(j0, j0));
        for k in i0 + 1..j0 {
            consumers.push(d.owner(j0, k));
        }
        for j in j0 + 1..nt {
            consumers.push(d.owner(j, j0));
        }
        consumers.sort_unstable();
        consumers.dedup();
        consumers.retain(|&n| n != d.owner(j0, i0));
        println!(
            "{name}: TRSM result A[{j0}][{i0}] must be sent to {} nodes: {consumers:?}",
            consumers.len()
        );
    }
}
