//! Distribution shoot-out on the simulated `bora` cluster: communication
//! volume, simulated wall-clock and GFlop/s per node for SBC vs 2D
//! block-cyclic vs their 2.5D variants — a miniature of Figure 9.
//!
//! Run with: `cargo run --release --example compare_distributions`

use sbc::dist::{Distribution, SbcBasic, SbcExtended, TwoDBlockCyclic, TwoPointFiveD};
use sbc::kernels::flops_cholesky_total;
use sbc::simgrid::{Platform, SimConfig, Simulator};
use sbc::taskgraph::{build_potrf, build_potrf_25d, TaskGraph};

fn report(name: &str, graph: &TaskGraph, nodes: usize, b: usize, n: usize) {
    let platform = Platform::bora(nodes);
    let r = Simulator::new(graph, &platform, SimConfig::chameleon(b)).run();
    println!(
        "  {name:<22} P={nodes:<3} msgs={:<7} vol={:>7.1} GB  t={:>6.2} s  {:>7.1} GF/s/node",
        r.messages,
        r.gigabytes(),
        r.makespan,
        r.gflops_per_node(Some(flops_cholesky_total(n)))
    );
}

fn main() {
    let b = 500; // the paper's tile size
    for nt in [50, 100, 150] {
        let n = nt * b;
        println!("n = {n} ({nt} x {nt} tiles of {b}):");

        // ~28 nodes, the Fig 9 regime
        let sbc = SbcExtended::new(8); // 28 nodes
        let dbc74 = TwoDBlockCyclic::new(7, 4); // 28 nodes
        let dbc65 = TwoDBlockCyclic::new(6, 5); // 30 nodes
        let sbc25 = TwoPointFiveD::new(SbcBasic::new(4), 3); // 24 nodes
        let dbc25 = TwoPointFiveD::new(TwoDBlockCyclic::new(3, 3), 3); // 27 nodes

        report(&sbc.name(), &build_potrf(&sbc, nt), 28, b, n);
        report(&dbc74.name(), &build_potrf(&dbc74, nt), 28, b, n);
        report(&dbc65.name(), &build_potrf(&dbc65, nt), 30, b, n);
        report(&sbc25.name(), &build_potrf_25d(&sbc25, nt), 24, b, n);
        report(&dbc25.name(), &build_potrf_25d(&dbc25, nt), 27, b, n);
        println!();
    }
    println!("(GFlop/s per node normalizes across the differing node counts,");
    println!(" exactly as the paper's Section V-E metric does.)");
}
