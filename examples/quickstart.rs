//! Quickstart: distributed Cholesky factorization with the SBC distribution.
//!
//! Factorizes a randomly generated SPD matrix on a simulated 21-node
//! platform (threads as nodes), checks the numerical result, and compares
//! the communication volume against the classical 2D block-cyclic layout.
//!
//! Run with: `cargo run --release --example quickstart`

use sbc::dist::comm::{messages_to_bytes, potrf_messages};
use sbc::dist::{Distribution, SbcExtended, TwoDBlockCyclic};
use sbc::matrix::{cholesky_residual, random_spd};
use sbc::runtime::{KernelBackend, Run};

fn main() {
    // Matrix of 24 x 24 tiles of 32 x 32 doubles (n = 768).
    let nt = 24;
    let b = 32;
    let seed = 2022;

    // The paper's r = 7 configuration: P = r(r-1)/2 = 21 nodes.
    let sbc = SbcExtended::new(7);
    println!("distribution : {}", sbc.name());
    println!("nodes        : {}", sbc.num_nodes());
    println!(
        "matrix       : {nt} x {nt} tiles of {b} x {b} (n = {})",
        nt * b
    );

    // Blocked kernels run the same math faster; every backend is
    // bit-identical, so the factor and the message counts below cannot
    // change (build with `--features sbc-kernels/simd` — or set
    // SBC_KERNELS=arch — for the std::arch microkernels).
    let out = Run::potrf(&sbc, nt)
        .block(b)
        .seed(seed)
        .kernels(KernelBackend::Blocked)
        .execute()
        .unwrap();
    let (factor, stats) = (out.factor(), &out.stats);

    // Validate against the original matrix: || A - L L^T || / || A ||.
    let a0 = random_spd(seed, nt, b);
    let residual = cholesky_residual(&a0, factor);
    println!("residual     : {residual:.2e}");
    assert!(
        residual < 1e-12,
        "factorization must be numerically correct"
    );

    // Communication: measured == analytic, and lower than 2DBC's.
    let analytic = potrf_messages(&sbc, nt);
    println!(
        "communication: {} tiles ({:.1} MB) — analytic count {}",
        stats.messages,
        messages_to_bytes(stats.messages, b) as f64 / 1e6,
        analytic,
    );
    assert_eq!(stats.messages, analytic);

    for (p, q) in [(7, 3), (5, 4)] {
        let dbc = TwoDBlockCyclic::new(p, q);
        let m = potrf_messages(&dbc, nt);
        println!(
            "vs {:12}: {m} tiles  (SBC saves {:.0}%)",
            dbc.name(),
            100.0 * (1.0 - stats.messages as f64 / m as f64)
        );
        assert!(stats.messages < m);
    }
    println!("OK");
}
