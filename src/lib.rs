//! # sbc — Symmetric Block-Cyclic distribution for dense Cholesky
//!
//! A from-scratch Rust reproduction of *"Symmetric Block-Cyclic
//! Distribution: Fewer Communications Leads to Faster Dense Cholesky
//! Factorization"* (Beaumont, Duchon, Eyraud-Dubois, Langou, Vérité —
//! SC 2022): the SBC data distribution, its 2.5D variant, the baselines it
//! is compared against, and the full execution stack needed to evaluate
//! them — tile kernels, tiled algorithms, task graphs, a cluster simulator
//! and a threaded distributed runtime.
//!
//! ## Quick start
//!
//! ```
//! use sbc::dist::{Distribution, SbcExtended, TwoDBlockCyclic};
//! use sbc::dist::comm::potrf_messages;
//! use sbc::runtime::Run;
//! use sbc::matrix::{cholesky_residual, random_spd};
//!
//! // The paper's r = 7 SBC distribution: P = 21 nodes.
//! let sbc = SbcExtended::new(7);
//! assert_eq!(sbc.num_nodes(), 21);
//!
//! // Factorize a 10x10-tile SPD matrix distributedly (21 virtual nodes,
//! // each a small pool of worker threads).
//! let (nt, b, seed) = (10, 8, 42);
//! let out = Run::potrf(&sbc, nt).block(b).seed(seed).execute()?;
//! assert!(cholesky_residual(&random_spd(seed, nt, b), out.factor()) < 1e-12);
//!
//! // The measured traffic equals the analytic count, and beats 2DBC's.
//! assert_eq!(out.stats.messages, potrf_messages(&sbc, nt));
//! assert!(out.stats.messages < potrf_messages(&TwoDBlockCyclic::new(7, 3), nt));
//! # Ok::<(), sbc::runtime::ExecError>(())
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`kernels`] | tile-level GEMM/SYRK/TRSM/POTRF/TRTRI/LAUUM/TRMM |
//! | [`matrix`] | tiled symmetric storage, SPD generation, sequential tiled algorithms, residual checks |
//! | [`dist`] | **SBC** (basic/extended), 2D block-cyclic, row-cyclic, 2.5D; load balance; exact communication counting; Table I |
//! | [`taskgraph`] | distributed task DAGs (POTRF/POSV/TRTRI/LAUUM/POTRI, 2.5D, remap), priorities |
//! | [`simgrid`] | discrete-event cluster simulator (the paper's `bora` platform model) |
//! | [`topo`] | network topology model (racks, switches, per-link bandwidth/latency, routing) and the pluggable scheduler zoo (critical-path, HEFT, lookahead, work-stealing) with Pareto sweep reports |
//! | [`net`] | pluggable transport layer: in-process channels, real TCP/UDS stream sockets with a CRC-checked wire protocol, fault injection, multi-process launcher |
//! | [`mc`] | exhaustive model checker for the ARQ session protocol: bounded exploration of all deliver/drop/duplicate/reorder interleavings on a virtual clock, exactly-once + exact-accounting + liveness invariants, replayable counterexamples (`paper mc`) |
//! | [`runtime`] | distributed runtime over [`net`]: priority-scheduled worker pools per node, byte-exact communication accounting, the [`runtime::Run`] builder, per-rank execution via [`runtime::Executor::run_rank`] |
//! | [`outofcore`] | sequential two-level-memory model (Section III-E): LRU transfer simulation and I/O bounds |
//! | [`planner`] | autotuning distribution planner: candidate search, analytic cost model, simulation refinement, concurrent plan cache, drift reports |
//! | [`serve`] | resident factorization service: multi-job engine over a warm mesh, job wire protocol, admission control, `paper serve`/`paper submit` |
//! | [`obs`] | observability: execution recorder, metrics registry, text Gantt and Chrome-trace/Perfetto export for measured and simulated runs |
//!
//! ## Choosing a distribution automatically
//!
//! The [`planner`] module removes the need to hard-code a distribution:
//!
//! ```
//! use sbc::planner::{Op, Planner};
//! use sbc::simgrid::Platform;
//!
//! let planner = Planner::new(Platform::bora(21));
//! let plan = planner.plan(Op::Potrf, 60, 500);
//! assert_eq!(plan.choice.describe(), "SBC ext r=7 (P=21)");
//! ```

#![warn(missing_docs)]

pub use sbc_dist as dist;
pub use sbc_kernels as kernels;
pub use sbc_matrix as matrix;
pub use sbc_mc as mc;
pub use sbc_net as net;
pub use sbc_obs as obs;
pub use sbc_outofcore as outofcore;
pub use sbc_planner as planner;
pub use sbc_runtime as runtime;
pub use sbc_serve as serve;
pub use sbc_simgrid as simgrid;
pub use sbc_taskgraph as taskgraph;
pub use sbc_topo as topo;
