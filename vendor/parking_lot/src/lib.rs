//! Offline stand-in for `parking_lot`.
//!
//! Provides `Mutex` and `RwLock` with parking_lot's ergonomics — `lock()` /
//! `read()` / `write()` return guards directly, with no poisoning layer —
//! implemented over `std::sync`. A poisoned std lock (a thread panicked while
//! holding it) is recovered into its inner guard, matching parking_lot's
//! behaviour of simply not tracking poison.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
            assert!(l.try_read().is_some());
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poison_recovered() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
