//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace pins `[patch.crates-io]` entries to small local crates that
//! provide exactly the API surface the workspace uses. `sbc-runtime` uses
//! `crossbeam::channel::{unbounded, Sender, Receiver}` as an MPMC-ish mailbox
//! per node thread; `std::sync::mpsc` (itself crossbeam-based since Rust
//! 1.72, with a `Sync` `Sender`) covers that use exactly.

/// Multi-producer channels, mirroring `crossbeam-channel`'s `unbounded`.
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Unbounded FIFO channel sender (clonable, shareable across threads).
    pub type Sender<T> = std::sync::mpsc::Sender<T>;
    /// Unbounded FIFO channel receiver.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn unbounded_roundtrip_and_clone() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1).unwrap());
            s.spawn(move || tx2.send(2).unwrap());
        });
        let mut got: Vec<u32> = rx.iter().take(2).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(rx.try_recv().is_err());
    }
}
