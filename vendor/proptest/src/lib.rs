//! Offline stand-in for `proptest`.
//!
//! The build environment for this repository cannot reach crates.io, so the
//! workspace patches `proptest` to this local crate. It implements the
//! subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`prop_oneof!`],
//! * range strategies (`0usize..40`, `-2.0f64..2.0`, `1..=max`), tuples,
//!   `any::<T>()`, `prop::bool::ANY`, `Just`, and `.prop_map(...)`,
//!
//! with two deliberate simplifications: values are drawn from a
//! deterministic per-test RNG (seeded from the test's module path and name,
//! so failures reproduce across runs), and there is no shrinking — a failing
//! case panics with the generated inputs' `Debug` rendering when available
//! via assertion messages.

pub mod arbitrary;
pub mod bool;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the `prop` module alias exposed by proptest's prelude.
    pub mod prop {
        pub use crate::bool;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal muncher for [`proptest!`]; expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let __strategy = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}
