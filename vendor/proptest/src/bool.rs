//! Boolean strategies (`prop::bool::ANY`).

use crate::arbitrary::Any;
use std::marker::PhantomData;

/// Uniform true/false.
pub const ANY: Any<bool> = Any(PhantomData);

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn any_const_generates_both() {
        let mut rng = TestRng::from_seed(4);
        let draws: Vec<bool> = (0..64).map(|_| super::ANY.generate(&mut rng)).collect();
        assert!(draws.contains(&true) && draws.contains(&false));
    }
}
