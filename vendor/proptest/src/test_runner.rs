//! Test configuration and the deterministic RNG behind value generation.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// SplitMix64: a tiny, high-quality deterministic generator. Seeded from the
/// test's name so every run of a given test draws the same case sequence
/// (failures reproduce without persistence files).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the expanded test path).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then one splitmix round for dispersion.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut rng = TestRng { state: h };
        rng.next_u64();
        rng
    }

    /// Seeds from a raw integer.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply-shift: unbiased enough for testing purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        let mut c = TestRng::from_name("x::z");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_in_range_and_varied() {
        let mut rng = TestRng::from_seed(7);
        let draws: Vec<u64> = (0..1000).map(|_| rng.below(10)).collect();
        assert!(draws.iter().all(|&d| d < 10));
        // all residues hit over 1000 draws
        for v in 0..10u64 {
            assert!(draws.contains(&v), "residue {v} never drawn");
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
