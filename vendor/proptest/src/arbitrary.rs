//! `any::<T>()` — whole-domain strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over a type's whole domain; created by [`any`].
#[derive(Debug)]
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Any<T> {}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uints!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_ints {
    ($($t:ty as $u:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                (rng.next_u64() as $u) as $t
            }
        }
    )*};
}
arbitrary_ints!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values spanning many magnitudes (not raw bit patterns: the
    /// tests here feed these into numeric kernels, where NaN/Inf inputs
    /// would only test error paths).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mag = (rng.unit_f64() * 2.0 - 1.0) * 64.0;
        (rng.unit_f64() * 2.0 - 1.0) * mag.exp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::from_seed(9);
        let a = any::<u64>().generate(&mut rng);
        let b = any::<u64>().generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = TestRng::from_seed(10);
        let draws: Vec<bool> = (0..100).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(draws.contains(&true) && draws.contains(&false));
    }

    #[test]
    fn any_f64_is_finite() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..1000 {
            assert!(any::<f64>().generate(&mut rng).is_finite());
        }
    }
}
