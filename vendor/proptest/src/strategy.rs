//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no shrinking: `generate` draws a value
/// directly. The trait is object-safe so heterogeneous strategies can be
/// unified through [`BoxedStrategy`] (see [`crate::prop_oneof!`]).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (the [`crate::prop_oneof!`] macro).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! uint_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
uint_range_strategies!(usize, u64, u32, u16, u8);

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategies!(isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let u = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&u));
            let v = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&v));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_union_tuple_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = crate::prop_oneof![
            (0usize..3).prop_map(|v| v * 10),
            (5usize..6).prop_map(|v| v * 100),
        ];
        let t = (0usize..2, &s);
        for _ in 0..200 {
            let (small, mapped) = t.generate(&mut rng);
            assert!(small < 2);
            assert!(matches!(mapped, 0 | 10 | 20 | 500));
        }
    }

    #[test]
    fn just_clones() {
        let mut rng = TestRng::from_seed(3);
        assert_eq!(Just(vec![1, 2]).generate(&mut rng), vec![1, 2]);
    }
}
