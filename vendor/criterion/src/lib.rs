//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-harness subset this workspace uses — groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, throughput
//! annotations and the `criterion_group!` / `criterion_main!` macros — with
//! real wall-clock measurement: warm-up, then `sample_size` samples of a
//! batched routine, reporting min/median/mean per iteration. No plots, no
//! statistical regression analysis, no `target/criterion` persistence.
//!
//! Two environment variables hook the harness into CI:
//!
//! - `SBC_BENCH_JSON=<path>` — append one JSON record per benchmark
//!   (`name`, `min_ns`, `median_ns`, `mean_ns`, plus `rate`/`rate_unit`
//!   when a [`Throughput`] is set) to a JSON array at `<path>`. The file
//!   stays a valid array after every append, so partial runs still parse.
//! - `SBC_BENCH_FAST=1` — clamp warm-up and measurement budgets to a few
//!   milliseconds so smoke runs finish quickly; numbers are then only
//!   sanity signals, not stable measurements.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation: turns per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group name provides context).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of the various accepted id arguments.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}
impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}
impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct MeasureConfig {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    config: MeasureConfig,
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        run_one(&id.into_id(), self.config, None, f);
    }

    /// Runs one standalone benchmark with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&id.into_id(), self.config, None, |b| f(b, input));
    }

    /// No-op, for API compatibility.
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing configuration and a name prefix.
pub struct BenchmarkGroup<'c> {
    name: String,
    config: MeasureConfig,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up = d;
        self
    }

    /// Sets the measurement duration budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement = d;
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.config, self.throughput, f);
        self
    }

    /// Runs a benchmark with an input value in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.config, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    config: MeasureConfig,
    /// Per-iteration nanoseconds: (min, median, mean).
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Measures `routine`: warm-up, batch-size estimation, then
    /// `sample_size` timed batches.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up, measuring the rough per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.config.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Batch so that sample_size batches fill the measurement budget.
        let budget = self.config.measurement.as_secs_f64();
        let total_iters = (budget / per_iter.max(1e-12)).ceil() as u64;
        let batch = (total_iters / self.config.sample_size as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        self.result = Some((min, median, mean));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The `SBC_BENCH_FAST` clamp: smoke-run budgets for CI.
fn clamp_fast(config: MeasureConfig) -> MeasureConfig {
    MeasureConfig {
        sample_size: config.sample_size.min(5),
        warm_up: config.warm_up.min(Duration::from_millis(5)),
        measurement: config.measurement.min(Duration::from_millis(25)),
    }
}

/// Applies the `SBC_BENCH_FAST` clamp, if set, to a resolved config.
fn effective_config(config: MeasureConfig) -> MeasureConfig {
    if std::env::var("SBC_BENCH_FAST").map(|v| v == "1") == Ok(true) {
        clamp_fast(config)
    } else {
        config
    }
}

/// Minimal JSON string escaping for benchmark names.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Appends `record` (a complete JSON object) to the JSON array at `path`,
/// creating the file if needed. The file is a valid array before and after
/// every call, so interrupted benchmark runs still leave parseable output.
fn append_json_record(path: &str, record: &str) -> std::io::Result<()> {
    let body = match std::fs::read_to_string(path) {
        Ok(text) => {
            let trimmed = text.trim_end().trim_end_matches(']').trim_end();
            let trimmed = trimmed.trim_end_matches(',').trim_end();
            let inner = trimmed.trim_start().trim_start_matches('[').trim();
            if inner.is_empty() {
                format!("[\n{record}\n]\n")
            } else {
                format!("{trimmed},\n{record}\n]\n")
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => format!("[\n{record}\n]\n"),
        Err(e) => return Err(e),
    };
    std::fs::write(path, body)
}

fn run_one(
    name: &str,
    config: MeasureConfig,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        config: effective_config(config),
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((min, median, mean)) => {
            let mut line = format!(
                "{name:<50} time: [{} {} {}]",
                fmt_ns(min),
                fmt_ns(median),
                fmt_ns(mean)
            );
            let rate = throughput.map(|t| {
                let (count, unit) = match t {
                    Throughput::Elements(n) => (n, "elem"),
                    Throughput::Bytes(n) => (n, "B"),
                };
                (count as f64 / (median / 1e9), unit)
            });
            if let Some((rate, unit)) = rate {
                line.push_str(&format!("  thrpt: {rate:.3e} {unit}/s"));
            }
            println!("{line}");
            if let Ok(path) = std::env::var("SBC_BENCH_JSON") {
                if !path.is_empty() {
                    let mut record = format!(
                        "{{\"name\":\"{}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\"mean_ns\":{mean:.1}",
                        json_escape(name)
                    );
                    if let Some((rate, unit)) = rate {
                        record.push_str(&format!(",\"rate\":{rate:.3},\"rate_unit\":\"{unit}/s\""));
                    }
                    record.push('}');
                    if let Err(e) = append_json_record(&path, &record) {
                        eprintln!("warning: SBC_BENCH_JSON append to {path} failed: {e}");
                    }
                }
            }
        }
        None => println!("{name:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let cfg = MeasureConfig {
            sample_size: 3,
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(20),
        };
        let mut b = Bencher {
            config: cfg,
            result: None,
        };
        b.iter(|| black_box(17u64).wrapping_mul(31));
        let (min, median, mean) = b.result.expect("measured");
        assert!(min > 0.0 && median >= min && mean > 0.0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim");
        g.sample_size(2)
            .throughput(Throughput::Elements(1))
            .bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
                b.iter(|| black_box(x) * 2)
            });
        g.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(1u8)));
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("a", 5).into_id(), "a/5");
        assert_eq!(BenchmarkId::from_parameter(7).into_id(), "7");
    }

    #[test]
    fn json_escaping_covers_quotes_and_controls() {
        assert_eq!(json_escape("plain/bench"), "plain/bench");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn json_records_accumulate_into_a_valid_array() {
        let path = std::env::temp_dir().join(format!("sbc-bench-shim-{}.json", std::process::id()));
        let path = path.to_string_lossy().into_owned();
        let _ = std::fs::remove_file(&path);

        append_json_record(&path, "{\"name\":\"one\",\"median_ns\":1.0}").unwrap();
        append_json_record(&path, "{\"name\":\"two\",\"median_ns\":2.0}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"name\":\"one\""));
        assert!(text.contains("\"name\":\"two\""));
        // exactly one separator between the two records keeps the array valid
        assert_eq!(text.matches("},").count(), 1);
    }

    #[test]
    fn fast_mode_clamps_budgets_but_never_raises_them() {
        let clamped = clamp_fast(MeasureConfig::default());
        assert_eq!(clamped.sample_size, 5);
        assert_eq!(clamped.warm_up, Duration::from_millis(5));
        assert_eq!(clamped.measurement, Duration::from_millis(25));

        let tiny = MeasureConfig {
            sample_size: 2,
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(3),
        };
        let kept = clamp_fast(tiny);
        assert_eq!(kept.sample_size, 2);
        assert_eq!(kept.warm_up, Duration::from_millis(1));
        assert_eq!(kept.measurement, Duration::from_millis(3));
    }
}
