//! Topology-aware simulation and planning, end to end.
//!
//! Three guarantees: (1) the degenerate single-switch topology reproduces
//! the flat simulator **bit-exactly** across distributions and operations,
//! so plugging in `sbc-topo` cannot silently change any previously
//! published number; (2) on an oversubscribed rack topology the
//! topology-aware cost model picks a *different* distribution than the
//! flat model, and the simulator confirms the pick is faster — the
//! headline acceptance criterion; (3) overriding the runtime's scheduler
//! changes priorities only, never results or traffic.

use std::sync::Arc;

use sbc::dist::{SbcExtended, TwoDBlockCyclic};
use sbc::planner::{Op, Planner};
use sbc::runtime::Run;
use sbc::simgrid::{Platform, SimConfig, Simulator};
use sbc::taskgraph::{build_potrf, build_potri, TaskGraph};
use sbc::topo::Heft;

/// Flat model vs. the degenerate single-switch topology: every number in
/// the report must be bit-identical, for SBC and 2DBC, POTRF and POTRI.
#[test]
fn single_switch_topology_is_bit_exact_for_sbc_and_2dbc() {
    let b = 256;
    let nt = 12;
    let p = Platform::bora(10);
    let topo = p.single_switch_topology();

    let sbc = SbcExtended::new(5);
    let bc = TwoDBlockCyclic::new(3, 3);
    let graphs: Vec<(&str, TaskGraph)> = vec![
        ("sbc/potrf", build_potrf(&sbc, nt)),
        ("sbc/potri", build_potri(&sbc, nt)),
        ("2dbc/potrf", build_potrf(&bc, nt)),
        ("2dbc/potri", build_potri(&bc, nt)),
    ];

    for (label, g) in &graphs {
        let flat = Simulator::new(g, &p, SimConfig::chameleon(b)).run();
        let routed = Simulator::with_topology(g, &p, SimConfig::chameleon(b), &topo).run();
        assert_eq!(
            flat.makespan.to_bits(),
            routed.makespan.to_bits(),
            "{label}: makespan drifted ({} vs {})",
            flat.makespan,
            routed.makespan
        );
        assert_eq!(flat.messages, routed.messages, "{label}: message count");
        assert_eq!(flat.bytes, routed.bytes, "{label}: byte count");
        assert_eq!(routed.cross_rack_messages, 0, "{label}: single rack");
        for (n, (a, z)) in flat
            .busy_per_node
            .iter()
            .zip(&routed.busy_per_node)
            .enumerate()
        {
            assert_eq!(a.to_bits(), z.to_bits(), "{label}: busy time of node {n}");
        }
    }
}

/// The acceptance criterion of the topology work: on a rack-split,
/// heavily oversubscribed network, the topology-aware cost model ranks a
/// different distribution first than the flat model — and simulating both
/// picks *on that topology* confirms the topology-aware choice is faster.
#[test]
fn rack_aware_planner_flips_the_choice_and_the_simulator_agrees() {
    let (nt, b) = (16, 128);
    let p = Platform::bora(12);
    let racks = p.rack_topology(2, 32.0);

    let flat_planner = Planner::new(p.clone());
    let topo_planner = Planner::new(p.clone()).with_topology(racks);
    let flat_pick = flat_planner.plan(Op::Potrf, nt, b).choice;
    let topo_pick = topo_planner.plan(Op::Potrf, nt, b).choice;
    assert_ne!(
        flat_pick, topo_pick,
        "oversubscribed racks should change the ranking"
    );

    // The referee: both picks simulated on the rack topology.
    let flat_on_racks = topo_planner.simulate(flat_pick, Op::Potrf, nt, b);
    let topo_on_racks = topo_planner.simulate(topo_pick, Op::Potrf, nt, b);
    assert!(
        topo_on_racks.makespan < flat_on_racks.makespan,
        "topology-aware pick {} ({:.4}s) should beat flat pick {} ({:.4}s) on racks",
        topo_pick.describe(),
        topo_on_racks.makespan,
        flat_pick.describe(),
        flat_on_racks.makespan
    );
    // The flip is driven by cross-rack traffic: the winner keeps every
    // byte inside one rack.
    assert_eq!(topo_on_racks.cross_rack_bytes, 0);
    assert!(flat_on_racks.cross_rack_bytes > 0);
}

/// Scheduler overrides re-rank ready queues but placement, results and
/// traffic are invariant: a HEFT-scheduled run must produce the
/// bit-identical factor and the exact same communication totals as the
/// default critical-path priorities.
#[test]
fn runtime_scheduler_override_is_result_and_traffic_invariant() {
    let (nt, b, seed) = (10, 8, 42);
    let dist = SbcExtended::new(4);

    let base = Run::potrf(&dist, nt).block(b).seed(seed).execute().unwrap();
    let heft = Run::potrf(&dist, nt)
        .block(b)
        .seed(seed)
        .scheduler(Arc::new(Heft))
        .execute()
        .unwrap();

    assert_eq!(base.stats.messages, heft.stats.messages);
    assert_eq!(base.stats.bytes, heft.stats.bytes);
    let (bf, hf) = (base.factor(), heft.factor());
    for (i, j) in bf.tile_coords() {
        let (bt, ht) = (bf.tile(i, j), hf.tile(i, j));
        for r in 0..b {
            for c in 0..b {
                assert_eq!(
                    bt.get(r, c).to_bits(),
                    ht.get(r, c).to_bits(),
                    "tile ({i},{j}) element ({r},{c}) differs under HEFT"
                );
            }
        }
    }
}
