//! The paper's quantitative claims, checked against this implementation.

use sbc::dist::comm::{
    self, matrix_tiles, optimal_c_bc, optimal_c_sbc, potrf_25d_messages, potrf_messages,
    theorem1_basic, theorem1_extended, trtri_messages,
};
use sbc::dist::table1::{best_grid, table1};
use sbc::dist::{SbcBasic, SbcExtended, TwoDBlockCyclic, TwoPointFiveD};

/// Theorem 1: with the SBC distribution each tile is communicated to
/// `r - 1` (basic) / `r - 2` (extended) nodes; the total volume converges
/// to `S (r - 1)` / `S (r - 2)` from below as N grows.
#[test]
fn theorem_1() {
    for r in [4, 6, 8] {
        let basic = SbcBasic::new(r);
        let ext = SbcExtended::new(r);
        let mut prev_ratio_basic = 0.0;
        let mut prev_ratio_ext = 0.0;
        for mult in [4, 8, 16] {
            let nt = r * mult;
            let eb = potrf_messages(&basic, nt);
            let ee = potrf_messages(&ext, nt);
            assert!(eb <= theorem1_basic(nt, r));
            assert!(ee <= theorem1_extended(nt, r));
            let rb = eb as f64 / theorem1_basic(nt, r) as f64;
            let re = ee as f64 / theorem1_extended(nt, r) as f64;
            assert!(rb > prev_ratio_basic, "basic not converging r={r}");
            assert!(re > prev_ratio_ext, "extended not converging r={r}");
            prev_ratio_basic = rb;
            prev_ratio_ext = re;
        }
        assert!(prev_ratio_basic > 0.9, "r={r}: {prev_ratio_basic}");
        assert!(prev_ratio_ext > 0.9, "r={r}: {prev_ratio_ext}");
    }
}

/// Section III-D: at equal node counts, SBC's POTRF volume is ~sqrt(2)
/// lower than square 2DBC's (asymptotically in P).
#[test]
fn sqrt2_improvement_over_square_2dbc() {
    // large-P closed-form ratio
    for r in [20usize, 40, 80] {
        let p = r * (r - 1) / 2;
        let side = (p as f64).sqrt();
        let ratio = (2.0 * side - 2.0) / (r as f64 - 2.0);
        assert!(
            (ratio - std::f64::consts::SQRT_2).abs() < 0.08,
            "r={r}: {ratio}"
        );
    }
    // exact counts at the paper's experimental scale (r = 7, P = 21 vs 21)
    let nt = 70;
    let sbc = SbcExtended::new(7);
    let dbc = TwoDBlockCyclic::new(7, 3);
    let gain = potrf_messages(&dbc, nt) as f64 / potrf_messages(&sbc, nt) as f64;
    assert!(gain > 1.3, "measured gain {gain}");
}

/// Fig 8's regime: SBC (P=21) moves less data than both 2DBC grids
/// (P=20 and P=21), for every matrix size.
#[test]
fn fig8_volume_ordering() {
    let sbc = SbcExtended::new(7);
    let bc54 = TwoDBlockCyclic::new(5, 4);
    let bc73 = TwoDBlockCyclic::new(7, 3);
    for nt in [10, 25, 50, 100] {
        let s = potrf_messages(&sbc, nt);
        assert!(s < potrf_messages(&bc54, nt), "nt={nt}");
        assert!(s < potrf_messages(&bc73, nt), "nt={nt}");
    }
}

/// Section IV-A: the 2.5D SBC volume splits into broadcasts ~S(r-1) and
/// reductions ~S(c-1); one slice degenerates to the 2D case.
#[test]
fn two_five_d_volume_split() {
    let r = 4;
    for c in [1, 2, 3, 4] {
        let d25 = TwoPointFiveD::new(SbcBasic::new(r), c);
        let nt = 12 * r;
        let m = potrf_25d_messages(&d25, nt);
        if c == 1 {
            assert_eq!(m.reductions, 0);
        } else {
            let closed = matrix_tiles(nt) * (c as u64 - 1);
            assert!(m.reductions <= closed);
            assert!(m.reductions as f64 / closed as f64 > 0.9);
        }
        assert!(m.broadcasts <= theorem1_basic(nt, r));
    }
}

/// Section IV-B: optimal slice counts; SBC's optimum uses less memory.
#[test]
fn optimal_slice_counts() {
    // P = 4 r^3 / ... for SBC r = 2c: P = r^2 c / 2 = 2c^3.
    for c in [2usize, 3, 4] {
        let p = 2 * c * c * c;
        assert_eq!(optimal_c_sbc(p), c, "P={p}");
    }
    for c in [2usize, 3, 5] {
        let p = c * c * c;
        assert_eq!(optimal_c_bc(p), c);
    }
    // cbrt(2) total-volume gain at the optimum (closed form)
    let p = 1024.0_f64;
    let sbc_opt = 3.0 * (0.5_f64).cbrt() * p.cbrt();
    let bc_opt = 3.0 * p.cbrt();
    assert!((bc_opt / sbc_opt - 2.0_f64.cbrt()).abs() < 1e-12);
}

/// Section V-F.2: TRTRI favours 2DBC; the remap strategy's volume sits
/// between all-SBC and all-2DBC... specifically the paper's leading terms.
#[test]
fn potri_orderings() {
    let sbc = SbcExtended::new(8); // P = 28
    let bc = TwoDBlockCyclic::new(7, 4); // P = 28
    let nt = 64;
    // TRTRI alone: 2DBC wins
    assert!(trtri_messages(&bc, nt) < trtri_messages(&sbc, nt));
    // full POTRI: remap beats all-2DBC (paper: ratio 27/23 at leading order)
    let all_bc = comm::potri_messages(&bc, nt);
    let remap = comm::potri_remap_messages(&sbc, &bc, nt);
    assert!(remap < all_bc, "remap {remap} vs all-2DBC {all_bc}");
    // and also beats naive all-SBC POTRI
    let all_sbc = comm::potri_messages(&sbc, nt);
    assert!(remap < all_sbc, "remap {remap} vs all-SBC {all_sbc}");
}

/// Table I is regenerated exactly.
#[test]
fn table_1_contents() {
    let t = table1();
    let rows: Vec<(usize, usize)> = t.iter().map(|r| (r.r, r.p_sbc)).collect();
    assert_eq!(rows, vec![(6, 15), (7, 21), (8, 28), (9, 36)]);
    assert_eq!(best_grid(28), (7, 4));
}

/// Section III-E: arithmetic-intensity ladder. SBC restores for Cholesky
/// the (2/3) sqrt(M) intensity that 2DBC only reaches for LU.
#[test]
fn arithmetic_intensity_ladder() {
    let m = 4096.0;
    let sbc = comm::intensity_cholesky_sbc(m);
    let dbc = comm::intensity_cholesky_2dbc(m);
    assert!((sbc / dbc - std::f64::consts::SQRT_2).abs() < 1e-12);
    assert!((sbc - (2.0 / 3.0) * m.sqrt()).abs() < 1e-12);
}

/// Load balance: SBC matches 2DBC's tile balance (the property that made
/// 2DBC the default in the first place).
#[test]
fn sbc_load_balance_matches_2dbc() {
    use sbc::dist::balance::tile_balance;
    for r in [6, 7, 8, 9] {
        let sbc = SbcExtended::new(r);
        let npat = sbc.diagonal_patterns().len();
        let nt = r * npat * 2;
        let s = tile_balance(&sbc, nt);
        assert!(s.imbalance() < 1.1, "r={r}: {}", s.imbalance());
    }
}
