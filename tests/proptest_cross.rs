//! Cross-crate property tests: for randomized distributions and matrix
//! shapes, the three communication-model implementations agree and the
//! execution engines respect their invariants.

use proptest::prelude::*;
use sbc::dist::comm;
use sbc::dist::{Distribution, SbcBasic, SbcExtended, TwoDBlockCyclic};
use sbc::simgrid::{Platform, SimConfig, Simulator};
use sbc::taskgraph::{build_lauum, build_lu, build_potrf, build_trtri};

/// A debuggable descriptor of a small distribution of varied family.
#[derive(Debug, Clone)]
enum DistSpec {
    Bc(usize, usize),
    Basic(usize),
    Ext(usize),
}

impl DistSpec {
    fn build(&self) -> Box<dyn Distribution> {
        match *self {
            DistSpec::Bc(p, q) => Box::new(TwoDBlockCyclic::new(p, q)),
            DistSpec::Basic(r) => Box::new(SbcBasic::new(r)),
            DistSpec::Ext(r) => Box::new(SbcExtended::new(r)),
        }
    }
}

fn arb_dist() -> impl Strategy<Value = DistSpec> {
    prop_oneof![
        (1usize..5, 1usize..5).prop_map(|(p, q)| DistSpec::Bc(p, q)),
        (2usize..5).prop_map(|h| DistSpec::Basic(2 * h)),
        (3usize..9).prop_map(DistSpec::Ext),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Graph-derived message counts equal the analytic counters, for every
    /// operation, distribution family and matrix size.
    #[test]
    fn message_counts_agree(spec in arb_dist(), nt in 1usize..22) {
        let d = spec.build();
        let g = build_potrf(&d.as_ref(), nt);
        prop_assert_eq!(g.count_messages(), comm::potrf_messages(&d.as_ref(), nt));
        let g = build_trtri(&d.as_ref(), nt);
        prop_assert_eq!(g.count_messages(), comm::trtri_messages(&d.as_ref(), nt));
        let g = build_lauum(&d.as_ref(), nt);
        prop_assert_eq!(g.count_messages(), comm::lauum_messages(&d.as_ref(), nt));
        let g = build_lu(&d.as_ref(), nt);
        prop_assert_eq!(g.count_messages(), comm::lu_messages(&d.as_ref(), nt));
    }

    /// Simulated makespan is sandwiched between its lower bounds (critical
    /// path, per-node work) and the fully serial execution time.
    #[test]
    fn makespan_bounds(spec in arb_dist(), nt in 2usize..16) {
        let d = spec.build();
        let g = build_potrf(&d.as_ref(), nt);
        let platform = Platform::bora(d.num_nodes());
        let b = 256;
        let cfg = SimConfig::chameleon(b);
        let r = Simulator::new(&g, &platform, cfg).run();
        prop_assert_eq!(r.tasks_executed as usize, g.len());

        let cp = sbc::taskgraph::priority::critical_path_length(&g, |t| {
            platform.task_seconds(&t.kind, b)
        });
        prop_assert!(r.makespan >= cp * 0.999, "makespan {} < cp {}", r.makespan, cp);

        let work: f64 = g
            .tasks()
            .iter()
            .map(|t| platform.task_seconds(&t.kind, b))
            .sum();
        let work_bound = work / (d.num_nodes() * platform.cores_per_node) as f64;
        prop_assert!(r.makespan >= work_bound * 0.999);

        // serial upper bound plus all communication fully serialized
        let serial = work
            + r.messages as f64 * (platform.port_seconds((b * b * 8) as u64) + platform.nic_latency);
        prop_assert!(r.makespan <= serial * 1.001, "makespan {} > serial {}", r.makespan, serial);
    }

    /// The graph validates and its task count matches the closed form for
    /// POTRF under any distribution.
    #[test]
    fn potrf_graph_structure(spec in arb_dist(), nt in 1usize..24) {
        let d = spec.build();
        let g = build_potrf(&d.as_ref(), nt);
        g.validate().unwrap();
        let expect = nt + nt * (nt - 1) + nt * (nt - 1) * (nt.max(2) - 2) / 6;
        prop_assert_eq!(g.len(), expect);
        // owner-computes: every task's output tile owner is its node
        for t in g.tasks() {
            match t.output(1) {
                sbc::taskgraph::TileRef::A { i, j, .. } => {
                    prop_assert_eq!(t.node as usize, d.owner(i as usize, j as usize));
                }
                _ => prop_assert!(false, "potrf writes A tiles only"),
            }
        }
    }

    /// The distributed runtime reproduces the sequential factor bit-for-bit
    /// and measures exactly the analytic traffic (small sizes to keep
    /// thread counts sane).
    #[test]
    fn runtime_agrees_with_sequential(seed in any::<u64>(), r in 3usize..6, nt in 2usize..10) {
        let d = SbcExtended::new(r);
        let b = 4;
        let out = sbc::runtime::Run::potrf(&d, nt).block(b).seed(seed).execute().unwrap();
        let (l, stats) = (out.factor(), &out.stats);
        let mut seq = sbc::matrix::random_spd(seed, nt, b);
        sbc::matrix::potrf_tiled(&mut seq).unwrap();
        for (i, j) in seq.tile_coords() {
            prop_assert!(l.tile(i, j).max_abs_diff(seq.tile(i, j)) == 0.0);
        }
        prop_assert_eq!(stats.messages, comm::potrf_messages(&d, nt));
        // per-node accounting closes: every sent message is received once,
        // and every message carries exactly one b x b tile of f64s.
        prop_assert_eq!(stats.sent_per_node.iter().sum::<u64>(), stats.messages);
        prop_assert_eq!(stats.recv_per_node.iter().sum::<u64>(), stats.messages);
        prop_assert_eq!(stats.bytes_per_node.iter().sum::<u64>(), stats.bytes);
        prop_assert_eq!(stats.bytes, stats.messages * (b * b * 8) as u64);
    }
}
