//! End-to-end observability: a real (non-simulated) distributed Cholesky
//! across many virtual nodes, recorded, exported, and cross-checked against
//! the planner's predictions — the acceptance pipeline behind `paper obs`.

use sbc::obs::{
    chrome_trace, json, metrics_from_recording, render_gantt, task_spans, ExecProfile, Recorder,
};
use sbc::planner::{compare, Op, Planner};
use sbc::runtime::PlannedExecutor;
use sbc::simgrid::Platform;

#[test]
fn recorded_distributed_cholesky_exports_everything() {
    // Plan a POTRF on the paper's 10-node bora platform and execute it for
    // real: 10 OS threads, channels as the interconnect.
    let planner = Planner::new(Platform::bora(10));
    let plan = planner.plan(Op::Potrf, 12, 8);
    let exec = PlannedExecutor::new(plan, 7, 11);

    let recorder = Recorder::new();
    let outcome = exec.run_recorded(&recorder);
    let recording = recorder.drain();

    // Every node participated and left events behind.
    let nodes = recording.nodes();
    assert!(nodes >= 4, "want a genuinely distributed run, got {nodes}");
    for n in 0..nodes as u32 {
        assert!(recording.events_on(n) > 0, "node {n} recorded nothing");
    }

    // Chrome trace: valid JSON with at least one event per node.
    let trace = chrome_trace(&recording);
    json::validate(&trace).expect("chrome trace must be valid JSON");
    for n in 0..nodes {
        assert!(
            trace.contains(&format!("\"pid\":{n},")),
            "no trace events for node {n}"
        );
    }

    // Text Gantt over the measured spans.
    let spans = task_spans(&recording);
    assert_eq!(spans.len(), exec.graph().len());
    let gantt = render_gantt(&spans, nodes, 1, 60);
    assert!(gantt.contains("gantt ("));
    assert_eq!(gantt.lines().count(), 1 + nodes);

    // Metrics snapshot: per-kind latency histograms whose counts add up to
    // the executed task count.
    let metrics = metrics_from_recording(&recording);
    let snap = metrics.snapshot();
    assert_eq!(
        snap.counter("tasks.executed"),
        Some(exec.graph().len() as u64)
    );
    assert_eq!(snap.counter("messages.sent"), Some(outcome.stats.messages));
    let latency_total: u64 = ["potrf", "trsm", "syrk", "gemm"]
        .iter()
        .filter_map(|k| snap.histogram(&format!("latency.{k}")))
        .map(|h| h.count)
        .sum();
    assert_eq!(latency_total, exec.graph().len() as u64);
    let report = snap.render();
    assert!(report.contains("latency.potrf"), "{report}");

    // Drift: the measured run must hit the model's communication exactly.
    let profile = ExecProfile::from_recording(&recording);
    assert_eq!(profile.messages, outcome.stats.messages);
    assert_eq!(profile.messages, exec.plan().cost.messages);
    assert_eq!(profile.bytes, outcome.stats.bytes);
    let drift = compare(exec.plan(), &profile);
    assert!(drift.comm_exact(), "{}", drift.render());
    assert!((drift.message_ratio() - 1.0).abs() < 1e-12);
}

#[test]
fn simulated_and_measured_traces_share_the_gantt() {
    use sbc::simgrid::Simulator;

    // The simulator's traces and the runtime's measured spans are the same
    // type now — one renderer serves both.
    let planner = Planner::new(Platform::bora(10));
    let plan = planner.plan(Op::Potrf, 10, 8);
    let graph = plan.build_graph();

    let platform = Platform::bora(10);
    let (_, sim_trace) = Simulator::new(&graph, &platform, plan.sim_config()).run_traced();
    let sim_gantt = render_gantt(&sim_trace, 10, platform.cores_per_node, 40);
    assert!(sim_gantt.contains("node   0 |"));

    let recorder = Recorder::new();
    PlannedExecutor::new(plan, 1, 2).run_recorded(&recorder);
    let measured = task_spans(&recorder.drain());
    assert_eq!(measured.len(), sim_trace.len());
    let measured_gantt = render_gantt(&measured, 10, 1, 40);
    assert!(measured_gantt.contains("node   0 |"));
}
