//! Simulator-level integration tests: the performance-shaped claims of
//! Section V, checked on the modelled `bora` platform.

use sbc::dist::{Distribution, SbcBasic, SbcExtended, TwoDBlockCyclic, TwoPointFiveD};
use sbc::simgrid::{Platform, ScheduleMode, SimConfig, Simulator};
use sbc::taskgraph::{build_posv, build_potrf, build_potrf_25d};

fn run_async<D: Distribution>(
    dist: &D,
    nt: usize,
    b: usize,
    nodes: usize,
) -> sbc::simgrid::SimReport {
    let g = build_potrf(dist, nt);
    let p = Platform::bora(nodes);
    Simulator::new(&g, &p, SimConfig::chameleon(b)).run()
}

/// Fig 9/10's headline: in the intermediate-size band, SBC beats both 2DBC
/// grids on simulated GFlop/s per node.
#[test]
fn sbc_beats_2dbc_in_mid_band() {
    let b = 500;
    let nt = 100; // n = 50 000
    let sbc = run_async(&SbcExtended::new(8), nt, b, 28);
    let bc74 = run_async(&TwoDBlockCyclic::new(7, 4), nt, b, 28);
    let flops = sbc::kernels::flops_cholesky_total(nt * b);
    let g_sbc = sbc.gflops_per_node(Some(flops));
    let g_bc = bc74.gflops_per_node(Some(flops));
    assert!(
        g_sbc > g_bc * 1.03,
        "SBC {g_sbc:.0} GF/node vs 2DBC {g_bc:.0}"
    );
}

/// At very large n the curves converge (computation dominates) — the gap
/// shrinks below the mid-band gap.
#[test]
fn gap_narrows_at_large_n() {
    let b = 500;
    let flops = |nt: usize| sbc::kernels::flops_cholesky_total(nt * b);
    let gap = |nt: usize| {
        let s = run_async(&SbcExtended::new(8), nt, b, 28).gflops_per_node(Some(flops(nt)));
        let d = run_async(&TwoDBlockCyclic::new(7, 4), nt, b, 28).gflops_per_node(Some(flops(nt)));
        s / d
    };
    let mid = gap(100);
    let large = gap(200);
    assert!(
        mid > large,
        "mid gap {mid:.3} should exceed large-n gap {large:.3}"
    );
    assert!(large < 1.06);
}

/// The bulk-synchronous (COnfCHOX-like) schedule is slower than the
/// asynchronous task-based one at equal distribution — the paper's
/// explanation for Chameleon outperforming COnfCHOX (Section V-E).
#[test]
fn async_beats_bulk_synchronous() {
    let b = 500;
    let nt = 64;
    let dist = TwoDBlockCyclic::new(4, 4);
    let g = build_potrf(&dist, nt);
    let p = Platform::bora(16);
    let a = Simulator::new(&g, &p, SimConfig::chameleon(b)).run();
    let s = Simulator::new(
        &g,
        &p,
        SimConfig {
            tile_b: b,
            mode: ScheduleMode::BulkSynchronous,
            use_priorities: true,
            priority_comms: false,
        },
    )
    .run();
    assert!(
        s.makespan > a.makespan * 1.1,
        "sync {:.2}s vs async {:.2}s",
        s.makespan,
        a.makespan
    );
}

/// 2.5D SBC improves on 2D SBC in the communication-bound band
/// (Section V-E: "the 2.5D SBC distribution yields even better performance
/// than all other schemes").
#[test]
fn two_five_d_sbc_helps_in_comm_bound_band() {
    let b = 500;
    let nt = 96;
    let flops = sbc::kernels::flops_cholesky_total(nt * b);
    // 24 nodes: 2D basic SBC r=4 replicated over c=3 slices of 8
    let d2 = SbcBasic::new(4);
    let d25 = TwoPointFiveD::new(d2.clone(), 3);
    let g2 = build_potrf(&d2, nt);
    let g25 = build_potrf_25d(&d25, nt);
    let p8 = Platform::bora(8);
    let p24 = Platform::bora(24);
    let r2 = Simulator::new(&g2, &p8, SimConfig::chameleon(b)).run();
    let r25 = Simulator::new(&g25, &p24, SimConfig::chameleon(b)).run();
    // per-node throughput: the 2.5D run must actually use its 3x nodes to
    // good effect: total time strictly better
    assert!(r25.makespan < r2.makespan);
    let _ = flops;
}

/// Strong scaling (Fig 11): at fixed n, SBC's makespan improves with more
/// nodes, and SBC at P=36 at least matches 2DBC at P=36 throughput-wise.
#[test]
fn strong_scaling_fig11_shape() {
    let b = 500;
    let nt = 120;
    let m15 = run_async(&SbcExtended::new(6), nt, b, 15).makespan;
    let m28 = run_async(&SbcExtended::new(8), nt, b, 28).makespan;
    let m36 = run_async(&SbcExtended::new(9), nt, b, 36).makespan;
    assert!(m28 < m15, "P=28 {m28:.2}s vs P=15 {m15:.2}s");
    assert!(m36 < m15, "P=36 {m36:.2}s vs P=15 {m15:.2}s");

    let d36 = run_async(&TwoDBlockCyclic::new(6, 6), nt, b, 36).makespan;
    assert!(m36 < d36 * 1.05, "SBC P=36 {m36:.2}s vs 2DBC 6x6 {d36:.2}s");
}

/// POSV keeps an SBC advantage, but a smaller one than POTRF (Fig 13).
#[test]
fn posv_advantage_smaller_than_potrf() {
    let b = 500;
    let nt = 100;
    let sbc = SbcExtended::new(8);
    let bc = TwoDBlockCyclic::new(7, 4);
    let rhs = sbc::dist::RowCyclic::new(28);
    let p = Platform::bora(28);

    let potrf_gain = {
        let gs = build_potrf(&sbc, nt);
        let gd = build_potrf(&bc, nt);
        let ms = Simulator::new(&gs, &p, SimConfig::chameleon(b))
            .run()
            .makespan;
        let md = Simulator::new(&gd, &p, SimConfig::chameleon(b))
            .run()
            .makespan;
        md / ms
    };
    let posv_gain = {
        let gs = build_posv(&sbc, &rhs, nt);
        let gd = build_posv(&bc, &rhs, nt);
        let ms = Simulator::new(&gs, &p, SimConfig::chameleon(b))
            .run()
            .makespan;
        let md = Simulator::new(&gd, &p, SimConfig::chameleon(b))
            .run()
            .makespan;
        md / ms
    };
    assert!(potrf_gain > 1.0, "potrf gain {potrf_gain:.3}");
    // POSV adds distribution-independent work, diluting the gain
    assert!(
        posv_gain < potrf_gain + 0.02,
        "posv gain {posv_gain:.3} vs potrf gain {potrf_gain:.3}"
    );
}

/// Single-node Fig 7 shape: throughput rises with tile size and saturates
/// around b = 500.
#[test]
fn fig7_tile_size_shape() {
    let n = 24000;
    let d = TwoDBlockCyclic::new(1, 1);
    let p = Platform::bora(1);
    let mut perf = Vec::new();
    for b in [100, 200, 300, 500, 750, 1000] {
        let nt = n / b;
        let g = build_potrf(&d, nt);
        let r = Simulator::new(&g, &p, SimConfig::chameleon(b)).run();
        perf.push(r.gflops_per_node(Some(sbc::kernels::flops_cholesky_total(nt * b))));
    }
    // rising through 500
    assert!(perf[1] > perf[0]);
    assert!(perf[2] > perf[1]);
    assert!(perf[3] > perf[2]);
    // "almost maximum performance is reached as soon as tile size is at
    // least 500": b=500 within a few % of the curve's maximum
    let max = perf.iter().cloned().fold(0.0f64, f64::max);
    assert!(perf[3] > 0.97 * max, "{perf:?}");
    // mild decline at b=1000 (load-balance loss from too few tiles)
    assert!(perf[5] < perf[4], "{perf:?}");
}
