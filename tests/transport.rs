//! Transport-layer acceptance tests: the same distributed Cholesky, bit
//! for bit, over every `sbc-net` backend — in-process channels, loopback
//! TCP, loopback Unix-domain sockets — with the bytes that actually
//! crossed each transport equal to the analytic schedule-invariant counts
//! of `sbc::dist::comm`.

use sbc::dist::{comm, Distribution, SbcExtended, TwoDBlockCyclic};
use sbc::matrix::{potrf_tiled, random_spd, SymmetricTiledMatrix};
use sbc::net::{inproc_mesh, local_mesh, Backend, FaultConfig, Faulty, Transport, TransportStats};
use sbc::runtime::{CommStats, Executor, Run, RunOutput};
use sbc::taskgraph::build_potrf;

const B: usize = 8;
const SEED: u64 = 2022;

/// Runs one rank per thread over a caller-built mesh, returning rank 0's
/// gathered output plus each endpoint's own accounting.
fn run_over<T: Transport, D: Distribution>(
    dist: &D,
    nt: usize,
    mesh: &[T],
) -> (RunOutput, Vec<TransportStats>) {
    let out = std::thread::scope(|scope| {
        let handles: Vec<_> = mesh
            .iter()
            .map(|net| {
                scope.spawn(move || {
                    Run::potrf(&dist, nt)
                        .block(B)
                        .seed(SEED)
                        .workers(2)
                        .execute_rank(net)
                        .expect("rank execution failed")
                })
            })
            .collect();
        let mut out = None;
        for h in handles {
            if let Some(o) = h.join().expect("rank thread panicked") {
                out = Some(o);
            }
        }
        out.expect("rank 0 gathered an output")
    });
    (out, mesh.iter().map(|t| t.stats()).collect())
}

fn sequential_factor(nt: usize) -> SymmetricTiledMatrix {
    let mut seq = random_spd(SEED, nt, B);
    potrf_tiled(&mut seq).expect("sequential factorization failed");
    seq
}

fn assert_bitwise(out: &RunOutput, seq: &SymmetricTiledMatrix, label: &str) {
    for (i, j) in seq.tile_coords() {
        assert_eq!(
            out.factor().tile(i, j).max_abs_diff(seq.tile(i, j)),
            0.0,
            "{label}: tile ({i},{j}) differs from sequential"
        );
    }
}

fn assert_analytic<D: Distribution>(
    stats: &CommStats,
    per_rank: &[TransportStats],
    dist: &D,
    nt: usize,
    label: &str,
) {
    let messages = comm::potrf_messages(dist, nt);
    let bytes = comm::messages_to_bytes(messages, B);
    assert_eq!(stats.messages, messages, "{label}: message count");
    assert_eq!(stats.bytes, bytes, "{label}: gathered byte count");
    // what each endpoint itself measured, summed, is the same number
    let wire_payload: u64 = per_rank.iter().map(|s| s.sent_payload_bytes).sum();
    assert_eq!(wire_payload, bytes, "{label}: payload bytes on the wire");
    let wire_recv: u64 = per_rank.iter().map(|s| s.recv_payload_bytes).sum();
    assert_eq!(wire_recv, bytes, "{label}: payload bytes received");
}

/// The acceptance matrix: every backend × every distribution family
/// produces the identical factor and the identical analytic traffic.
#[test]
fn every_backend_matches_sequential_and_analytic_counts() {
    let nt = 10;
    let seq = sequential_factor(nt);
    let dists: Vec<(&str, Box<dyn Distribution + Sync>)> = vec![
        ("SBC r=4", Box::new(SbcExtended::new(4))), // 6 nodes
        ("2DBC 2x3", Box::new(TwoDBlockCyclic::new(2, 3))),
    ];
    for (dname, dist) in &dists {
        let dist = dist.as_ref();
        let n = dist.num_nodes();
        for backend in ["inproc", "tcp", "uds"] {
            let label = format!("{dname} over {backend}");
            let (out, per_rank) = match backend {
                "inproc" => run_over(&dist, nt, &inproc_mesh(n)),
                "tcp" => run_over(&dist, nt, &local_mesh(Backend::Tcp, n).expect("tcp mesh")),
                _ => run_over(&dist, nt, &local_mesh(Backend::Uds, n).expect("uds mesh")),
            };
            assert_bitwise(&out, &seq, &label);
            assert_analytic(&out.stats, &per_rank, &dist, nt, &label);
        }
    }
}

/// The tentpole's headline check: a 6-node SBC POTRF over loopback TCP
/// where the frame bytes that really crossed the sockets bound the payload
/// bytes, and the payload bytes equal `sbc::dist::comm`'s analytic count
/// exactly.
#[test]
fn tcp_wire_bytes_equal_analytic_bytes_for_sbc_potrf() {
    let dist = SbcExtended::new(4); // 6 nodes, the paper's smallest SBC
    let nt = 12;
    let mesh = local_mesh(Backend::Tcp, dist.num_nodes()).expect("tcp mesh");
    let (out, per_rank) = run_over(&dist, nt, &mesh);

    let analytic_msgs = comm::potrf_messages(&dist, nt);
    let analytic_bytes = comm::messages_to_bytes(analytic_msgs, B);
    assert_eq!(out.stats.messages, analytic_msgs);
    assert_eq!(out.stats.bytes, analytic_bytes);
    for s in &per_rank {
        // frames add headers/CRC and carry control traffic, so the raw
        // socket volume strictly dominates the payload volume
        assert!(
            s.sent_frame_bytes >= s.sent_payload_bytes,
            "frame bytes below payload bytes"
        );
    }
    let payload: u64 = per_rank.iter().map(|s| s.sent_payload_bytes).sum();
    assert_eq!(payload, analytic_bytes, "wire payload != analytic bytes");
    assert_bitwise(&out, &sequential_factor(nt), "SBC r=4 over tcp");
}

/// A duplicate-injecting, delay-injecting transport changes nothing about
/// the result: receivers deduplicate, so the factor and the applied counts
/// match a clean run while the wire carries the injected excess.
#[test]
fn faulty_transport_is_deduplicated_by_the_runtime() {
    let dist = TwoDBlockCyclic::new(2, 2);
    let nt = 9;
    let g = build_potrf(&dist, nt);
    let exec = Executor::builder(&g)
        .block(B)
        .seeds(SEED, 7)
        .workers(2)
        .build();
    let clean = exec.try_run().expect("clean run failed");

    let cfg = FaultConfig {
        dup_every: 3,
        delay: Some(std::time::Duration::from_micros(20)),
        ..Default::default()
    };
    let mesh: Vec<_> = inproc_mesh(g.num_nodes())
        .into_iter()
        .map(|t| Faulty::new(t, cfg))
        .collect();
    let exec = &exec;
    let out = std::thread::scope(|scope| {
        let handles: Vec<_> = mesh
            .iter()
            .map(|net| scope.spawn(move || exec.run_rank(net)))
            .collect();
        let mut out = None;
        for h in handles {
            if let Some(o) = h
                .join()
                .expect("rank thread panicked")
                .expect("rank failed")
            {
                out = Some(o);
            }
        }
        out.expect("rank 0 gathered an outcome")
    });

    let injected: u64 = mesh.iter().map(|t| t.duplicated()).sum();
    assert!(injected > 0, "the fault plan injected nothing");
    assert_eq!(out.stats.messages, clean.stats.messages + injected);
    assert_eq!(
        out.stats.recv_per_node, clean.stats.recv_per_node,
        "duplicates were applied instead of dropped"
    );
    for (r, tile) in &clean.tiles {
        assert_eq!(out.tiles[r], *tile, "tile {r:?} differs under faults");
    }
}

mod session_frame_props {
    //! Property tests for the reliability session's wire vocabulary: `Seq`
    //! and `Ack` frames round-trip exactly, decode consumes precisely the
    //! encoded length, and every truncation or bit flip is rejected with an
    //! error — never a panic, never a silently wrong frame.

    use proptest::prelude::*;
    use sbc::kernels::Tile;
    use sbc::net::wire::{decode, encode, Frame, FrameError};
    use sbc::net::Payload;
    use sbc::taskgraph::TileRef;

    fn arb_tile() -> impl Strategy<Value = Tile> {
        (0usize..6, any::<u64>()).prop_map(|(dim, seed)| {
            Tile::from_fn(dim, |i, j| {
                let x = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((i * 31 + j) as u64);
                (x % 1000) as f64 / 7.0 - 60.0
            })
        })
    }

    fn arb_payload() -> impl Strategy<Value = Payload> {
        prop_oneof![
            (any::<u32>(), arb_tile()).prop_map(|(producer, tile)| Payload::Data {
                job: 0,
                producer,
                tile
            }),
            (0u32..4, 0u32..4, any::<u32>(), any::<u32>(), arb_tile()).prop_map(
                |(phase, slice, i, j, tile)| Payload::Orig {
                    job: 0,
                    tile_ref: TileRef::A {
                        phase: phase as u8,
                        slice: slice as u8,
                        i,
                        j,
                    },
                    tile,
                }
            ),
        ]
    }

    fn arb_session_frame() -> impl Strategy<Value = Frame> {
        prop_oneof![
            (any::<u32>(), any::<u64>(), arb_payload())
                .prop_map(|(src, seq, payload)| Frame::Seq { src, seq, payload }),
            (any::<u32>(), any::<u64>()).prop_map(|(src, upto)| Frame::Ack { src, upto }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Round trip: decode(encode(f)) == f, consuming the whole buffer.
        #[test]
        fn session_frames_roundtrip_exactly(f in arb_session_frame()) {
            let buf = encode(&f);
            let (back, used) = decode(&buf).expect("fresh frame must decode");
            prop_assert_eq!(&back, &f);
            prop_assert_eq!(used, buf.len(), "decode consumed a different byte count");
        }

        /// Every proper prefix of an encoded session frame is `Truncated`.
        #[test]
        fn truncated_session_frames_are_rejected(f in arb_session_frame(), cut in any::<u64>()) {
            let buf = encode(&f);
            let cut = (cut % buf.len() as u64) as usize; // 0..len, never the full frame
            prop_assert_eq!(decode(&buf[..cut]).unwrap_err(), FrameError::Truncated);
        }

        /// Any single bit flip is caught (CRC for body flips, tag/length
        /// validation otherwise) — decode returns an error, never a frame
        /// and never a panic.
        #[test]
        fn bitflipped_session_frames_are_rejected(
            f in arb_session_frame(),
            at in any::<u64>(),
            bit in 0u32..8,
        ) {
            let mut buf = encode(&f);
            let at = (at % buf.len() as u64) as usize;
            buf[at] ^= 1 << bit;
            prop_assert!(
                decode(&buf).is_err(),
                "flipping bit {} of byte {}/{} went undetected",
                bit,
                at,
                buf.len()
            );
        }
    }
}

/// Control traffic (poison/wake/result/done) is never counted as payload on
/// any backend: a single-task-per-rank run's accounting is pure tile bytes.
#[test]
fn gather_control_traffic_is_not_counted_as_payload() {
    let dist = SbcExtended::new(4);
    let nt = 8;
    for backend in [Backend::Tcp, Backend::Uds] {
        let mesh = local_mesh(backend, dist.num_nodes()).expect("mesh");
        let (out, per_rank) = run_over(&dist, nt, &mesh);
        // the gather shipped every remote tile to rank 0 as Result frames,
        // yet payload accounting still equals the analytic count
        assert_analytic(
            &out.stats,
            &per_rank,
            &dist,
            nt,
            &format!("{} gather", backend.name()),
        );
    }
}
