//! Chaos suite: deterministic fault schedules over lossy transports.
//!
//! Every test here runs the same distributed Cholesky the acceptance tests
//! run, but over a transport that drops, duplicates or delays payload
//! traffic under a seeded, reproducible schedule, with a reliability
//! [`Session`] recovering on top. The acceptance bar does not move an inch:
//!
//! * the gathered factor is **bit-identical** to the sequential one;
//! * the logical payload accounting equals the analytic
//!   `sbc::dist::comm` counts **exactly** — retransmissions and acks live
//!   only in the separate `retrans_*` / `control_*` counters;
//! * recovery overhead is bounded (no retransmission storms).
//!
//! Every assertion message carries the seed and the failing combination so
//! a red run is reproducible by pasting the seed back into `SEED`.
//!
//! The watchdog regression at the bottom covers the opposite contract: a
//! transport that drops *everything* and has no session must fail with
//! [`ExecError::Stalled`] naming the stuck rank — never hang.

use sbc::dist::{comm, Distribution, SbcExtended, TwoDBlockCyclic};
use sbc::matrix::{potrf_tiled, random_spd, SymmetricTiledMatrix};
use sbc::net::{
    inproc_mesh, local_mesh, Backend, FaultConfig, Faulty, Session, Transport, TransportStats,
};
use sbc::runtime::{ExecError, Policy, Run, RunOutput};
use std::time::{Duration, Instant};

const B: usize = 8;
const SEED: u64 = 2022;

/// splitmix64: one u64 in, one well-mixed u64 out — the whole suite's
/// randomness derives from `SEED` through this, so every schedule is a pure
/// function of the seed.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which failure mode a chaos run injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    Drop,
    Dup,
    Delay,
}

/// The seeded fault plan for one rank of one combination: the kind picks
/// the knob, the hash picks its value and the per-rank phase.
fn fault_plan(kind: FaultKind, combo: u64, rank: u64) -> FaultConfig {
    let h = splitmix(SEED ^ combo.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ rank);
    let phase = h >> 32;
    match kind {
        FaultKind::Drop => FaultConfig {
            drop_every: 2 + h % 3, // every 2nd..4th payload send vanishes
            phase,
            ..Default::default()
        },
        FaultKind::Dup => FaultConfig {
            dup_every: 2 + h % 4,
            phase,
            ..Default::default()
        },
        FaultKind::Delay => FaultConfig {
            delay: Some(Duration::from_micros(100 + h % 400)),
            phase,
            ..Default::default()
        },
    }
}

fn sequential_factor(nt: usize) -> SymmetricTiledMatrix {
    let mut seq = random_spd(SEED, nt, B);
    potrf_tiled(&mut seq).expect("sequential factorization failed");
    seq
}

/// Runs one rank per thread over a session-per-rank reliable mesh built on
/// lossy endpoints, returning rank 0's gathered output plus each session's
/// composed accounting and each lossy layer's injected-fault counts.
///
/// Each thread *owns* its session and drops it when its rank finishes —
/// exactly like the one-process-per-rank deployment. The drop matters: the
/// session is passive (retransmission is driven from inside its receive
/// calls), so a rank that finished with a dropped tail payload still
/// in flight recovers it in the session's drain-on-drop, while the peer
/// that needs it is still pumping its own session inside `recv`.
/// Everything one chaos run produced: rank 0's gathered output, each
/// session's composed accounting, and the lossy layer's injected totals.
struct ChaosRun {
    out: RunOutput,
    per_rank: Vec<TransportStats>,
    dropped: u64,
    duplicated: u64,
}

fn run_reliable<T: Transport, D: Distribution>(
    dist: &D,
    nt: usize,
    mesh: Vec<Session<Faulty<T>>>,
    label: &str,
) -> ChaosRun {
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|net| {
                scope.spawn(move || {
                    let out = Run::potrf(&dist, nt)
                        .block(B)
                        .seed(SEED)
                        .workers(2)
                        .deadline(Duration::from_secs(10))
                        .execute_rank(&net);
                    // snapshot before the session drops (and drains)
                    let stats = net.stats();
                    let dropped = net.inner().dropped();
                    let duplicated = net.inner().duplicated();
                    (out, stats, dropped, duplicated)
                })
            })
            .collect::<Vec<_>>();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect::<Vec<_>>()
    });
    let mut out = None;
    let mut stats = Vec::new();
    let mut dropped = 0;
    let mut duplicated = 0;
    let mut errors = Vec::new();
    for (rank, (o, s, d, dup)) in results.into_iter().enumerate() {
        match o {
            Ok(Some(o)) => out = Some(o),
            Ok(None) => {}
            Err(e) => errors.push(format!("rank {rank}: {e}")),
        }
        stats.push(s);
        dropped += d;
        duplicated += dup;
    }
    assert!(
        errors.is_empty(),
        "{label}: rank execution failed:\n  {}",
        errors.join("\n  ")
    );
    let out = out.unwrap_or_else(|| panic!("{label}: rank 0 gathered no output"));
    ChaosRun {
        out,
        per_rank: stats,
        dropped,
        duplicated,
    }
}

/// Asserts the full acceptance bar for one chaos combination.
fn assert_chaos_outcome<D: Distribution>(
    dist: &D,
    nt: usize,
    kind: FaultKind,
    run: &ChaosRun,
    label: &str,
) {
    // bit-identical factor
    let seq = sequential_factor(nt);
    for (i, j) in seq.tile_coords() {
        assert_eq!(
            run.out.factor().tile(i, j).max_abs_diff(seq.tile(i, j)),
            0.0,
            "{label}: tile ({i},{j}) differs from sequential"
        );
    }

    // exact analytic accounting — faults never leak into the payload counts
    let messages = comm::potrf_messages(dist, nt);
    let bytes = comm::messages_to_bytes(messages, B);
    assert_eq!(run.out.stats.messages, messages, "{label}: message count");
    assert_eq!(run.out.stats.bytes, bytes, "{label}: byte count");
    let sent: u64 = run.per_rank.iter().map(|s| s.sent_payload_bytes).sum();
    assert_eq!(sent, bytes, "{label}: logical payload bytes sent");
    let recv: u64 = run.per_rank.iter().map(|s| s.recv_payload_bytes).sum();
    assert_eq!(recv, bytes, "{label}: logical payload bytes received");

    // recovery happened where it had to, and stayed bounded
    let retrans_msgs: u64 = run.per_rank.iter().map(|s| s.retrans_messages).sum();
    let retrans_bytes: u64 = run.per_rank.iter().map(|s| s.retrans_bytes).sum();
    match kind {
        FaultKind::Drop => {
            assert!(run.dropped > 0, "{label}: the fault plan dropped nothing");
            assert!(
                retrans_msgs > 0,
                "{label}: drops were injected but nothing was retransmitted"
            );
        }
        FaultKind::Dup => {
            assert!(
                run.duplicated > 0,
                "{label}: the fault plan duplicated nothing"
            );
        }
        FaultKind::Delay => {}
    }
    assert!(
        retrans_bytes <= bytes.saturating_mul(8),
        "{label}: retransmission storm — {retrans_bytes} retransmitted bytes \
         for {bytes} payload bytes"
    );
}

/// The chaos matrix: {drop, dup, delay} × {SBC, 2DBC} × {inproc, uds}.
/// Twelve seeded fault schedules, one acceptance bar.
#[test]
fn seeded_fault_schedules_recover_bit_identically() {
    let nt = 8;
    let dists: Vec<(&str, Box<dyn Distribution + Sync>)> = vec![
        ("SBC r=4", Box::new(SbcExtended::new(4))), // 6 nodes
        ("2DBC 2x3", Box::new(TwoDBlockCyclic::new(2, 3))),
    ];
    let mut combo = 0u64;
    for kind in [FaultKind::Drop, FaultKind::Dup, FaultKind::Delay] {
        for (dname, dist) in &dists {
            let dist = dist.as_ref();
            let n = dist.num_nodes();
            for backend in ["inproc", "uds"] {
                combo += 1;
                let label =
                    format!("seed={SEED} combo={combo} ({kind:?} over {dname} via {backend})");
                eprintln!("chaos: {label}");
                let plans: Vec<FaultConfig> =
                    (0..n as u64).map(|r| fault_plan(kind, combo, r)).collect();
                let run = match backend {
                    "inproc" => {
                        let mesh: Vec<_> = inproc_mesh(n)
                            .into_iter()
                            .zip(&plans)
                            .map(|(t, cfg)| Session::new(Faulty::new(t, *cfg)))
                            .collect();
                        run_reliable(&dist, nt, mesh, &label)
                    }
                    _ => {
                        let mesh: Vec<_> = local_mesh(Backend::Uds, n)
                            .expect("uds mesh")
                            .into_iter()
                            .zip(&plans)
                            .map(|(t, cfg)| Session::new(Faulty::new(t, *cfg)))
                            .collect();
                        run_reliable(&dist, nt, mesh, &label)
                    }
                };
                assert_chaos_outcome(&dist, nt, kind, &run, &label);
            }
        }
    }
}

/// A compound schedule — drops *and* duplicates *and* delays at once, over
/// real sockets — still lands on the exact same bar.
#[test]
fn compound_fault_schedule_over_uds_recovers() {
    let nt = 8;
    let dist = SbcExtended::new(4);
    let n = dist.num_nodes();
    let label = format!("seed={SEED} compound drop+dup+delay over SBC r=4 via uds");
    let mesh: Vec<_> = local_mesh(Backend::Uds, n)
        .expect("uds mesh")
        .into_iter()
        .enumerate()
        .map(|(r, t)| {
            let h = splitmix(SEED ^ r as u64);
            let cfg = FaultConfig {
                drop_every: 3 + h % 3,
                dup_every: 4 + (h >> 8) % 3,
                delay: Some(Duration::from_micros(50 + (h >> 16) % 200)),
                phase: h >> 32,
                ..Default::default()
            };
            Session::new(Faulty::new(t, cfg))
        })
        .collect();
    let run = run_reliable(&dist, nt, mesh, &label);
    assert!(
        run.dropped > 0 && run.duplicated > 0,
        "{label}: plan injected nothing"
    );
    assert_chaos_outcome(&dist, nt, FaultKind::Drop, &run, &label);
}

/// Two concurrent jobs share ONE faulty UDS mesh through the resident
/// multi-job engine: a seeded drop+dup schedule per rank, a reliability
/// session per endpoint, job-id-namespaced tile traffic. Both factors must
/// come out bit-identical to their sequential references, and each job's
/// payload accounting must stay exactly analytic — faults and the *other*
/// job never leak into a job's counts.
#[test]
fn two_jobs_share_one_faulty_uds_mesh_bit_identically() {
    use sbc::runtime::{gather_symmetric, run_jobs_rank, JobEngineConfig, JobTable};
    use sbc::taskgraph::build_potrf;
    use std::sync::Arc;

    let nt = 8;
    let dist = SbcExtended::new(4); // 6 nodes
    let n = dist.num_nodes();
    let label = format!("seed={SEED} two jobs over drop+dup SBC r=4 via uds");
    let graph = Arc::new(build_potrf(&dist, nt));
    let table = JobTable::new(n, 4);
    let cfg = JobEngineConfig {
        workers: 2,
        deadline: Some(Duration::from_secs(10)),
        ..Default::default()
    };
    let mesh: Vec<_> = local_mesh(Backend::Uds, n)
        .expect("uds mesh")
        .into_iter()
        .enumerate()
        .map(|(r, t)| {
            let h = splitmix(SEED ^ 0xB0B ^ r as u64);
            let plan = FaultConfig {
                drop_every: 3 + h % 3,
                dup_every: 4 + (h >> 8) % 3,
                phase: h >> 32,
                ..Default::default()
            };
            Session::new(Faulty::new(t, plan))
        })
        .collect();

    let seed_b = SEED ^ 77;
    let (outcomes, faults) = std::thread::scope(|scope| {
        let table = &table;
        let engines: Vec<_> = mesh
            .into_iter()
            .map(|net| {
                scope.spawn(move || {
                    let res = run_jobs_rank(&net, table, cfg);
                    (res, net.inner().dropped(), net.inner().duplicated())
                })
            })
            .collect();
        let driver = scope.spawn(move || {
            let a = table
                .submit(Arc::clone(&graph), B, SEED, SEED ^ 1, 0, true)
                .expect("job A admitted");
            let b = table
                .submit(graph, B, seed_b, seed_b ^ 1, 1, true)
                .expect("job B admitted");
            let outs = (table.wait(a), table.wait(b));
            table.shutdown();
            outs
        });
        let outcomes = driver.join().expect("driver panicked");
        let mut dropped = 0;
        let mut duplicated = 0;
        for (rank, h) in engines.into_iter().enumerate() {
            let (res, d, dup) = h.join().expect("engine thread panicked");
            res.unwrap_or_else(|e| panic!("{label}: rank {rank} failed: {e}"));
            dropped += d;
            duplicated += dup;
        }
        (outcomes, (dropped, duplicated))
    });
    assert!(
        faults.0 > 0 && faults.1 > 0,
        "{label}: the fault plan injected nothing (dropped={}, duplicated={})",
        faults.0,
        faults.1
    );

    let messages = comm::potrf_messages(&dist, nt);
    let bytes = comm::messages_to_bytes(messages, B);
    for (out, seed, name) in [
        (outcomes.0.expect("job A finished"), SEED, "job A"),
        (outcomes.1.expect("job B finished"), seed_b, "job B"),
    ] {
        let mut seq = random_spd(seed, nt, B);
        potrf_tiled(&mut seq).expect("sequential factorization failed");
        let factor = gather_symmetric(&out.tiles, nt, B, 0, |_| 0)
            .unwrap_or_else(|e| panic!("{label}: {name} gather failed: {e}"));
        for (i, j) in seq.tile_coords() {
            assert_eq!(
                factor.tile(i, j).max_abs_diff(seq.tile(i, j)),
                0.0,
                "{label}: {name} tile ({i},{j}) differs from sequential"
            );
        }
        assert_eq!(out.stats.messages, messages, "{label}: {name} messages");
        assert_eq!(out.stats.bytes, bytes, "{label}: {name} bytes");
        let applied: u64 = out.stats.recv_per_node.iter().sum();
        assert_eq!(
            applied, messages,
            "{label}: {name} applied payloads (duplicates must be filtered)"
        );
    }
}

/// Watchdog regression: a transport that drops every payload and has no
/// reliability session cannot make progress — under both scheduling
/// policies the run must end with [`ExecError::Stalled`] naming the stuck
/// rank within the deadline, not hang.
#[test]
fn all_drop_transport_stalls_instead_of_hanging() {
    let nt = 6;
    let dist = TwoDBlockCyclic::new(2, 2);
    let n = dist.num_nodes();
    let deadline = Duration::from_millis(300);
    for policy in [Policy::CriticalPath, Policy::SubmissionOrder] {
        let label = format!("seed={SEED} all-drop watchdog under {policy:?}");
        let cfg = FaultConfig {
            drop_every: 1, // every payload vanishes, forever
            ..Default::default()
        };
        let mesh: Vec<_> = inproc_mesh(n)
            .into_iter()
            .map(|t| Faulty::new(t, cfg))
            .collect();
        let started = Instant::now();
        let errors: Vec<(u32, ExecError)> = std::thread::scope(|scope| {
            let handles: Vec<_> = mesh
                .iter()
                .map(|net| {
                    let label = &label;
                    let dist = &dist;
                    scope.spawn(move || {
                        Run::potrf(dist, nt)
                            .block(B)
                            .seed(SEED)
                            .workers(2)
                            .priorities(policy)
                            .fault_policy(sbc::runtime::FaultPolicy::with_deadline(deadline))
                            .execute_rank(net)
                            .expect_err(&format!("{label}: an all-drop run cannot succeed"))
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(r, h)| (r as u32, h.join().expect("rank thread panicked")))
                .collect()
        });
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(30),
            "{label}: took {elapsed:?} — the watchdog did not bound the hang"
        );
        let mut stalled = 0;
        for (rank, err) in &errors {
            match err {
                ExecError::Stalled {
                    rank: reported,
                    waiting_on,
                } => {
                    stalled += 1;
                    assert_eq!(reported, rank, "{label}: stall blamed on the wrong rank");
                    assert!(
                        !waiting_on.is_empty(),
                        "{label}: stall carries no diagnosis"
                    );
                }
                // ranks woken by a stalled peer's poison report Remote
                ExecError::Remote => {}
                other => panic!("{label}: rank {rank} failed with {other:?}"),
            }
        }
        assert!(
            stalled > 0,
            "{label}: no rank reported Stalled (errors: {errors:?})"
        );
    }
}

/// The watchdog is a pure function of the injected clock: on a
/// [`VirtualClock`] ticked ~10000× faster than the wall, an all-drop run
/// trips a *three-virtual-minute* deadline within real-time milliseconds —
/// stall detection reads virtual time, only the heartbeat pacing is real.
#[test]
fn watchdog_reads_the_injected_clock_not_the_wall() {
    use sbc::net::VirtualClock;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let nt = 6;
    let dist = TwoDBlockCyclic::new(2, 2);
    let n = dist.num_nodes();
    let clock = Arc::new(VirtualClock::new());
    // three virtual minutes; no real watchdog deadline is anywhere close
    let deadline = Duration::from_secs(180);
    let cfg = FaultConfig {
        drop_every: 1,
        ..Default::default()
    };
    let mesh: Vec<_> = inproc_mesh(n)
        .into_iter()
        .map(|t| Faulty::new(t, cfg))
        .collect();
    let started = Instant::now();
    let done = AtomicBool::new(false);
    let errors: Vec<ExecError> = std::thread::scope(|scope| {
        {
            // time accelerator: 10 virtual seconds per real millisecond
            let clock = Arc::clone(&clock);
            let done = &done;
            scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    clock.advance(Duration::from_secs(10));
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        let handles: Vec<_> = mesh
            .iter()
            .map(|net| {
                let dist = &dist;
                let clock = Arc::clone(&clock) as Arc<dyn sbc::net::Clock>;
                scope.spawn(move || {
                    Run::potrf(dist, nt)
                        .block(B)
                        .seed(SEED)
                        .workers(2)
                        .deadline(deadline)
                        .clock(clock)
                        .execute_rank(net)
                        .expect_err("an all-drop run cannot succeed")
                })
            })
            .collect();
        let errors = handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect();
        done.store(true, Ordering::Relaxed);
        errors
    });
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "a 180-virtual-second deadline must not take 180 real seconds"
    );
    assert!(
        errors
            .iter()
            .any(|e| matches!(e, ExecError::Stalled { .. })),
        "no rank reported Stalled: {errors:?}"
    );
}
