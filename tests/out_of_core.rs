//! The sequential two-level-memory story of Section III-E, end to end:
//! the out-of-core intensity ladder and its relationship to the parallel
//! distributions.

use sbc::dist::comm::{intensity_cholesky_2dbc, intensity_cholesky_sbc};
use sbc::outofcore::{
    bereux_transfers, olivry_lower_bound, simulate_cholesky_ooc, symmetric_lower_bound, LoopOrder,
};

/// The bound ladder: Olivry < symmetric (tight) < Béreux, with the √2 gap.
#[test]
fn bound_ladder() {
    let (n, m) = (50_000, 1 << 22);
    assert!(olivry_lower_bound(n, m) < symmetric_lower_bound(n, m));
    assert!(symmetric_lower_bound(n, m) < bereux_transfers(n, m));
    let gap = bereux_transfers(n, m) / symmetric_lower_bound(n, m);
    assert!((gap - std::f64::consts::SQRT_2).abs() < 1e-12);
}

/// Simulated transfers sit above the proven lower bounds and below a small
/// multiple of Béreux for the left-looking order.
#[test]
fn simulated_transfers_bracketed() {
    let nt = 36;
    let b = 8;
    let cap = 48; // tiles
    let n = nt * b;
    let m = cap * b * b;
    let r = simulate_cholesky_ooc(nt, b, cap, LoopOrder::LeftLooking);
    assert!(
        r.transfers() > 0.4 * olivry_lower_bound(n, m),
        "{} vs bound {}",
        r.transfers(),
        olivry_lower_bound(n, m)
    );
    assert!(
        r.transfers() < 6.0 * bereux_transfers(n, m),
        "{} vs Bereux {}",
        r.transfers(),
        bereux_transfers(n, m)
    );
}

/// The parallel arithmetic-intensity formulas of `sbc-dist` agree with the
/// out-of-core maxima up to the paper's 2/3 shrinking factor and the √2
/// symmetric gap.
#[test]
fn parallel_intensities_anchor_to_sequential_model() {
    let m = 1 << 16;
    // SBC reaches (2/3) sqrt(M); the sequential LU-style maximum is sqrt(M)
    let sbc = intensity_cholesky_sbc(m as f64);
    assert!((sbc / ((m as f64).sqrt()) - 2.0 / 3.0).abs() < 1e-12);
    // 2DBC is a factor sqrt(2) below
    let dbc = intensity_cholesky_2dbc(m as f64);
    assert!((sbc / dbc - std::f64::consts::SQRT_2).abs() < 1e-12);
}

/// Determinism: the LRU simulation is a pure function of its parameters.
#[test]
fn simulation_is_deterministic() {
    let a = simulate_cholesky_ooc(24, 4, 20, LoopOrder::RightLooking);
    let b = simulate_cholesky_ooc(24, 4, 20, LoopOrder::RightLooking);
    assert_eq!(a, b);
}
