//! End-to-end integration: the three independent implementations of the
//! paper's communication model (analytic counting, graph derivation,
//! threaded execution) and the two execution engines (simulator, runtime)
//! must agree with the sequential ground truth and with each other.

use sbc::dist::comm;
use sbc::dist::{Distribution, RowCyclic, SbcBasic, SbcExtended, TwoDBlockCyclic, TwoPointFiveD};
use sbc::matrix::{
    cholesky_residual, inverse_residual, lauum_tiled, potrf_tiled, random_panel, random_spd,
    solve_residual, trtri_tiled,
};
use sbc::runtime::Run;
use sbc::simgrid::{Platform, SimConfig, Simulator};
use sbc::taskgraph::{build_potrf, build_potrf_25d};

const B: usize = 8;
const SEED: u64 = 0xC0FFEE;

/// Every distribution exercised at once: numerics, analytic counts, graph
/// counts, runtime-measured counts and simulator-measured counts all line
/// up for POTRF.
#[test]
fn potrf_five_way_agreement() {
    let nt = 18;
    let dists: Vec<Box<dyn Distribution>> = vec![
        Box::new(TwoDBlockCyclic::new(1, 1)),
        Box::new(TwoDBlockCyclic::new(3, 2)),
        Box::new(TwoDBlockCyclic::new(4, 4)),
        Box::new(SbcBasic::new(4)),
        Box::new(SbcBasic::new(6)),
        Box::new(SbcExtended::new(4)),
        Box::new(SbcExtended::new(5)),
        Box::new(SbcExtended::new(6)),
        Box::new(SbcExtended::new(7)),
    ];
    let a0 = random_spd(SEED, nt, B);
    let mut seq = a0.clone();
    potrf_tiled(&mut seq).unwrap();

    for d in &dists {
        let analytic = comm::potrf_messages(&d.as_ref(), nt);
        let graph = build_potrf(&d.as_ref(), nt);
        assert_eq!(graph.count_messages(), analytic, "{} graph", d.name());

        let out = Run::potrf(&d.as_ref(), nt)
            .block(B)
            .seed(SEED)
            .execute()
            .unwrap();
        assert_eq!(out.stats.messages, analytic, "{} runtime", d.name());
        for (i, j) in seq.tile_coords() {
            assert!(
                out.factor().tile(i, j).max_abs_diff(seq.tile(i, j)) == 0.0,
                "{} tile ({i},{j})",
                d.name()
            );
        }
        assert!(cholesky_residual(&a0, out.factor()) < 1e-12);

        let platform = Platform::bora(d.num_nodes());
        let sim = Simulator::new(&graph, &platform, SimConfig::chameleon(B)).run();
        assert_eq!(sim.messages, analytic, "{} simulator", d.name());
        assert_eq!(sim.tasks_executed as usize, graph.len());
    }
}

#[test]
fn posv_end_to_end() {
    let nt = 15;
    let dist = SbcExtended::new(6);
    let rhs_dist = RowCyclic::new(dist.num_nodes());
    let out = Run::posv(&dist, &rhs_dist, nt)
        .block(B)
        .seed(SEED)
        .execute()
        .unwrap();
    let a0 = random_spd(SEED, nt, B);
    let rhs = random_panel(SEED ^ 0x05EE_D0FB, nt, B);
    assert!(solve_residual(&a0, out.solution(), &rhs) < 1e-10);
    // caching only reduces traffic vs independent-phase accounting
    let upper =
        comm::potrf_messages(&dist, nt) + comm::solve_messages(&dist, &rhs_dist, nt).total();
    assert!(out.stats.messages <= upper);
    assert!(out.stats.messages > comm::potrf_messages(&dist, nt));
}

#[test]
fn potrf_25d_end_to_end() {
    for (r, c) in [(4, 2), (4, 3), (6, 2)] {
        let d25 = TwoPointFiveD::new(SbcBasic::new(r), c);
        let nt = 14;
        let out = Run::potrf_25d(&d25, nt)
            .block(B)
            .seed(SEED)
            .execute()
            .unwrap();
        let a0 = random_spd(SEED, nt, B);
        assert!(cholesky_residual(&a0, out.factor()) < 1e-12, "r={r} c={c}");
        let analytic = comm::potrf_25d_messages(&d25, nt);
        assert_eq!(out.stats.messages, analytic.total(), "r={r} c={c}");

        let graph = build_potrf_25d(&d25, nt);
        let platform = Platform::bora(d25.num_nodes());
        let sim = Simulator::new(&graph, &platform, SimConfig::chameleon(B)).run();
        assert_eq!(sim.messages, analytic.total());
    }
}

#[test]
fn potri_and_remap_end_to_end() {
    let nt = 10;
    let sym = SbcExtended::new(5);
    let bc = TwoDBlockCyclic::new(5, 2);

    let a0 = random_spd(SEED, nt, B);
    let plain = Run::potri(&sym, nt).block(B).seed(SEED).execute().unwrap();
    let remap = Run::potri_remap(&sym, &bc, nt)
        .block(B)
        .seed(SEED)
        .execute()
        .unwrap();
    assert!(inverse_residual(&a0, plain.factor()) < 1e-9);
    assert!(inverse_residual(&a0, remap.factor()) < 1e-9);
    // identical kernel sequences per tile => identical results
    for (i, j) in plain.factor().tile_coords() {
        assert!(
            plain
                .factor()
                .tile(i, j)
                .max_abs_diff(remap.factor().tile(i, j))
                == 0.0
        );
    }
}

#[test]
fn trtri_lauum_sequential_agreement() {
    let nt = 12;
    let dist = SbcExtended::new(5);
    // TRTRI on the lower triangle of the generated matrix
    let w = Run::trtri(&dist, nt).block(B).seed(SEED).execute().unwrap();
    let mut seq = random_spd(SEED, nt, B);
    trtri_tiled(&mut seq).unwrap();
    for (i, j) in seq.tile_coords() {
        assert!(w.factor().tile(i, j).max_abs_diff(seq.tile(i, j)) == 0.0);
    }
    assert_eq!(w.stats.messages, comm::trtri_messages(&dist, nt));

    let l = Run::lauum(&dist, nt).block(B).seed(SEED).execute().unwrap();
    let mut seq2 = random_spd(SEED, nt, B);
    lauum_tiled(&mut seq2);
    for (i, j) in seq2.tile_coords() {
        assert!(l.factor().tile(i, j).max_abs_diff(seq2.tile(i, j)) == 0.0);
    }
    assert_eq!(l.stats.messages, comm::lauum_messages(&dist, nt));
}

/// Changing the tile size at fixed n changes blocking but not the math.
#[test]
fn tile_size_invariance_distributed() {
    let dist = SbcExtended::new(4);
    let n = 48;
    for (nt, b) in [(6, 8), (12, 4), (24, 2)] {
        assert_eq!(nt * b, n);
        let out = Run::potrf(&dist, nt).block(b).seed(SEED).execute().unwrap();
        let a0 = random_spd(SEED, nt, b);
        assert!(
            cholesky_residual(&a0, out.factor()) < 1e-12,
            "nt={nt} b={b}"
        );
    }
}
