//! Worker-pool invariants: adding workers per node must change *nothing*
//! observable except wall-clock time. For any distribution and matrix
//! size, the factor stays bit-identical to the sequential ground truth and
//! the full [`sbc::runtime::CommStats`] — messages, bytes, per-node splits
//! — is identical at every worker count, equal to the analytic counters.

use proptest::prelude::*;
use sbc::dist::{comm, Distribution, SbcBasic, SbcExtended, TwoDBlockCyclic};
use sbc::runtime::{CommStats, Policy, Run};

/// A debuggable descriptor of a small distribution of varied family.
#[derive(Debug, Clone)]
enum DistSpec {
    Bc(usize, usize),
    Basic(usize),
    Ext(usize),
}

impl DistSpec {
    fn build(&self) -> Box<dyn Distribution> {
        match *self {
            DistSpec::Bc(p, q) => Box::new(TwoDBlockCyclic::new(p, q)),
            DistSpec::Basic(r) => Box::new(SbcBasic::new(r)),
            DistSpec::Ext(r) => Box::new(SbcExtended::new(r)),
        }
    }
}

fn arb_dist() -> impl Strategy<Value = DistSpec> {
    prop_oneof![
        (1usize..4, 1usize..4).prop_map(|(p, q)| DistSpec::Bc(p, q)),
        (2usize..4).prop_map(|h| DistSpec::Basic(2 * h)),
        (3usize..7).prop_map(DistSpec::Ext),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole property: scheduling is invisible. Factors are
    /// bit-identical to the sequential algorithm and traffic is identical
    /// across worker counts and equal to the analytic model.
    #[test]
    fn results_and_traffic_are_worker_count_invariant(
        spec in arb_dist(),
        seed in any::<u64>(),
        nt in 2usize..9,
    ) {
        let d = spec.build();
        let b = 4;
        let mut seq = sbc::matrix::random_spd(seed, nt, b);
        sbc::matrix::potrf_tiled(&mut seq).unwrap();

        let mut base: Option<CommStats> = None;
        for workers in [1usize, 2, 4] {
            let out = Run::potrf(&d.as_ref(), nt)
                .block(b)
                .seed(seed)
                .workers(workers)
                .execute()
                .unwrap();
            for (i, j) in seq.tile_coords() {
                prop_assert!(
                    out.factor().tile(i, j).max_abs_diff(seq.tile(i, j)) == 0.0,
                    "{} workers={workers} tile ({i},{j})",
                    d.name()
                );
            }
            prop_assert_eq!(
                out.stats.messages,
                comm::potrf_messages(&d.as_ref(), nt),
                "{} workers={}",
                d.name(),
                workers
            );
            match &base {
                None => base = Some(out.stats),
                Some(first) => prop_assert_eq!(
                    first,
                    &out.stats,
                    "{} workers={} changed CommStats",
                    d.name(),
                    workers
                ),
            }
        }
    }

    /// Both scheduling policies produce the same bits and the same traffic
    /// (the ready-heap order only permutes independent tasks).
    #[test]
    fn policy_is_invisible_too(seed in any::<u64>(), r in 3usize..6, nt in 2usize..8) {
        let d = SbcExtended::new(r);
        let b = 4;
        let run = |p: Policy| {
            Run::potrf(&d, nt)
                .block(b)
                .seed(seed)
                .workers(2)
                .priorities(p)
                .execute()
                .unwrap()
        };
        let cp = run(Policy::CriticalPath);
        let sub = run(Policy::SubmissionOrder);
        prop_assert_eq!(&cp.stats, &sub.stats);
        for (i, j) in cp.factor().tile_coords() {
            prop_assert!(
                cp.factor().tile(i, j).max_abs_diff(sub.factor().tile(i, j)) == 0.0
            );
        }
    }
}
