//! Failure injection: kernel errors inside the distributed runtime must be
//! reported cleanly (no deadlock, no panic) via `Executor::try_run` — at
//! any worker count.

use sbc::dist::{SbcExtended, TwoDBlockCyclic};
use sbc::kernels::{KernelError, Tile};
use sbc::matrix::generate;
use sbc::runtime::{ExecError, Executor};
use sbc::taskgraph::{build_potrf, build_trtri, TileRef};

const B: usize = 6;

/// A provider that generates the usual SPD matrix except for one poisoned
/// diagonal tile, making POTRF fail mid-flight on that tile's owner.
fn poisoned_spd(nt: usize, bad: (u32, u32)) -> impl Fn(TileRef) -> Tile + Sync {
    move |r| match r {
        TileRef::A { phase: 0, i, j, .. } if (i, j) == bad => {
            // negative diagonal => not positive definite
            Tile::from_fn(B, |r, c| if r == c { -1.0 } else { 0.0 })
        }
        TileRef::A { phase: 0, i, j, .. } => generate::spd_tile(7, nt, B, i as usize, j as usize),
        TileRef::Buf { .. } => Tile::zeros(B),
        TileRef::B { i } => generate::rhs_tile(8, B, i as usize),
        _ => unreachable!("no later phases in these graphs"),
    }
}

#[test]
fn non_spd_input_is_reported_not_deadlocked() {
    let dist = SbcExtended::new(5); // 10 nodes
    let nt = 9;
    let g = build_potrf(&dist, nt);
    for workers in [1, 4] {
        // poison a later diagonal tile so plenty of tasks run first
        let exec = Executor::builder(&g)
            .block(B)
            .provider(poisoned_spd(nt, (4, 4)))
            .workers(workers)
            .build();
        let err = exec.try_run().expect_err("poisoned input must fail");
        match err {
            ExecError::Kernel { node, error, .. } => {
                assert!(
                    matches!(error, KernelError::NotPositiveDefinite(_)),
                    "{error}"
                );
                // the failing task is the POTRF of tile (4,4) or a downstream
                // victim on the same column; either way it runs on a real
                // node of the platform
                assert!((node as usize) < dist_nodes(&dist));
            }
            other => panic!("expected a kernel failure, got {other}"),
        }
    }
}

fn dist_nodes<D: sbc::dist::Distribution>(d: &D) -> usize {
    d.num_nodes()
}

#[test]
fn failure_on_first_tile() {
    let dist = TwoDBlockCyclic::new(2, 2);
    let nt = 6;
    let g = build_potrf(&dist, nt);
    let exec = Executor::builder(&g)
        .block(B)
        .provider(poisoned_spd(nt, (0, 0)))
        .build();
    let err = exec.try_run().expect_err("must fail immediately");
    assert!(
        matches!(err, ExecError::Kernel { task: 0, .. }),
        "first POTRF is task 0, got {err}"
    );
}

#[test]
fn singular_triangle_in_trtri() {
    let dist = TwoDBlockCyclic::new(2, 2);
    let nt = 5;
    let g = build_trtri(&dist, nt);
    // provider with an exactly singular diagonal tile
    let exec = Executor::builder(&g)
        .block(B)
        .provider(move |r| match r {
            TileRef::A { phase: 0, i, j, .. } if i == j && i == 2 => Tile::zeros(B),
            TileRef::A { phase: 0, i, j, .. } => {
                generate::spd_tile(9, nt, B, i as usize, j as usize)
            }
            _ => Tile::zeros(B),
        })
        .build();
    let err = exec.try_run().expect_err("singular triangle must fail");
    assert!(
        matches!(
            err,
            ExecError::Kernel {
                error: KernelError::SingularTriangle(_),
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn healthy_inputs_still_succeed_via_try_run() {
    let dist = SbcExtended::new(4);
    let nt = 8;
    let g = build_potrf(&dist, nt);
    let exec = Executor::builder(&g).block(B).seeds(42, 43).build();
    let out = exec.try_run().expect("healthy run succeeds");
    assert_eq!(out.stats.messages, g.count_messages());
}
