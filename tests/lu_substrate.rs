//! The LU substrate (Section III-E's comparison case): correctness, message
//! agreement, and the arithmetic-intensity story — 2DBC is right for LU,
//! SBC restores the same intensity for Cholesky.

use sbc::dist::comm::{lu_messages, potrf_messages};
use sbc::dist::{Distribution, SbcExtended, TwoDBlockCyclic};
use sbc::kernels::{flops_cholesky_total, flops_lu_total};
use sbc::matrix::{lu_residual, lu_tiled, random_general};
use sbc::runtime::Run;
use sbc::taskgraph::build_lu;

const B: usize = 8;
const SEED: u64 = 31415;

#[test]
fn distributed_lu_matches_sequential_bitwise() {
    for (dist, nt) in [
        (
            Box::new(TwoDBlockCyclic::new(2, 3)) as Box<dyn Distribution>,
            11,
        ),
        (Box::new(TwoDBlockCyclic::new(4, 4)), 12),
        (Box::new(SbcExtended::new(5)), 10),
    ] {
        let out = Run::lu(&dist.as_ref(), nt)
            .block(B)
            .seed(SEED)
            .execute()
            .unwrap();
        let mut seq = random_general(SEED, nt, B);
        lu_tiled(&mut seq).unwrap();
        for i in 0..nt {
            for j in 0..nt {
                assert!(
                    out.lu_factors().tile(i, j).max_abs_diff(seq.tile(i, j)) == 0.0,
                    "{} tile ({i},{j})",
                    dist.name()
                );
            }
        }
        assert_eq!(
            out.stats.messages,
            lu_messages(&dist.as_ref(), nt),
            "{}",
            dist.name()
        );
    }
}

#[test]
fn distributed_lu_residual() {
    let dist = TwoDBlockCyclic::new(3, 3);
    let nt = 12;
    let out = Run::lu(&dist, nt).block(B).seed(SEED).execute().unwrap();
    let a0 = random_general(SEED, nt, B);
    assert!(lu_residual(&a0, out.lu_factors()) < 1e-12);
}

#[test]
fn lu_graph_messages_match_analytic() {
    let nt = 16;
    for d in [
        Box::new(TwoDBlockCyclic::new(3, 2)) as Box<dyn Distribution>,
        Box::new(TwoDBlockCyclic::new(4, 4)),
        Box::new(SbcExtended::new(6)),
    ] {
        let g = build_lu(&d.as_ref(), nt);
        g.validate().unwrap();
        assert_eq!(
            g.count_messages(),
            lu_messages(&d.as_ref(), nt),
            "{}",
            d.name()
        );
    }
}

/// Section III-E: square 2DBC is the right distribution for LU — more
/// square grids move less data, and SBC-style symmetric patterns bring no
/// advantage to LU (no transpose reuse exists).
#[test]
fn square_2dbc_is_best_for_lu() {
    let nt = 48;
    let square = TwoDBlockCyclic::new(4, 4);
    let skewed = TwoDBlockCyclic::new(8, 2);
    assert!(lu_messages(&square, nt) < lu_messages(&skewed, nt));
    // SBC's pattern (defined on the full index space) does not help LU:
    // it behaves like a near-square grid at best.
    let sbc = SbcExtended::new(6); // 15 nodes
    let grid = TwoDBlockCyclic::new(5, 3); // 15 nodes
    let s = lu_messages(&sbc, nt) as f64;
    let g = lu_messages(&grid, nt) as f64;
    assert!(
        s > 0.85 * g,
        "no sqrt(2)-style reduction for LU: sbc {s} vs grid {g}"
    );
}

/// The arithmetic-intensity ladder of Section III-E, measured end to end.
/// The paper's statement is at equal *per-node memory M*: both LU under
/// square 2DBC and Cholesky under SBC reach `(2/3) sqrt(M)` — but LU stores
/// the full matrix (`M = n^2/P`) while Cholesky stores half
/// (`M = n^2/(2P)`), so the comparison normalizes intensities by `sqrt(M)`.
/// Cholesky under 2DBC sits a factor `sqrt(2)` below both.
#[test]
fn intensity_ladder_measured() {
    let nt = 64usize;

    // normalized intensity rho / sqrt(M), in tile units (flops in tile-ops)
    let norm = |flops: f64, messages: u64, m_tiles: f64| -> f64 {
        (flops / messages as f64) / m_tiles.sqrt()
    };

    // LU on 16 nodes, square grid: M = nt^2 / P tiles per node
    let p_lu = 16.0;
    let lu_dist = TwoDBlockCyclic::new(4, 4);
    let lu = norm(
        flops_lu_total(nt),
        lu_messages(&lu_dist, nt),
        (nt * nt) as f64 / p_lu,
    );

    // Cholesky on 15 nodes SBC: M = nt^2 / (2P)
    let sbc = SbcExtended::new(6);
    let p_ch = sbc.num_nodes() as f64;
    let chol_sbc = norm(
        flops_cholesky_total(nt),
        potrf_messages(&sbc, nt),
        (nt * nt) as f64 / (2.0 * p_ch),
    );

    // Cholesky on 16 nodes 2DBC 4x4
    let bc = TwoDBlockCyclic::new(4, 4);
    let chol_bc = norm(
        flops_cholesky_total(nt),
        potrf_messages(&bc, nt),
        (nt * nt) as f64 / (2.0 * 16.0),
    );

    // normalized: chol-SBC == LU-2DBC within edge effects
    let ratio = chol_sbc / lu;
    assert!(
        (0.85..1.2).contains(&ratio),
        "chol-SBC {chol_sbc:.3} vs LU-2DBC {lu:.3} (ratio {ratio:.3})"
    );
    // and beats chol-2DBC by ~sqrt(2)
    let gain = chol_sbc / chol_bc;
    assert!(
        gain > 1.25,
        "chol-SBC {chol_sbc:.3} vs chol-2DBC {chol_bc:.3} (gain {gain:.3})"
    );
}

/// LU through the simulator: correct task count, measured messages.
#[test]
fn lu_simulates() {
    use sbc::simgrid::{Platform, SimConfig, Simulator};
    let nt = 24;
    let d = TwoDBlockCyclic::new(4, 4);
    let g = build_lu(&d, nt);
    let p = Platform::bora(16);
    let r = Simulator::new(&g, &p, SimConfig::chameleon(500)).run();
    assert_eq!(r.tasks_executed as usize, g.len());
    assert_eq!(r.messages, lu_messages(&d, nt));
}
