//! # sbc-simgrid — a discrete-event cluster simulator for task graphs
//!
//! The paper's performance experiments (Figs 7–14) ran on the `bora`
//! cluster: homogeneous nodes of 36 Intel Skylake cores (34 usable as
//! workers under StarPU) at 41.6 GFlop/s per core, linked by a 100 Gb/s
//! OmniPath network, executing Chameleon task graphs over StarPU with
//! asynchronous point-to-point tile messages. This crate simulates exactly
//! that setup:
//!
//! * [`Platform`] — node/core counts, per-core peak, a per-kernel
//!   efficiency-vs-tile-size model (calibrated so POTRF throughput
//!   saturates near `b = 500`, reproducing Fig 7), and a full-duplex NIC
//!   with bandwidth and latency, serialized per direction;
//! * [`Simulator`] — an event-driven executor of `sbc-taskgraph` graphs:
//!   per-node priority ready queues (critical-path priorities, the StarPU
//!   analogue), worker pools, eager per-tile messages grouped per
//!   destination node, and initial-fetch injection;
//! * [`ScheduleMode`] — `Async` (StarPU/Chameleon lookahead across
//!   iterations) or `BulkSynchronous` (a static, iteration-barrier schedule
//!   modelling the COnfCHOX comparator of Section V-E).
//!
//! The flat single-NIC network is the default; attach an `sbc-topo`
//! [`Topology`] via [`Simulator::with_topology`] to route messages through
//! racks and oversubscribed uplinks (the single-switch topology reproduces
//! the flat model bit-exactly), and a [`Scheduler`] from the zoo via
//! [`Simulator::with_scheduler`] to swap the ready-queue ranking policy.
//!
//! The simulator's measured communication volume is *exactly* the graph's
//! message count (tested), so Fig 8 and the performance figures are
//! produced by one consistent machinery.

#![warn(missing_docs)]

pub mod engine;
pub mod platform;
pub mod stats;

pub use engine::{ScheduleMode, SimConfig, Simulator};
pub use platform::{KernelEfficiency, Platform};
pub use sbc_topo::{Scheduler, Topology};
pub use stats::{render_gantt, SimReport, TraceEvent};
