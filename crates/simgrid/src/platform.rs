//! Platform model: compute nodes, cores, kernel efficiencies, network.

use sbc_taskgraph::TaskKind;
use sbc_topo::Topology;

/// Per-kernel efficiency model.
///
/// A tile kernel on one core reaches a kernel-specific fraction of peak that
/// grows with the tile size (amortizing loop overheads and cache misses):
/// `eff(b) = e_inf * b / (b + b_half)`. The asymptotic efficiencies are
/// MKL-like values for double precision on Skylake; `b_half` is set so the
/// single-node POTRF throughput curve saturates around `b = 500`, matching
/// Fig 7 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelEfficiency {
    /// Asymptotic efficiency of GEMM.
    pub gemm: f64,
    /// Asymptotic efficiency of SYRK.
    pub syrk: f64,
    /// Asymptotic efficiency of TRSM.
    pub trsm: f64,
    /// Asymptotic efficiency of POTRF (and LAUUM/TRTRI, Cholesky-like).
    pub potrf: f64,
    /// Tile size at which half the asymptotic efficiency is reached... more
    /// precisely `eff(b_half) = e_inf / 2`.
    pub b_half: f64,
}

impl Default for KernelEfficiency {
    fn default() -> Self {
        KernelEfficiency {
            gemm: 0.92,
            syrk: 0.87,
            trsm: 0.85,
            potrf: 0.62,
            b_half: 40.0,
        }
    }
}

impl KernelEfficiency {
    /// Efficiency (fraction of per-core peak) of a task kind at tile size
    /// `b`.
    pub fn efficiency(&self, kind: &TaskKind, b: usize) -> f64 {
        let e_inf = match kind {
            TaskKind::Gemm { .. }
            | TaskKind::GemmInv { .. }
            | TaskKind::GemmLu { .. }
            | TaskKind::GemmTrail { .. }
            | TaskKind::GemmFwd { .. }
            | TaskKind::GemmBwd { .. } => self.gemm,
            TaskKind::Syrk { .. } | TaskKind::SyrkLu { .. } => self.syrk,
            TaskKind::Trsm { .. }
            | TaskKind::TrsmFwd { .. }
            | TaskKind::TrsmBwd { .. }
            | TaskKind::TrsmRInv { .. }
            | TaskKind::TrsmLInv { .. }
            | TaskKind::TrsmRow { .. }
            | TaskKind::TrsmCol { .. }
            | TaskKind::TrmmLu { .. } => self.trsm,
            TaskKind::Potrf { .. }
            | TaskKind::TrtriDiag { .. }
            | TaskKind::LauumDiag { .. }
            | TaskKind::Getrf { .. } => self.potrf,
            // reductions and moves are memory bound; treat them like GEMM
            // at low efficiency (they are tiny anyway)
            TaskKind::Reduce { .. } | TaskKind::Move { .. } => 0.05,
        };
        let b = b as f64;
        e_inf * b / (b + self.b_half)
    }
}

/// A homogeneous cluster: `nodes` identical multicore nodes connected by a
/// full-duplex network, one NIC per node serialized per direction.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Number of nodes.
    pub nodes: usize,
    /// Worker cores per node (the paper reserves 2 of 36 cores for the
    /// runtime and MPI threads, leaving 34 workers).
    pub cores_per_node: usize,
    /// Peak double-precision throughput of one core, in GFlop/s.
    pub core_gflops: f64,
    /// Effective NIC bandwidth per direction, in bytes/s (MPI-achievable
    /// rate, below line rate).
    pub nic_bandwidth: f64,
    /// One-way message latency, in seconds.
    pub nic_latency: f64,
    /// Per-message host overhead, in seconds: request posting, callback and
    /// unpacking work done by the runtime's dedicated communication core
    /// (StarPU reserves one core for MPI, Section V-C). Occupies the port
    /// on both the sending and the receiving side.
    pub per_message_overhead: f64,
    /// Kernel efficiency model.
    pub efficiency: KernelEfficiency,
}

impl Platform {
    /// The paper's `bora` cluster (Section V-A) with a given node count:
    /// 34 worker cores x 41.6 GFlop/s per node, 100 Gb/s OmniPath links,
    /// 1.5 us latency.
    ///
    /// The *effective* per-direction throughput is set to 1.7 GB/s with a
    /// 200 us per-message overhead (~1.4 ms port time per 2 MB tile): StarPU
    /// funnels all eager point-to-point tile transfers through a single
    /// dedicated communication core (Section V-C) using a rendezvous
    /// protocol, which in practice sustains well below line rate.
    /// These two values are the model's only calibration knobs; they were
    /// chosen so the simulated POTRF curves reproduce the paper's *shape* —
    /// 2DBC and SBC coincide on a single node and at very large n, with
    /// SBC ahead by 10-25% at intermediate sizes (Fig 9/10).
    pub fn bora(nodes: usize) -> Self {
        Platform {
            nodes,
            cores_per_node: 34,
            core_gflops: 41.6,
            nic_bandwidth: 1.7e9,
            nic_latency: 1.5e-6,
            per_message_overhead: 200e-6,
            efficiency: KernelEfficiency::default(),
        }
    }

    /// Same compute as [`Platform::bora`] but with a network slowed by
    /// `factor` (bandwidth divided, overhead multiplied). Used by tests and
    /// ablations to reach the communication-bound regime at small scales.
    pub fn bora_slow_network(nodes: usize, factor: f64) -> Self {
        let mut p = Self::bora(nodes);
        p.nic_bandwidth /= factor;
        p.per_message_overhead *= factor;
        p
    }

    /// Time a message occupies a NIC port (one direction): host overhead
    /// plus serialization.
    pub fn port_seconds(&self, bytes: u64) -> f64 {
        self.per_message_overhead + bytes as f64 / self.nic_bandwidth
    }

    /// Execution time of a task on one core, in seconds.
    pub fn task_seconds(&self, kind: &TaskKind, b: usize) -> f64 {
        let flops = kind.flops(b);
        if flops == 0.0 {
            return 0.0;
        }
        let eff = self.efficiency.efficiency(kind, b).max(1e-3);
        flops / (self.core_gflops * 1e9 * eff)
    }

    /// Wire time of one tile message (excluding queueing), in seconds.
    pub fn message_seconds(&self, bytes: u64) -> f64 {
        self.nic_latency + bytes as f64 / self.nic_bandwidth
    }

    /// Node peak in GFlop/s (all worker cores).
    pub fn node_peak_gflops(&self) -> f64 {
        self.cores_per_node as f64 * self.core_gflops
    }

    /// The degenerate [`Topology`] equivalent to this platform's flat
    /// network: every node on one switch at the NIC's bandwidth and
    /// latency. Simulating over it is bit-identical to the flat model.
    pub fn single_switch_topology(&self) -> Topology {
        Topology::single_switch(self.nodes, self.nic_bandwidth, self.nic_latency)
    }

    /// A rack-split [`Topology`] over this platform's nodes: `racks`
    /// top-of-rack switches joined through a spine, access links at NIC
    /// speed, uplinks at `nic_bandwidth / oversubscription`. Hosts are
    /// assigned to racks contiguously (rack-major), so graph nodes
    /// `0..hosts_per_rack` share the first rack.
    ///
    /// # Panics
    /// Panics if `racks` is zero or `oversubscription` is not positive.
    pub fn rack_topology(&self, racks: usize, oversubscription: f64) -> Topology {
        assert!(racks > 0, "need at least one rack");
        assert!(
            oversubscription > 0.0,
            "oversubscription must be positive, got {oversubscription}"
        );
        let per_rack = self.nodes.div_ceil(racks);
        Topology::racks(
            racks,
            per_rack,
            self.nic_bandwidth,
            self.nic_latency,
            self.nic_bandwidth / oversubscription,
            self.nic_latency,
        )
        .named(&format!("racks{racks}x{per_rack}-os{oversubscription}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bora_matches_paper_constants() {
        let p = Platform::bora(28);
        assert_eq!(p.nodes, 28);
        assert_eq!(p.cores_per_node, 34);
        // "1414.4 GFlop/s for 34 cores"
        assert!((p.node_peak_gflops() - 1414.4).abs() < 1e-9);
    }

    #[test]
    fn efficiency_increases_with_tile_size_and_saturates() {
        let e = KernelEfficiency::default();
        let g100 = e.efficiency(&TaskKind::Gemm { i: 0, j: 2, k: 1 }, 100);
        let g500 = e.efficiency(&TaskKind::Gemm { i: 0, j: 2, k: 1 }, 500);
        let g1000 = e.efficiency(&TaskKind::Gemm { i: 0, j: 2, k: 1 }, 1000);
        assert!(g100 < g500 && g500 < g1000);
        // saturation: b=500 within 8% of asymptote (Fig 7: "almost maximum
        // performance ... as soon as tile size is at least 500")
        assert!(g500 > 0.92 * e.gemm);
        assert!(g1000 < e.gemm);
    }

    #[test]
    fn gemm_time_scales_cubically() {
        let p = Platform::bora(1);
        let t250 = p.task_seconds(&TaskKind::Gemm { i: 0, j: 2, k: 1 }, 250);
        let t500 = p.task_seconds(&TaskKind::Gemm { i: 0, j: 2, k: 1 }, 500);
        let ratio = t500 / t250;
        assert!(ratio > 7.0 && ratio < 9.0, "ratio={ratio}"); // ~8x minus efficiency gain
    }

    #[test]
    fn tile_message_time_matches_hand_computation() {
        let p = Platform::bora(2);
        // 2 MB tile (b=500 doubles) over 1.7 GB/s effective
        let t = p.message_seconds(500 * 500 * 8);
        assert!((t - (1.5e-6 + 2e6 / 1.7e9)).abs() < 1e-12);
        // port occupancy adds the 200 us host overhead
        let port = p.port_seconds(500 * 500 * 8);
        assert!((port - (200e-6 + 2e6 / 1.7e9)).abs() < 1e-12);
    }

    #[test]
    fn slow_network_scales_both_knobs() {
        let p = Platform::bora_slow_network(4, 10.0);
        assert!((p.nic_bandwidth - 0.17e9).abs() < 1e-3);
        assert!((p.per_message_overhead - 2000e-6).abs() < 1e-12);
    }

    #[test]
    fn move_tasks_are_free() {
        let p = Platform::bora(1);
        assert_eq!(p.task_seconds(&TaskKind::Move { i: 1, j: 0 }, 500), 0.0);
    }

    #[test]
    fn single_switch_topology_reproduces_nic_constants() {
        let p = Platform::bora(6);
        let t = p.single_switch_topology();
        assert_eq!(t.hosts(), 6);
        assert!(t.is_flat());
        let r = t.route(0, 5);
        assert_eq!(r.bottleneck.to_bits(), p.nic_bandwidth.to_bits());
        assert_eq!(r.latency.to_bits(), p.nic_latency.to_bits());
    }

    #[test]
    fn rack_topology_oversubscribes_the_uplink() {
        let p = Platform::bora(8);
        let t = p.rack_topology(2, 16.0);
        assert_eq!(t.hosts(), 8);
        assert!(!t.cross_rack(0, 3));
        assert!(t.cross_rack(0, 4));
        let intra = t.route(0, 3);
        let inter = t.route(0, 4);
        assert_eq!(intra.bottleneck.to_bits(), p.nic_bandwidth.to_bits());
        assert!((inter.bottleneck - p.nic_bandwidth / 16.0).abs() < 1e-6);
        assert!(inter.latency > intra.latency);
    }
}
