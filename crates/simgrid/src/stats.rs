//! Simulation results and execution traces.

/// One executed task in a recorded trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Task index in the graph.
    pub task: u32,
    /// Executing node.
    pub node: u32,
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds).
    pub end: f64,
}

/// Renders a per-node utilization Gantt strip as text: `width` buckets per
/// node, each showing the fraction of busy worker-core time in that time
/// slice (' ' empty, '.' <25%, '-' <50%, '=' <75%, '#' full).
pub fn render_gantt(events: &[TraceEvent], nodes: usize, cores: usize, width: usize) -> String {
    let makespan = events.iter().fold(0.0f64, |m, e| m.max(e.end));
    if makespan <= 0.0 || width == 0 {
        return String::new();
    }
    let dt = makespan / width as f64;
    let mut busy = vec![vec![0.0f64; width]; nodes];
    for e in events {
        if e.end <= e.start {
            continue;
        }
        let b0 = ((e.start / dt) as usize).min(width - 1);
        let b1 = ((e.end / dt) as usize).min(width - 1);
        let row = &mut busy[e.node as usize];
        for (bucket, cell) in row.iter_mut().enumerate().take(b1 + 1).skip(b0) {
            let lo = (bucket as f64 * dt).max(e.start);
            let hi = ((bucket + 1) as f64 * dt).min(e.end);
            if hi > lo {
                *cell += hi - lo;
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "gantt ({makespan:.3}s across {width} buckets):
"
    ));
    for (n, row) in busy.iter().enumerate() {
        out.push_str(&format!("node {n:>3} |"));
        for &b in row {
            let frac = b / (dt * cores as f64);
            out.push(match frac {
                f if f <= 0.01 => ' ',
                f if f < 0.25 => '.',
                f if f < 0.5 => '-',
                f if f < 0.75 => '=',
                _ => '#',
            });
        }
        out.push_str(
            "|
",
        );
    }
    out
}

/// Outcome of one simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// End-to-end execution time in seconds (first task start is t = 0).
    pub makespan: f64,
    /// Number of inter-node messages (tiles) transferred.
    pub messages: u64,
    /// Bytes transferred between nodes.
    pub bytes: u64,
    /// Total flops executed.
    pub flops: f64,
    /// Per-node busy time (seconds of core-occupancy, summed over cores).
    pub busy_per_node: Vec<f64>,
    /// Per-node send-port occupancy (seconds).
    pub send_port_per_node: Vec<f64>,
    /// Per-node receive-port occupancy (seconds).
    pub recv_port_per_node: Vec<f64>,
    /// Number of tasks executed (equals the graph size on success).
    pub tasks_executed: u64,
    /// Worker cores per node (to compute utilization).
    pub cores_per_node: usize,
}

impl SimReport {
    /// GFlop/s per node, the paper's comparison metric
    /// (`F = #flops / (t * P)`, Section V-E). `flops` defaults to the
    /// executed task flops; pass the dense-operation count (e.g. `n^3/3`)
    /// to match the paper's normalization exactly.
    pub fn gflops_per_node(&self, flops: Option<f64>) -> f64 {
        let f = flops.unwrap_or(self.flops);
        let p = self.busy_per_node.len().max(1) as f64;
        f / (self.makespan.max(f64::MIN_POSITIVE) * p) / 1e9
    }

    /// Mean worker utilization over nodes: busy core-seconds divided by
    /// available core-seconds.
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let avail = self.makespan * self.cores_per_node as f64;
        let busy: f64 = self.busy_per_node.iter().sum::<f64>() / self.busy_per_node.len() as f64;
        busy / avail
    }

    /// Communication volume in gigabytes.
    pub fn gigabytes(&self) -> f64 {
        self.bytes as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gantt_renders_buckets() {
        let events = vec![
            TraceEvent {
                task: 0,
                node: 0,
                start: 0.0,
                end: 1.0,
            },
            TraceEvent {
                task: 1,
                node: 1,
                start: 0.5,
                end: 1.0,
            },
        ];
        let g = render_gantt(&events, 2, 1, 4);
        assert!(g.contains("node   0 |####|"), "{g}");
        assert!(g.contains("node   1 |  ##|"), "{g}");
    }

    #[test]
    fn gantt_empty_events() {
        assert_eq!(render_gantt(&[], 2, 1, 4), "");
    }

    #[test]
    fn gflops_per_node_normalizes_by_nodes_and_time() {
        let r = SimReport {
            makespan: 2.0,
            messages: 0,
            bytes: 0,
            flops: 4e9,
            busy_per_node: vec![1.0, 1.0],
            send_port_per_node: vec![0.0, 0.0],
            recv_port_per_node: vec![0.0, 0.0],
            tasks_executed: 10,
            cores_per_node: 4,
        };
        assert!((r.gflops_per_node(None) - 1.0).abs() < 1e-12);
        assert!((r.gflops_per_node(Some(8e9)) - 2.0).abs() < 1e-12);
        assert!((r.utilization() - 0.125).abs() < 1e-12);
    }
}
