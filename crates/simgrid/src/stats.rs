//! Simulation results and execution traces.
//!
//! The trace primitives ([`TraceEvent`], [`render_gantt`]) now live in
//! [`sbc_obs`] so measured runs from the real runtime share them; they are
//! re-exported here for compatibility.

pub use sbc_obs::{render_gantt, TraceEvent};

/// Outcome of one simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// End-to-end execution time in seconds (first task start is t = 0).
    pub makespan: f64,
    /// Number of inter-node messages (tiles) transferred.
    pub messages: u64,
    /// Bytes transferred between nodes.
    pub bytes: u64,
    /// Messages whose route crossed a rack boundary (0 without a topology).
    pub cross_rack_messages: u64,
    /// Bytes that crossed a rack boundary (0 without a topology).
    pub cross_rack_bytes: u64,
    /// Work-stealing input transfers (0 unless a stealing scheduler ran).
    pub steal_messages: u64,
    /// Total flops executed.
    pub flops: f64,
    /// Per-node busy time (seconds of core-occupancy, summed over cores).
    pub busy_per_node: Vec<f64>,
    /// Per-node send-port occupancy (seconds).
    pub send_port_per_node: Vec<f64>,
    /// Per-node receive-port occupancy (seconds).
    pub recv_port_per_node: Vec<f64>,
    /// Number of tasks executed (equals the graph size on success).
    pub tasks_executed: u64,
    /// Worker cores per node (to compute utilization).
    pub cores_per_node: usize,
}

impl SimReport {
    /// GFlop/s per node, the paper's comparison metric
    /// (`F = #flops / (t * P)`, Section V-E). `flops` defaults to the
    /// executed task flops; pass the dense-operation count (e.g. `n^3/3`)
    /// to match the paper's normalization exactly.
    pub fn gflops_per_node(&self, flops: Option<f64>) -> f64 {
        let f = flops.unwrap_or(self.flops);
        let p = self.busy_per_node.len().max(1) as f64;
        f / (self.makespan.max(f64::MIN_POSITIVE) * p) / 1e9
    }

    /// Mean worker utilization over nodes: busy core-seconds divided by
    /// available core-seconds.
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let avail = self.makespan * self.cores_per_node as f64;
        let busy: f64 = self.busy_per_node.iter().sum::<f64>() / self.busy_per_node.len() as f64;
        busy / avail
    }

    /// Communication volume in gigabytes.
    pub fn gigabytes(&self) -> f64 {
        self.bytes as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_gantt_renders_sim_traces() {
        let events = vec![
            TraceEvent {
                task: 0,
                node: 0,
                start: 0.0,
                end: 1.0,
            },
            TraceEvent {
                task: 1,
                node: 1,
                start: 0.5,
                end: 1.0,
            },
        ];
        let g = render_gantt(&events, 2, 1, 4);
        assert!(g.contains("node   0 |####|"), "{g}");
        assert!(g.contains("node   1 |  ##|"), "{g}");
    }

    #[test]
    fn gflops_per_node_normalizes_by_nodes_and_time() {
        let r = SimReport {
            makespan: 2.0,
            messages: 0,
            bytes: 0,
            cross_rack_messages: 0,
            cross_rack_bytes: 0,
            steal_messages: 0,
            flops: 4e9,
            busy_per_node: vec![1.0, 1.0],
            send_port_per_node: vec![0.0, 0.0],
            recv_port_per_node: vec![0.0, 0.0],
            tasks_executed: 10,
            cores_per_node: 4,
        };
        assert!((r.gflops_per_node(None) - 1.0).abs() < 1e-12);
        assert!((r.gflops_per_node(Some(8e9)) - 2.0).abs() < 1e-12);
        assert!((r.utilization() - 0.125).abs() < 1e-12);
    }
}
