//! The discrete-event simulation engine.

use crate::platform::Platform;
use crate::stats::{SimReport, TraceEvent};
use sbc_taskgraph::{EdgeKind, TaskGraph, TaskId};
use sbc_topo::{SchedCtx, Scheduler, Topology};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// How ready tasks are released for execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleMode {
    /// StarPU/Chameleon behaviour: any dependency-free task may run; tasks
    /// of iteration `k + 1` start while iteration `k` is still in flight
    /// (Section II: "tasks of the next iteration can start even if the
    /// current iteration is not yet completed").
    #[default]
    Async,
    /// COnfCHOX-like static schedule: all tasks of iteration `k` must
    /// complete (globally) before any task of iteration `k + 1` starts.
    BulkSynchronous,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Tile dimension `b` (sets task durations and message sizes).
    pub tile_b: usize,
    /// Scheduling mode.
    pub mode: ScheduleMode,
    /// Use critical-path priorities in the ready queues (`false` = FIFO;
    /// ablation of the StarPU priority heuristic).
    pub use_priorities: bool,
    /// Order each node's outgoing messages by consumer-task priority
    /// instead of production (FIFO) order. StarPU-MPI processes requests in
    /// submission order by default, and FIFO also measures best here — the
    /// flag exists as an ablation (see `bench/ablations`).
    pub priority_comms: bool,
}

impl SimConfig {
    /// Asynchronous, priority-scheduled execution with tile size `b` — the
    /// configuration matching the paper's Chameleon runs.
    pub fn chameleon(tile_b: usize) -> Self {
        SimConfig {
            tile_b,
            mode: ScheduleMode::Async,
            use_priorities: true,
            priority_comms: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug)]
enum EventKind {
    /// A worker on `node` finished `task`.
    TaskDone { node: u32, task: TaskId },
    /// `node`'s send port is free again; start the next queued message.
    SendFree { node: u32 },
    /// A message has crossed the wire towards `dest`; contend for the
    /// receive port, then deliver.
    Arrive { msg: Msg },
    /// Message content available on the destination node.
    Deliver { msg: Msg },
}

#[derive(Debug)]
struct Msg {
    src: u32,
    dest: u32,
    bytes: u64,
    /// Scheduling priority of the most urgent consumer task: StarPU-MPI
    /// orders pending communication requests by the priority of the tasks
    /// waiting on them, so tiles feeding the critical path overtake queued
    /// bulk broadcasts.
    prio: f32,
    /// Set for work-stealing input transfers (victim → thief); releases the
    /// thief's outstanding-steal slot on delivery.
    steal: bool,
    consumers: Vec<TaskId>,
}

/// Send-queue entry: highest priority first, FIFO among equal priorities.
struct QueuedMsg {
    msg: Msg,
    seq: u64,
}

impl PartialEq for QueuedMsg {
    fn eq(&self, other: &Self) -> bool {
        self.msg.prio == other.msg.prio && self.seq == other.seq
    }
}
impl Eq for QueuedMsg {}
impl PartialOrd for QueuedMsg {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedMsg {
    fn cmp(&self, other: &Self) -> Ordering {
        self.msg
            .prio
            .total_cmp(&other.msg.prio)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // min-heap via reversal: earliest time first, then insertion order
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Per-node mutable state.
struct NodeState {
    ready: BinaryHeap<(OrdF64, std::cmp::Reverse<TaskId>)>,
    idle_workers: u32,
    send_queue: BinaryHeap<QueuedMsg>,
    send_busy: bool,
    /// Time the receive port last finished delivering a message.
    recv_free: f64,
    /// Steal transfers bound for this node that have not delivered yet —
    /// bounds outstanding steals to the idle worker count.
    inbound_steals: u32,
    busy_seconds: f64,
    send_port_seconds: f64,
    recv_port_seconds: f64,
}

/// The network model: the flat per-node NIC when `topo` is `None`,
/// per-route bandwidth/latency plus per-direction backbone serialization
/// when a [`Topology`] is attached.
struct NetModel<'a> {
    platform: &'a Platform,
    topo: Option<&'a Topology>,
}

impl NetModel<'_> {
    /// Port occupancy of one message (host overhead + serialization at the
    /// route's bottleneck bandwidth). With the degenerate single-switch
    /// topology the bottleneck *is* the NIC bandwidth, so this reproduces
    /// the flat model's `f64` arithmetic exactly.
    fn port_seconds(&self, src: u32, dest: u32, bytes: u64) -> f64 {
        match self.topo {
            None => self.platform.port_seconds(bytes),
            Some(t) => {
                self.platform.per_message_overhead + bytes as f64 / t.route(src, dest).bottleneck
            }
        }
    }

    fn cross_rack(&self, src: u32, dest: u32) -> bool {
        self.topo.is_some_and(|t| t.cross_rack(src, dest))
    }
}

/// Wire-traffic accounting.
#[derive(Default)]
struct Traffic {
    messages: u64,
    bytes: u64,
    cross_rack_messages: u64,
    cross_rack_bytes: u64,
    steal_messages: u64,
}

/// Discrete-event simulator of a [`TaskGraph`] on a [`Platform`].
pub struct Simulator<'a> {
    graph: &'a TaskGraph,
    platform: &'a Platform,
    config: SimConfig,
    priorities: Vec<f32>,
    topology: Option<&'a Topology>,
    steal: bool,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulation. Computes critical-path priorities using the
    /// platform's task-time model.
    ///
    /// # Panics
    /// Panics if the graph targets more nodes than the platform has.
    pub fn new(graph: &'a TaskGraph, platform: &'a Platform, config: SimConfig) -> Self {
        assert!(
            graph.num_nodes() <= platform.nodes,
            "graph placed on {} nodes but platform has {}",
            graph.num_nodes(),
            platform.nodes
        );
        let priorities = if config.use_priorities {
            sbc_taskgraph::critical_path_priorities(graph, |t| {
                platform.task_seconds(&t.kind, config.tile_b)
            })
        } else {
            vec![0.0; graph.len()]
        };
        Simulator {
            graph,
            platform,
            config,
            priorities,
            topology: None,
            steal: false,
        }
    }

    /// Prepares a simulation over an explicit network [`Topology`]: graph
    /// node `i` runs on topology host `i`. Message port times use each
    /// route's bottleneck bandwidth, arrival times its summed latency, and
    /// backbone (switch↔switch) links serialize per direction. With
    /// [`Topology::single_switch`] built from the platform's NIC constants
    /// this is **bit-identical** to [`Simulator::new`] (regression-tested).
    ///
    /// # Panics
    /// Panics if the graph targets more nodes than the topology has hosts,
    /// or more than the platform has nodes.
    pub fn with_topology(
        graph: &'a TaskGraph,
        platform: &'a Platform,
        config: SimConfig,
        topology: &'a Topology,
    ) -> Self {
        assert!(
            graph.num_nodes() <= topology.hosts(),
            "graph placed on {} nodes but topology has {} hosts",
            graph.num_nodes(),
            topology.hosts()
        );
        let mut sim = Self::new(graph, platform, config);
        sim.topology = Some(topology);
        sim
    }

    /// Replaces the ready-queue ranks with `scheduler`'s (and enables
    /// simulated cross-node work stealing if the scheduler asks for it).
    /// Task costs are the platform's modelled seconds; the communication
    /// cost handed to rank computation is the port time of one tile.
    /// Overrides `config.use_priorities`.
    pub fn with_scheduler(mut self, scheduler: &dyn Scheduler) -> Self {
        let costs: Vec<f64> = self
            .graph
            .tasks()
            .iter()
            .map(|t| self.platform.task_seconds(&t.kind, self.config.tile_b))
            .collect();
        let tile_bytes = (self.config.tile_b * self.config.tile_b * 8) as u64;
        let ctx = SchedCtx {
            graph: self.graph,
            task_cost: &costs,
            comm_cost: self.platform.port_seconds(tile_bytes),
        };
        let ranks = scheduler.ranks(&ctx);
        assert_eq!(
            ranks.len(),
            self.graph.len(),
            "scheduler returned {} ranks for {} tasks",
            ranks.len(),
            self.graph.len()
        );
        self.priorities = ranks;
        self.steal = scheduler.work_stealing();
        self
    }

    /// Runs the simulation to completion.
    ///
    /// # Panics
    /// Panics if the simulation deadlocks (which would indicate a malformed
    /// graph — `TaskGraph::validate` should have caught it).
    pub fn run(&self) -> SimReport {
        self.run_impl(None)
    }

    /// Runs the simulation and records a per-task execution trace (for the
    /// Gantt renderer in [`crate::stats::render_gantt`]). Costs O(#tasks)
    /// extra memory — intended for small/medium graphs.
    pub fn run_traced(&self) -> (SimReport, Vec<TraceEvent>) {
        let mut trace = Vec::new();
        let report = self.run_impl(Some(&mut trace));
        (report, trace)
    }

    fn run_impl(&self, mut trace: Option<&mut Vec<TraceEvent>>) -> SimReport {
        let g = self.graph;
        let b = self.config.tile_b;
        let tile_bytes = (b * b * 8) as u64;
        let n_nodes = g.num_nodes();
        let net = NetModel {
            platform: self.platform,
            topo: self.topology,
        };

        let mut deps = g.in_degrees();
        for (t, extra) in g.fetch_deps().into_iter().enumerate() {
            deps[t] += extra;
        }
        // node each task will execute on; differs from its home placement
        // only after a steal
        let mut exec: Vec<u32> = g.tasks().iter().map(|t| t.node).collect();

        let mut nodes: Vec<NodeState> = (0..n_nodes)
            .map(|_| NodeState {
                ready: BinaryHeap::new(),
                idle_workers: self.platform.cores_per_node as u32,
                send_queue: BinaryHeap::new(),
                send_busy: false,
                recv_free: 0.0,
                inbound_steals: 0,
                busy_seconds: 0.0,
                send_port_seconds: 0.0,
                recv_port_seconds: 0.0,
            })
            .collect();
        // per-direction completion time of each backbone link
        let mut link_free: Vec<[f64; 2]> = self
            .topology
            .map(|t| vec![[0.0; 2]; t.links().len()])
            .unwrap_or_default();

        // bulk-synchronous bookkeeping
        let max_iter = g
            .tasks()
            .iter()
            .map(|t| t.kind.iteration() as usize)
            .max()
            .unwrap_or(0);
        let mut remaining_per_iter = vec![0u64; max_iter + 2];
        if self.config.mode == ScheduleMode::BulkSynchronous {
            for t in g.tasks() {
                remaining_per_iter[t.kind.iteration() as usize] += 1;
            }
        }
        let mut current_iter = 0usize;
        let mut parked: Vec<Vec<TaskId>> = vec![Vec::new(); max_iter + 2];

        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let push = |heap: &mut BinaryHeap<Event>, seq: &mut u64, time: f64, kind: EventKind| {
            *seq += 1;
            heap.push(Event {
                time,
                seq: *seq,
                kind,
            });
        };

        let mut traffic = Traffic::default();
        let mut tasks_executed = 0u64;
        let mut flops_total = 0.0f64;
        let mut makespan = 0.0f64;

        // --- helpers as closures over local state are awkward in Rust;
        // use small fns taking explicit state instead.

        // make a task ready (or park it under bulk-synchronous mode) on the
        // node it will execute on
        #[allow(clippy::too_many_arguments)]
        fn make_ready(
            t: TaskId,
            exec: &[u32],
            prio: &[f32],
            g: &TaskGraph,
            nodes: &mut [NodeState],
            mode: ScheduleMode,
            current_iter: usize,
            parked: &mut [Vec<TaskId>],
        ) {
            if mode == ScheduleMode::BulkSynchronous {
                let it = g.tasks()[t as usize].kind.iteration() as usize;
                if it > current_iter {
                    parked[it].push(t);
                    return;
                }
            }
            nodes[exec[t as usize] as usize]
                .ready
                .push((OrdF64(prio[t as usize] as f64), std::cmp::Reverse(t)));
        }

        // start as many tasks as possible on a node
        #[allow(clippy::too_many_arguments)]
        fn try_start(
            node_id: u32,
            now: f64,
            g: &TaskGraph,
            platform: &Platform,
            b: usize,
            nodes: &mut [NodeState],
            heap: &mut BinaryHeap<Event>,
            seq: &mut u64,
        ) {
            let ns = &mut nodes[node_id as usize];
            while ns.idle_workers > 0 {
                let Some((_, std::cmp::Reverse(t))) = ns.ready.pop() else {
                    break;
                };
                ns.idle_workers -= 1;
                let dur = platform.task_seconds(&g.tasks()[t as usize].kind, b);
                ns.busy_seconds += dur;
                *seq += 1;
                heap.push(Event {
                    time: now + dur,
                    seq: *seq,
                    kind: EventKind::TaskDone {
                        node: node_id,
                        task: t,
                    },
                });
            }
        }

        // cross-node work stealing: every node whose ready queue is drained
        // but still has idle workers pulls the top ready task (and its
        // inputs, as one transfer) from the most-backlogged peer. Only runs
        // when a stealing scheduler is attached, so the default paths are
        // untouched.
        #[allow(clippy::too_many_arguments)]
        fn steal_pass(
            now: f64,
            g: &TaskGraph,
            net: &NetModel<'_>,
            tile_bytes: u64,
            nodes: &mut [NodeState],
            deps: &mut [u32],
            exec: &mut [u32],
            link_free: &mut [[f64; 2]],
            heap: &mut BinaryHeap<Event>,
            seq: &mut u64,
            traffic: &mut Traffic,
        ) {
            let n = nodes.len();
            for thief in 0..n {
                loop {
                    let ts = &nodes[thief];
                    if !ts.ready.is_empty() || ts.idle_workers <= ts.inbound_steals {
                        break;
                    }
                    // victim: largest ready backlog (>= 2 so the victim
                    // keeps work), lowest id on ties
                    let mut victim: Option<(usize, usize)> = None;
                    for (v, vs) in nodes.iter().enumerate() {
                        if v == thief || vs.ready.len() < 2 {
                            continue;
                        }
                        if victim.is_none_or(|(_, len)| vs.ready.len() > len) {
                            victim = Some((v, vs.ready.len()));
                        }
                    }
                    let Some((v, _)) = victim else {
                        break;
                    };
                    let (OrdF64(p), std::cmp::Reverse(t)) =
                        nodes[v].ready.pop().expect("victim has backlog");
                    exec[t as usize] = thief as u32;
                    // the stolen task re-arms on one pseudo-dependency: the
                    // input transfer from the victim
                    deps[t as usize] = 1;
                    let inputs = g
                        .preds(t)
                        .filter(|&(_, k)| k == EdgeKind::Data)
                        .count()
                        .max(1) as u64;
                    nodes[thief].inbound_steals += 1;
                    traffic.steal_messages += 1;
                    enqueue_send(
                        v as u32,
                        Msg {
                            src: v as u32,
                            dest: thief as u32,
                            bytes: inputs * tile_bytes,
                            prio: p as f32,
                            steal: true,
                            consumers: vec![t],
                        },
                        now,
                        net,
                        nodes,
                        link_free,
                        heap,
                        seq,
                        traffic,
                    );
                }
            }
        }

        // count a message and queue it on the sender's NIC; start sending
        // if the port is idle
        #[allow(clippy::too_many_arguments)]
        fn enqueue_send(
            from: u32,
            msg: Msg,
            now: f64,
            net: &NetModel<'_>,
            nodes: &mut [NodeState],
            link_free: &mut [[f64; 2]],
            heap: &mut BinaryHeap<Event>,
            seq: &mut u64,
            traffic: &mut Traffic,
        ) {
            traffic.messages += 1;
            traffic.bytes += msg.bytes;
            if net.cross_rack(msg.src, msg.dest) {
                traffic.cross_rack_messages += 1;
                traffic.cross_rack_bytes += msg.bytes;
            }
            let ns = &mut nodes[from as usize];
            *seq += 1;
            let entry = QueuedMsg { msg, seq: *seq };
            ns.send_queue.push(entry);
            if !ns.send_busy {
                start_send(from, now, net, nodes, link_free, heap, seq);
            }
        }

        fn start_send(
            from: u32,
            now: f64,
            net: &NetModel<'_>,
            nodes: &mut [NodeState],
            link_free: &mut [[f64; 2]],
            heap: &mut BinaryHeap<Event>,
            seq: &mut u64,
        ) {
            let ns = &mut nodes[from as usize];
            let Some(QueuedMsg { msg, .. }) = ns.send_queue.pop() else {
                ns.send_busy = false;
                return;
            };
            ns.send_busy = true;
            let port = net.port_seconds(msg.src, msg.dest, msg.bytes);
            ns.send_port_seconds += port;
            let send_end = now + port;
            *seq += 1;
            heap.push(Event {
                time: send_end,
                seq: *seq,
                kind: EventKind::SendFree { node: from },
            });
            // arrival: flat latency, or the route's latency after queueing
            // on each backbone link direction in send-initiation order
            let arrive = match net.topo {
                None => send_end + net.platform.nic_latency,
                Some(t) => {
                    let route = t.route(msg.src, msg.dest);
                    let mut tail = send_end;
                    for hop in &route.backbone {
                        let free = &mut link_free[hop.link as usize][hop.dir()];
                        let start = tail.max(*free);
                        let done =
                            start + msg.bytes as f64 / t.links()[hop.link as usize].bandwidth;
                        *free = done;
                        tail = done;
                    }
                    tail + route.latency
                }
            };
            *seq += 1;
            heap.push(Event {
                time: arrive,
                seq: *seq,
                kind: EventKind::Arrive { msg },
            });
        }

        // seed: initial fetches then dependency-free tasks
        for f in g.initial_fetches() {
            enqueue_send(
                f.home,
                Msg {
                    src: f.home,
                    dest: f.dest,
                    bytes: tile_bytes,
                    prio: f32::INFINITY,
                    steal: false,
                    consumers: f.consumers.clone(),
                },
                0.0,
                &net,
                &mut nodes,
                &mut link_free,
                &mut heap,
                &mut seq,
                &mut traffic,
            );
        }
        for t in 0..g.len() as TaskId {
            if deps[t as usize] == 0 {
                make_ready(
                    t,
                    &exec,
                    &self.priorities,
                    g,
                    &mut nodes,
                    self.config.mode,
                    current_iter,
                    &mut parked,
                );
            }
        }
        for n in 0..n_nodes as u32 {
            try_start(n, 0.0, g, self.platform, b, &mut nodes, &mut heap, &mut seq);
        }
        if self.steal {
            steal_pass(
                0.0,
                g,
                &net,
                tile_bytes,
                &mut nodes,
                &mut deps,
                &mut exec,
                &mut link_free,
                &mut heap,
                &mut seq,
                &mut traffic,
            );
        }

        let mut consumer_groups: Vec<(u32, Vec<TaskId>)> = Vec::new();
        while let Some(Event { time, kind, .. }) = heap.pop() {
            makespan = makespan.max(time);
            match kind {
                EventKind::TaskDone { node, task } => {
                    tasks_executed += 1;
                    let tk = &g.tasks()[task as usize];
                    flops_total += tk.kind.flops(b);
                    if let Some(tr) = trace.as_deref_mut() {
                        let dur = self.platform.task_seconds(&tk.kind, b);
                        tr.push(TraceEvent {
                            task,
                            node,
                            start: time - dur,
                            end: time,
                        });
                    }
                    nodes[node as usize].idle_workers += 1;

                    // resolve local successors; group remote data consumers
                    // (remote relative to where the producer ran)
                    consumer_groups.clear();
                    for (s, ekind) in g.succs(task) {
                        let snode = exec[s as usize];
                        if snode == node {
                            deps[s as usize] -= 1;
                            if deps[s as usize] == 0 {
                                make_ready(
                                    s,
                                    &exec,
                                    &self.priorities,
                                    g,
                                    &mut nodes,
                                    self.config.mode,
                                    current_iter,
                                    &mut parked,
                                );
                            }
                        } else {
                            debug_assert_eq!(ekind, EdgeKind::Data);
                            match consumer_groups.iter_mut().find(|(n, _)| *n == snode) {
                                Some((_, v)) => v.push(s),
                                None => consumer_groups.push((snode, vec![s])),
                            }
                        }
                    }
                    for (dest, consumers) in consumer_groups.drain(..) {
                        let prio = if self.config.priority_comms {
                            consumers
                                .iter()
                                .map(|&s| self.priorities[s as usize])
                                .fold(f32::MIN, f32::max)
                        } else {
                            0.0 // FIFO via the sequence tiebreak
                        };
                        enqueue_send(
                            node,
                            Msg {
                                src: node,
                                dest,
                                bytes: tile_bytes,
                                prio,
                                steal: false,
                                consumers,
                            },
                            time,
                            &net,
                            &mut nodes,
                            &mut link_free,
                            &mut heap,
                            &mut seq,
                            &mut traffic,
                        );
                    }

                    // bulk-synchronous iteration barrier
                    if self.config.mode == ScheduleMode::BulkSynchronous {
                        let it = tk.kind.iteration() as usize;
                        remaining_per_iter[it] -= 1;
                        while current_iter <= max_iter && remaining_per_iter[current_iter] == 0 {
                            current_iter += 1;
                            if current_iter <= max_iter {
                                for t in std::mem::take(&mut parked[current_iter]) {
                                    let tn = exec[t as usize] as usize;
                                    nodes[tn].ready.push((
                                        OrdF64(self.priorities[t as usize] as f64),
                                        std::cmp::Reverse(t),
                                    ));
                                }
                            }
                        }
                        // release may have fed every node
                        for n in 0..n_nodes as u32 {
                            try_start(
                                n,
                                time,
                                g,
                                self.platform,
                                b,
                                &mut nodes,
                                &mut heap,
                                &mut seq,
                            );
                        }
                    } else {
                        try_start(
                            node,
                            time,
                            g,
                            self.platform,
                            b,
                            &mut nodes,
                            &mut heap,
                            &mut seq,
                        );
                    }
                    if self.steal {
                        steal_pass(
                            time,
                            g,
                            &net,
                            tile_bytes,
                            &mut nodes,
                            &mut deps,
                            &mut exec,
                            &mut link_free,
                            &mut heap,
                            &mut seq,
                            &mut traffic,
                        );
                    }
                }
                EventKind::SendFree { node } => {
                    start_send(
                        node,
                        time,
                        &net,
                        &mut nodes,
                        &mut link_free,
                        &mut heap,
                        &mut seq,
                    );
                }
                EventKind::Arrive { msg } => {
                    // contend for the receive port: deliveries are spaced by
                    // at least one port time (overhead + serialization)
                    let wire = net.port_seconds(msg.src, msg.dest, msg.bytes);
                    let ns = &mut nodes[msg.dest as usize];
                    ns.recv_port_seconds += wire;
                    let delivery = time.max(ns.recv_free + wire);
                    ns.recv_free = delivery;
                    push(&mut heap, &mut seq, delivery, EventKind::Deliver { msg });
                }
                EventKind::Deliver { msg } => {
                    let dest = msg.dest;
                    if msg.steal {
                        nodes[dest as usize].inbound_steals -= 1;
                    }
                    for t in msg.consumers {
                        deps[t as usize] -= 1;
                        if deps[t as usize] == 0 {
                            make_ready(
                                t,
                                &exec,
                                &self.priorities,
                                g,
                                &mut nodes,
                                self.config.mode,
                                current_iter,
                                &mut parked,
                            );
                        }
                    }
                    try_start(
                        dest,
                        time,
                        g,
                        self.platform,
                        b,
                        &mut nodes,
                        &mut heap,
                        &mut seq,
                    );
                    if self.steal {
                        steal_pass(
                            time,
                            g,
                            &net,
                            tile_bytes,
                            &mut nodes,
                            &mut deps,
                            &mut exec,
                            &mut link_free,
                            &mut heap,
                            &mut seq,
                            &mut traffic,
                        );
                    }
                }
            }
        }

        assert_eq!(
            tasks_executed,
            g.len() as u64,
            "simulation deadlocked: {} of {} tasks executed",
            tasks_executed,
            g.len()
        );

        SimReport {
            makespan,
            messages: traffic.messages,
            bytes: traffic.bytes,
            cross_rack_messages: traffic.cross_rack_messages,
            cross_rack_bytes: traffic.cross_rack_bytes,
            steal_messages: traffic.steal_messages,
            flops: flops_total,
            busy_per_node: nodes.iter().map(|n| n.busy_seconds).collect(),
            send_port_per_node: nodes.iter().map(|n| n.send_port_seconds).collect(),
            recv_port_per_node: nodes.iter().map(|n| n.recv_port_seconds).collect(),
            tasks_executed,
            cores_per_node: self.platform.cores_per_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use sbc_dist::{SbcBasic, SbcExtended, TwoDBlockCyclic, TwoPointFiveD};
    use sbc_taskgraph::{build_potrf, build_potrf_25d};
    use sbc_topo::{zoo, CriticalPath, WorkStealing};

    fn sim(graph: &TaskGraph, platform: &Platform, b: usize) -> SimReport {
        Simulator::new(graph, platform, SimConfig::chameleon(b)).run()
    }

    #[test]
    fn single_node_reaches_high_utilization() {
        let d = TwoDBlockCyclic::new(1, 1);
        let g = build_potrf(&d, 40);
        let p = Platform::bora(1);
        let r = sim(&g, &p, 500);
        assert_eq!(r.messages, 0);
        assert!(r.utilization() > 0.75, "utilization {}", r.utilization());
        // makespan is at least the work bound
        let work_bound: f64 = r.busy_per_node[0] / p.cores_per_node as f64;
        assert!(r.makespan >= work_bound * 0.999);
    }

    #[test]
    fn measured_messages_equal_graph_count() {
        let d = SbcExtended::new(5);
        let g = build_potrf(&d, 20);
        let p = Platform::bora(10);
        let r = sim(&g, &p, 200);
        assert_eq!(r.messages, g.count_messages());
        assert_eq!(r.bytes, g.count_messages() * 200 * 200 * 8);
    }

    #[test]
    fn makespan_at_least_critical_path() {
        let d = SbcExtended::new(5);
        let g = build_potrf(&d, 16);
        let p = Platform::bora(10);
        let cfg = SimConfig::chameleon(500);
        let cp =
            sbc_taskgraph::priority::critical_path_length(&g, |t| p.task_seconds(&t.kind, 500));
        let r = Simulator::new(&g, &p, cfg).run();
        assert!(
            r.makespan >= cp * 0.999,
            "makespan {} < cp {cp}",
            r.makespan
        );
    }

    #[test]
    fn bulk_synchronous_is_slower() {
        let d = TwoDBlockCyclic::new(4, 4);
        let g = build_potrf(&d, 32);
        let p = Platform::bora(16);
        let a = Simulator::new(&g, &p, SimConfig::chameleon(500)).run();
        let s = Simulator::new(
            &g,
            &p,
            SimConfig {
                tile_b: 500,
                mode: ScheduleMode::BulkSynchronous,
                use_priorities: true,
                priority_comms: false,
            },
        )
        .run();
        assert!(
            s.makespan > a.makespan,
            "sync {} vs async {}",
            s.makespan,
            a.makespan
        );
        // same work, same communication
        assert_eq!(s.messages, a.messages);
        assert_eq!(s.tasks_executed, a.tasks_executed);
    }

    #[test]
    fn priorities_help() {
        let d = SbcExtended::new(6);
        let g = build_potrf(&d, 36);
        let p = Platform::bora(15);
        let with = Simulator::new(&g, &p, SimConfig::chameleon(500)).run();
        let without = Simulator::new(
            &g,
            &p,
            SimConfig {
                tile_b: 500,
                mode: ScheduleMode::Async,
                use_priorities: false,
                priority_comms: false,
            },
        )
        .run();
        assert!(with.makespan <= without.makespan * 1.02);
    }

    #[test]
    fn sbc_outperforms_2dbc_in_comm_bound_regime() {
        // P=21 nodes with a slowed network: communication dominates, and
        // SBC's sqrt(2)-lower volume must translate into a clearly lower
        // makespan (the paper's headline effect, concentrated).
        let nt = 63;
        let sbc = SbcExtended::new(7);
        let dbc = TwoDBlockCyclic::new(7, 3);
        let p = Platform::bora_slow_network(21, 8.0);
        let gs = build_potrf(&sbc, nt);
        let gd = build_potrf(&dbc, nt);
        let rs = sim(&gs, &p, 500);
        let rd = sim(&gd, &p, 500);
        assert!(rs.messages < rd.messages);
        assert!(
            rs.makespan < rd.makespan * 0.95,
            "SBC {} vs 2DBC {}",
            rs.makespan,
            rd.makespan
        );
    }

    #[test]
    fn two_five_d_runs_and_reduces_broadcast_traffic() {
        let nt = 24;
        let inner = SbcBasic::new(4); // 8 nodes per slice
        let d25 = TwoPointFiveD::new(inner.clone(), 2); // 16 nodes
        let g25 = build_potrf_25d(&d25, nt);
        let p = Platform::bora(16);
        let r = sim(&g25, &p, 500);
        assert_eq!(r.messages, g25.count_messages());
        assert_eq!(r.tasks_executed as usize, g25.len());
    }

    #[test]
    fn more_nodes_do_not_increase_makespan_much() {
        // weak sanity: 15 nodes should be faster than 3 nodes on a matrix
        // with plenty of parallelism. (At very small nt the slow effective
        // network makes extra nodes useless — the strong-scaling limit —
        // so use a comfortably large matrix.)
        let nt = 72;
        let g3 = build_potrf(&SbcExtended::new(3), nt); // 3 nodes
        let g15 = build_potrf(&SbcExtended::new(6), nt); // 15 nodes
        let r3 = sim(&g3, &Platform::bora(3), 500);
        let r15 = sim(&g15, &Platform::bora(15), 500);
        assert!(r15.makespan < r3.makespan);
    }

    #[test]
    fn zero_task_graph() {
        let d = TwoDBlockCyclic::new(1, 1);
        let g = build_potrf(&d, 0);
        let p = Platform::bora(1);
        let r = sim(&g, &p, 100);
        assert_eq!(r.tasks_executed, 0);
        assert_eq!(r.makespan, 0.0);
    }

    #[test]
    fn single_switch_topology_is_bit_identical_to_flat() {
        let d = SbcExtended::new(5);
        let g = build_potrf(&d, 24);
        let p = Platform::bora(10);
        let topo = p.single_switch_topology();
        let flat = Simulator::new(&g, &p, SimConfig::chameleon(500)).run();
        let over = Simulator::with_topology(&g, &p, SimConfig::chameleon(500), &topo).run();
        assert_eq!(flat.makespan.to_bits(), over.makespan.to_bits());
        assert_eq!(flat.messages, over.messages);
        assert_eq!(flat.bytes, over.bytes);
        assert_eq!(over.cross_rack_messages, 0);
        assert_eq!(over.cross_rack_bytes, 0);
        for (a, b) in flat.busy_per_node.iter().zip(&over.busy_per_node) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn critical_path_scheduler_matches_default_bit_exactly() {
        let d = SbcExtended::new(5);
        let g = build_potrf(&d, 20);
        let p = Platform::bora(10);
        let base = Simulator::new(&g, &p, SimConfig::chameleon(500)).run();
        let sched = Simulator::new(&g, &p, SimConfig::chameleon(500))
            .with_scheduler(&CriticalPath)
            .run();
        assert_eq!(base.makespan.to_bits(), sched.makespan.to_bits());
        assert_eq!(base.messages, sched.messages);
    }

    #[test]
    fn oversubscribed_uplink_slows_cross_rack_traffic() {
        // 2DBC on 2 racks: plenty of traffic crosses the boundary, so a
        // heavily oversubscribed uplink must cost makespan relative to the
        // full-bisection single switch.
        let d = TwoDBlockCyclic::new(4, 3);
        let g = build_potrf(&d, 36);
        let p = Platform::bora(12);
        let flat = p.single_switch_topology();
        let racks = p.rack_topology(2, 32.0);
        let cfg = SimConfig::chameleon(500);
        let rf = Simulator::with_topology(&g, &p, cfg, &flat).run();
        let rr = Simulator::with_topology(&g, &p, cfg, &racks).run();
        assert!(rr.cross_rack_messages > 0);
        assert!(rr.cross_rack_bytes > 0);
        assert_eq!(rf.messages, rr.messages);
        assert!(
            rr.makespan > rf.makespan * 1.05,
            "racks {} vs flat {}",
            rr.makespan,
            rf.makespan
        );
    }

    #[test]
    fn work_stealing_executes_all_tasks_and_counts_steals() {
        let d = SbcExtended::new(4);
        let g = build_potrf(&d, 18);
        let p = Platform::bora(6);
        let r = Simulator::new(&g, &p, SimConfig::chameleon(300))
            .with_scheduler(&WorkStealing)
            .run();
        assert_eq!(r.tasks_executed as usize, g.len());
        // steal transfers ride the normal message counters too
        assert!(r.messages >= g.count_messages());
        assert_eq!(
            r.messages - g.count_messages(),
            r.steal_messages,
            "every extra message is a steal transfer"
        );
    }

    #[test]
    fn every_zoo_scheduler_completes_the_graph() {
        let d = SbcExtended::new(4);
        let g = build_potrf(&d, 16);
        let p = Platform::bora(6);
        let topo = p.rack_topology(2, 8.0);
        for s in zoo() {
            let r = Simulator::with_topology(&g, &p, SimConfig::chameleon(300), &topo)
                .with_scheduler(s.as_ref())
                .run();
            assert_eq!(r.tasks_executed as usize, g.len(), "{}", s.name());
            assert!(r.makespan > 0.0, "{}", s.name());
        }
    }
}
