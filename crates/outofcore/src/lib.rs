//! # sbc-outofcore — the two-level-memory model of Section III-E
//!
//! The paper grounds its parallel analysis in the sequential *out-of-core*
//! setting: one fast memory of size `M` and an unlimited slow memory, with
//! every operand resident in fast memory during computation. This crate
//! provides that model for the tiled Cholesky factorization:
//!
//! * [`bounds`] — the closed-form transfer bounds discussed by the paper:
//!   Béreux's narrow-block algorithm (`n^3 / (3 sqrt(M))`), the automated
//!   lower bound of Olivry et al. (`n^3 / (6 sqrt(M))`), and the tight
//!   symmetric bound of Beaumont et al. (`n^3 / (3 sqrt(2) sqrt(M))`);
//! * [`lru`] — an exact LRU cache simulator over tile accesses;
//! * [`cholesky`] — drives the access stream of the tiled Cholesky
//!   (right-looking or left-looking loop order) through the LRU and counts
//!   element transfers, exposing the `sqrt(M)` arithmetic-intensity law the
//!   paper builds on.

#![warn(missing_docs)]

pub mod bounds;
pub mod cholesky;
pub mod lru;

pub use bounds::{bereux_transfers, olivry_lower_bound, symmetric_lower_bound};
pub use cholesky::{simulate_cholesky_ooc, LoopOrder, OocReport};
pub use lru::LruCache;
