//! Out-of-core tiled Cholesky: exact transfer counts under an LRU memory.

use crate::lru::{Access, LruCache};
use sbc_kernels::flops;

/// Loop order of the tiled factorization — the classical out-of-core
/// trade-off Béreux's paper studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopOrder {
    /// Algorithm 1 of the paper: after each panel, sweep the whole trailing
    /// submatrix.
    RightLooking,
    /// Column-by-column: apply all prior panels to the current column, then
    /// factorize it. Better temporal locality on the panel being built.
    LeftLooking,
}

/// Result of an out-of-core simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OocReport {
    /// Tiles loaded from slow memory.
    pub tile_loads: u64,
    /// Dirty tiles written back.
    pub tile_stores: u64,
    /// Total flops of the factorization.
    pub flops: f64,
    /// Tile dimension used.
    pub b: usize,
}

impl OocReport {
    /// Total element transfers (loads + stores, in matrix elements).
    pub fn transfers(&self) -> f64 {
        (self.tile_loads + self.tile_stores) as f64 * (self.b * self.b) as f64
    }

    /// Arithmetic intensity: flops per transferred element.
    pub fn intensity(&self) -> f64 {
        self.flops / self.transfers().max(1.0)
    }
}

/// Simulates the tiled Cholesky factorization of an `nt x nt`-tile matrix
/// (tiles of dimension `b`) through an LRU fast memory holding
/// `capacity_tiles` tiles, and reports exact transfer counts.
///
/// With `b ~ sqrt(M/3)` and enough capacity for a working set of a few
/// tiles per kernel, the measured intensity follows the `Theta(sqrt(M))`
/// law of Section III-E (tested).
///
/// ```
/// use sbc_outofcore::{simulate_cholesky_ooc, LoopOrder};
///
/// let small = simulate_cholesky_ooc(32, 4, 16, LoopOrder::LeftLooking);
/// let large = simulate_cholesky_ooc(32, 4, 64, LoopOrder::LeftLooking);
/// assert!(large.intensity() > small.intensity()); // more memory, fewer transfers
/// ```
///
/// # Panics
/// Panics if `capacity_tiles < 3` (a GEMM needs three resident tiles).
pub fn simulate_cholesky_ooc(
    nt: usize,
    b: usize,
    capacity_tiles: usize,
    order: LoopOrder,
) -> OocReport {
    assert!(capacity_tiles >= 3, "need at least 3 resident tiles");
    let mut cache = LruCache::new(capacity_tiles);
    let mut total_flops = 0.0;
    let t = |i: usize, j: usize| (i as u32, j as u32);

    match order {
        LoopOrder::RightLooking => {
            for i in 0..nt {
                cache.access(t(i, i), Access::Write);
                total_flops += flops::flops_potrf(b);
                for j in i + 1..nt {
                    cache.access(t(i, i), Access::Read);
                    cache.access(t(j, i), Access::Write);
                    total_flops += flops::flops_trsm(b);
                }
                for k in i + 1..nt {
                    cache.access(t(k, i), Access::Read);
                    cache.access(t(k, k), Access::Write);
                    total_flops += flops::flops_syrk(b);
                    for j in k + 1..nt {
                        cache.access(t(j, i), Access::Read);
                        cache.access(t(k, i), Access::Read);
                        cache.access(t(j, k), Access::Write);
                        total_flops += flops::flops_gemm(b);
                    }
                }
            }
        }
        LoopOrder::LeftLooking => {
            for j in 0..nt {
                // apply all prior panels k < j to column j
                for k in 0..j {
                    cache.access(t(j, k), Access::Read);
                    cache.access(t(j, j), Access::Write);
                    total_flops += flops::flops_syrk(b);
                    for i in j + 1..nt {
                        cache.access(t(i, k), Access::Read);
                        cache.access(t(j, k), Access::Read);
                        cache.access(t(i, j), Access::Write);
                        total_flops += flops::flops_gemm(b);
                    }
                }
                cache.access(t(j, j), Access::Write);
                total_flops += flops::flops_potrf(b);
                for i in j + 1..nt {
                    cache.access(t(j, j), Access::Read);
                    cache.access(t(i, j), Access::Write);
                    total_flops += flops::flops_trsm(b);
                }
            }
        }
    }
    cache.flush();
    OocReport {
        tile_loads: cache.loads(),
        tile_stores: cache.stores(),
        flops: total_flops,
        b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{olivry_lower_bound, symmetric_lower_bound};

    #[test]
    fn infinite_memory_loads_each_tile_once() {
        let nt = 10;
        let tiles = nt * (nt + 1) / 2;
        for order in [LoopOrder::RightLooking, LoopOrder::LeftLooking] {
            let r = simulate_cholesky_ooc(nt, 4, tiles + 8, order);
            assert_eq!(r.tile_loads as usize, tiles, "{order:?}");
            // everything is written (all tiles are factor output)
            assert_eq!(r.tile_stores as usize, tiles, "{order:?}");
        }
    }

    #[test]
    fn intensity_scales_like_sqrt_capacity() {
        // Section III-E: intensity can reach Theta(sqrt(M)) — but only with
        // a memory-aware loop order. Left-looking (the basis of Béreux's
        // narrow-block algorithm) gains ~2x intensity from 4x memory;
        // right-looking streams the whole trailing matrix every iteration,
        // so its intensity barely improves with more memory. Both facts are
        // asserted: they are jointly the reason out-of-core algorithms and
        // communication-efficient distributions need bespoke designs.
        let nt = 48;
        let b = 4;
        let gain = |order| {
            let small = simulate_cholesky_ooc(nt, b, 16, order);
            let large = simulate_cholesky_ooc(nt, b, 64, order);
            large.intensity() / small.intensity()
        };
        let ll = gain(LoopOrder::LeftLooking);
        assert!((1.4..3.0).contains(&ll), "left-looking gain {ll}");
        let rl = gain(LoopOrder::RightLooking);
        assert!(
            rl < ll,
            "right-looking {rl} should scale worse than left-looking {ll}"
        );
        assert!(rl < 1.5, "right-looking barely benefits from memory: {rl}");
    }

    #[test]
    fn transfers_respect_lower_bounds() {
        // Any correct execution must move at least the symmetric lower
        // bound's volume (up to the bound's O(n^2) slack, negligible here).
        let nt = 40;
        let b = 8;
        let capacity = 32;
        let m_elems = capacity * b * b;
        let n = nt * b;
        for order in [LoopOrder::RightLooking, LoopOrder::LeftLooking] {
            let r = simulate_cholesky_ooc(nt, b, capacity, order);
            assert!(
                r.transfers() > 0.5 * olivry_lower_bound(n, m_elems),
                "{order:?}: {} vs Olivry {}",
                r.transfers(),
                olivry_lower_bound(n, m_elems)
            );
            let _ = symmetric_lower_bound(n, m_elems);
        }
    }

    #[test]
    fn left_looking_beats_right_looking_when_memory_is_tight() {
        // the classical out-of-core observation Béreux's narrow-block
        // algorithm builds on: left-looking reuses the panel under
        // construction, right-looking streams the trailing matrix.
        let nt = 40;
        let rl = simulate_cholesky_ooc(nt, 4, 24, LoopOrder::RightLooking);
        let ll = simulate_cholesky_ooc(nt, 4, 24, LoopOrder::LeftLooking);
        assert!(
            ll.transfers() < rl.transfers(),
            "left {} vs right {}",
            ll.transfers(),
            rl.transfers()
        );
    }

    #[test]
    fn flops_match_dense_formula() {
        let nt = 12;
        let b = 8;
        let r = simulate_cholesky_ooc(nt, b, 100, LoopOrder::RightLooking);
        let dense = sbc_kernels::flops_cholesky_total(nt * b);
        assert!((r.flops / dense - 1.0).abs() < 0.02);
    }
}
