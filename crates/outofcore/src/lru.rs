//! An exact LRU cache simulator over tile accesses.

use std::collections::HashMap;

/// Access mode of a cached tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Tile is only read.
    Read,
    /// Tile is modified (dirty on eviction).
    Write,
}

/// An LRU cache of fixed capacity (in tiles) tracking load and writeback
/// transfer counts.
///
/// Recency is maintained with a monotonically increasing clock and a scan
/// on eviction — O(capacity) per miss, plenty for the simulation sizes the
/// tests and benches use.
pub struct LruCache {
    capacity: usize,
    clock: u64,
    /// tile -> (last use, dirty)
    resident: HashMap<(u32, u32), (u64, bool)>,
    loads: u64,
    stores: u64,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` tiles.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            clock: 0,
            resident: HashMap::new(),
            loads: 0,
            stores: 0,
        }
    }

    /// Touches a tile, loading it on a miss (evicting the least recently
    /// used tile first if full). Write accesses mark the tile dirty.
    pub fn access(&mut self, tile: (u32, u32), mode: Access) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.resident.get_mut(&tile) {
            entry.0 = clock;
            entry.1 |= mode == Access::Write;
            return;
        }
        if self.resident.len() >= self.capacity {
            // evict the LRU tile
            let (&victim, &(_, dirty)) = self
                .resident
                .iter()
                .min_by_key(|(_, &(t, _))| t)
                .expect("cache not empty");
            self.resident.remove(&victim);
            if dirty {
                self.stores += 1;
            }
        }
        self.loads += 1;
        self.resident.insert(tile, (clock, mode == Access::Write));
    }

    /// Flushes all dirty tiles (end of computation).
    pub fn flush(&mut self) {
        for (_, (_, dirty)) in self.resident.drain() {
            if dirty {
                self.stores += 1;
            }
        }
    }

    /// Tiles loaded from slow memory so far.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Dirty tiles written back so far.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Tiles currently resident.
    pub fn resident(&self) -> usize {
        self.resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_does_not_load() {
        let mut c = LruCache::new(2);
        c.access((0, 0), Access::Read);
        c.access((0, 0), Access::Read);
        assert_eq!(c.loads(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = LruCache::new(2);
        c.access((0, 0), Access::Read);
        c.access((1, 1), Access::Read);
        c.access((0, 0), Access::Read); // refresh (0,0)
        c.access((2, 2), Access::Read); // evicts (1,1)
        assert_eq!(c.loads(), 3);
        c.access((0, 0), Access::Read); // still resident
        assert_eq!(c.loads(), 3);
        c.access((1, 1), Access::Read); // was evicted: miss
        assert_eq!(c.loads(), 4);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = LruCache::new(1);
        c.access((0, 0), Access::Write);
        c.access((1, 1), Access::Read); // evicts dirty (0,0)
        assert_eq!(c.stores(), 1);
        c.flush(); // (1,1) clean: no store
        assert_eq!(c.stores(), 1);
    }

    #[test]
    fn flush_writes_dirty_residents() {
        let mut c = LruCache::new(4);
        c.access((0, 0), Access::Write);
        c.access((1, 0), Access::Write);
        c.access((2, 0), Access::Read);
        c.flush();
        assert_eq!(c.stores(), 2);
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn capacity_respected() {
        let mut c = LruCache::new(3);
        for i in 0..10u32 {
            c.access((i, 0), Access::Read);
            assert!(c.resident() <= 3);
        }
    }
}
