//! Closed-form transfer bounds for sequential out-of-core Cholesky
//! (Section III-E and Section II of the paper).

/// Béreux's narrow-block out-of-core Cholesky: at most
/// `n^3 / (3 sqrt(M)) + O(n^2)` element transfers.
pub fn bereux_transfers(n: usize, m: usize) -> f64 {
    let n = n as f64;
    n * n * n / (3.0 * (m as f64).sqrt())
}

/// The automated lower bound of Olivry et al. (PLDI 2020):
/// at least `n^3 / (6 sqrt(M))` transfers for Cholesky.
pub fn olivry_lower_bound(n: usize, m: usize) -> f64 {
    let n = n as f64;
    n * n * n / (6.0 * (m as f64).sqrt())
}

/// The tight symmetric lower bound of Beaumont et al. (2022):
/// `n^3 / (3 sqrt(2) sqrt(M))` transfers — shown to be attainable, proving
/// Béreux's algorithm is a factor `sqrt(2)` off optimal.
pub fn symmetric_lower_bound(n: usize, m: usize) -> f64 {
    let n = n as f64;
    n * n * n / (3.0 * std::f64::consts::SQRT_2 * (m as f64).sqrt())
}

/// Maximal arithmetic intensity (flops per transfer) for Cholesky in the
/// two-level model: `sqrt(2 M)` (from the symmetric lower bound, since the
/// factorization performs `n^3/3` flops).
pub fn max_intensity_cholesky(m: usize) -> f64 {
    (2.0 * m as f64).sqrt()
}

/// Maximal arithmetic intensity for LU: `sqrt(M)` (Section III-E).
pub fn max_intensity_lu(m: usize) -> f64 {
    (m as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_ordering() {
        // symmetric lower bound < Olivry's?  No: 1/(3 sqrt(2)) ~ 0.2357 vs
        // 1/6 ~ 0.1667 — the symmetric bound is *larger* (tighter).
        let (n, m) = (10_000, 1 << 20);
        assert!(symmetric_lower_bound(n, m) > olivry_lower_bound(n, m));
        assert!(bereux_transfers(n, m) > symmetric_lower_bound(n, m));
        // Béreux is exactly sqrt(2) above the tight bound
        let ratio = bereux_transfers(n, m) / symmetric_lower_bound(n, m);
        assert!((ratio - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn intensity_gap_is_sqrt2() {
        let m = 4096;
        assert!(
            (max_intensity_cholesky(m) / max_intensity_lu(m) - std::f64::consts::SQRT_2).abs()
                < 1e-12
        );
    }

    #[test]
    fn scaling_in_m() {
        // quadrupling the memory halves the bound
        let n = 4000;
        assert!((bereux_transfers(n, 4096) / bereux_transfers(n, 4 * 4096) - 2.0).abs() < 1e-12);
    }
}
