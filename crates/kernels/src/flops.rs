//! Floating-point operation counts for tile kernels.
//!
//! These are the standard LAPACK working-note counts; the discrete-event
//! simulator converts them to execution times via the platform's per-core
//! throughput and per-kernel efficiency model, and the benchmark harness
//! uses them to report GFlop/s exactly as the paper does
//! (`F = #flops / (t * P)`, Section V-E).

/// Flops of a `b x b` GEMM update (`2 b^3`).
#[inline]
pub fn flops_gemm(b: usize) -> f64 {
    let b = b as f64;
    2.0 * b * b * b
}

/// Flops of a `b x b` SYRK lower update (`b^2 (b + 1)`).
#[inline]
pub fn flops_syrk(b: usize) -> f64 {
    let b = b as f64;
    b * b * (b + 1.0)
}

/// Flops of a `b x b` LU factorization without pivoting
/// (`2b^3/3 - b^2/2 - b/6`).
#[inline]
pub fn flops_getrf(b: usize) -> f64 {
    let b = b as f64;
    2.0 * b * b * b / 3.0 - b * b / 2.0 - b / 6.0
}

/// Total flops of an `n x n` LU factorization (same formula as
/// [`flops_getrf`]).
#[inline]
pub fn flops_lu_total(n: usize) -> f64 {
    flops_getrf(n)
}

/// Flops of a `b x b` triangular solve with `b` right-hand sides (`b^3`).
#[inline]
pub fn flops_trsm(b: usize) -> f64 {
    let b = b as f64;
    b * b * b
}

/// Flops of a `b x b` Cholesky factorization (`b^3/3 + b^2/2 + b/6`).
#[inline]
pub fn flops_potrf(b: usize) -> f64 {
    let b = b as f64;
    b * b * b / 3.0 + b * b / 2.0 + b / 6.0
}

/// Flops of a `b x b` lower-triangular inversion (`b^3/3 + 2b/3`).
#[inline]
pub fn flops_trtri(b: usize) -> f64 {
    let b = b as f64;
    b * b * b / 3.0 + 2.0 * b / 3.0
}

/// Flops of a `b x b` LAUUM (`b^3/3 + b^2/2 + b/6`, same as POTRF).
#[inline]
pub fn flops_lauum(b: usize) -> f64 {
    flops_potrf(b)
}

/// Flops of a `b x b` triangular matrix multiply (`b^3`).
#[inline]
pub fn flops_trmm(b: usize) -> f64 {
    let b = b as f64;
    b * b * b
}

/// Total flops of an `n x n` Cholesky factorization (`n^3/3 + n^2/2 + n/6`).
#[inline]
pub fn flops_cholesky_total(n: usize) -> f64 {
    flops_potrf(n)
}

/// Total flops of POSV on an `n x n` matrix with `nrhs` right-hand sides:
/// factorization plus two triangular solves (`2 n^2 nrhs` each... combined
/// `2 n^2 nrhs`).
#[inline]
pub fn flops_posv_total(n: usize, nrhs: usize) -> f64 {
    flops_cholesky_total(n) + 2.0 * (n as f64) * (n as f64) * (nrhs as f64)
}

/// Total flops of POTRI on an `n x n` matrix: POTRF + TRTRI + LAUUM
/// (`n^3/3 + n^3/3 + n^3/3 = n^3` to leading order).
#[inline]
pub fn flops_potri_total(n: usize) -> f64 {
    flops_cholesky_total(n) + flops_trtri(n) + flops_lauum(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leading_terms() {
        let b = 1000;
        let b3 = 1.0e9;
        assert!((flops_gemm(b) / (2.0 * b3) - 1.0).abs() < 1e-9);
        assert!((flops_trsm(b) / b3 - 1.0).abs() < 1e-9);
        assert!((flops_syrk(b) / b3 - 1.0).abs() < 2e-3);
        assert!((flops_potrf(b) / (b3 / 3.0) - 1.0).abs() < 2e-3);
        assert!((flops_trtri(b) / (b3 / 3.0) - 1.0).abs() < 1e-3);
        assert!((flops_lauum(b) / (b3 / 3.0) - 1.0).abs() < 2e-3);
    }

    #[test]
    fn tiled_sum_matches_total_leading_order() {
        // Sum of per-task flops over Algorithm 1 tiles should approach the
        // dense total as N grows.
        let b = 100;
        let nt = 30;
        let mut sum = 0.0;
        for i in 0..nt {
            sum += flops_potrf(b);
            for _j in i + 1..nt {
                sum += flops_trsm(b);
            }
            for k in i + 1..nt {
                sum += flops_syrk(b);
                for _j in k + 1..nt {
                    sum += flops_gemm(b);
                }
            }
        }
        let total = flops_cholesky_total(b * nt);
        assert!((sum / total - 1.0).abs() < 0.02, "sum={sum} total={total}");
    }

    #[test]
    fn posv_and_potri_totals() {
        let n = 500;
        assert!(flops_posv_total(n, 50) > flops_cholesky_total(n));
        let potri = flops_potri_total(n);
        let n3 = (n as f64).powi(3);
        assert!((potri / n3 - 1.0).abs() < 0.01);
    }
}
