//! Symmetric rank-k update restricted to the lower triangle.
//!
//! The Cholesky diagonal update (line 6 of Algorithm 1) is
//! `A[k][k] := A[k][k] - A[k][i] * A[k][i]^T`, i.e. `syrk` with
//! `trans = No`, `alpha = -1`, `beta = 1`. The tiled LAUUM sweep needs the
//! transposed form `C := C + A^T * A` as well.

use crate::{Tile, Trans};

/// `C := alpha * A * A^T + beta * C` (`trans = No`) or
/// `C := alpha * A^T * A + beta * C` (`trans = Yes`), updating only the
/// lower triangle (including the diagonal) of `C`.
///
/// The strictly upper triangle of `C` is left untouched, matching BLAS
/// `dsyrk` with `uplo = 'L'`.
///
/// # Panics
/// Panics if `a` and `c` have different dimensions.
///
/// The reference implementation behind [`crate::KernelBackend::Naive`].
pub(crate) fn naive_syrk(trans: Trans, alpha: f64, a: &Tile, beta: f64, c: &mut Tile) {
    let n = c.dim();
    assert_eq!(a.dim(), n, "syrk: A dimension mismatch");

    if beta != 1.0 {
        for j in 0..n {
            for i in j..n {
                let v = beta * c.get(i, j);
                c.set(i, j, v);
            }
        }
    }
    if alpha == 0.0 {
        return;
    }

    match trans {
        Trans::No => {
            // C[i,j] += alpha * sum_k A[i,k] A[j,k]  (i >= j)
            // axpy form over columns of A, writing only rows >= j.
            for j in 0..n {
                for k in 0..n {
                    let s = alpha * a.get(j, k);
                    if s != 0.0 {
                        let acol = a.col(k);
                        let ccol = c.col_mut(j);
                        for i in j..n {
                            ccol[i] += s * acol[i];
                        }
                    }
                }
            }
        }
        Trans::Yes => {
            // C[i,j] += alpha * dot(A[:,i], A[:,j])  (i >= j)
            for j in 0..n {
                for i in j..n {
                    let mut d = 0.0;
                    let ai = a.col(i);
                    let aj = a.col(j);
                    for k in 0..n {
                        d += ai[k] * aj[k];
                    }
                    let v = c.get(i, j) + alpha * d;
                    c.set(i, j, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::naive_syrk as syrk;
    use crate::reference::ref_gemm;
    use crate::{Tile, Trans};

    fn tile_a(b: usize) -> Tile {
        Tile::from_fn(b, |i, j| ((i * 3 + j * 5) % 13) as f64 - 6.0)
    }

    fn check(trans: Trans, alpha: f64, beta: f64) {
        for b in [1, 2, 7, 16] {
            let a = tile_a(b);
            let c0 = Tile::from_fn(b, |i, j| ((i * j) % 5) as f64);
            let mut c = c0.clone();
            syrk(trans, alpha, &a, beta, &mut c);
            // reference: full gemm with A as both operands
            let mut full = c0.clone();
            match trans {
                Trans::No => ref_gemm(Trans::No, Trans::Yes, alpha, &a, &a, beta, &mut full),
                Trans::Yes => ref_gemm(Trans::Yes, Trans::No, alpha, &a, &a, beta, &mut full),
            }
            for i in 0..b {
                for j in 0..b {
                    if i >= j {
                        assert!(
                            (c.get(i, j) - full.get(i, j)).abs() < 1e-10,
                            "lower mismatch at ({i},{j}) trans={trans:?}"
                        );
                    } else {
                        assert_eq!(c.get(i, j), c0.get(i, j), "upper modified at ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn syrk_notrans_matches_gemm_lower() {
        check(Trans::No, -1.0, 1.0);
        check(Trans::No, 2.0, 0.5);
    }

    #[test]
    fn syrk_trans_matches_gemm_lower() {
        check(Trans::Yes, 1.0, 1.0);
        check(Trans::Yes, -0.5, 0.0);
    }

    #[test]
    fn syrk_result_diagonal_nonnegative_when_subtracting_from_gram() {
        // C = A A^T has nonnegative diagonal; syrk(alpha=1, beta=0) from zero.
        let a = tile_a(9);
        let mut c = Tile::zeros(9);
        syrk(Trans::No, 1.0, &a, 0.0, &mut c);
        for i in 0..9 {
            assert!(c.get(i, i) >= 0.0);
        }
    }
}
