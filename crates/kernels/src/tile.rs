//! Square, column-major `f64` tiles.
//!
//! A [`Tile`] is the unit of data distribution and communication in the SBC
//! reproduction: the input matrix is split into `N × N` tiles of dimension
//! `b × b`, each owned by one node, and every inter-node message carries
//! exactly one tile (Section V-C of the paper: Chameleon/StarPU communicate
//! tile-by-tile with point-to-point messages).

/// A square `b × b` tile of `f64` values in column-major order.
///
/// Column-major matches BLAS/LAPACK conventions and makes the inner loops of
/// the kernels unit-stride over rows of a column.
#[derive(Clone, PartialEq)]
pub struct Tile {
    b: usize,
    data: Vec<f64>,
}

impl std::fmt::Debug for Tile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Tile({}x{}):", self.b, self.b)?;
        for i in 0..self.b.min(8) {
            for j in 0..self.b.min(8) {
                write!(f, " {:10.4}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        if self.b > 8 {
            writeln!(f, " ...")?;
        }
        Ok(())
    }
}

impl Tile {
    /// Creates a zero-filled tile of dimension `b`.
    pub fn zeros(b: usize) -> Self {
        Tile {
            b,
            data: vec![0.0; b * b],
        }
    }

    /// Creates an identity tile of dimension `b`.
    pub fn identity(b: usize) -> Self {
        let mut t = Tile::zeros(b);
        for i in 0..b {
            t.set(i, i, 1.0);
        }
        t
    }

    /// Creates a tile from a column-major slice of length `b * b`.
    ///
    /// # Panics
    /// Panics if `data.len() != b * b`.
    pub fn from_column_major(b: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), b * b, "tile data length must be b*b");
        Tile { b, data }
    }

    /// Creates a tile by evaluating `f(i, j)` at every (row, column).
    pub fn from_fn(b: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(b * b);
        for j in 0..b {
            for i in 0..b {
                data.push(f(i, j));
            }
        }
        Tile { b, data }
    }

    /// Tile dimension `b`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.b
    }

    /// Number of bytes of payload this tile carries over the network.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Element at (row `i`, column `j`).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.b && j < self.b);
        self.data[j * self.b + i]
    }

    /// Sets the element at (row `i`, column `j`).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.b && j < self.b);
        self.data[j * self.b + i] = v;
    }

    /// Raw column-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw column-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows column `j` as a slice of `b` contiguous rows.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.b..(j + 1) * self.b]
    }

    /// Mutably borrows column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.b..(j + 1) * self.b]
    }

    /// Returns the transposed tile.
    pub fn transposed(&self) -> Tile {
        Tile::from_fn(self.b, |i, j| self.get(j, i))
    }

    /// Zeroes the strictly upper triangle, keeping the lower triangle and
    /// diagonal. Used to canonicalize Cholesky factors for comparisons.
    pub fn zero_strict_upper(&mut self) {
        for j in 1..self.b {
            for i in 0..j {
                self.set(i, j, 0.0);
            }
        }
    }

    /// Mirrors the lower triangle onto the upper triangle, producing a
    /// symmetric tile. Used when expanding symmetric storage.
    pub fn symmetrize_from_lower(&mut self) {
        for j in 1..self.b {
            for i in 0..j {
                let v = self.get(j, i);
                self.set(i, j, v);
            }
        }
    }

    /// Frobenius norm of the tile.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Max-abs norm of the tile.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// `self += other`, element-wise. Used by 2.5D reduction tasks.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn add_assign(&mut self, other: &Tile) {
        assert_eq!(self.b, other.b, "tile dimension mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self -= other`, element-wise.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn sub_assign(&mut self, other: &Tile) {
        assert_eq!(self.b, other.b, "tile dimension mismatch in sub_assign");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
    }

    /// Maximum absolute element-wise difference between two tiles.
    pub fn max_abs_diff(&self, other: &Tile) -> f64 {
        assert_eq!(self.b, other.b, "tile dimension mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Tile::zeros(4);
        assert_eq!(z.dim(), 4);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let id = Tile::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn column_major_layout() {
        let t = Tile::from_column_major(2, vec![1.0, 2.0, 3.0, 4.0]);
        // column 0 is [1, 2], column 1 is [3, 4]
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.get(0, 1), 3.0);
        assert_eq!(t.get(1, 1), 4.0);
        assert_eq!(t.col(1), &[3.0, 4.0]);
    }

    #[test]
    fn from_fn_matches_get() {
        let t = Tile::from_fn(5, |i, j| (i * 10 + j) as f64);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(t.get(i, j), (i * 10 + j) as f64);
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let t = Tile::from_fn(6, |i, j| (3 * i + 7 * j) as f64);
        assert_eq!(t.transposed().transposed(), t);
        assert_eq!(t.transposed().get(2, 5), t.get(5, 2));
    }

    #[test]
    fn bytes_counts_payload() {
        assert_eq!(Tile::zeros(500).bytes(), 500 * 500 * 8); // the paper's 2 MB tile
    }

    #[test]
    fn add_sub_assign_roundtrip() {
        let a = Tile::from_fn(4, |i, j| (i + j) as f64);
        let b = Tile::from_fn(4, |i, j| (i * j) as f64);
        let mut c = a.clone();
        c.add_assign(&b);
        c.sub_assign(&b);
        assert!(c.max_abs_diff(&a) == 0.0);
    }

    #[test]
    fn zero_strict_upper_keeps_lower() {
        let mut t = Tile::from_fn(4, |_, _| 1.0);
        t.zero_strict_upper();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(t.get(i, j), if j > i { 0.0 } else { 1.0 });
            }
        }
    }

    #[test]
    fn symmetrize_from_lower_mirrors() {
        let mut t = Tile::from_fn(3, |i, j| if i >= j { (i * 3 + j) as f64 } else { -1.0 });
        t.symmetrize_from_lower();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.get(i, j), t.get(j, i));
            }
        }
    }

    #[test]
    fn norms() {
        let t = Tile::from_column_major(2, vec![3.0, 0.0, 0.0, 4.0]);
        assert!((t.norm_fro() - 5.0).abs() < 1e-12);
        assert_eq!(t.norm_max(), 4.0);
    }
}
