//! General matrix-matrix multiply on tiles.
//!
//! The Cholesky update (line 8 of Algorithm 1) is
//! `A[j][k] := A[j][k] - A[j][i] * A[k][i]^T`, i.e. a `gemm` with
//! `transa = NoTrans`, `transb = Trans`, `alpha = -1`, `beta = 1`.
//! The tiled TRTRI and LAUUM sweeps need the `NoTrans/NoTrans` and
//! `Trans/NoTrans` combinations as well, so the full set is provided.

use crate::Tile;

/// Transposition selector for [`crate::Kernels::gemm`] operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// `C := alpha * op(A) * op(B) + beta * C` on square tiles.
///
/// All inner loops are unit-stride over tile columns where the transpose
/// combination allows it (`No/No` and `No/Yes` use column axpys, `Yes/No`
/// uses column dot products).
///
/// # Panics
/// Panics if the tiles do not all share the same dimension.
///
/// The reference implementation behind [`KernelBackend::Naive`]
/// (see [`crate::KernelBackend`]); every other backend is bit-identical
/// to this operation order.
///
/// [`KernelBackend::Naive`]: crate::KernelBackend::Naive
pub(crate) fn naive_gemm(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &Tile,
    b: &Tile,
    beta: f64,
    c: &mut Tile,
) {
    let n = c.dim();
    assert_eq!(a.dim(), n, "gemm: A dimension mismatch");
    assert_eq!(b.dim(), n, "gemm: B dimension mismatch");

    if beta != 1.0 {
        for x in c.as_mut_slice() {
            *x *= beta;
        }
    }
    if alpha == 0.0 {
        return;
    }

    match (transa, transb) {
        (Trans::No, Trans::No) => {
            // C[:,j] += alpha * sum_k B[k,j] * A[:,k]
            for j in 0..n {
                for k in 0..n {
                    let s = alpha * b.get(k, j);
                    if s != 0.0 {
                        axpy(s, a.col(k), c.col_mut(j));
                    }
                }
            }
        }
        (Trans::No, Trans::Yes) => {
            // C[:,j] += alpha * sum_k B[j,k] * A[:,k]
            for j in 0..n {
                for k in 0..n {
                    let s = alpha * b.get(j, k);
                    if s != 0.0 {
                        axpy(s, a.col(k), c.col_mut(j));
                    }
                }
            }
        }
        (Trans::Yes, Trans::No) => {
            // C[i,j] += alpha * dot(A[:,i], B[:,j])
            for j in 0..n {
                for i in 0..n {
                    let d = dot(a.col(i), b.col(j));
                    let v = c.get(i, j) + alpha * d;
                    c.set(i, j, v);
                }
            }
        }
        (Trans::Yes, Trans::Yes) => {
            // C[i,j] += alpha * sum_k A[k,i] * B[j,k]
            for j in 0..n {
                for i in 0..n {
                    let mut d = 0.0;
                    for k in 0..n {
                        d += a.get(k, i) * b.get(j, k);
                    }
                    let v = c.get(i, j) + alpha * d;
                    c.set(i, j, v);
                }
            }
        }
    }
}

#[inline]
fn axpy(s: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += s * xi;
    }
}

#[inline]
fn dot(x: &[f64], y: &[f64]) -> f64 {
    // Four-way unrolled accumulation: keeps FP dependency chains short and
    // vectorizes well without changing results materially.
    let mut acc = [0.0_f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += x[i] * y[i];
        acc[1] += x[i + 1] * y[i + 1];
        acc[2] += x[i + 2] * y[i + 2];
        acc[3] += x[i + 3] * y[i + 3];
    }
    let mut rest = 0.0;
    for i in chunks * 4..x.len() {
        rest += x[i] * y[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + rest
}

#[cfg(test)]
mod tests {
    use super::{naive_gemm as gemm, Trans};
    use crate::reference::ref_gemm;
    use crate::Tile;

    fn tile_a(b: usize) -> Tile {
        Tile::from_fn(b, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0)
    }
    fn tile_b(b: usize) -> Tile {
        Tile::from_fn(b, |i, j| ((i * 5 + j * 13) % 9) as f64 - 4.0)
    }
    fn tile_c(b: usize) -> Tile {
        Tile::from_fn(b, |i, j| ((i + 2 * j) % 7) as f64)
    }

    fn check(transa: Trans, transb: Trans, alpha: f64, beta: f64) {
        for b in [1, 2, 5, 16, 17] {
            let a = tile_a(b);
            let bb = tile_b(b);
            let mut c = tile_c(b);
            let mut cref = c.clone();
            gemm(transa, transb, alpha, &a, &bb, beta, &mut c);
            ref_gemm(transa, transb, alpha, &a, &bb, beta, &mut cref);
            assert!(
                c.max_abs_diff(&cref) < 1e-10,
                "gemm mismatch for {transa:?}/{transb:?} b={b}"
            );
        }
    }

    #[test]
    fn gemm_nn_matches_reference() {
        check(Trans::No, Trans::No, -1.0, 1.0);
        check(Trans::No, Trans::No, 2.5, 0.5);
    }

    #[test]
    fn gemm_nt_matches_reference() {
        check(Trans::No, Trans::Yes, -1.0, 1.0);
        check(Trans::No, Trans::Yes, 0.7, 2.0);
    }

    #[test]
    fn gemm_tn_matches_reference() {
        check(Trans::Yes, Trans::No, 1.0, 1.0);
        check(Trans::Yes, Trans::No, -3.0, 0.0);
    }

    #[test]
    fn gemm_tt_matches_reference() {
        check(Trans::Yes, Trans::Yes, 1.0, 1.0);
        check(Trans::Yes, Trans::Yes, -0.5, 1.5);
    }

    #[test]
    fn gemm_alpha_zero_scales_only() {
        let a = tile_a(8);
        let b = tile_b(8);
        let mut c = tile_c(8);
        let orig = c.clone();
        gemm(Trans::No, Trans::No, 0.0, &a, &b, 2.0, &mut c);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(c.get(i, j), 2.0 * orig.get(i, j));
            }
        }
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = tile_a(6);
        let id = Tile::identity(6);
        let mut c = Tile::zeros(6);
        gemm(Trans::No, Trans::No, 1.0, &a, &id, 0.0, &mut c);
        assert!(c.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gemm: A dimension mismatch")]
    fn gemm_rejects_mismatched_tiles() {
        let a = Tile::zeros(4);
        let b = Tile::zeros(5);
        let mut c = Tile::zeros(5);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 1.0, &mut c);
    }
}
