//! In-tile inversion of a lower triangular tile.

use crate::{KernelError, Tile};

/// In-place inversion of the lower triangle of `a` (non-unit diagonal):
/// on success the lower triangle of `a` holds `L^{-1}`.
///
/// Mirrors LAPACK `dtrti2` with `uplo = 'L'`, processing columns right to
/// left: for the partition `L = [[l_jj, 0], [v, T]]` with `T` already
/// inverted, the new column is `-T^{-1} v / l_jj` (a triangular
/// matrix-vector product followed by a scale).
///
/// The strictly upper triangle of `a` is neither read nor written.
///
/// # Errors
/// Returns [`KernelError::SingularTriangle`] when a diagonal entry is zero.
///
/// The reference implementation behind [`crate::KernelBackend::Naive`].
pub(crate) fn naive_trtri(a: &mut Tile) -> Result<(), KernelError> {
    let n = a.dim();
    for j in (0..n).rev() {
        let d = a.get(j, j);
        if d == 0.0 || !d.is_finite() {
            return Err(KernelError::SingularTriangle(j));
        }
        let inv = 1.0 / d;
        a.set(j, j, inv);
        if j + 1 < n {
            // x := T * x where T = inv(L[j+1.., j+1..]) already stored,
            // x = A[j+1.., j]. Lower trmv, in place, processed bottom-up via
            // column axpys: for k descending, x[k+1..] += x[k]*T[k+1..,k];
            // x[k] *= T[k,k].
            for k in (j + 1..n).rev() {
                let xk = a.get(k, j);
                if xk != 0.0 {
                    for i in k + 1..n {
                        let v = a.get(i, j) + xk * a.get(i, k);
                        a.set(i, j, v);
                    }
                }
                a.set(k, j, xk * a.get(k, k));
            }
            // scale by -1/l_jj (inv already is 1/l_jj)
            for i in j + 1..n {
                let v = -inv * a.get(i, j);
                a.set(i, j, v);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::naive_trtri as trtri;
    use crate::gemm::{naive_gemm as gemm, Trans};
    use crate::reference::random_lower_tile;
    use crate::{KernelError, Tile};

    #[test]
    fn trtri_inverts_lower_tiles() {
        for n in [1, 2, 3, 8, 21] {
            let mut l = random_lower_tile(n, 31);
            l.zero_strict_upper();
            let mut w = l.clone();
            trtri(&mut w).expect("nonsingular triangle must invert");
            w.zero_strict_upper();
            let mut prod = Tile::zeros(n);
            gemm(Trans::No, Trans::No, 1.0, &l, &w, 0.0, &mut prod);
            assert!(prod.max_abs_diff(&Tile::identity(n)) < 1e-9, "n={n}");
            // and the other side
            let mut prod2 = Tile::zeros(n);
            gemm(Trans::No, Trans::No, 1.0, &w, &l, 0.0, &mut prod2);
            assert!(prod2.max_abs_diff(&Tile::identity(n)) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn trtri_result_is_lower_triangular() {
        let mut l = random_lower_tile(9, 4);
        l.zero_strict_upper();
        trtri(&mut l).unwrap();
        for j in 1..9 {
            for i in 0..j {
                assert_eq!(l.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn trtri_diagonal_tile() {
        let mut a = Tile::from_fn(5, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        trtri(&mut a).unwrap();
        for i in 0..5 {
            assert!((a.get(i, i) - 1.0 / (i + 1) as f64).abs() < 1e-14);
        }
    }

    #[test]
    fn trtri_rejects_singular() {
        let mut a = Tile::identity(4);
        a.set(2, 2, 0.0);
        assert_eq!(trtri(&mut a), Err(KernelError::SingularTriangle(2)));
    }

    #[test]
    fn trtri_is_involutive() {
        let mut l = random_lower_tile(12, 8);
        l.zero_strict_upper();
        let orig = l.clone();
        trtri(&mut l).unwrap();
        trtri(&mut l).unwrap();
        assert!(l.max_abs_diff(&orig) < 1e-8);
    }
}
