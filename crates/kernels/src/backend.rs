//! Pluggable kernel backends: one dispatch surface, several engines.
//!
//! [`KernelBackend`] selects *how* the tile kernels execute without changing
//! *what* they compute: every backend is **bit-identical** to [`Naive`] —
//! the same floating-point operations are applied to every output element in
//! the same order, so factors, residuals and the analytic byte accounting
//! the paper's experiments rest on are unchanged by the backend choice.
//!
//! * [`Naive`] — the reference loop nests (unit-stride axpys and dots).
//! * [`Blocked`] — cache-blocked, register-tiled GEMM/SYRK/TRSM/POTRF
//!   written as `chunks_exact`-style portable code the compiler
//!   autovectorizes. Non-multiple-of-block tile dims fall back to the naive
//!   element order on the ragged edges (which is the same order the
//!   microkernels use, so bit-identity holds everywhere).
//! * [`Arch`] — `std::arch` SIMD microkernels (AVX2 on `x86_64`), compiled
//!   only under the `simd` cargo feature and selected at *runtime* via CPU
//!   feature detection; on any other CPU (or without the feature) it falls
//!   back to [`Blocked`]. The intrinsics use separate multiply and add —
//!   never FMA, which rounds once instead of twice and would break
//!   bit-identity with the scalar backends.
//!
//! [`Naive`]: KernelBackend::Naive
//! [`Blocked`]: KernelBackend::Blocked
//! [`Arch`]: KernelBackend::Arch
//!
//! ## Selection precedence
//!
//! The runtime crates resolve the backend as **env > builder > default**:
//! the `SBC_KERNELS` environment variable (`naive` / `blocked` / `arch`)
//! overrides whatever the builder requested ([`KernelBackend::resolve`]),
//! and the default is [`KernelBackend::Naive`].

use crate::{blocked, KernelError, Tile, Trans};

/// Which engine executes the tile kernels. See the module docs; all
/// variants compute bit-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelBackend {
    /// Reference loop nests (the default).
    #[default]
    Naive,
    /// Cache-blocked, register-tiled portable kernels.
    Blocked,
    /// `std::arch` SIMD kernels (requires the `simd` cargo feature);
    /// silently falls back to [`KernelBackend::Blocked`] when the feature
    /// is off or the CPU lacks the instructions.
    Arch,
}

/// Environment variable overriding the backend choice (`naive` /
/// `blocked` / `arch`); see [`KernelBackend::resolve`].
pub const KERNELS_ENV: &str = "SBC_KERNELS";

impl KernelBackend {
    /// Parses a CLI/env-style backend name.
    pub fn parse(s: &str) -> Option<KernelBackend> {
        match s.to_ascii_lowercase().as_str() {
            "naive" => Some(KernelBackend::Naive),
            "blocked" => Some(KernelBackend::Blocked),
            "arch" | "simd" => Some(KernelBackend::Arch),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelBackend::Naive => "naive",
            KernelBackend::Blocked => "blocked",
            KernelBackend::Arch => "arch",
        }
    }

    /// The backend requested by the [`KERNELS_ENV`] environment variable,
    /// if set to a recognized name.
    pub fn from_env() -> Option<KernelBackend> {
        std::env::var(KERNELS_ENV)
            .ok()
            .and_then(|v| Self::parse(&v))
    }

    /// Applies the selection precedence **env > builder > default**:
    /// returns the [`KERNELS_ENV`] override when present, else `requested`.
    pub fn resolve(requested: KernelBackend) -> KernelBackend {
        Self::from_env().unwrap_or(requested)
    }

    /// The backend that will actually run: [`KernelBackend::Arch`] demotes
    /// itself to [`KernelBackend::Blocked`] when the `simd` feature is off
    /// or the running CPU lacks the required instructions.
    pub fn effective(self) -> KernelBackend {
        match self {
            KernelBackend::Arch if !crate::arch::available() => KernelBackend::Blocked,
            other => other,
        }
    }
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The tile-kernel dispatch surface: every kernel the runtime executes, as
/// methods. Implemented by [`KernelBackend`] (enum dispatch); usable as a
/// trait object where dynamic choice is preferred.
///
/// Semantics, panics and error behavior of each method match the naive
/// reference implementations in the per-operation modules exactly —
/// including bitwise results.
pub trait Kernels {
    /// `C := alpha * op(A) * op(B) + beta * C`; see [`crate::gemm`].
    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &self,
        transa: Trans,
        transb: Trans,
        alpha: f64,
        a: &Tile,
        b: &Tile,
        beta: f64,
        c: &mut Tile,
    );

    /// Symmetric rank-k update of the lower triangle; see [`crate::syrk`].
    fn syrk(&self, trans: Trans, alpha: f64, a: &Tile, beta: f64, c: &mut Tile);

    /// In-tile Cholesky factorization; see [`crate::potrf`].
    fn potrf(&self, a: &mut Tile) -> Result<(), KernelError>;

    /// `B := alpha * B * L^{-T}`; see [`crate::trsm`].
    fn trsm_right_lower_trans(&self, alpha: f64, l: &Tile, b: &mut Tile);

    /// `B := alpha * B * L^{-1}`; see [`crate::trsm`].
    fn trsm_right_lower(&self, alpha: f64, l: &Tile, b: &mut Tile);

    /// `B := alpha * L^{-1} * B`; see [`crate::trsm`].
    fn trsm_left_lower(&self, alpha: f64, l: &Tile, b: &mut Tile);

    /// `B := alpha * L^{-T} * B`; see [`crate::trsm`].
    fn trsm_left_lower_trans(&self, alpha: f64, l: &Tile, b: &mut Tile);

    /// `B := L^{-1} * B` with unit diagonal; see
    /// [`crate::trsm`].
    fn trsm_left_unit_lower(&self, l: &Tile, b: &mut Tile);

    /// `B := B * U^{-1}`; see [`crate::trsm`].
    fn trsm_right_upper(&self, u: &Tile, b: &mut Tile);

    /// In-tile lower-triangular inversion; see [`crate::trtri`].
    fn trtri(&self, a: &mut Tile) -> Result<(), KernelError>;

    /// In-tile `L^T * L` product; see [`crate::lauum`].
    fn lauum(&self, a: &mut Tile);

    /// In-tile unpivoted LU; see [`crate::getrf`].
    fn getrf(&self, a: &mut Tile) -> Result<(), KernelError>;

    /// `B := L * B`; see [`crate::trmm`].
    fn trmm_left_lower(&self, l: &Tile, b: &mut Tile);

    /// `B := L^T * B`; see [`crate::trmm`].
    fn trmm_left_lower_trans(&self, l: &Tile, b: &mut Tile);
}

impl Kernels for KernelBackend {
    fn gemm(
        &self,
        transa: Trans,
        transb: Trans,
        alpha: f64,
        a: &Tile,
        b: &Tile,
        beta: f64,
        c: &mut Tile,
    ) {
        match self.effective() {
            KernelBackend::Naive => crate::gemm::naive_gemm(transa, transb, alpha, a, b, beta, c),
            KernelBackend::Blocked => blocked::gemm(transa, transb, alpha, a, b, beta, c),
            KernelBackend::Arch => crate::arch::gemm(transa, transb, alpha, a, b, beta, c),
        }
    }

    fn syrk(&self, trans: Trans, alpha: f64, a: &Tile, beta: f64, c: &mut Tile) {
        match self.effective() {
            KernelBackend::Naive => crate::syrk::naive_syrk(trans, alpha, a, beta, c),
            // the Arch backend accelerates GEMM with intrinsics and shares
            // the blocked implementations for everything else
            _ => blocked::syrk(trans, alpha, a, beta, c),
        }
    }

    fn potrf(&self, a: &mut Tile) -> Result<(), KernelError> {
        match self.effective() {
            KernelBackend::Naive => crate::potrf::naive_potrf(a),
            _ => blocked::potrf(a),
        }
    }

    fn trsm_right_lower_trans(&self, alpha: f64, l: &Tile, b: &mut Tile) {
        match self.effective() {
            KernelBackend::Naive => crate::trsm::naive_trsm_right_lower_trans(alpha, l, b),
            _ => blocked::trsm_right_lower_trans(alpha, l, b),
        }
    }

    fn trsm_right_lower(&self, alpha: f64, l: &Tile, b: &mut Tile) {
        crate::trsm::naive_trsm_right_lower(alpha, l, b);
    }

    fn trsm_left_lower(&self, alpha: f64, l: &Tile, b: &mut Tile) {
        crate::trsm::naive_trsm_left_lower(alpha, l, b);
    }

    fn trsm_left_lower_trans(&self, alpha: f64, l: &Tile, b: &mut Tile) {
        crate::trsm::naive_trsm_left_lower_trans(alpha, l, b);
    }

    fn trsm_left_unit_lower(&self, l: &Tile, b: &mut Tile) {
        crate::trsm::naive_trsm_left_unit_lower(l, b);
    }

    fn trsm_right_upper(&self, u: &Tile, b: &mut Tile) {
        crate::trsm::naive_trsm_right_upper(u, b);
    }

    fn trtri(&self, a: &mut Tile) -> Result<(), KernelError> {
        crate::trtri::naive_trtri(a)
    }

    fn lauum(&self, a: &mut Tile) {
        crate::lauum::naive_lauum(a);
    }

    fn getrf(&self, a: &mut Tile) -> Result<(), KernelError> {
        crate::getrf::naive_getrf(a)
    }

    fn trmm_left_lower(&self, l: &Tile, b: &mut Tile) {
        crate::trmm::naive_trmm_left_lower(l, b);
    }

    fn trmm_left_lower_trans(&self, l: &Tile, b: &mut Tile) {
        crate::trmm::naive_trmm_left_lower_trans(l, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        for b in [
            KernelBackend::Naive,
            KernelBackend::Blocked,
            KernelBackend::Arch,
        ] {
            assert_eq!(KernelBackend::parse(b.name()), Some(b));
        }
        assert_eq!(
            KernelBackend::parse("BLOCKED"),
            Some(KernelBackend::Blocked)
        );
        assert_eq!(KernelBackend::parse("mkl"), None);
    }

    #[test]
    fn default_is_naive() {
        assert_eq!(KernelBackend::default(), KernelBackend::Naive);
    }

    #[test]
    fn effective_never_returns_unrunnable_arch() {
        // whatever the feature/CPU situation, `effective` must settle on a
        // backend that can actually execute
        let eff = KernelBackend::Arch.effective();
        assert!(matches!(eff, KernelBackend::Arch | KernelBackend::Blocked));
        if !crate::arch::available() {
            assert_eq!(eff, KernelBackend::Blocked);
        }
        assert_eq!(KernelBackend::Naive.effective(), KernelBackend::Naive);
    }

    #[test]
    fn trait_object_dispatch_works() {
        let k: &dyn Kernels = &KernelBackend::Blocked;
        let mut t = Tile::identity(5);
        k.potrf(&mut t).unwrap();
        assert!(t.max_abs_diff(&Tile::identity(5)) == 0.0);
    }
}
