//! In-tile Cholesky factorization.

use crate::{KernelError, Tile};

/// In-place Cholesky factorization of the lower triangle of `a`:
/// on success, the lower triangle (with diagonal) of `a` contains `L` such
/// that `L * L^T` equals the symmetric matrix whose lower triangle `a` held.
///
/// Only the lower triangle of `a` is read and written; the strictly upper
/// triangle is left untouched (matching LAPACK `dpotrf` with `uplo = 'L'`).
///
/// Right-looking unblocked algorithm with unit-stride column updates.
///
/// # Errors
/// Returns [`KernelError::NotPositiveDefinite`] if a pivot is not strictly
/// positive; `a` is left partially factorized in that case.
///
/// The reference implementation behind [`crate::KernelBackend::Naive`].
pub(crate) fn naive_potrf(a: &mut Tile) -> Result<(), KernelError> {
    let n = a.dim();
    for k in 0..n {
        let akk = a.get(k, k);
        if akk <= 0.0 || !akk.is_finite() {
            return Err(KernelError::NotPositiveDefinite(k));
        }
        let pivot = akk.sqrt();
        a.set(k, k, pivot);
        // scale the column below the pivot
        {
            let col = a.col_mut(k);
            for v in &mut col[k + 1..n] {
                *v /= pivot;
            }
        }
        // trailing update: for j > k, A[j.., j] -= A[j,k] * A[j.., k]
        for j in k + 1..n {
            let s = a.get(j, k);
            if s != 0.0 {
                // borrow columns k (read) and j (write) simultaneously
                let data = a.as_mut_slice();
                let (lo, hi) = data.split_at_mut(j * n);
                let ck = &lo[k * n..k * n + n];
                let cj = &mut hi[..n];
                for i in j..n {
                    cj[i] -= s * ck[i];
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::naive_potrf as potrf;
    use crate::gemm::{naive_gemm as gemm, Trans};
    use crate::reference::random_spd_tile;
    use crate::{KernelError, Tile};

    #[test]
    fn potrf_reconstructs_spd_tile() {
        for n in [1, 2, 3, 8, 25] {
            let a0 = random_spd_tile(n, 17);
            let mut l = a0.clone();
            potrf(&mut l).expect("SPD tile must factorize");
            l.zero_strict_upper();
            let mut rec = Tile::zeros(n);
            gemm(Trans::No, Trans::Yes, 1.0, &l, &l, 0.0, &mut rec);
            // compare lower triangles (a0 is symmetric so full compare works)
            let scale = a0.norm_max().max(1.0);
            for i in 0..n {
                for j in 0..=i {
                    assert!(
                        (rec.get(i, j) - a0.get(i, j)).abs() < 1e-10 * scale,
                        "n={n} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn potrf_identity_gives_identity() {
        let mut a = Tile::identity(7);
        potrf(&mut a).unwrap();
        assert!(a.max_abs_diff(&Tile::identity(7)) < 1e-14);
    }

    #[test]
    fn potrf_diagonal_tile() {
        let mut a = Tile::from_fn(4, |i, j| {
            if i == j {
                ((i + 2) * (i + 2)) as f64
            } else {
                0.0
            }
        });
        potrf(&mut a).unwrap();
        for i in 0..4 {
            assert!((a.get(i, i) - (i + 2) as f64).abs() < 1e-14);
        }
    }

    #[test]
    fn potrf_rejects_indefinite() {
        let mut a = Tile::from_fn(3, |i, j| if i == j { -1.0 } else { 0.0 });
        assert_eq!(potrf(&mut a), Err(KernelError::NotPositiveDefinite(0)));
    }

    #[test]
    fn potrf_rejects_semidefinite_rank_deficient() {
        // rank-1 matrix ones * ones^T: second pivot becomes exactly 0.
        let mut a = Tile::from_fn(3, |_, _| 1.0);
        assert_eq!(potrf(&mut a), Err(KernelError::NotPositiveDefinite(1)));
    }

    #[test]
    fn potrf_does_not_touch_strict_upper() {
        let n = 5;
        let mut a = random_spd_tile(n, 3);
        for j in 1..n {
            for i in 0..j {
                a.set(i, j, 777.0);
            }
        }
        potrf(&mut a).unwrap();
        for j in 1..n {
            for i in 0..j {
                assert_eq!(a.get(i, j), 777.0);
            }
        }
    }
}
