//! `std::arch` SIMD kernels behind the `simd` cargo feature.
//!
//! Compiled only with `--features simd` on `x86_64`; everywhere else this
//! module is a thin stub that reports the backend as unavailable so
//! [`crate::KernelBackend::Arch`] resolves to the blocked backend. The
//! AVX2 path is selected at *runtime* with `is_x86_feature_detected!`, so
//! a `simd` build still runs correctly on CPUs without AVX2.
//!
//! Bit-identity with the scalar backends is preserved by construction:
//!
//! * vector lanes hold independent output rows, and IEEE-754 `mul`/`add`
//!   on a lane is the same exactly-rounded operation as its scalar
//!   counterpart — the per-element operation sequence is unchanged;
//! * multiplication and addition stay **separate instructions** — FMA
//!   (`_mm256_fmadd_pd`) rounds once instead of twice and would produce
//!   different (if slightly more accurate) bits, so it is deliberately
//!   not used;
//! * the `s != 0.0` skips and the `k`-ascending accumulation order of the
//!   naive kernels are replicated, and ragged rows/columns run the same
//!   scalar edge loops as the blocked backend.
//!
//! Only GEMM's `transa = No` forms — the microkernel that dominates the
//! trailing update — are written with intrinsics; every other kernel of
//! the `Arch` backend shares the blocked implementations.

#![allow(dead_code)]

use crate::blocked;
use crate::gemm::Trans;
use crate::Tile;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod imp {
    use super::*;
    use core::arch::x86_64::*;

    pub(crate) fn available() -> bool {
        // the detection macro caches its answer internally
        is_x86_feature_detected!("avx2")
    }

    pub(crate) fn gemm(
        transa: Trans,
        transb: Trans,
        alpha: f64,
        a: &Tile,
        b: &Tile,
        beta: f64,
        c: &mut Tile,
    ) {
        if !available() {
            return blocked::gemm(transa, transb, alpha, a, b, beta, c);
        }
        let n = c.dim();
        assert_eq!(a.dim(), n, "gemm: A dimension mismatch");
        assert_eq!(b.dim(), n, "gemm: B dimension mismatch");

        if beta != 1.0 {
            for x in c.as_mut_slice() {
                *x *= beta;
            }
        }
        if alpha == 0.0 {
            return;
        }

        match (transa, transb) {
            (Trans::No, _) => gemm_axpy_avx2(transb, alpha, a, b, c),
            (Trans::Yes, Trans::No) => blocked::gemm_dot_blocked(alpha, a, b, c),
            (Trans::Yes, Trans::Yes) => blocked::gemm_tt_blocked(alpha, a, b, c),
        }
    }

    fn gemm_axpy_avx2(transb: Trans, alpha: f64, a: &Tile, b: &Tile, c: &mut Tile) {
        let n = c.dim();
        let mut j0 = 0;
        while j0 + 4 <= n {
            if blocked::panel_all_nonzero(n, transb, alpha, b, j0) {
                let (c0, c1, c2, c3) = blocked::four_cols_mut(c, j0);
                // SAFETY: available() checked AVX2 at the entry point
                unsafe { axpy_panel4_avx2(n, transb, alpha, a, b, j0, c0, c1, c2, c3) };
            } else {
                // a zero in the scale stream: naive-order skip semantics
                for t in 0..4 {
                    blocked::axpy_col_naive(transb, alpha, a, b, c, j0 + t);
                }
            }
            j0 += 4;
        }
        for j in j0..n {
            blocked::axpy_col_naive(transb, alpha, a, b, c, j);
        }
    }

    /// AVX2 twin of `blocked::axpy_panel4`: eight rows (two 4-lane
    /// vectors) of four destination columns accumulate in registers over
    /// the full `k` sweep. Branch-free — the caller pre-scanned the panel
    /// for zero scales. Multiply and add are separate instructions — see
    /// the module docs.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn axpy_panel4_avx2(
        n: usize,
        transb: Trans,
        alpha: f64,
        a: &Tile,
        b: &Tile,
        j0: usize,
        c0: &mut [f64],
        c1: &mut [f64],
        c2: &mut [f64],
        c3: &mut [f64],
    ) {
        let mut i0 = 0;
        while i0 + 8 <= n {
            let mut acc0a = _mm256_loadu_pd(c0.as_ptr().add(i0));
            let mut acc0b = _mm256_loadu_pd(c0.as_ptr().add(i0 + 4));
            let mut acc1a = _mm256_loadu_pd(c1.as_ptr().add(i0));
            let mut acc1b = _mm256_loadu_pd(c1.as_ptr().add(i0 + 4));
            let mut acc2a = _mm256_loadu_pd(c2.as_ptr().add(i0));
            let mut acc2b = _mm256_loadu_pd(c2.as_ptr().add(i0 + 4));
            let mut acc3a = _mm256_loadu_pd(c3.as_ptr().add(i0));
            let mut acc3b = _mm256_loadu_pd(c3.as_ptr().add(i0 + 4));
            for k in 0..n {
                let s0 = _mm256_set1_pd(blocked::s_val(transb, alpha, b, j0, k));
                let s1 = _mm256_set1_pd(blocked::s_val(transb, alpha, b, j0 + 1, k));
                let s2 = _mm256_set1_pd(blocked::s_val(transb, alpha, b, j0 + 2, k));
                let s3 = _mm256_set1_pd(blocked::s_val(transb, alpha, b, j0 + 3, k));
                let ap = a.col(k).as_ptr();
                let ava = _mm256_loadu_pd(ap.add(i0));
                let avb = _mm256_loadu_pd(ap.add(i0 + 4));
                acc0a = _mm256_add_pd(acc0a, _mm256_mul_pd(s0, ava));
                acc0b = _mm256_add_pd(acc0b, _mm256_mul_pd(s0, avb));
                acc1a = _mm256_add_pd(acc1a, _mm256_mul_pd(s1, ava));
                acc1b = _mm256_add_pd(acc1b, _mm256_mul_pd(s1, avb));
                acc2a = _mm256_add_pd(acc2a, _mm256_mul_pd(s2, ava));
                acc2b = _mm256_add_pd(acc2b, _mm256_mul_pd(s2, avb));
                acc3a = _mm256_add_pd(acc3a, _mm256_mul_pd(s3, ava));
                acc3b = _mm256_add_pd(acc3b, _mm256_mul_pd(s3, avb));
            }
            _mm256_storeu_pd(c0.as_mut_ptr().add(i0), acc0a);
            _mm256_storeu_pd(c0.as_mut_ptr().add(i0 + 4), acc0b);
            _mm256_storeu_pd(c1.as_mut_ptr().add(i0), acc1a);
            _mm256_storeu_pd(c1.as_mut_ptr().add(i0 + 4), acc1b);
            _mm256_storeu_pd(c2.as_mut_ptr().add(i0), acc2a);
            _mm256_storeu_pd(c2.as_mut_ptr().add(i0 + 4), acc2b);
            _mm256_storeu_pd(c3.as_mut_ptr().add(i0), acc3a);
            _mm256_storeu_pd(c3.as_mut_ptr().add(i0 + 4), acc3b);
            i0 += 8;
        }
        // ragged rows: scalar accumulation in the identical k order
        for i in i0..n {
            let mut v0 = c0[i];
            let mut v1 = c1[i];
            let mut v2 = c2[i];
            let mut v3 = c3[i];
            for k in 0..n {
                let av = a.col(k)[i];
                v0 += blocked::s_val(transb, alpha, b, j0, k) * av;
                v1 += blocked::s_val(transb, alpha, b, j0 + 1, k) * av;
                v2 += blocked::s_val(transb, alpha, b, j0 + 2, k) * av;
                v3 += blocked::s_val(transb, alpha, b, j0 + 3, k) * av;
            }
            c0[i] = v0;
            c1[i] = v1;
            c2[i] = v2;
            c3[i] = v3;
        }
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
mod imp {
    use super::*;

    pub(crate) fn available() -> bool {
        false
    }

    pub(crate) fn gemm(
        transa: Trans,
        transb: Trans,
        alpha: f64,
        a: &Tile,
        b: &Tile,
        beta: f64,
        c: &mut Tile,
    ) {
        blocked::gemm(transa, transb, alpha, a, b, beta, c);
    }
}

pub(crate) use imp::{available, gemm};

#[cfg(all(test, feature = "simd", target_arch = "x86_64"))]
mod tests {
    use super::*;
    use crate::gemm::naive_gemm;
    use crate::reference::random_tile;

    #[test]
    fn avx2_gemm_bitwise_matches_naive() {
        if !available() {
            return; // CPU without AVX2: nothing to check, Arch == Blocked
        }
        for n in [1, 3, 4, 7, 8, 9, 16, 23, 33, 40, 64] {
            let a = random_tile(n, 21);
            let b = random_tile(n, 22);
            for tb in [Trans::No, Trans::Yes] {
                let mut c1 = random_tile(n, 23);
                let mut c2 = c1.clone();
                naive_gemm(Trans::No, tb, -1.0, &a, &b, 1.0, &mut c1);
                gemm(Trans::No, tb, -1.0, &a, &b, 1.0, &mut c2);
                assert!(c1.max_abs_diff(&c2) == 0.0, "avx2 gemm tb={tb:?} n={n}");
            }
        }
    }
}
