//! # sbc-kernels — tile-level dense linear algebra kernels
//!
//! This crate provides the sequential, tile-level kernels used by the tiled
//! Cholesky factorization (Algorithm 1 of the SBC paper) and by the derived
//! operations (POSV solve sweeps, TRTRI triangular inversion, LAUUM
//! triangular product):
//!
//! * [`gemm`] — general matrix-matrix multiply-accumulate (all transpose
//!   combinations),
//! * [`syrk`] — symmetric rank-k update restricted to the lower triangle,
//! * [`trsm`] — triangular solves with a tile of right-hand sides,
//! * [`potrf`] — in-tile Cholesky factorization,
//! * [`trtri`] — in-tile lower-triangular inversion,
//! * [`lauum`] — in-tile product `L^T * L` (lower part),
//! * [`trmm`] — triangular matrix multiply.
//!
//! All kernels operate on [`Tile`]s: square, column-major, `f64` blocks of a
//! fixed dimension `b`. They are the Rust stand-in for the MKL/BLAS kernels
//! used by the paper's Chameleon experiments, validated against naive
//! reference implementations in [`reference`].
//!
//! ## Backends
//!
//! Kernels are dispatched through the [`Kernels`] trait, implemented by
//! [`KernelBackend`]: `Naive` (the reference loop nests), `Blocked`
//! (cache-blocked, register-tiled portable kernels) and `Arch`
//! (`std::arch` SIMD behind the `simd` cargo feature, with runtime
//! fallback to `Blocked`). All backends produce **bit-identical** results;
//! selection precedence is the `SBC_KERNELS` env var, then the builder,
//! then the `Naive` default. All entry points go through [`Kernels`]; the
//! per-operation modules only expose the reference implementations
//! crate-internally.
//!
//! The kernels never allocate (except [`Tile`] constructors) and are
//! `Send + Sync`-friendly: they borrow tiles mutably/immutably so the
//! runtime crates can execute them from worker threads without locks.

#![warn(missing_docs)]

mod arch;
pub mod backend;
mod blocked;
pub mod flops;
pub mod gemm;
pub mod getrf;
pub mod lauum;
pub mod potrf;
pub mod reference;
pub mod syrk;
pub mod tile;
pub mod trmm;
pub mod trsm;
pub mod trtri;

pub use backend::{KernelBackend, Kernels, KERNELS_ENV};
pub use flops::{
    flops_cholesky_total, flops_gemm, flops_getrf, flops_lauum, flops_lu_total, flops_posv_total,
    flops_potrf, flops_potri_total, flops_syrk, flops_trmm, flops_trsm, flops_trtri,
};
pub use gemm::Trans;
pub use tile::Tile;

/// Errors produced by kernels that can fail numerically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// `potrf` hit a non-positive pivot: the tile (and hence the matrix) is
    /// not symmetric positive definite. Carries the 0-based index of the
    /// offending diagonal entry within the tile.
    NotPositiveDefinite(usize),
    /// `trtri` hit an exactly-zero diagonal entry (singular triangle).
    SingularTriangle(usize),
    /// Two tiles passed to a kernel have mismatched dimensions.
    DimensionMismatch {
        /// Dimension expected by the kernel call.
        expected: usize,
        /// Dimension actually found.
        found: usize,
    },
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::NotPositiveDefinite(i) => {
                write!(f, "matrix not positive definite (pivot {i})")
            }
            KernelError::SingularTriangle(i) => {
                write!(f, "singular triangular matrix (diagonal {i})")
            }
            KernelError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "tile dimension mismatch: expected {expected}, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for KernelError {}
