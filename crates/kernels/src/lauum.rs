//! In-tile triangular product `L^T * L` (lower part).

use crate::Tile;

/// In-place computation of the lower triangle of `L^T * L`, where `L` is the
/// lower triangle (with diagonal) of `a`.
///
/// Mirrors LAPACK `dlauu2` with `uplo = 'L'`: processing rows top to bottom,
/// row `i` of the result only needs the trailing part of the original `L`
/// (rows `>= i`), which has not been overwritten yet.
///
/// The strictly upper triangle of `a` is neither read nor written.
///
/// The reference implementation behind [`crate::KernelBackend::Naive`].
pub(crate) fn naive_lauum(a: &mut Tile) {
    let n = a.dim();
    for i in 0..n {
        let aii = a.get(i, i);
        if i + 1 < n {
            // A[i, 0..i] := aii * A[i, 0..i] + A[i+1.., 0..i]^T . A[i+1.., i]
            for j in 0..i {
                let mut s = aii * a.get(i, j);
                for k in i + 1..n {
                    s += a.get(k, j) * a.get(k, i);
                }
                a.set(i, j, s);
            }
            // A[i,i] := dot(A[i.., i], A[i.., i])
            let col = a.col(i);
            let d: f64 = col[i..n].iter().map(|v| v * v).sum();
            a.set(i, i, d);
        } else {
            // last row: scale by aii
            for j in 0..n {
                let v = aii * a.get(i, j);
                a.set(i, j, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::naive_lauum as lauum;
    use crate::gemm::{naive_gemm as gemm, Trans};
    use crate::reference::random_lower_tile;
    use crate::Tile;

    #[test]
    fn lauum_matches_explicit_product() {
        for n in [1, 2, 3, 8, 17] {
            let mut l = random_lower_tile(n, 77);
            l.zero_strict_upper();
            let mut out = l.clone();
            lauum(&mut out);
            let mut full = Tile::zeros(n);
            gemm(Trans::Yes, Trans::No, 1.0, &l, &l, 0.0, &mut full);
            for i in 0..n {
                for j in 0..=i {
                    assert!(
                        (out.get(i, j) - full.get(i, j)).abs() < 1e-9,
                        "n={n} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn lauum_identity() {
        let mut a = Tile::identity(6);
        lauum(&mut a);
        assert!(a.max_abs_diff(&Tile::identity(6)) < 1e-14);
    }

    #[test]
    fn lauum_does_not_touch_strict_upper() {
        let n = 7;
        let mut a = random_lower_tile(n, 2);
        for j in 1..n {
            for i in 0..j {
                a.set(i, j, -55.0);
            }
        }
        lauum(&mut a);
        for j in 1..n {
            for i in 0..j {
                assert_eq!(a.get(i, j), -55.0);
            }
        }
    }

    #[test]
    fn lauum_diagonal_squares() {
        let mut a = Tile::from_fn(4, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        lauum(&mut a);
        for i in 0..4 {
            assert!((a.get(i, i) - ((i + 1) * (i + 1)) as f64).abs() < 1e-12);
        }
    }
}
