//! In-tile LU factorization without pivoting.
//!
//! The paper's Section III-E contrasts Cholesky with LU throughout: 2DBC
//! reaches the optimal arithmetic intensity for LU but not for Cholesky,
//! which is exactly the gap SBC closes. The LU substrate (this kernel, the
//! tiled algorithm, its task graph and communication counts) lets the
//! library demonstrate that comparison experimentally.

use crate::{KernelError, Tile};

/// In-place LU factorization of `a` without pivoting: on success `a` holds
/// the unit-lower factor `L` strictly below the diagonal and the upper
/// factor `U` on and above it, with `L * U` equal to the original tile.
///
/// Right-looking unblocked algorithm with unit-stride column updates.
/// No pivoting is performed (matching the paper's "LU factorization
/// without pivoting" comparisons), so inputs must have a nonzero pivot
/// sequence — e.g. diagonally dominant matrices.
///
/// # Errors
/// Returns [`KernelError::SingularTriangle`] on a zero (or non-finite)
/// pivot.
///
/// The reference implementation behind [`crate::KernelBackend::Naive`].
pub(crate) fn naive_getrf(a: &mut Tile) -> Result<(), KernelError> {
    let n = a.dim();
    for kk in 0..n {
        let pivot = a.get(kk, kk);
        if pivot == 0.0 || !pivot.is_finite() {
            return Err(KernelError::SingularTriangle(kk));
        }
        // scale the column below the pivot
        {
            let col = a.col_mut(kk);
            for v in &mut col[kk + 1..n] {
                *v /= pivot;
            }
        }
        // trailing update: A[kk+1.., j] -= A[kk+1.., kk] * A[kk, j]
        for j in kk + 1..n {
            let s = a.get(kk, j);
            if s != 0.0 {
                let data = a.as_mut_slice();
                let (lo, hi) = data.split_at_mut(j * n);
                let ck = &lo[kk * n..kk * n + n];
                let cj = &mut hi[..n];
                for i in kk + 1..n {
                    cj[i] -= s * ck[i];
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::naive_getrf as getrf;
    use crate::gemm::{naive_gemm as gemm, Trans};
    use crate::reference::SplitMix64;
    use crate::{KernelError, Tile};

    fn dominant_tile(n: usize, seed: u64) -> Tile {
        let mut rng = SplitMix64::new(seed);
        Tile::from_fn(n, |i, j| {
            if i == j {
                2.0 * n as f64 + rng.next_f64()
            } else {
                rng.next_signed()
            }
        })
    }

    fn split_lu(a: &Tile) -> (Tile, Tile) {
        let n = a.dim();
        let l = Tile::from_fn(n, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                a.get(i, j)
            } else {
                0.0
            }
        });
        let u = Tile::from_fn(n, |i, j| if i <= j { a.get(i, j) } else { 0.0 });
        (l, u)
    }

    #[test]
    fn getrf_reconstructs() {
        for n in [1, 2, 3, 9, 20] {
            let a0 = dominant_tile(n, 7);
            let mut f = a0.clone();
            getrf(&mut f).unwrap();
            let (l, u) = split_lu(&f);
            let mut rec = Tile::zeros(n);
            gemm(Trans::No, Trans::No, 1.0, &l, &u, 0.0, &mut rec);
            assert!(rec.max_abs_diff(&a0) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn getrf_identity() {
        let mut a = Tile::identity(6);
        getrf(&mut a).unwrap();
        assert!(a.max_abs_diff(&Tile::identity(6)) < 1e-15);
    }

    #[test]
    fn getrf_rejects_zero_pivot() {
        let mut a = Tile::zeros(3);
        assert_eq!(getrf(&mut a), Err(KernelError::SingularTriangle(0)));
    }

    #[test]
    fn getrf_matches_potrf_for_spd() {
        // For SPD A, LU without pivoting gives U = D L^T with the Cholesky
        // L scaled; check agreement of the first column: L_lu[:,0] =
        // L_chol[:,0] / L_chol[0,0].
        let a0 = crate::reference::random_spd_tile(8, 3);
        let mut lu = a0.clone();
        getrf(&mut lu).unwrap();
        let mut ch = a0.clone();
        crate::potrf::naive_potrf(&mut ch).unwrap();
        for i in 1..8 {
            let expect = ch.get(i, 0) / ch.get(0, 0);
            assert!((lu.get(i, 0) - expect).abs() < 1e-12);
        }
    }
}
