//! Triangular solves with a tile of right-hand sides.
//!
//! Three variants are needed by the tiled algorithms:
//!
//! * [`trsm_right_lower_trans`] — `B := alpha * B * L^{-T}`: the panel TRSM
//!   of Cholesky (line 4 of Algorithm 1), `A[j][i] := A[j][i] * L[i][i]^{-T}`.
//! * [`trsm_right_lower`] — `B := alpha * B * L^{-1}`: used (with
//!   `alpha = -1`) by the tiled TRTRI sweep.
//! * [`trsm_left_lower`] / [`trsm_left_lower_trans`] — `B := alpha * L^{-1} B`
//!   and `B := alpha * L^{-T} B`: the forward/backward sweeps of POSV and the
//!   left solve of TRTRI.
//!
//! `L` is always the lower triangle (with diagonal) of the `l` tile; its
//! strictly upper part is ignored, matching BLAS `dtrsm` semantics.

use crate::Tile;

/// `B := alpha * B * L^{-T}` where `L` is lower triangular (non-unit).
///
/// Solves `X * L^T = alpha * B` in place. Forward sweep over columns:
/// `X[:,j] = (alpha*B[:,j] - sum_{k<j} X[:,k] * L[j,k]) / L[j,j]`.
///
/// The reference implementation behind [`crate::KernelBackend::Naive`].
pub(crate) fn naive_trsm_right_lower_trans(alpha: f64, l: &Tile, b: &mut Tile) {
    let n = b.dim();
    assert_eq!(l.dim(), n, "trsm: L dimension mismatch");
    scale(alpha, b);
    for j in 0..n {
        for k in 0..j {
            let s = l.get(j, k);
            if s != 0.0 {
                let (xk, xj) = two_cols(b, k, j);
                for i in 0..n {
                    xj[i] -= s * xk[i];
                }
            }
        }
        let d = l.get(j, j);
        for x in b.col_mut(j) {
            *x /= d;
        }
    }
}

/// `B := alpha * B * L^{-1}` where `L` is lower triangular (non-unit).
///
/// Solves `X * L = alpha * B` in place. Backward sweep over columns:
/// `X[:,j] = (alpha*B[:,j] - sum_{k>j} X[:,k] * L[k,j]) / L[j,j]`.
///
/// The reference implementation behind [`crate::KernelBackend::Naive`].
pub(crate) fn naive_trsm_right_lower(alpha: f64, l: &Tile, b: &mut Tile) {
    let n = b.dim();
    assert_eq!(l.dim(), n, "trsm: L dimension mismatch");
    scale(alpha, b);
    for j in (0..n).rev() {
        for k in j + 1..n {
            let s = l.get(k, j);
            if s != 0.0 {
                let (xk, xj) = two_cols(b, k, j);
                for i in 0..n {
                    xj[i] -= s * xk[i];
                }
            }
        }
        let d = l.get(j, j);
        for x in b.col_mut(j) {
            *x /= d;
        }
    }
}

/// `B := alpha * L^{-1} * B` where `L` is lower triangular (non-unit).
///
/// Forward substitution applied to every column of `B`, using unit-stride
/// axpys with the columns of `L`.
///
/// The reference implementation behind [`crate::KernelBackend::Naive`].
pub(crate) fn naive_trsm_left_lower(alpha: f64, l: &Tile, b: &mut Tile) {
    let n = b.dim();
    assert_eq!(l.dim(), n, "trsm: L dimension mismatch");
    scale(alpha, b);
    for j in 0..n {
        let x = b.col_mut(j);
        for k in 0..n {
            x[k] /= l.get(k, k);
            let xk = x[k];
            if xk != 0.0 {
                let lcol = l.col(k);
                for i in k + 1..n {
                    x[i] -= xk * lcol[i];
                }
            }
        }
    }
}

/// `B := alpha * L^{-T} * B` where `L` is lower triangular (non-unit).
///
/// Backward substitution applied to every column of `B`, using unit-stride
/// dot products with the columns of `L`.
///
/// The reference implementation behind [`crate::KernelBackend::Naive`].
pub(crate) fn naive_trsm_left_lower_trans(alpha: f64, l: &Tile, b: &mut Tile) {
    let n = b.dim();
    assert_eq!(l.dim(), n, "trsm: L dimension mismatch");
    scale(alpha, b);
    for j in 0..n {
        let x = b.col_mut(j);
        for k in (0..n).rev() {
            let lcol = l.col(k);
            let mut s = x[k];
            for i in k + 1..n {
                s -= lcol[i] * x[i];
            }
            x[k] = s / lcol[k];
        }
    }
}

/// `B := L^{-1} * B` where `L` is *unit* lower triangular (diagonal assumed
/// 1, stored values on the diagonal ignored — they hold `U` after an
/// in-place LU factorization).
///
/// The row-panel solve of the tiled LU factorization.
///
/// The reference implementation behind [`crate::KernelBackend::Naive`].
pub(crate) fn naive_trsm_left_unit_lower(l: &Tile, b: &mut Tile) {
    let n = b.dim();
    assert_eq!(l.dim(), n, "trsm: L dimension mismatch");
    for j in 0..n {
        let x = b.col_mut(j);
        for kk in 0..n {
            let xk = x[kk];
            if xk != 0.0 {
                let lcol = l.col(kk);
                for i in kk + 1..n {
                    x[i] -= xk * lcol[i];
                }
            }
        }
    }
}

/// `B := B * U^{-1}` where `U` is upper triangular (non-unit).
///
/// The column-panel solve of the tiled LU factorization. Forward sweep over
/// columns: `X[:,j] = (B[:,j] - sum_{k<j} X[:,k] U[k,j]) / U[j,j]`.
///
/// The reference implementation behind [`crate::KernelBackend::Naive`].
pub(crate) fn naive_trsm_right_upper(u: &Tile, b: &mut Tile) {
    let n = b.dim();
    assert_eq!(u.dim(), n, "trsm: U dimension mismatch");
    for j in 0..n {
        for kk in 0..j {
            let s = u.get(kk, j);
            if s != 0.0 {
                let (xk, xj) = two_cols(b, kk, j);
                for i in 0..n {
                    xj[i] -= s * xk[i];
                }
            }
        }
        let d = u.get(j, j);
        for x in b.col_mut(j) {
            *x /= d;
        }
    }
}

fn scale(alpha: f64, b: &mut Tile) {
    if alpha != 1.0 {
        for x in b.as_mut_slice() {
            *x *= alpha;
        }
    }
}

/// Borrows two distinct columns of a tile mutably/immutably.
fn two_cols(t: &mut Tile, src: usize, dst: usize) -> (&[f64], &mut [f64]) {
    let n = t.dim();
    assert_ne!(src, dst);
    let data = t.as_mut_slice();
    if src < dst {
        let (lo, hi) = data.split_at_mut(dst * n);
        (&lo[src * n..src * n + n], &mut hi[..n])
    } else {
        let (lo, hi) = data.split_at_mut(src * n);
        let dstcol = &mut lo[dst * n..dst * n + n];
        // SAFETY-free trick: reborrow via split; hi starts at src column.
        (&hi[..n], dstcol)
    }
}

#[cfg(test)]
mod tests {
    use super::{
        naive_trsm_left_lower as trsm_left_lower,
        naive_trsm_left_lower_trans as trsm_left_lower_trans,
        naive_trsm_left_unit_lower as trsm_left_unit_lower,
        naive_trsm_right_lower as trsm_right_lower,
        naive_trsm_right_lower_trans as trsm_right_lower_trans,
        naive_trsm_right_upper as trsm_right_upper,
    };
    use crate::gemm::{naive_gemm as gemm, Trans};
    use crate::reference::random_lower_tile;
    use crate::Tile;

    fn rhs(bdim: usize) -> Tile {
        Tile::from_fn(bdim, |i, j| ((i * 11 + j * 7) % 17) as f64 - 8.0)
    }

    #[test]
    fn right_lower_trans_solves() {
        for n in [1, 2, 3, 8, 19] {
            let l = random_lower_tile(n, 42);
            let b0 = rhs(n);
            let mut x = b0.clone();
            trsm_right_lower_trans(1.0, &l, &mut x);
            // check X * L^T == B
            let mut lt = l.clone();
            lt.zero_strict_upper();
            let mut prod = Tile::zeros(n);
            gemm(Trans::No, Trans::Yes, 1.0, &x, &lt, 0.0, &mut prod);
            assert!(prod.max_abs_diff(&b0) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn right_lower_solves() {
        for n in [1, 2, 3, 8, 19] {
            let l = random_lower_tile(n, 7);
            let b0 = rhs(n);
            let mut x = b0.clone();
            trsm_right_lower(-1.0, &l, &mut x);
            // check X * L == -B
            let mut ll = l.clone();
            ll.zero_strict_upper();
            let mut prod = Tile::zeros(n);
            gemm(Trans::No, Trans::No, 1.0, &x, &ll, 0.0, &mut prod);
            let mut neg = b0.clone();
            for v in neg.as_mut_slice() {
                *v = -*v;
            }
            assert!(prod.max_abs_diff(&neg) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn left_lower_solves() {
        for n in [1, 2, 3, 8, 19] {
            let l = random_lower_tile(n, 13);
            let b0 = rhs(n);
            let mut x = b0.clone();
            trsm_left_lower(1.0, &l, &mut x);
            let mut ll = l.clone();
            ll.zero_strict_upper();
            let mut prod = Tile::zeros(n);
            gemm(Trans::No, Trans::No, 1.0, &ll, &x, 0.0, &mut prod);
            assert!(prod.max_abs_diff(&b0) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn left_lower_trans_solves() {
        for n in [1, 2, 3, 8, 19] {
            let l = random_lower_tile(n, 99);
            let b0 = rhs(n);
            let mut x = b0.clone();
            trsm_left_lower_trans(1.0, &l, &mut x);
            let mut ll = l.clone();
            ll.zero_strict_upper();
            let mut prod = Tile::zeros(n);
            gemm(Trans::Yes, Trans::No, 1.0, &ll, &x, 0.0, &mut prod);
            assert!(prod.max_abs_diff(&b0) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn trsm_ignores_strict_upper_of_l() {
        let n = 6;
        let l = random_lower_tile(n, 5);
        let mut l_dirty = l.clone();
        for j in 1..n {
            for i in 0..j {
                l_dirty.set(i, j, 123.0); // garbage above the diagonal
            }
        }
        let b0 = rhs(n);
        let mut x1 = b0.clone();
        let mut x2 = b0.clone();
        trsm_right_lower_trans(1.0, &l, &mut x1);
        trsm_right_lower_trans(1.0, &l_dirty, &mut x2);
        assert!(x1.max_abs_diff(&x2) == 0.0);
    }

    #[test]
    fn left_and_right_variants_are_transpose_consistent() {
        // (L^{-1} B)^T == B^T L^{-T}
        let n = 10;
        let l = random_lower_tile(n, 3);
        let b0 = rhs(n);
        let mut left = b0.clone();
        trsm_left_lower(1.0, &l, &mut left);
        let mut right = b0.transposed();
        trsm_right_lower_trans(1.0, &l, &mut right);
        assert!(left.transposed().max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn left_unit_lower_solves() {
        for n in [1, 2, 5, 13] {
            let l = random_lower_tile(n, 44);
            let b0 = rhs(n);
            let mut x = b0.clone();
            trsm_left_unit_lower(&l, &mut x);
            // build the unit-lower matrix explicitly and multiply back
            let lu = Tile::from_fn(n, |i, j| {
                if i == j {
                    1.0
                } else if i > j {
                    l.get(i, j)
                } else {
                    0.0
                }
            });
            let mut prod = Tile::zeros(n);
            gemm(Trans::No, Trans::No, 1.0, &lu, &x, 0.0, &mut prod);
            assert!(prod.max_abs_diff(&b0) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn right_upper_solves() {
        for n in [1, 2, 5, 13] {
            // upper triangle from the transpose of a lower tile
            let l = random_lower_tile(n, 45);
            let u = Tile::from_fn(n, |i, j| if i <= j { l.get(j, i) } else { 0.0 });
            let b0 = rhs(n);
            let mut x = b0.clone();
            trsm_right_upper(&u, &mut x);
            let mut prod = Tile::zeros(n);
            gemm(Trans::No, Trans::No, 1.0, &x, &u, 0.0, &mut prod);
            assert!(prod.max_abs_diff(&b0) < 1e-8, "n={n}");
        }
    }
}
