//! Cache-blocked, register-tiled kernels, bit-identical to the naive ones.
//!
//! Every kernel here applies **exactly the same floating-point operations
//! in exactly the same order to every output element** as its naive
//! counterpart — the blocking only changes *which registers hold the
//! partial results* and *how operand columns are reused across
//! iterations*, both of which are invisible to IEEE-754 arithmetic
//! (spilling an `f64` to memory and reloading it is exact). That gives
//! the speed of register tiling while keeping factors, residuals and the
//! seed-addressed reproducibility of the whole stack byte-identical
//! across backends.
//!
//! Three ingredients, shared by GEMM / SYRK / TRSM / POTRF:
//!
//! * **Column panels** — the axpy-form updates (`gemm` No/·, `syrk` No,
//!   the trailing updates of `potrf`) process [`NR`] destination columns
//!   per sweep over the source operand, cutting source traffic by `NR`.
//! * **Register microtiles** — within a panel, [`MR`] rows accumulate in
//!   a `[f64; MR]` the compiler keeps in vector registers
//!   (`chunks_exact`-style portable autovectorization; no intrinsics).
//! * **Naive-order edges** — dimensions that are not multiples of
//!   [`MR`]/[`NR`] fall back to scalar loops that walk the identical
//!   `k`-ascending order, so ragged tiles are handled without any
//!   special-case numerics.
//!
//! The `s != 0.0` sparsity skips of the naive kernels are respected by a
//! cheap pre-scan: a panel whose scale stream contains an exact zero is
//! processed with the branchy naive-order column loop instead of the
//! branch-free microkernel, so the skip semantics stay bit-identical
//! (the distinction matters for `-0.0` and non-finite inputs, where
//! `x + 0.0` or `0.0 * inf` would change the result).
//!
//! ## Run-time ISA selection
//!
//! The hot loops are *portable Rust*, but they are compiled three times
//! on `x86_64` — for the baseline target, under
//! `#[target_feature(enable = "avx2")]`, and under
//! `#[target_feature(enable = "avx512f")]` — and the widest version the
//! running CPU supports is picked per call (the `multiversion!` macro
//! below; the same body autovectorizes to SSE2 / AVX2 / AVX-512 without
//! a single intrinsic). Floating-point semantics are unaffected: wider
//! lanes still perform the identical exactly-rounded mul/add per
//! element, and Rust never contracts `a * b + c` into an FMA.

use crate::gemm::Trans;
use crate::{KernelError, Tile};

/// Rows per register microtile.
const MR: usize = 32;
/// Destination columns updated together by one panel sweep.
const NR: usize = 4;
/// Panel width of the blocked Cholesky factorization.
const PW: usize = 32;

/// Compiles the function body for the baseline ISA and, on `x86_64`, also
/// under AVX2 and AVX-512F code generation; the public wrapper dispatches
/// to the widest version the CPU supports. The body itself stays portable
/// — `#[target_feature]` only widens what the autovectorizer may emit.
macro_rules! multiversion {
    ($(#[$meta:meta])* $vis:vis fn $name:ident / $impl_name:ident
        ($($arg:ident: $ty:ty),* $(,)?) $(-> $ret:ty)? $body:block) => {
        #[inline(always)]
        #[allow(clippy::too_many_arguments)]
        fn $impl_name($($arg: $ty),*) $(-> $ret)? $body

        $(#[$meta])*
        #[allow(clippy::too_many_arguments)]
        $vis fn $name($($arg: $ty),*) $(-> $ret)? {
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx512f")]
                #[allow(clippy::too_many_arguments)]
                unsafe fn wide512($($arg: $ty),*) $(-> $ret)? {
                    $impl_name($($arg),*)
                }
                #[target_feature(enable = "avx2")]
                #[allow(clippy::too_many_arguments)]
                unsafe fn wide256($($arg: $ty),*) $(-> $ret)? {
                    $impl_name($($arg),*)
                }
                if std::arch::is_x86_feature_detected!("avx512f") {
                    // SAFETY: the feature was just detected at run time
                    return unsafe { wide512($($arg),*) };
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: the feature was just detected at run time
                    return unsafe { wide256($($arg),*) };
                }
            }
            $impl_name($($arg),*)
        }
    };
}

/// Blocked `C := alpha * op(A) * op(B) + beta * C`; bit-identical to
/// [`crate::gemm::naive_gemm`].
pub(crate) fn gemm(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &Tile,
    b: &Tile,
    beta: f64,
    c: &mut Tile,
) {
    let n = c.dim();
    assert_eq!(a.dim(), n, "gemm: A dimension mismatch");
    assert_eq!(b.dim(), n, "gemm: B dimension mismatch");

    if beta != 1.0 {
        for x in c.as_mut_slice() {
            *x *= beta;
        }
    }
    if alpha == 0.0 {
        return;
    }

    match (transa, transb) {
        (Trans::No, _) => gemm_axpy_blocked(transb, alpha, a, b, c),
        (Trans::Yes, Trans::No) => gemm_dot_blocked(alpha, a, b, c),
        (Trans::Yes, Trans::Yes) => gemm_tt_blocked(alpha, a, b, c),
    }
}

/// The scale applied to `A[:,k]` when updating destination column `j`:
/// `alpha * B[k,j]` (`transb = No`) or `alpha * B[j,k]` (`transb = Yes`).
#[inline(always)]
pub(crate) fn s_val(transb: Trans, alpha: f64, b: &Tile, j: usize, k: usize) -> f64 {
    match transb {
        Trans::No => alpha * b.get(k, j),
        Trans::Yes => alpha * b.get(j, k),
    }
}

multiversion! {
    /// The `transa = No` forms: `C[:,j] += sum_k s(k,j) * A[:,k]`.
    fn gemm_axpy_blocked / gemm_axpy_blocked_impl(
        transb: Trans, alpha: f64, a: &Tile, b: &Tile, c: &mut Tile
    ) {
        let n = c.dim();
        let mut j0 = 0;
        while j0 + NR <= n {
            if panel_all_nonzero(n, transb, alpha, b, j0) {
                let (c0, c1, c2, c3) = four_cols_mut(c, j0);
                axpy_panel4(n, 0, transb, alpha, a, b, j0, c0, c1, c2, c3);
            } else {
                // a zero in the scale stream: naive-order skip semantics
                for t in 0..NR {
                    axpy_col_rows(n, 0, transb, alpha, a, b, j0 + t, c.col_mut(j0 + t));
                }
            }
            j0 += NR;
        }
        for j in j0..n {
            axpy_col_rows(n, 0, transb, alpha, a, b, j, c.col_mut(j));
        }
    }
}

/// True when no scale value of panel `j0..j0+NR` is an exact zero, i.e.
/// the branch-free microkernel computes the identical operation sequence.
#[inline(always)]
pub(crate) fn panel_all_nonzero(n: usize, transb: Trans, alpha: f64, b: &Tile, j0: usize) -> bool {
    for k in 0..n {
        for t in 0..NR {
            if s_val(transb, alpha, b, j0 + t, k) == 0.0 {
                return false;
            }
        }
    }
    true
}

/// Register microkernel shared by the axpy-form updates: accumulates
/// `col_t[i] += s(k, j0+t) * A[i,k]` over all `k` for rows `row0..n` of
/// four destination columns, [`MR`] rows at a time. Branch-free: the
/// caller has verified that no scale value is zero, so per output element
/// the operation sequence is the naive one (ascending `k`).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn axpy_panel4(
    n: usize,
    row0: usize,
    transb: Trans,
    alpha: f64,
    a: &Tile,
    b: &Tile,
    j0: usize,
    c0: &mut [f64],
    c1: &mut [f64],
    c2: &mut [f64],
    c3: &mut [f64],
) {
    let mut i0 = row0;
    while i0 + MR <= n {
        let mut acc0: [f64; MR] = c0[i0..i0 + MR].try_into().unwrap();
        let mut acc1: [f64; MR] = c1[i0..i0 + MR].try_into().unwrap();
        let mut acc2: [f64; MR] = c2[i0..i0 + MR].try_into().unwrap();
        let mut acc3: [f64; MR] = c3[i0..i0 + MR].try_into().unwrap();
        for k in 0..n {
            let s0 = s_val(transb, alpha, b, j0, k);
            let s1 = s_val(transb, alpha, b, j0 + 1, k);
            let s2 = s_val(transb, alpha, b, j0 + 2, k);
            let s3 = s_val(transb, alpha, b, j0 + 3, k);
            let av = &a.col(k)[i0..i0 + MR];
            for m in 0..MR {
                acc0[m] += s0 * av[m];
            }
            for m in 0..MR {
                acc1[m] += s1 * av[m];
            }
            for m in 0..MR {
                acc2[m] += s2 * av[m];
            }
            for m in 0..MR {
                acc3[m] += s3 * av[m];
            }
        }
        c0[i0..i0 + MR].copy_from_slice(&acc0);
        c1[i0..i0 + MR].copy_from_slice(&acc1);
        c2[i0..i0 + MR].copy_from_slice(&acc2);
        c3[i0..i0 + MR].copy_from_slice(&acc3);
        i0 += MR;
    }
    // ragged rows: scalar accumulation in the identical k order
    for i in i0..n {
        let mut v0 = c0[i];
        let mut v1 = c1[i];
        let mut v2 = c2[i];
        let mut v3 = c3[i];
        for k in 0..n {
            let av = a.col(k)[i];
            v0 += s_val(transb, alpha, b, j0, k) * av;
            v1 += s_val(transb, alpha, b, j0 + 1, k) * av;
            v2 += s_val(transb, alpha, b, j0 + 2, k) * av;
            v3 += s_val(transb, alpha, b, j0 + 3, k) * av;
        }
        c0[i] = v0;
        c1[i] = v1;
        c2[i] = v2;
        c3[i] = v3;
    }
}

/// One destination column in the exact naive order (including the
/// `s != 0.0` skips), rows `row0..n`: the fallback for panels containing
/// zero scales and for ragged trailing columns.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn axpy_col_rows(
    n: usize,
    row0: usize,
    transb: Trans,
    alpha: f64,
    a: &Tile,
    b: &Tile,
    j: usize,
    ccol: &mut [f64],
) {
    for k in 0..n {
        let s = s_val(transb, alpha, b, j, k);
        if s != 0.0 {
            let acol = a.col(k);
            for i in row0..n {
                ccol[i] += s * acol[i];
            }
        }
    }
}

/// One destination column of the `transa = No` gemm forms in the exact
/// naive order; the ragged-edge path shared with the arch backend.
#[cfg_attr(not(feature = "simd"), allow(dead_code))]
pub(crate) fn axpy_col_naive(
    transb: Trans,
    alpha: f64,
    a: &Tile,
    b: &Tile,
    c: &mut Tile,
    j: usize,
) {
    let n = c.dim();
    axpy_col_rows(n, 0, transb, alpha, a, b, j, c.col_mut(j));
}

/// Borrows four consecutive columns of a tile mutably.
pub(crate) fn four_cols_mut(
    t: &mut Tile,
    j0: usize,
) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
    let n = t.dim();
    let panel = &mut t.as_mut_slice()[j0 * n..(j0 + 4) * n];
    let (c0, rest) = panel.split_at_mut(n);
    let (c1, rest) = rest.split_at_mut(n);
    let (c2, c3) = rest.split_at_mut(n);
    (c0, c1, c2, c3)
}

/// Replicates the exact four-stripe reduction of the naive dot kernel:
/// per stripe `acc[s] += x[4c+s] * y[4c+s]`, then the scalar tail, then
/// the left-associated `acc0 + acc1 + acc2 + acc3 + rest` sum.
#[inline(always)]
fn dot4(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = [0.0_f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += x[i] * y[i];
        acc[1] += x[i + 1] * y[i + 1];
        acc[2] += x[i + 2] * y[i + 2];
        acc[3] += x[i + 3] * y[i + 3];
    }
    let mut rest = 0.0;
    for i in chunks * 4..x.len() {
        rest += x[i] * y[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + rest
}

multiversion! {
    /// `transa = Yes, transb = No`: `C[i,j] += alpha * dot(A[:,i],
    /// B[:,j])`, blocked over groups of four `j` so each `A` column is
    /// streamed once per group instead of once per output element; each
    /// individual dot is the exact naive four-stripe reduction.
    pub(crate) fn gemm_dot_blocked / gemm_dot_blocked_impl(
        alpha: f64, a: &Tile, b: &Tile, c: &mut Tile
    ) {
        let n = c.dim();
        let mut j0 = 0;
        while j0 + NR <= n {
            let (y0, y1, y2, y3) = (b.col(j0), b.col(j0 + 1), b.col(j0 + 2), b.col(j0 + 3));
            for i in 0..n {
                let x = a.col(i);
                let d0 = dot4(x, y0);
                let d1 = dot4(x, y1);
                let d2 = dot4(x, y2);
                let d3 = dot4(x, y3);
                c.set(i, j0, c.get(i, j0) + alpha * d0);
                c.set(i, j0 + 1, c.get(i, j0 + 1) + alpha * d1);
                c.set(i, j0 + 2, c.get(i, j0 + 2) + alpha * d2);
                c.set(i, j0 + 3, c.get(i, j0 + 3) + alpha * d3);
            }
            j0 += NR;
        }
        for j in j0..n {
            let y = b.col(j);
            for i in 0..n {
                let d = dot4(a.col(i), y);
                let v = c.get(i, j) + alpha * d;
                c.set(i, j, v);
            }
        }
    }
}

multiversion! {
    /// `transa = Yes, transb = Yes`: single-chain scalar dots as in the
    /// naive kernel, four `i` side by side sharing the strided walk over
    /// the `B` row.
    pub(crate) fn gemm_tt_blocked / gemm_tt_blocked_impl(
        alpha: f64, a: &Tile, b: &Tile, c: &mut Tile
    ) {
        let n = c.dim();
        for j in 0..n {
            let mut i0 = 0;
            while i0 + NR <= n {
                let (x0, x1, x2, x3) = (a.col(i0), a.col(i0 + 1), a.col(i0 + 2), a.col(i0 + 3));
                let mut d = [0.0_f64; 4];
                #[allow(clippy::needless_range_loop)]
                for k in 0..n {
                    let bv = b.get(j, k);
                    d[0] += x0[k] * bv;
                    d[1] += x1[k] * bv;
                    d[2] += x2[k] * bv;
                    d[3] += x3[k] * bv;
                }
                for (t, dt) in d.into_iter().enumerate() {
                    let v = c.get(i0 + t, j) + alpha * dt;
                    c.set(i0 + t, j, v);
                }
                i0 += NR;
            }
            for i in i0..n {
                let mut d = 0.0;
                for (k, xk) in a.col(i).iter().enumerate() {
                    d += xk * b.get(j, k);
                }
                let v = c.get(i, j) + alpha * d;
                c.set(i, j, v);
            }
        }
    }
}

/// Blocked symmetric rank-k update of the lower triangle; bit-identical
/// to [`crate::syrk::naive_syrk`].
pub(crate) fn syrk(trans: Trans, alpha: f64, a: &Tile, beta: f64, c: &mut Tile) {
    let n = c.dim();
    assert_eq!(a.dim(), n, "syrk: A dimension mismatch");

    if beta != 1.0 {
        for j in 0..n {
            for i in j..n {
                let v = beta * c.get(i, j);
                c.set(i, j, v);
            }
        }
    }
    if alpha == 0.0 {
        return;
    }

    match trans {
        Trans::No => syrk_axpy_blocked(alpha, a, c),
        Trans::Yes => syrk_dot_blocked(alpha, a, c),
    }
}

multiversion! {
    /// `trans = No`: the axpy form over panels of four columns. The scale
    /// stream is row `j` of `A` itself (`s = alpha * A[j,k]`), i.e. the
    /// `transb = Yes` shape of the shared microkernel with `B = A`.
    fn syrk_axpy_blocked / syrk_axpy_blocked_impl(alpha: f64, a: &Tile, c: &mut Tile) {
        let n = c.dim();
        let mut j0 = 0;
        while j0 + NR <= n {
            // triangular head rows [j, j0+NR): per-column naive order
            for t in 0..NR {
                let j = j0 + t;
                let ccol = c.col_mut(j);
                for k in 0..n {
                    let s = alpha * a.get(j, k);
                    if s != 0.0 {
                        let acol = a.col(k);
                        for i in j..j0 + NR {
                            ccol[i] += s * acol[i];
                        }
                    }
                }
            }
            // rectangular body rows [j0+NR, n)
            if panel_all_nonzero(n, Trans::Yes, alpha, a, j0) {
                let (c0, c1, c2, c3) = four_cols_mut(c, j0);
                axpy_panel4(n, j0 + NR, Trans::Yes, alpha, a, a, j0, c0, c1, c2, c3);
            } else {
                for t in 0..NR {
                    axpy_col_rows(n, j0 + NR, Trans::Yes, alpha, a, a, j0 + t, c.col_mut(j0 + t));
                }
            }
            j0 += NR;
        }
        for j in j0..n {
            axpy_col_rows(n, j, Trans::Yes, alpha, a, a, j, c.col_mut(j));
        }
    }
}

multiversion! {
    /// `trans = Yes`: single-chain scalar dots as in the naive kernel,
    /// four rows `i` side by side sharing the `A[:,j]` stream.
    fn syrk_dot_blocked / syrk_dot_blocked_impl(alpha: f64, a: &Tile, c: &mut Tile) {
        let n = c.dim();
        for j in 0..n {
            let aj = a.col(j);
            let mut i = j;
            while i + NR <= n {
                let (x0, x1, x2, x3) = (a.col(i), a.col(i + 1), a.col(i + 2), a.col(i + 3));
                let mut d = [0.0_f64; 4];
                #[allow(clippy::needless_range_loop)]
                for k in 0..n {
                    let y = aj[k];
                    d[0] += x0[k] * y;
                    d[1] += x1[k] * y;
                    d[2] += x2[k] * y;
                    d[3] += x3[k] * y;
                }
                for (t, dt) in d.into_iter().enumerate() {
                    let v = c.get(i + t, j) + alpha * dt;
                    c.set(i + t, j, v);
                }
                i += NR;
            }
            for ii in i..n {
                let mut d = 0.0;
                let x = a.col(ii);
                for k in 0..n {
                    d += x[k] * aj[k];
                }
                let v = c.get(ii, j) + alpha * d;
                c.set(ii, j, v);
            }
        }
    }
}

multiversion! {
    /// Blocked `B := alpha * B * L^{-T}`; bit-identical to
    /// [`crate::trsm::naive_trsm_right_lower_trans`]. The `k < j` axpys
    /// of each column are fused four at a time so `X[:,j]` makes one
    /// pass through the cache per four updates instead of four.
    pub(crate) fn trsm_right_lower_trans / trsm_right_lower_trans_impl(
        alpha: f64, l: &Tile, b: &mut Tile
    ) {
        let n = b.dim();
        assert_eq!(l.dim(), n, "trsm: L dimension mismatch");
        if alpha != 1.0 {
            for x in b.as_mut_slice() {
                *x *= alpha;
            }
        }
        for j in 0..n {
            {
                let data = b.as_mut_slice();
                let (lo, hi) = data.split_at_mut(j * n);
                let xj = &mut hi[..n];
                let mut pending: [(usize, f64); 4] = [(0, 0.0); 4];
                let mut np = 0;
                for k in 0..j {
                    let s = l.get(j, k);
                    if s != 0.0 {
                        pending[np] = (k, s);
                        np += 1;
                        if np == 4 {
                            fused_sub4(n, 0, xj, lo, &pending);
                            np = 0;
                        }
                    }
                }
                for &(k, s) in &pending[..np] {
                    let x = &lo[k * n..k * n + n];
                    for i in 0..n {
                        xj[i] -= s * x[i];
                    }
                }
            }
            let d = l.get(j, j);
            for x in b.col_mut(j) {
                *x /= d;
            }
        }
    }
}

/// Applies four fused axpys `dst[i] -= s_t * col_t[i]` for rows
/// `row0..n`, in pending order (ascending `k`): per destination element
/// the subtraction sequence is identical to applying them one by one.
#[inline(always)]
fn fused_sub4(n: usize, row0: usize, dst: &mut [f64], cols: &[f64], pending: &[(usize, f64); 4]) {
    let (k0, s0) = pending[0];
    let (k1, s1) = pending[1];
    let (k2, s2) = pending[2];
    let (k3, s3) = pending[3];
    let x0 = &cols[k0 * n..k0 * n + n];
    let x1 = &cols[k1 * n..k1 * n + n];
    let x2 = &cols[k2 * n..k2 * n + n];
    let x3 = &cols[k3 * n..k3 * n + n];
    for i in row0..n {
        let mut v = dst[i];
        v -= s0 * x0[i];
        v -= s1 * x1[i];
        v -= s2 * x2[i];
        v -= s3 * x3[i];
        dst[i] = v;
    }
}

multiversion! {
    /// Blocked in-tile Cholesky; bit-identical to
    /// [`crate::potrf::naive_potrf`] — including the
    /// partially-factorized state left behind when a pivot fails.
    ///
    /// Right-looking with a panel twist: columns are factored in panels
    /// of [`PW`]; the rank-`PW` update of the columns right of a panel
    /// is deferred until the panel is done and then applied with fused
    /// axpys (ascending `k`, so every trailing element still sees the
    /// naive update order). On a pivot failure the deferred updates of
    /// the completed pivots are flushed first, reproducing the naive
    /// kernel's partial state exactly.
    pub(crate) fn potrf / potrf_impl(a: &mut Tile) -> Result<(), KernelError> {
        let n = a.dim();
        let mut p = 0;
        while p < n {
            let pe = (p + PW).min(n);
            // factor the panel; within-panel trailing updates happen
            // immediately, updates to columns >= pe are deferred
            for k in p..pe {
                let akk = a.get(k, k);
                if akk <= 0.0 || !akk.is_finite() {
                    // reproduce the naive partial state: columns right of
                    // the panel are still owed the updates of pivots p..k
                    trailing_update(a, p, k, pe);
                    return Err(KernelError::NotPositiveDefinite(k));
                }
                let pivot = akk.sqrt();
                a.set(k, k, pivot);
                {
                    let col = a.col_mut(k);
                    for v in &mut col[k + 1..n] {
                        *v /= pivot;
                    }
                }
                for j in k + 1..pe {
                    let s = a.get(j, k);
                    if s != 0.0 {
                        let data = a.as_mut_slice();
                        let (lo, hi) = data.split_at_mut(j * n);
                        let ck = &lo[k * n..k * n + n];
                        let cj = &mut hi[..n];
                        for i in j..n {
                            cj[i] -= s * ck[i];
                        }
                    }
                }
            }
            trailing_update(a, p, pe, pe);
            p = pe;
        }
        Ok(())
    }
}

/// Applies the deferred rank-`(kend - kstart)` update of pivots
/// `kstart..kend` to every column `j >= jstart`, rows `j..n`, fusing up
/// to four pivot columns per pass. The multipliers `a[j,k]` live in the
/// finished panel columns, which receive no further writes, so reading
/// them up front is exact.
#[inline(always)]
fn trailing_update(a: &mut Tile, kstart: usize, kend: usize, jstart: usize) {
    let n = a.dim();
    for j in jstart..n {
        let data = a.as_mut_slice();
        let (lo, hi) = data.split_at_mut(j * n);
        let cj = &mut hi[..n];
        let mut pending: [(usize, f64); 4] = [(0, 0.0); 4];
        let mut np = 0;
        for k in kstart..kend {
            let s = lo[k * n + j];
            if s != 0.0 {
                pending[np] = (k, s);
                np += 1;
                if np == 4 {
                    fused_sub4(n, j, cj, lo, &pending);
                    np = 0;
                }
            }
        }
        for &(k, s) in &pending[..np] {
            let ck = &lo[k * n..k * n + n];
            for i in j..n {
                cj[i] -= s * ck[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive_gemm;
    use crate::potrf::naive_potrf;
    use crate::reference::{random_lower_tile, random_spd_tile, random_tile};
    use crate::syrk::naive_syrk;
    use crate::trsm::naive_trsm_right_lower_trans;

    // exhaustive bitwise checks live in tests/backends.rs; these are the
    // fast in-module smoke checks

    #[test]
    fn gemm_all_trans_bitwise_matches_naive() {
        for n in [1, 2, 3, 4, 5, 7, 8, 9, 16, 23, 40, 64] {
            let a = random_tile(n, 1);
            let b = random_tile(n, 2);
            for ta in [Trans::No, Trans::Yes] {
                for tb in [Trans::No, Trans::Yes] {
                    let mut c1 = random_tile(n, 3);
                    let mut c2 = c1.clone();
                    naive_gemm(ta, tb, -1.0, &a, &b, 1.0, &mut c1);
                    gemm(ta, tb, -1.0, &a, &b, 1.0, &mut c2);
                    assert!(
                        c1.max_abs_diff(&c2) == 0.0,
                        "gemm {ta:?}/{tb:?} n={n} differs"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_with_zeros_in_b_matches_naive() {
        // the s != 0.0 skip path must be replicated exactly
        for n in [4, 6, 9, 40] {
            let a = random_tile(n, 4);
            let mut b = random_tile(n, 5);
            for k in 0..n {
                b.set(k, k % n, 0.0);
                b.set(k % 2, k, -0.0);
            }
            for tb in [Trans::No, Trans::Yes] {
                let mut c1 = random_tile(n, 6);
                let mut c2 = c1.clone();
                naive_gemm(Trans::No, tb, 2.0, &a, &b, 0.5, &mut c1);
                gemm(Trans::No, tb, 2.0, &a, &b, 0.5, &mut c2);
                assert!(c1.max_abs_diff(&c2) == 0.0, "n={n} tb={tb:?}");
            }
        }
    }

    #[test]
    fn syrk_bitwise_matches_naive() {
        for n in [1, 3, 4, 5, 8, 11, 17, 40, 64] {
            let a = random_tile(n, 7);
            for t in [Trans::No, Trans::Yes] {
                let mut c1 = random_tile(n, 8);
                let mut c2 = c1.clone();
                naive_syrk(t, -1.0, &a, 1.0, &mut c1);
                syrk(t, -1.0, &a, 1.0, &mut c2);
                assert!(c1.max_abs_diff(&c2) == 0.0, "syrk {t:?} n={n} differs");
            }
        }
    }

    #[test]
    fn trsm_bitwise_matches_naive() {
        for n in [1, 2, 5, 8, 13, 19, 40, 64] {
            let l = random_lower_tile(n, 9);
            let b0 = random_tile(n, 10);
            let mut b1 = b0.clone();
            let mut b2 = b0.clone();
            naive_trsm_right_lower_trans(1.0, &l, &mut b1);
            trsm_right_lower_trans(1.0, &l, &mut b2);
            assert!(b1.max_abs_diff(&b2) == 0.0, "trsm n={n} differs");
        }
    }

    #[test]
    fn potrf_bitwise_matches_naive() {
        for n in [1, 2, 7, 31, 32, 33, 70] {
            let a0 = random_spd_tile(n, 11);
            let mut a1 = a0.clone();
            let mut a2 = a0.clone();
            naive_potrf(&mut a1).unwrap();
            potrf(&mut a2).unwrap();
            assert!(a1.max_abs_diff(&a2) == 0.0, "potrf n={n} differs");
        }
    }

    #[test]
    fn potrf_failure_state_matches_naive() {
        // a pivot that fails mid-panel must leave the identical partial
        // factorization behind
        for n in [5, 40] {
            let mut a0 = random_spd_tile(n, 12);
            a0.set(n / 2, n / 2, -3.0);
            let mut a1 = a0.clone();
            let mut a2 = a0.clone();
            let e1 = naive_potrf(&mut a1);
            let e2 = potrf(&mut a2);
            assert_eq!(e1, e2);
            assert!(e1.is_err());
            assert!(a1.max_abs_diff(&a2) == 0.0, "failure state n={n} differs");
        }
    }
}
