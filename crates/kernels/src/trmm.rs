//! Triangular matrix multiply on tiles.
//!
//! The tiled LAUUM sweep needs `B := L^T * B` ([`trmm_left_lower_trans`]);
//! the plain `B := L * B` variant is provided for completeness and used by
//! verification code.

use crate::Tile;

/// `B := L^T * B` where `L` is the lower triangle (with diagonal) of `l`.
///
/// Processed top-down per column: row `i` of the result only reads rows
/// `>= i` of the original column, which are still unmodified.
///
/// The reference implementation behind [`crate::KernelBackend::Naive`].
pub(crate) fn naive_trmm_left_lower_trans(l: &Tile, b: &mut Tile) {
    let n = b.dim();
    assert_eq!(l.dim(), n, "trmm: L dimension mismatch");
    for j in 0..n {
        let x = b.col_mut(j);
        for i in 0..n {
            let lcol = l.col(i);
            let mut s = 0.0;
            for k in i..n {
                s += lcol[k] * x[k];
            }
            x[i] = s;
        }
    }
}

/// `B := L * B` where `L` is the lower triangle (with diagonal) of `l`.
///
/// Processed bottom-up per column so unread inputs are preserved.
///
/// The reference implementation behind [`crate::KernelBackend::Naive`].
pub(crate) fn naive_trmm_left_lower(l: &Tile, b: &mut Tile) {
    let n = b.dim();
    assert_eq!(l.dim(), n, "trmm: L dimension mismatch");
    for j in 0..n {
        let x = b.col_mut(j);
        for k in (0..n).rev() {
            let xk = x[k];
            let lcol = l.col(k);
            x[k] = lcol[k] * xk;
            if xk != 0.0 {
                for i in k + 1..n {
                    x[i] += xk * lcol[i];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{
        naive_trmm_left_lower as trmm_left_lower,
        naive_trmm_left_lower_trans as trmm_left_lower_trans,
    };
    use crate::gemm::{naive_gemm as gemm, Trans};
    use crate::reference::random_lower_tile;
    use crate::Tile;

    fn rhs(n: usize) -> Tile {
        Tile::from_fn(n, |i, j| ((3 * i + 5 * j) % 13) as f64 - 6.0)
    }

    #[test]
    fn trmm_trans_matches_gemm() {
        for n in [1, 2, 5, 12] {
            let mut l = random_lower_tile(n, 21);
            l.zero_strict_upper();
            let b0 = rhs(n);
            let mut b = b0.clone();
            trmm_left_lower_trans(&l, &mut b);
            let mut want = Tile::zeros(n);
            gemm(Trans::Yes, Trans::No, 1.0, &l, &b0, 0.0, &mut want);
            assert!(b.max_abs_diff(&want) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn trmm_notrans_matches_gemm() {
        for n in [1, 2, 5, 12] {
            let mut l = random_lower_tile(n, 22);
            l.zero_strict_upper();
            let b0 = rhs(n);
            let mut b = b0.clone();
            trmm_left_lower(&l, &mut b);
            let mut want = Tile::zeros(n);
            gemm(Trans::No, Trans::No, 1.0, &l, &b0, 0.0, &mut want);
            assert!(b.max_abs_diff(&want) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn trmm_then_trsm_roundtrips() {
        let n = 9;
        let mut l = random_lower_tile(n, 23);
        l.zero_strict_upper();
        let b0 = rhs(n);
        let mut b = b0.clone();
        trmm_left_lower_trans(&l, &mut b);
        crate::trsm::naive_trsm_left_lower_trans(1.0, &l, &mut b);
        assert!(b.max_abs_diff(&b0) < 1e-9);
    }
}
