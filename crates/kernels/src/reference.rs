//! Naive reference implementations and deterministic test-tile generators.
//!
//! Everything here is O(b^3) triple loops written for obviousness, used by
//! unit and property tests to validate the optimized kernels. The generators
//! use an embedded SplitMix64 so tests are reproducible without external
//! crates.

use crate::{Tile, Trans};

/// Minimal SplitMix64 PRNG: deterministic, seedable, good enough for test
/// data and matrix generation.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform f64 in [-1, 1).
    pub fn next_signed(&mut self) -> f64 {
        2.0 * self.next_f64() - 1.0
    }
}

/// Naive `C := alpha * op(A) * op(B) + beta * C`.
pub fn ref_gemm(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &Tile,
    b: &Tile,
    beta: f64,
    c: &mut Tile,
) {
    let n = c.dim();
    let opa = |i: usize, k: usize| match transa {
        Trans::No => a.get(i, k),
        Trans::Yes => a.get(k, i),
    };
    let opb = |k: usize, j: usize| match transb {
        Trans::No => b.get(k, j),
        Trans::Yes => b.get(j, k),
    };
    for j in 0..n {
        for i in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += opa(i, k) * opb(k, j);
            }
            let v = alpha * s + beta * c.get(i, j);
            c.set(i, j, v);
        }
    }
}

/// Dense random tile with entries in [-1, 1).
pub fn random_tile(b: usize, seed: u64) -> Tile {
    let mut rng = SplitMix64::new(seed ^ 0xABCD_EF01_2345_6789);
    Tile::from_fn(b, |_, _| rng.next_signed())
}

/// Random well-conditioned lower-triangular tile: entries in [-1, 1) below
/// the diagonal, diagonal shifted away from zero. The strictly upper part
/// holds garbage values so kernels that must ignore it get exercised.
pub fn random_lower_tile(b: usize, seed: u64) -> Tile {
    let mut rng = SplitMix64::new(seed ^ 0x1357_9BDF_2468_ACE0);
    Tile::from_fn(b, |i, j| {
        if i == j {
            2.0 + rng.next_f64() // in [2, 3): safely away from zero
        } else if i > j {
            rng.next_signed() * 0.5
        } else {
            f64::NAN // poison: must never be read by lower-triangular kernels
        }
    })
}

/// Random symmetric positive definite tile: `M M^T + b * I`, symmetric,
/// diagonally dominant enough to be safely SPD.
pub fn random_spd_tile(b: usize, seed: u64) -> Tile {
    let m = random_tile(b, seed);
    let mut a = Tile::from_fn(b, |i, j| if i == j { b as f64 } else { 0.0 });
    // a += m * m^T, full (symmetric by construction)
    for i in 0..b {
        for j in 0..b {
            let mut s = 0.0;
            for k in 0..b {
                s += m.get(i, k) * m.get(j, k);
            }
            let v = a.get(i, j) + s;
            a.set(i, j, v);
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_f64_in_range() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn spd_tile_is_symmetric() {
        let a = random_spd_tile(10, 1);
        for i in 0..10 {
            for j in 0..10 {
                assert!((a.get(i, j) - a.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lower_tile_poisons_upper() {
        let l = random_lower_tile(5, 0);
        assert!(l.get(0, 4).is_nan());
        assert!(l.get(3, 3) >= 2.0);
    }
}
