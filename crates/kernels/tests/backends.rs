//! Cross-backend bitwise equivalence.
//!
//! Every [`KernelBackend`] must produce **bit-identical** output — not
//! merely numerically close — for every kernel, on every input: the
//! factors a run produces must not depend on which backend computed
//! them. These properties drive all backends over the same inputs and
//! compare raw `f64` bits, so even `-0.0` vs `+0.0` or differing NaN
//! payloads would fail.
//!
//! `Arch` is always included: without the `simd` feature (or on a CPU
//! without AVX2) it resolves to `Blocked`, which must itself match
//! `Naive`, so the property is meaningful in every configuration.

use proptest::prelude::*;
use sbc_kernels::reference::{random_spd_tile, SplitMix64};
use sbc_kernels::{KernelBackend, Kernels, Tile, Trans};

const ALL: [KernelBackend; 3] = [
    KernelBackend::Naive,
    KernelBackend::Blocked,
    KernelBackend::Arch,
];

fn bits_eq(a: &Tile, b: &Tile) -> bool {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// A random tile, optionally salted with exact zeros (and negative
/// zeros) so the `s != 0.0` skip paths of the naive kernels — and the
/// panel fallbacks replicating them — are exercised.
fn tile_with_zeros(b: usize, seed: u64, plant_zeros: bool) -> Tile {
    let mut rng = SplitMix64::new(seed);
    let mut t = Tile::from_fn(b, |_, _| rng.next_signed());
    if plant_zeros {
        for k in 0..b {
            t.set(k, (k * 3) % b, 0.0);
            t.set((k * 5) % b, k, -0.0);
        }
    }
    t
}

/// alpha/beta from the exact set the runtime actually uses.
fn coeff(i: usize) -> f64 {
    [0.0, 1.0, -1.0][i]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_bitwise_equal_across_backends(
        seed in any::<u64>(),
        b in 1usize..48,
        ta in prop::bool::ANY,
        tb in prop::bool::ANY,
        alpha_i in 0usize..3,
        beta_i in 0usize..3,
        plant_zeros in prop::bool::ANY,
    ) {
        let a = tile_with_zeros(b, seed, plant_zeros);
        let bt = tile_with_zeros(b, seed ^ 1, plant_zeros);
        let mut rng = SplitMix64::new(seed ^ 2);
        let c0 = Tile::from_fn(b, |_, _| rng.next_signed());
        let ta = if ta { Trans::Yes } else { Trans::No };
        let tb = if tb { Trans::Yes } else { Trans::No };

        let mut expect = c0.clone();
        KernelBackend::Naive.gemm(ta, tb, coeff(alpha_i), &a, &bt, coeff(beta_i), &mut expect);
        for k in ALL {
            let mut c = c0.clone();
            k.gemm(ta, tb, coeff(alpha_i), &a, &bt, coeff(beta_i), &mut c);
            prop_assert!(bits_eq(&expect, &c), "gemm {ta:?}/{tb:?} b={b} differs on {k}");
        }
    }

    #[test]
    fn syrk_bitwise_equal_across_backends(
        seed in any::<u64>(),
        b in 1usize..48,
        trans in prop::bool::ANY,
        alpha_i in 0usize..3,
        beta_i in 0usize..3,
        plant_zeros in prop::bool::ANY,
    ) {
        let a = tile_with_zeros(b, seed, plant_zeros);
        let mut rng = SplitMix64::new(seed ^ 3);
        let c0 = Tile::from_fn(b, |_, _| rng.next_signed());
        let trans = if trans { Trans::Yes } else { Trans::No };

        let mut expect = c0.clone();
        KernelBackend::Naive.syrk(trans, coeff(alpha_i), &a, coeff(beta_i), &mut expect);
        for k in ALL {
            let mut c = c0.clone();
            k.syrk(trans, coeff(alpha_i), &a, coeff(beta_i), &mut c);
            prop_assert!(bits_eq(&expect, &c), "syrk {trans:?} b={b} differs on {k}");
        }
    }

    #[test]
    fn trsm_bitwise_equal_across_backends(
        seed in any::<u64>(),
        b in 1usize..48,
        alpha_i in 0usize..3,
        plant_zeros in prop::bool::ANY,
    ) {
        // a well-conditioned lower triangle: random below, dominant diagonal
        let mut rng = SplitMix64::new(seed);
        let mut l = Tile::from_fn(b, |i, j| if i >= j { rng.next_signed() } else { 0.0 });
        for i in 0..b {
            l.set(i, i, 2.0 + l.get(i, i).abs());
        }
        if plant_zeros {
            for k in 1..b {
                l.set(k, (k * 3) % k, 0.0);
            }
        }
        let rhs = tile_with_zeros(b, seed ^ 4, plant_zeros);

        let mut expect = rhs.clone();
        KernelBackend::Naive.trsm_right_lower_trans(coeff(alpha_i), &l, &mut expect);
        for k in ALL {
            let mut x = rhs.clone();
            k.trsm_right_lower_trans(coeff(alpha_i), &l, &mut x);
            prop_assert!(bits_eq(&expect, &x), "trsm b={b} differs on {k}");
        }
    }

    #[test]
    fn potrf_bitwise_equal_across_backends(seed in any::<u64>(), b in 1usize..72) {
        let a0 = random_spd_tile(b, seed);
        let mut expect = a0.clone();
        KernelBackend::Naive.potrf(&mut expect).unwrap();
        for k in ALL {
            let mut a = a0.clone();
            prop_assert!(k.potrf(&mut a).is_ok());
            prop_assert!(bits_eq(&expect, &a), "potrf b={b} differs on {k}");
        }
    }

    #[test]
    fn potrf_failure_bitwise_equal_across_backends(
        seed in any::<u64>(),
        b in 2usize..72,
        frac in 0.0f64..1.0,
    ) {
        // plant a non-positive pivot somewhere and require the identical
        // error *and* the identical partially-factorized tile
        let mut a0 = random_spd_tile(b, seed);
        let bad = ((b as f64 * frac) as usize).min(b - 1);
        a0.set(bad, bad, -1.0);
        let mut expect = a0.clone();
        let expect_err = KernelBackend::Naive.potrf(&mut expect);
        prop_assert!(expect_err.is_err());
        for k in ALL {
            let mut a = a0.clone();
            let err = k.potrf(&mut a);
            prop_assert_eq!(&err, &expect_err, "potrf error b={} differs on {}", b, k);
            prop_assert!(bits_eq(&expect, &a), "potrf failure state b={b} differs on {k}");
        }
    }
}
