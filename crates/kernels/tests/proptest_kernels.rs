//! Property-based tests on kernel invariants.

use proptest::prelude::*;
use sbc_kernels::reference::{random_lower_tile, random_spd_tile, ref_gemm};
use sbc_kernels::{KernelBackend, Kernels, Tile, Trans};

/// Backend exercised by the invariant tests; cross-backend bitwise
/// equivalence is covered separately in `tests/backends.rs`.
const K: KernelBackend = KernelBackend::Naive;

fn arb_tile(max_b: usize) -> impl Strategy<Value = Tile> {
    (1..=max_b, any::<u64>()).prop_map(|(b, seed)| {
        let mut rng = sbc_kernels::reference::SplitMix64::new(seed);
        Tile::from_fn(b, |_, _| rng.next_signed())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// gemm agrees with the naive reference for all transpose combos.
    #[test]
    fn gemm_matches_reference(
        seed in any::<u64>(),
        b in 1usize..24,
        ta in prop::bool::ANY,
        tb in prop::bool::ANY,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
    ) {
        let mut rng = sbc_kernels::reference::SplitMix64::new(seed);
        let a = Tile::from_fn(b, |_, _| rng.next_signed());
        let bt = Tile::from_fn(b, |_, _| rng.next_signed());
        let c0 = Tile::from_fn(b, |_, _| rng.next_signed());
        let ta = if ta { Trans::Yes } else { Trans::No };
        let tb = if tb { Trans::Yes } else { Trans::No };
        let mut c = c0.clone();
        let mut cref = c0.clone();
        K.gemm(ta, tb, alpha, &a, &bt, beta, &mut c);
        ref_gemm(ta, tb, alpha, &a, &bt, beta, &mut cref);
        prop_assert!(c.max_abs_diff(&cref) < 1e-9 * (b as f64));
    }

    /// potrf followed by reconstruction recovers the SPD tile.
    #[test]
    fn potrf_roundtrip(seed in any::<u64>(), b in 1usize..20) {
        let a0 = random_spd_tile(b, seed);
        let mut l = a0.clone();
        K.potrf(&mut l).unwrap();
        l.zero_strict_upper();
        let mut rec = Tile::zeros(b);
        K.gemm(Trans::No, Trans::Yes, 1.0, &l, &l, 0.0, &mut rec);
        let scale = a0.norm_max().max(1.0);
        for i in 0..b {
            for j in 0..=i {
                prop_assert!((rec.get(i, j) - a0.get(i, j)).abs() < 1e-9 * scale);
            }
        }
    }

    /// trsm variants actually solve their systems.
    #[test]
    fn trsm_solves(seed in any::<u64>(), b in 1usize..20) {
        let l = random_lower_tile(b, seed);
        let mut lz = l.clone();
        lz.zero_strict_upper();
        let mut rng = sbc_kernels::reference::SplitMix64::new(seed ^ 1);
        let rhs = Tile::from_fn(b, |_, _| rng.next_signed());

        let mut x = rhs.clone();
        K.trsm_right_lower_trans(1.0, &l, &mut x);
        let mut prod = Tile::zeros(b);
        K.gemm(Trans::No, Trans::Yes, 1.0, &x, &lz, 0.0, &mut prod);
        prop_assert!(prod.max_abs_diff(&rhs) < 1e-8);

        let mut x = rhs.clone();
        K.trsm_right_lower(1.0, &l, &mut x);
        let mut prod = Tile::zeros(b);
        K.gemm(Trans::No, Trans::No, 1.0, &x, &lz, 0.0, &mut prod);
        prop_assert!(prod.max_abs_diff(&rhs) < 1e-8);

        let mut x = rhs.clone();
        K.trsm_left_lower(1.0, &l, &mut x);
        let mut prod = Tile::zeros(b);
        K.gemm(Trans::No, Trans::No, 1.0, &lz, &x, 0.0, &mut prod);
        prop_assert!(prod.max_abs_diff(&rhs) < 1e-8);

        let mut x = rhs.clone();
        K.trsm_left_lower_trans(1.0, &l, &mut x);
        let mut prod = Tile::zeros(b);
        K.gemm(Trans::Yes, Trans::No, 1.0, &lz, &x, 0.0, &mut prod);
        prop_assert!(prod.max_abs_diff(&rhs) < 1e-8);
    }

    /// K.trtri(L) * L == I.
    #[test]
    fn trtri_inverts(seed in any::<u64>(), b in 1usize..20) {
        let mut l = random_lower_tile(b, seed);
        l.zero_strict_upper();
        let mut w = l.clone();
        K.trtri(&mut w).unwrap();
        let mut prod = Tile::zeros(b);
        K.gemm(Trans::No, Trans::No, 1.0, &w, &l, 0.0, &mut prod);
        prop_assert!(prod.max_abs_diff(&Tile::identity(b)) < 1e-8);
    }

    /// K.lauum(L) lower part equals L^T L.
    #[test]
    fn lauum_is_ltl(seed in any::<u64>(), b in 1usize..20) {
        let mut l = random_lower_tile(b, seed);
        l.zero_strict_upper();
        let mut out = l.clone();
        K.lauum(&mut out);
        let mut full = Tile::zeros(b);
        K.gemm(Trans::Yes, Trans::No, 1.0, &l, &l, 0.0, &mut full);
        for i in 0..b {
            for j in 0..=i {
                prop_assert!((out.get(i, j) - full.get(i, j)).abs() < 1e-8);
            }
        }
    }

    /// syrk lower equals the lower part of the corresponding gemm.
    #[test]
    fn syrk_is_gemm_lower(t in arb_tile(20), alpha in -2.0f64..2.0) {
        let b = t.dim();
        let mut c = Tile::zeros(b);
        K.syrk(Trans::No, alpha, &t, 0.0, &mut c);
        let mut full = Tile::zeros(b);
        ref_gemm(Trans::No, Trans::Yes, alpha, &t, &t, 0.0, &mut full);
        for i in 0..b {
            for j in 0..=i {
                prop_assert!((c.get(i, j) - full.get(i, j)).abs() < 1e-9 * b as f64);
            }
        }
    }

    /// The POTRI identity at tile level: K.lauum(K.trtri(K.potrf(A))) == A^{-1},
    /// verified by A * result == I.
    #[test]
    fn potri_pipeline_inverts(seed in any::<u64>(), b in 1usize..16) {
        let a0 = random_spd_tile(b, seed);
        let mut w = a0.clone();
        K.potrf(&mut w).unwrap();
        K.trtri(&mut w).unwrap();
        K.lauum(&mut w);
        w.symmetrize_from_lower();
        let mut prod = Tile::zeros(b);
        K.gemm(Trans::No, Trans::No, 1.0, &a0, &w, 0.0, &mut prod);
        prop_assert!(prod.max_abs_diff(&Tile::identity(b)) < 1e-6 * (b as f64).max(1.0));
    }

    /// trmm(L^T, .) is the inverse operation of trsm_left_lower_trans.
    #[test]
    fn trmm_trsm_roundtrip(seed in any::<u64>(), b in 1usize..20) {
        let mut l = random_lower_tile(b, seed);
        l.zero_strict_upper();
        let mut rng = sbc_kernels::reference::SplitMix64::new(seed ^ 2);
        let x0 = Tile::from_fn(b, |_, _| rng.next_signed());
        let mut x = x0.clone();
        K.trmm_left_lower_trans(&l, &mut x);
        K.trsm_left_lower_trans(1.0, &l, &mut x);
        prop_assert!(x.max_abs_diff(&x0) < 1e-8);
    }
}
