//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! ready-queue priorities, message ordering, the iteration barrier, and the
//! diagonal-pattern cycling strategy. Each variant simulates the same SBC
//! POTRF; differences in reported time are the simulated-makespan work the
//! engine performs (the simulated makespans themselves are printed by
//! `paper ablations`).

use criterion::{criterion_group, criterion_main, Criterion};
use sbc_dist::{DiagonalCycling, SbcExtended};
use sbc_simgrid::{Platform, ScheduleMode, SimConfig, Simulator};
use sbc_taskgraph::build_potrf;

fn bench_schedule_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_schedules");
    g.sample_size(10);
    let nt = 40;
    let d = SbcExtended::new(8);
    let graph = build_potrf(&d, nt);
    let p = Platform::bora(28);
    let variants = [
        ("prio_tasks_fifo_msgs", ScheduleMode::Async, true, false),
        ("fifo_tasks", ScheduleMode::Async, false, false),
        ("prio_msgs", ScheduleMode::Async, true, true),
        ("bulk_sync", ScheduleMode::BulkSynchronous, true, false),
    ];
    for (name, mode, prio, pcomm) in variants {
        let cfg = SimConfig {
            tile_b: 500,
            mode,
            use_priorities: prio,
            priority_comms: pcomm,
        };
        g.bench_function(name, |bench| {
            bench.iter(|| Simulator::new(&graph, &p, cfg).run());
        });
    }
    g.finish();
}

fn bench_cycling_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_diagonal_cycling");
    g.sample_size(10);
    let nt = 40;
    let p = Platform::bora(28);
    for (name, cyc) in [
        ("column_wise", DiagonalCycling::ColumnWise),
        ("anti_diagonal", DiagonalCycling::AntiDiagonal),
    ] {
        let d = SbcExtended::with_cycling(8, cyc);
        let graph = build_potrf(&d, nt);
        g.bench_function(name, |bench| {
            bench.iter(|| Simulator::new(&graph, &p, SimConfig::chameleon(500)).run());
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_schedule_variants, bench_cycling_variants
);
criterion_main!(benches);
