//! Criterion benchmarks of distribution lookups and the exact
//! communication-volume counters (Table I / Fig 8 machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbc_dist::comm::{potrf_messages, trtri_messages};
use sbc_dist::{Distribution, SbcBasic, SbcExtended, TwoDBlockCyclic};
use std::hint::black_box;

fn bench_owner_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("owner_lookup_4096_tiles");
    let nt = 64;
    let dists: Vec<(&str, Box<dyn Distribution>)> = vec![
        ("2dbc_7x4", Box::new(TwoDBlockCyclic::new(7, 4))),
        ("sbc_basic_8", Box::new(SbcBasic::new(8))),
        ("sbc_ext_8", Box::new(SbcExtended::new(8))),
    ];
    for (name, d) in &dists {
        g.bench_function(*name, |bench| {
            bench.iter(|| {
                let mut acc = 0usize;
                for i in 0..nt {
                    for j in 0..=i {
                        acc += d.owner(black_box(i), black_box(j));
                    }
                }
                acc
            });
        });
    }
    g.finish();
}

fn bench_comm_counting(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_comm_count");
    g.sample_size(10);
    for nt in [50usize, 100] {
        let sbc = SbcExtended::new(8);
        g.bench_with_input(BenchmarkId::new("potrf_sbc8", nt), &nt, |bench, &nt| {
            bench.iter(|| potrf_messages(&sbc, black_box(nt)));
        });
        let bc = TwoDBlockCyclic::new(7, 4);
        g.bench_with_input(BenchmarkId::new("trtri_2dbc", nt), &nt, |bench, &nt| {
            bench.iter(|| trtri_messages(&bc, black_box(nt)));
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_owner_lookup, bench_comm_counting
);
criterion_main!(benches);
