//! Criterion benchmarks of task-graph construction and priority
//! computation — the submission-side cost the paper's Section II notes
//! must stay scalable ("careful management of task submission").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sbc_dist::{SbcBasic, SbcExtended, TwoPointFiveD};
use sbc_taskgraph::{build_potrf, build_potrf_25d, critical_path_priorities};

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("build_potrf_graph");
    g.sample_size(10);
    for nt in [30usize, 60] {
        let tasks = nt + nt * (nt - 1) + nt * (nt - 1) * (nt - 2) / 6;
        g.throughput(Throughput::Elements(tasks as u64));
        let d = SbcExtended::new(8);
        g.bench_with_input(BenchmarkId::from_parameter(nt), &nt, |bench, &nt| {
            bench.iter(|| build_potrf(&d, nt));
        });
    }
    g.finish();
}

fn bench_build_25d(c: &mut Criterion) {
    let mut g = c.benchmark_group("build_potrf_25d_graph");
    g.sample_size(10);
    let d25 = TwoPointFiveD::new(SbcBasic::new(4), 3);
    g.bench_function("nt_40_c_3", |bench| {
        bench.iter(|| build_potrf_25d(&d25, 40));
    });
    g.finish();
}

fn bench_priorities(c: &mut Criterion) {
    let mut g = c.benchmark_group("critical_path_priorities");
    g.sample_size(10);
    let d = SbcExtended::new(8);
    let graph = build_potrf(&d, 60);
    g.bench_function("nt_60", |bench| {
        bench.iter(|| critical_path_priorities(&graph, |t| t.kind.flops(500)));
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_build, bench_build_25d, bench_priorities
);
criterion_main!(benches);
