//! Criterion benchmarks of the threaded distributed runtime (the Fig 8
//! "measured volume" machinery, which also validates numerics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbc_dist::{RowCyclic, SbcExtended, TwoDBlockCyclic};
use sbc_runtime::Run;

fn bench_distributed_potrf(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_potrf");
    g.sample_size(10);
    for (name, nt, b) in [("nt12_b16", 12usize, 16usize), ("nt16_b24", 16, 24)] {
        let d = SbcExtended::new(5); // 10 nodes
        g.bench_with_input(
            BenchmarkId::new("sbc5", name),
            &(nt, b),
            |bench, &(nt, b)| {
                bench.iter(|| Run::potrf(&d, nt).block(b).seed(42).execute().unwrap());
            },
        );
        let d2 = TwoDBlockCyclic::new(5, 2);
        g.bench_with_input(
            BenchmarkId::new("2dbc_5x2", name),
            &(nt, b),
            |bench, &(nt, b)| {
                bench.iter(|| Run::potrf(&d2, nt).block(b).seed(42).execute().unwrap());
            },
        );
    }
    g.finish();
}

/// The worker-pool scaling target: a 10-node POTRF at nt=24, executed with
/// 1, 2 and 4 workers per node under critical-path priorities. Results and
/// traffic are identical by construction (see tests/workers.rs); only
/// wall-clock may differ, and it can only improve where the host actually
/// has cores to back the workers.
fn bench_runtime_workers(c: &mut Criterion) {
    use sbc_runtime::{Executor, Policy};
    use sbc_taskgraph::build_potrf;

    let mut g = c.benchmark_group("runtime_workers");
    g.sample_size(10);
    let d = SbcExtended::new(5); // 10 nodes
    let (nt, b) = (24usize, 16usize);
    let graph = build_potrf(&d, nt);
    for workers in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("sbc5_nt24", format!("w{workers}")),
            &workers,
            |bench, &workers| {
                bench.iter(|| {
                    Executor::builder(&graph)
                        .block(b)
                        .seeds(42, 43)
                        .workers(workers)
                        .priorities(Policy::CriticalPath)
                        .build()
                        .run()
                });
            },
        );
    }
    g.finish();
}

/// Recorder overhead: the same POTRF execution bare vs. with an `sbc-obs`
/// recorder attached (acceptance: tracing costs <= 5%, disabled ~0%).
fn bench_recorded_potrf(c: &mut Criterion) {
    use sbc_obs::Recorder;
    use sbc_runtime::Executor;
    use sbc_taskgraph::build_potrf;

    let mut g = c.benchmark_group("runtime_recorded");
    g.sample_size(10);
    let d = SbcExtended::new(5);
    let (nt, b) = (12usize, 16usize);
    let graph = build_potrf(&d, nt);
    g.bench_function("bare", |bench| {
        bench.iter(|| {
            Executor::builder(&graph)
                .block(b)
                .seeds(42, 43)
                .build()
                .run()
        });
    });
    g.bench_function("recorded", |bench| {
        bench.iter(|| {
            let rec = Recorder::new();
            let out = Executor::builder(&graph)
                .block(b)
                .seeds(42, 43)
                .recorder(&rec)
                .build()
                .run();
            (out, rec.drain())
        });
    });
    g.finish();
}

fn bench_distributed_posv(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_posv");
    g.sample_size(10);
    let d = SbcExtended::new(5);
    let rhs = RowCyclic::new(10);
    g.bench_function("sbc5_nt12_b16", |bench| {
        bench.iter(|| {
            Run::posv(&d, &rhs, 12)
                .block(16)
                .seed(42)
                .execute()
                .unwrap()
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_distributed_potrf, bench_runtime_workers, bench_recorded_potrf, bench_distributed_posv
);
criterion_main!(benches);
