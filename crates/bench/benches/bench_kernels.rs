//! Criterion micro-benchmarks of the tile kernels (the building blocks of
//! every experiment; Fig 7's efficiency model is calibrated against such
//! kernels), dispatched through the [`Kernels`] trait.
//!
//! The `kernel_backends` group races every [`KernelBackend`] on the same
//! GEMM shape the paper's runs spend their time in (`b = 256`, `C -= A·Bᵀ`)
//! — under `SBC_BENCH_JSON` its records land in `BENCH_criterion.json`, so
//! the blocked/naive speedup is a tracked datapoint, not folklore.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sbc_kernels::reference::{random_lower_tile, random_spd_tile, random_tile};
use sbc_kernels::{KernelBackend, Kernels, Tile, Trans};

/// The backend the shape-sweep groups measure; the historical series was
/// recorded against the naive kernels, so the series stays comparable.
const K: KernelBackend = KernelBackend::Naive;

const BACKENDS: [KernelBackend; 3] = [
    KernelBackend::Naive,
    KernelBackend::Blocked,
    KernelBackend::Arch,
];

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_nt");
    for b in [32usize, 64, 128] {
        let a = random_tile(b, 1);
        let bt = random_tile(b, 2);
        g.throughput(Throughput::Elements((2 * b * b * b) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, _| {
            let mut ct = Tile::zeros(b);
            bench.iter(|| K.gemm(Trans::No, Trans::Yes, -1.0, &a, &bt, 1.0, &mut ct));
        });
    }
    g.finish();
}

fn bench_kernel_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_backends");
    let b = 256usize;
    let a = random_tile(b, 9);
    let bt = random_tile(b, 10);
    g.throughput(Throughput::Elements((2 * b * b * b) as u64));
    for k in BACKENDS {
        g.bench_with_input(BenchmarkId::new("gemm_nt_256", k), &k, |bench, &k| {
            let mut ct = Tile::zeros(b);
            bench.iter(|| k.gemm(Trans::No, Trans::Yes, -1.0, &a, &bt, 1.0, &mut ct));
        });
    }
    g.finish();
}

fn bench_syrk(c: &mut Criterion) {
    let mut g = c.benchmark_group("syrk_lower");
    for b in [32usize, 64, 128] {
        let a = random_tile(b, 3);
        g.throughput(Throughput::Elements((b * b * b) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, _| {
            let mut ct = Tile::zeros(b);
            bench.iter(|| K.syrk(Trans::No, -1.0, &a, 1.0, &mut ct));
        });
    }
    g.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("trsm_right_lower_trans");
    for b in [32usize, 64, 128] {
        let l = random_lower_tile(b, 4);
        let rhs = random_tile(b, 5);
        g.throughput(Throughput::Elements((b * b * b) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, _| {
            bench.iter(|| {
                let mut x = rhs.clone();
                K.trsm_right_lower_trans(1.0, &l, &mut x);
                x
            });
        });
    }
    g.finish();
}

fn bench_factor_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("factor_kernels_64");
    let b = 64;
    let spd = random_spd_tile(b, 6);
    g.bench_function("potrf", |bench| {
        bench.iter(|| {
            let mut t = spd.clone();
            K.potrf(&mut t).unwrap();
            t
        });
    });
    let mut l = random_lower_tile(b, 7);
    l.zero_strict_upper();
    g.bench_function("trtri", |bench| {
        bench.iter(|| {
            let mut t = l.clone();
            K.trtri(&mut t).unwrap();
            t
        });
    });
    g.bench_function("lauum", |bench| {
        bench.iter(|| {
            let mut t = l.clone();
            K.lauum(&mut t);
            t
        });
    });
    let x0 = random_tile(b, 8);
    g.bench_function("trmm", |bench| {
        bench.iter(|| {
            let mut x = x0.clone();
            K.trmm_left_lower_trans(&l, &mut x);
            x
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_gemm, bench_kernel_backends, bench_syrk, bench_trsm, bench_factor_kernels
);
criterion_main!(benches);
