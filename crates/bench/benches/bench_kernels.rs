//! Criterion micro-benchmarks of the tile kernels (the building blocks of
//! every experiment; Fig 7's efficiency model is calibrated against such
//! kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sbc_kernels::reference::{random_lower_tile, random_spd_tile, random_tile};
use sbc_kernels::{
    gemm, lauum, potrf, syrk, trmm_left_lower_trans, trsm_right_lower_trans, trtri, Tile, Trans,
};

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_nt");
    for b in [32usize, 64, 128] {
        let a = random_tile(b, 1);
        let bt = random_tile(b, 2);
        g.throughput(Throughput::Elements((2 * b * b * b) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, _| {
            let mut ct = Tile::zeros(b);
            bench.iter(|| gemm(Trans::No, Trans::Yes, -1.0, &a, &bt, 1.0, &mut ct));
        });
    }
    g.finish();
}

fn bench_syrk(c: &mut Criterion) {
    let mut g = c.benchmark_group("syrk_lower");
    for b in [32usize, 64, 128] {
        let a = random_tile(b, 3);
        g.throughput(Throughput::Elements((b * b * b) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, _| {
            let mut ct = Tile::zeros(b);
            bench.iter(|| syrk(Trans::No, -1.0, &a, 1.0, &mut ct));
        });
    }
    g.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("trsm_right_lower_trans");
    for b in [32usize, 64, 128] {
        let l = random_lower_tile(b, 4);
        let rhs = random_tile(b, 5);
        g.throughput(Throughput::Elements((b * b * b) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, _| {
            bench.iter(|| {
                let mut x = rhs.clone();
                trsm_right_lower_trans(1.0, &l, &mut x);
                x
            });
        });
    }
    g.finish();
}

fn bench_factor_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("factor_kernels_64");
    let b = 64;
    let spd = random_spd_tile(b, 6);
    g.bench_function("potrf", |bench| {
        bench.iter(|| {
            let mut t = spd.clone();
            potrf(&mut t).unwrap();
            t
        });
    });
    let mut l = random_lower_tile(b, 7);
    l.zero_strict_upper();
    g.bench_function("trtri", |bench| {
        bench.iter(|| {
            let mut t = l.clone();
            trtri(&mut t).unwrap();
            t
        });
    });
    g.bench_function("lauum", |bench| {
        bench.iter(|| {
            let mut t = l.clone();
            lauum(&mut t);
            t
        });
    });
    let x0 = random_tile(b, 8);
    g.bench_function("trmm", |bench| {
        bench.iter(|| {
            let mut x = x0.clone();
            trmm_left_lower_trans(&l, &mut x);
            x
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_gemm, bench_syrk, bench_trsm, bench_factor_kernels
);
criterion_main!(benches);
