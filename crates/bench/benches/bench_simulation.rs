//! Criterion benchmarks of the discrete-event simulator itself plus
//! miniature versions of the performance figures (Fig 9's four schemes at a
//! reduced size): `cargo bench` exercises exactly the machinery the `paper`
//! binary uses at full scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sbc_dist::{SbcBasic, SbcExtended, TwoDBlockCyclic, TwoPointFiveD};
use sbc_simgrid::{Platform, ScheduleMode, SimConfig, Simulator};
use sbc_taskgraph::{build_potrf, build_potrf_25d};

fn bench_engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engine");
    g.sample_size(10);
    for nt in [24usize, 48] {
        let d = SbcExtended::new(6);
        let graph = build_potrf(&d, nt);
        let p = Platform::bora(15);
        g.throughput(Throughput::Elements(graph.len() as u64));
        g.bench_with_input(BenchmarkId::new("potrf_sbc6", nt), &nt, |bench, _| {
            bench.iter(|| Simulator::new(&graph, &p, SimConfig::chameleon(500)).run());
        });
    }
    g.finish();
}

fn bench_fig9_miniature(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_miniature_nt40");
    g.sample_size(10);
    let nt = 40;
    let schemes: Vec<(&str, sbc_taskgraph::TaskGraph, usize, ScheduleMode)> = vec![
        (
            "sbc_r8",
            build_potrf(&SbcExtended::new(8), nt),
            28,
            ScheduleMode::Async,
        ),
        (
            "2dbc_7x4",
            build_potrf(&TwoDBlockCyclic::new(7, 4), nt),
            28,
            ScheduleMode::Async,
        ),
        (
            "25d_sbc_c3",
            build_potrf_25d(&TwoPointFiveD::new(SbcBasic::new(4), 3), nt),
            24,
            ScheduleMode::Async,
        ),
        (
            "confchox_like",
            build_potrf(&TwoDBlockCyclic::new(8, 4), nt),
            32,
            ScheduleMode::BulkSynchronous,
        ),
    ];
    for (name, graph, nodes, mode) in &schemes {
        let p = Platform::bora(*nodes);
        let cfg = SimConfig {
            tile_b: 500,
            mode: *mode,
            use_priorities: true,
            priority_comms: false,
        };
        g.bench_function(*name, |bench| {
            bench.iter(|| Simulator::new(graph, &p, cfg).run());
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_engine_throughput, bench_fig9_miniature
);
criterion_main!(benches);
