//! Plan-cache speedup: a warm cache hit must be orders of magnitude
//! (>= 100x) faster than the cold candidate search it memoizes, or the
//! cache is not paying for its locks.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sbc_planner::{Op, Planner};
use sbc_simgrid::Platform;

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");
    let b = 500;

    for nt in [20usize, 40] {
        let planner = Planner::new(Platform::bora(28));
        planner.plan(Op::Potrf, nt, b); // warm the cache

        group.bench_with_input(BenchmarkId::new("cache_hit", nt), &nt, |bench, &nt| {
            bench.iter(|| planner.plan(Op::Potrf, black_box(nt), b))
        });
        group.bench_with_input(BenchmarkId::new("cold_search", nt), &nt, |bench, &nt| {
            bench.iter(|| planner.plan_uncached(Op::Potrf, black_box(nt), b))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
