//! The scheduler zoo under the simulator: per-scheduler simulation cost,
//! plus one `scheduler_zoo.makespan.<name>` record per scheduler appended
//! to `$SBC_BENCH_JSON` so regressions in *simulated schedule quality* are
//! tracked next to criterion's wall-clock timings.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use sbc_dist::SbcExtended;
use sbc_simgrid::{Platform, SimConfig, Simulator};
use sbc_taskgraph::builders::build_potrf;
use sbc_topo::zoo;

const NT: usize = 20;
const B: usize = 500;

fn platform() -> Platform {
    Platform::bora(10)
}

fn bench_scheduler_zoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_zoo");
    let graph = build_potrf(&SbcExtended::new(5), NT);
    let platform = platform();

    for sched in zoo() {
        group.bench_with_input(
            BenchmarkId::new("simulate", sched.name()),
            &sched,
            |bench, sched| {
                bench.iter(|| {
                    Simulator::new(black_box(&graph), &platform, SimConfig::chameleon(B))
                        .with_scheduler(sched.as_ref())
                        .run()
                        .makespan
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler_zoo);

fn main() {
    benches();

    // Record the *simulated makespan* (schedule quality, not wall-clock)
    // per scheduler — deterministic, so any drift is a real change.
    if let Ok(path) = std::env::var("SBC_BENCH_JSON") {
        if !path.is_empty() {
            let graph = build_potrf(&SbcExtended::new(5), NT);
            let platform = platform();
            for sched in zoo() {
                let report = Simulator::new(&graph, &platform, SimConfig::chameleon(B))
                    .with_scheduler(sched.as_ref())
                    .run();
                let record = format!(
                    "{{\"name\":\"scheduler_zoo.makespan.{}\",\"makespan_s\":{:.9},\"messages\":{}}}",
                    sched.name(),
                    report.makespan,
                    report.messages
                );
                sbc_bench::append_bench_record(&path, &record);
            }
        }
    }
}
