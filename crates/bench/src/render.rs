//! Text rendering of figures.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Sample points, in x order.
    pub points: Vec<(f64, f64)>,
}

/// A reproduced table/figure: several series over a common x axis.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure identifier and caption.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form notes (paper expectations, substitutions).
    pub notes: Vec<String>,
}

/// Renders a figure as an aligned text table: one row per x value, one
/// column per series.
pub fn render_figure(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {} ==\n", fig.title));
    // collect the union of x values (sorted, deduped by bits)
    let mut xs: Vec<f64> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|a, b| a.to_bits() == b.to_bits());

    let name_width = fig
        .series
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(8)
        .max(8);
    out.push_str(&format!("{:>12}", fig.xlabel));
    for s in &fig.series {
        out.push_str(&format!("  {:>w$}", s.name, w = name_width));
    }
    out.push('\n');
    for &x in &xs {
        out.push_str(&format!("{:>12}", trim_float(x)));
        for s in &fig.series {
            match s
                .points
                .iter()
                .find(|&&(px, _)| px.to_bits() == x.to_bits())
            {
                Some(&(_, y)) => out.push_str(&format!("  {:>w$}", trim_float(y), w = name_width)),
                None => out.push_str(&format!("  {:>w$}", "-", w = name_width)),
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("             ({} vertically)\n", fig.ylabel));
    for n in &fig.notes {
        out.push_str(&format!("  note: {n}\n"));
    }
    out
}

/// Renders a figure as CSV: header `x,<series...>`, one row per x value.
pub fn render_csv(fig: &Figure) -> String {
    let mut xs: Vec<f64> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|a, b| a.to_bits() == b.to_bits());
    let mut out = String::new();
    out.push_str(&fig.xlabel);
    for s in &fig.series {
        out.push(',');
        out.push_str(&s.name.replace(',', ";"));
    }
    out.push('\n');
    for &x in &xs {
        out.push_str(&format!("{x}"));
        for s in &fig.series {
            out.push(',');
            if let Some(&(_, y)) = s
                .points
                .iter()
                .find(|&&(px, _)| px.to_bits() == x.to_bits())
            {
                out.push_str(&format!("{y}"));
            }
        }
        out.push('\n');
    }
    out
}

fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e9 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let fig = Figure {
            title: "Fig X".into(),
            xlabel: "n".into(),
            ylabel: "GF/s".into(),
            series: vec![
                Series {
                    name: "SBC".into(),
                    points: vec![(1.0, 10.0), (2.0, 20.0)],
                },
                Series {
                    name: "2DBC".into(),
                    points: vec![(1.0, 8.0)],
                },
            ],
            notes: vec!["test".into()],
        };
        let s = render_figure(&fig);
        assert!(s.contains("Fig X"));
        assert!(s.contains("SBC"));
        assert!(s.contains("note: test"));
        assert!(s.contains('-')); // missing point placeholder
    }

    #[test]
    fn csv_renders_header_and_rows() {
        let fig = Figure {
            title: "t".into(),
            xlabel: "n".into(),
            ylabel: "y".into(),
            series: vec![Series {
                name: "a,b".into(),
                points: vec![(1.0, 2.5)],
            }],
            notes: vec![],
        };
        let csv = render_csv(&fig);
        assert!(csv.starts_with("n,a;b\n"));
        assert!(csv.contains("1,2.5"));
    }

    #[test]
    fn trims_floats() {
        assert_eq!(trim_float(5.0), "5");
        assert_eq!(trim_float(123.456), "123.5");
        assert_eq!(trim_float(1.23456), "1.235");
    }
}
