//! # sbc-bench — the paper-reproduction harness
//!
//! One function per table/figure of the paper's evaluation section
//! (Section V). Each returns a [`Figure`] — named series over a swept
//! parameter — that the `paper` binary renders as aligned text. The same
//! functions back the Criterion benchmarks at reduced sizes.
//!
//! All performance numbers come from the `sbc-simgrid` model of the `bora`
//! platform; all communication volumes are exact counts (verified elsewhere
//! to match both the task-graph derivation and the threaded runtime's
//! measured traffic). We reproduce *shapes* (who wins, by what factor,
//! where curves cross), not the testbed's absolute GFlop/s.

#![warn(missing_docs)]

pub mod figures;
pub mod render;

pub use figures::Scale;
pub use render::{render_csv, render_figure, Figure, Series};
