//! # sbc-bench — the paper-reproduction harness
//!
//! One function per table/figure of the paper's evaluation section
//! (Section V). Each returns a [`Figure`] — named series over a swept
//! parameter — that the `paper` binary renders as aligned text. The same
//! functions back the Criterion benchmarks at reduced sizes.
//!
//! All performance numbers come from the `sbc-simgrid` model of the `bora`
//! platform; all communication volumes are exact counts (verified elsewhere
//! to match both the task-graph derivation and the threaded runtime's
//! measured traffic). We reproduce *shapes* (who wins, by what factor,
//! where curves cross), not the testbed's absolute GFlop/s.

#![warn(missing_docs)]

pub mod figures;
pub mod render;

pub use figures::Scale;
pub use render::{render_csv, render_figure, Figure, Series};

/// Appends one record to a JSON-array file, keeping it valid JSON after
/// every append (same format the vendored criterion writes to
/// `$SBC_BENCH_JSON`). Used by the `paper` binary and the hand-rolled
/// bench mains to publish extra measurements next to criterion's.
pub fn append_bench_record(path: &str, record: &str) {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let body = existing
        .trim_end()
        .strip_suffix(']')
        .map(|s| s.trim_end().trim_end_matches(',').to_string())
        .unwrap_or_default();
    let merged = if body.trim() == "[" || body.trim().is_empty() {
        format!("[\n{record}\n]\n")
    } else {
        format!("{body},\n{record}\n]\n")
    };
    std::fs::write(path, merged).expect("failed to append the bench record");
}
