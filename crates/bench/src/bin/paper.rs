//! `paper` — regenerates every table and figure of the SBC paper.
//!
//! ```text
//! cargo run --release -p sbc-bench --bin paper -- all
//! cargo run --release -p sbc-bench --bin paper -- fig9 --full
//! ```
//!
//! Targets: `table1`, `patterns`, `fig7` … `fig14`, `ablations`, `trace`,
//! `planner`, `topo`, `obs`, `net`, `all`. `--full` switches to the paper's
//! full sweep sizes (slow); `--csv` emits figures as CSV instead of text
//! tables; `--out <path>` sets where `obs` / `net` write their Chrome-trace
//! JSON (for `topo`, the text report); `--workers <n>` sets the worker
//! threads per virtual node for `obs` (default: the runtime's own default).
//!
//! `topo` sweeps {topology × scheduler × distribution} through the
//! simulator and prints a deterministic Pareto report of (makespan,
//! cross-rack bytes) against the analytic lower bound, then compares the
//! flat and topology-aware planners on an oversubscribed rack split
//! (`--nodes`, `--nt`, `--block` resize the sweep).
//!
//! `net` runs a real multi-process POTRF: one OS process per node over
//! localhost sockets (`--nodes <n>` ranks, `--backend tcp|uds`,
//! `--nt <tiles>`, `--block <b>`), validates the gathered factor against
//! the sequential algorithm bitwise, checks the wire traffic against the
//! analytic counts, and merges every rank's Chrome trace into one file.
//! It is deliberately excluded from `all` (it re-execs this binary).
//!
//! `--faults drop:N,dup:N,delay:MS` makes every rank's endpoint lossy and
//! wraps it in a reliability session (`--seed <s>` varies which sends the
//! schedule hits); the run must still produce the bitwise-identical factor
//! and exact analytic payload counts, with retransmissions reported
//! separately. `--deadline <secs>` arms the liveness watchdog so a stalled
//! run fails with a diagnosis instead of hanging.
//!
//! `mc` model-checks the reliability session protocol: it exhaustively
//! explores bounded executions of the real `sbc_net::Session` code under
//! all interleavings of deliver/drop/duplicate/reorder on a virtual clock
//! (`--depth`, `--states` bound the search), proves the pre-fix strictly
//! periodic drop gate livelocks — writing the minimal counterexample trace
//! to `--out` — and that the shipped fair-loss gate terminates. Exits
//! nonzero if any invariant fails or the known livelock is *not* found.
//!
//! The resident service family: `serve` keeps a warm mesh answering jobs
//! on `--addr`, `submit` is its batch client (`--stats` appends a live
//! metrics summary scraped after the batch), and `top` is a refreshing
//! text dashboard polling a running service over the same socket
//! (`--interval <secs>`, `--iters <n>`, `--events <n>`, `--once` for a
//! single frame, `--raw` to dump the exposition text verbatim).

use sbc_bench::figures::{self, Scale};
use sbc_bench::{append_bench_record, render_csv, render_figure};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let scale = if full { Scale::Full } else { Scale::Quick };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "obs-trace.json".to_string());
    let workers: Option<usize> = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .map(|w| w.parse().expect("--workers takes a positive integer"));
    // Skip flags and the values consumed by value-taking options.
    const VALUE_FLAGS: [&str; 18] = [
        "--out",
        "--workers",
        "--depth",
        "--states",
        "--nodes",
        "--backend",
        "--nt",
        "--block",
        "--faults",
        "--seed",
        "--deadline",
        "--addr",
        "--max-inflight",
        "--batch",
        "--prio",
        "--interval",
        "--iters",
        "--events",
    ];
    let mut skip_next = false;
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if VALUE_FLAGS.contains(&a.as_str()) {
                skip_next = true;
            }
            !a.starts_with("--")
        })
        .map(|s| s.as_str())
        .collect();
    let target = targets.first().copied().unwrap_or("all");

    let all = target == "all";
    let mut ran = false;

    if all || target == "table1" {
        println!("== Table I: sizes of the considered distributions ==");
        println!("{}", figures::table1_text());
        ran = true;
    }
    if all || target == "patterns" {
        patterns();
        ran = true;
    }
    for (name, f) in [
        ("fig7", figures::fig7 as fn(Scale) -> sbc_bench::Figure),
        ("fig8", figures::fig8),
        ("fig9", figures::fig9),
        ("fig10", figures::fig10),
        ("fig11", figures::fig11),
        ("fig12", figures::fig12),
        ("fig13", figures::fig13),
        ("fig14", figures::fig14),
        ("ablations", figures::ablations),
    ] {
        if all || target == name {
            eprintln!("running {name} ({scale:?})...");
            let fig = f(scale);
            if csv {
                println!("# {name}\n{}", render_csv(&fig));
            } else {
                println!("{}", render_figure(&fig));
            }
            ran = true;
        }
    }

    if all || target == "trace" {
        trace_demo();
        ran = true;
    }
    if all || target == "planner" {
        planner_report(full);
        ran = true;
    }
    if all || target == "topo" {
        topo_run(&args, full);
        ran = true;
    }
    if all || target == "obs" {
        observed_run(&out_path, full, workers);
        ran = true;
    }
    // not part of `all`: a verification target, not a paper figure
    if target == "mc" {
        mc_run(&args, &out_path);
        ran = true;
    }
    // not part of `all`: re-execs this binary once per rank
    if target == "net" {
        net_run(&args, &out_path, workers);
        ran = true;
    }
    // not part of `all`: `serve` blocks until a client sends Shutdown,
    // `submit` and `top` need a running server
    if target == "serve" {
        serve_run(&args, &out_path, workers);
        ran = true;
    }
    if target == "submit" {
        submit_run(&args);
        ran = true;
    }
    if target == "top" {
        top_run(&args);
        ran = true;
    }

    if !ran {
        eprintln!(
            "unknown target '{target}'. Use one of: all, table1, patterns, fig7..fig14, ablations, planner, topo, trace, obs, net, mc, serve, submit, top [--full] [--depth <n>] [--states <n>] [--out <path>] [--workers <n>] [--nodes <n>] [--backend tcp|uds] [--nt <tiles>] [--block <b>] [--faults drop:N,dup:N,delay:MS] [--seed <s>] [--deadline <secs>] [--addr <path|host:port>] [--max-inflight <n>] [--batch <n>] [--prio <n>] [--shutdown] [--stats] [--interval <secs>] [--iters <n>] [--events <n>] [--once] [--raw]"
        );
        std::process::exit(2);
    }
}

/// `paper mc`: exhaustive model checking of the ARQ session protocol.
///
/// Four bounded explorations, each over the real `Session` state machine
/// on a virtual clock:
///
/// 1. an adversary that drops, duplicates and reorders at will over a
///    2-peer, 3-payload script — every invariant must hold on every
///    reachable interleaving;
/// 2. the send script of an actual tiled Cholesky (whose length equals
///    the analytic `potrf_messages` count) under loss;
/// 3. the pre-fix strictly periodic drop gate — the checker must *find*
///    the phase-locking livelock and emit its minimal trace;
/// 4. the shipped fair-loss gate on the same counters — no livelock, and
///    executions terminate fully delivered.
fn mc_run(args: &[String], out_path: &str) {
    use sbc_mc::{check, LossModel, Scenario};
    use sbc_net::FaultConfig;
    use std::time::Instant;

    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let depth: usize = value_of("--depth")
        .map(|v| v.parse().expect("--depth takes a positive integer"))
        .unwrap_or(12);
    let states: usize = value_of("--states")
        .map(|v| v.parse().expect("--states takes a positive integer"))
        .unwrap_or(100_000);
    let trace_out = if out_path == "obs-trace.json" {
        "mc-counterexample.txt"
    } else {
        out_path
    };

    println!("== model checking the ARQ session protocol (depth {depth}, <= {states} states) ==");
    let mut failed = false;
    let mut run = |name: &str, sc: &Scenario, expect_violation: bool| {
        let start = Instant::now();
        let report = check(sc);
        let status = match (&report.violation, expect_violation) {
            (None, false) => "ok",
            (Some(_), true) => "found (expected)",
            (None, true) => {
                failed = true;
                "MISSED EXPECTED VIOLATION"
            }
            (Some(_), false) => {
                failed = true;
                "VIOLATION"
            }
        };
        println!(
            "{name:<26} {status:<26} states {:>7} explored / {:>7} distinct, {:>8} invariant checks, {:>4} terminal, depth {:>2}{}, {:.2?}",
            report.states_explored,
            report.distinct_states,
            report.invariant_checks,
            report.terminal_states,
            report.max_depth_seen,
            if report.truncated { " (truncated)" } else { "" },
            start.elapsed(),
        );
        if let Some(cx) = &report.violation {
            println!("  {}", cx.violation);
            if expect_violation {
                let body = format!("{cx}");
                std::fs::write(trace_out, &body).expect("write counterexample trace");
                println!(
                    "  minimal {}-action counterexample written to {trace_out}",
                    cx.actions.len()
                );
            } else {
                println!("{}", cx.rendered);
            }
        }
        report
    };

    let adversary = Scenario::scripted(2, &[(0, 1), (0, 1), (1, 0)])
        .loss(LossModel::Nondet {
            max_drops: 2,
            max_dups: 1,
            reorder: true,
        })
        .depth(depth)
        .states(states);
    let r1 = run("adversary 2x3", &adversary, false);
    if !r1.truncated {
        println!("  state space closed: every reachable interleaving checked");
    }

    let potrf = Scenario::potrf(&sbc_dist::TwoDBlockCyclic::new(1, 2), 3)
        .loss(LossModel::Nondet {
            max_drops: 1,
            max_dups: 0,
            reorder: false,
        })
        .depth(depth.max(16))
        .states(states);
    run("potrf nt=3 under loss", &potrf, false);

    let periodic = Scenario::scripted(2, &[(0, 1), (0, 1)])
        .loss(LossModel::Periodic {
            drop_every: 2,
            phase: 1,
        })
        .depth(depth.max(20))
        .states(states);
    run("periodic gate (pre-fix)", &periodic, true);

    let fair = Scenario::scripted(2, &[(0, 1), (0, 1)])
        .loss(LossModel::Seeded(FaultConfig {
            drop_every: 2,
            dup_every: 0,
            delay: None,
            max_drops: 3,
            phase: 1,
        }))
        .depth(depth.max(16))
        .states(states);
    let r4 = run("fair-loss gate (shipped)", &fair, false);
    if r4.terminal_states == 0 {
        failed = true;
        println!("  FAIL: the fair gate never let an execution terminate");
    }

    if failed {
        eprintln!("model checking FAILED");
        std::process::exit(1);
    }
    println!("all protocol invariants hold; the known livelock is pinned");
}

/// `paper net`: a real multi-process distributed Cholesky over localhost.
///
/// The root invocation spawns one worker process per remaining rank
/// (`sbc_net::launch` re-execs this binary with the same arguments), every
/// rank executes its share of the POTRF graph over the stream transport,
/// and rank 0 gathers, validates and reports:
///
/// * the factor matches the sequential `potrf_tiled` **bitwise**;
/// * the Cholesky residual is tiny;
/// * the messages/bytes that crossed real sockets equal the analytic
///   schedule-invariant counts of `sbc_dist::comm`;
/// * every rank's Chrome trace (written to `<out>.rank<r>`) merges into one
///   valid timeline at `<out>`, send/recv flow arrows included.
fn net_run(args: &[String], out_path: &str, workers: Option<usize>) {
    use sbc_dist::{comm, Distribution, SbcExtended, TwoDBlockCyclic};
    use sbc_matrix::{cholesky_residual, potrf_tiled, random_spd};
    use sbc_net::{
        launch, wait_children, Backend, FaultConfig, Faulty, Role, Session, SessionEventKind,
        Transport,
    };
    use sbc_obs::{chrome_trace, json, merge_chrome_traces, FaultKind, Recorder};
    use sbc_runtime::Run;
    use std::time::Duration;

    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let nodes: usize = value_of("--nodes")
        .map(|v| v.parse().expect("--nodes takes a positive integer"))
        .unwrap_or(4);
    assert!(nodes >= 1, "--nodes must be at least 1");
    let backend = value_of("--backend")
        .map(|v| Backend::parse(v).expect("--backend takes tcp or uds"))
        .unwrap_or(Backend::Tcp);
    let nt: usize = value_of("--nt")
        .map(|v| v.parse().expect("--nt takes a positive integer"))
        .unwrap_or(12);
    let b: usize = value_of("--block")
        .map(|v| v.parse().expect("--block takes a positive integer"))
        .unwrap_or(8);
    let faults: Option<FaultConfig> = value_of("--faults")
        .map(|v| FaultConfig::parse(v).expect("--faults takes drop:N,dup:N,delay:MS clauses"));
    let fault_seed: u64 = value_of("--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let deadline: Option<f64> =
        value_of("--deadline").map(|v| v.parse().expect("--deadline takes seconds (a float)"));
    let seed = 2022u64;

    // The distribution is a pure function of the rank count, so every
    // process derives the same one: SBC when P is triangular, else the
    // squarest 2DBC grid.
    let dist: Box<dyn Distribution> = match (2..=64).find(|r| r * (r - 1) / 2 == nodes) {
        Some(r) => Box::new(SbcExtended::new(r)),
        None => {
            let p = (1..=nodes)
                .filter(|p| nodes.is_multiple_of(*p))
                .fold(1, |best, p| if p <= nodes / p { p.max(best) } else { best });
            Box::new(TwoDBlockCyclic::new(p, nodes / p))
        }
    };

    let role = launch(nodes, backend, args).expect("failed to form the process mesh");
    let (raw, children) = match role {
        Role::Root { net, children } => (net, Some(children)),
        Role::Worker { net } => (net, None),
    };
    let rank = raw.rank();

    // With --faults the raw endpoint becomes lossy and a reliability
    // session recovers on top of it; the run below must behave exactly as
    // if the network were perfect.
    let mut session = None;
    let mut plain = None;
    let net: &dyn Transport = match faults {
        Some(mut cfg) => {
            // per-rank phase: the same seed reproduces the same global
            // schedule, but each rank's drops hit different sends
            cfg.phase = fault_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(rank as u64);
            &*session.insert(Session::new(Faulty::new(raw, cfg)))
        }
        None => &*plain.insert(raw),
    };

    let recorder = Recorder::new();
    let mut run = Run::potrf(&dist.as_ref(), nt)
        .block(b)
        .seed(seed)
        .recorder(&recorder);
    if let Some(w) = workers {
        run = run.workers(w);
    }
    if let Some(d) = deadline {
        run = run.deadline(Duration::from_secs_f64(d));
    }
    let out = run.execute_rank(net).expect("distributed execution failed");
    let wire = net.stats();
    if let Some(s) = &session {
        // reliability incidents into this rank's trace as fault spans
        let mut h = recorder.node(rank);
        for ev in s.take_events() {
            let kind = match ev.kind {
                SessionEventKind::Retransmit => FaultKind::Retransmit,
                SessionEventKind::AckRtt => FaultKind::AckRtt,
            };
            h.fault(kind, recorder.time_of(ev.start), recorder.time_of(ev.end));
        }
    }
    let trace = chrome_trace(&recorder.drain());
    let rank_path = format!("{out_path}.rank{rank}");
    std::fs::write(&rank_path, &trace).expect("failed to write the rank trace");

    let Some(mut children) = children else {
        return; // worker ranks are done once their trace is on disk
    };
    let out = out.expect("rank 0 gathers the outcome");
    println!(
        "== net: POTRF nt={nt} b={b} over {nodes} {} processes ({}) ==",
        backend.name(),
        dist.name()
    );

    // wire accounting vs the analytic schedule-invariant counts
    let analytic = comm::potrf_messages(&dist.as_ref(), nt);
    assert_eq!(out.stats.messages, analytic, "message count drifted");
    assert_eq!(
        out.stats.bytes,
        comm::messages_to_bytes(analytic, b),
        "byte count drifted"
    );
    println!(
        "wire traffic: {} messages, {} bytes — equal to the analytic counts",
        out.stats.messages, out.stats.bytes
    );
    if faults.is_some() {
        println!(
            "reliability (rank 0 endpoint): {} retransmits ({} bytes), {} control frames \
             ({} bytes) — recovered, excluded from the payload accounting above",
            wire.retrans_messages, wire.retrans_bytes, wire.control_messages, wire.control_bytes
        );
    }

    // bitwise equality with the sequential factorization + residual
    let mut seq = random_spd(seed, nt, b);
    potrf_tiled(&mut seq).expect("sequential factorization failed");
    for (i, j) in seq.tile_coords() {
        assert_eq!(
            out.factor().tile(i, j).max_abs_diff(seq.tile(i, j)),
            0.0,
            "tile ({i},{j}) differs from the sequential factor"
        );
    }
    let residual = cholesky_residual(&random_spd(seed, nt, b), out.factor());
    assert!(residual < 1e-12, "residual {residual:e} too large");
    println!("factor: bitwise equal to sequential, residual {residual:.3e}");

    // reap the workers, then merge every rank's trace into one timeline
    let clean = wait_children(&mut children).expect("failed to wait for workers");
    assert!(clean, "a worker process exited with failure");
    let rank_traces: Vec<String> = (0..nodes)
        .map(|r| {
            std::fs::read_to_string(format!("{out_path}.rank{r}")).expect("a rank trace is missing")
        })
        .collect();
    let merged = merge_chrome_traces(&rank_traces);
    json::validate(&merged).expect("merged chrome trace must be valid JSON");
    std::fs::write(out_path, &merged).expect("failed to write the merged trace");
    println!(
        "chrome trace: {out_path} ({} bytes, {nodes} rank files merged) — load in Perfetto",
        merged.len()
    );
}

/// `paper serve`: the resident factorization service. Binds `--addr` (a
/// socket path or `host:port`), keeps `--nodes` rank engines and the plan
/// cache warm, and streams jobs submitted by `paper submit` processes
/// until one of them sends a shutdown. On exit prints the jobs/sec
/// throughput and the metrics registry, writes the per-job Chrome trace
/// to `--out`, and appends a jobs/sec record to `$SBC_BENCH_JSON` when
/// that is set (the same file the criterion benches append to).
fn serve_run(args: &[String], out_path: &str, workers: Option<usize>) {
    use sbc_serve::{serve, ServeConfig, Service};
    use std::sync::Arc;
    use std::time::Duration;

    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let addr = value_of("--addr")
        .cloned()
        .unwrap_or_else(|| "/tmp/sbc-serve.sock".to_string());
    let mut cfg = ServeConfig::default();
    if let Some(n) = value_of("--nodes") {
        cfg.nodes = n.parse().expect("--nodes takes a positive integer");
        assert!(cfg.nodes >= 1, "--nodes must be at least 1");
    }
    if let Some(m) = value_of("--max-inflight") {
        cfg.max_inflight = m.parse().expect("--max-inflight takes a positive integer");
    }
    if let Some(d) = value_of("--deadline") {
        let secs: f64 = d.parse().expect("--deadline takes seconds (a float)");
        cfg.deadline = Some(Duration::from_secs_f64(secs));
    }
    if let Some(w) = workers {
        cfg.workers = w;
    }

    let service = Service::start(cfg);
    println!(
        "== serve: resident factorization service on {addr} ({} nodes, {} workers/node, max {} jobs in flight) ==",
        cfg.nodes, cfg.workers, cfg.max_inflight
    );
    serve(Arc::clone(&service), &addr).expect("service failed");

    let jobs = service.completed();
    let jps = service.jobs_per_sec();
    println!("drained: {jobs} jobs served, {jps:.2} jobs/sec");
    println!("{}", service.metrics().snapshot().render());
    let trace = service.chrome_trace();
    std::fs::write(out_path, &trace).expect("failed to write the per-job trace");
    println!("per-job chrome trace: {out_path} ({} bytes)", trace.len());
    if let Ok(path) = std::env::var("SBC_BENCH_JSON") {
        let record = format!(
            r#"{{"name":"serve.jobs_per_sec","rate":{jps:.3},"rate_unit":"jobs/s","jobs":{jobs}}}"#
        );
        append_bench_record(&path, &record);
        println!("bench record appended to {path}");
    }
}

/// `paper submit`: a client process of a running `paper serve`. Submits a
/// batch of POTRF jobs, validates every returned factor bit-for-bit
/// against the sequential algorithm, prints per-job stats, and exits
/// non-zero if anything was rejected, failed or mismatched. `--shutdown`
/// asks the service to drain and exit afterwards.
fn submit_run(args: &[String]) {
    use sbc_serve::{factor_matches, Client, JobReply, JobRequest};

    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let addr = value_of("--addr")
        .cloned()
        .unwrap_or_else(|| "/tmp/sbc-serve.sock".to_string());
    let nt: usize = value_of("--nt")
        .map(|v| v.parse().expect("--nt takes a positive integer"))
        .unwrap_or(10);
    let b: usize = value_of("--block")
        .map(|v| v.parse().expect("--block takes a positive integer"))
        .unwrap_or(8);
    let seed: u64 = value_of("--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(2022);
    let batch: u32 = value_of("--batch")
        .map(|v| v.parse().expect("--batch takes a positive integer"))
        .unwrap_or(1);
    let prio: u8 = value_of("--prio")
        .map(|v| v.parse().expect("--prio takes 0..=255"))
        .unwrap_or(0);
    let shutdown = args.iter().any(|a| a == "--shutdown");
    let stats = args.iter().any(|a| a == "--stats");

    let mut client =
        Client::connect(&addr).expect("connect to the service (is `paper serve` running?)");
    let request = JobRequest {
        nt,
        b,
        seed,
        seed_rhs: seed ^ 0x5EED,
        prio,
        batch,
    };
    let replies = client.submit(&request).expect("submission failed");
    let mut bad = 0;
    for (k, reply) in replies.iter().enumerate() {
        match reply {
            JobReply::Done {
                messages,
                bytes,
                elapsed,
                plan_cached,
                tiles,
            } => {
                let ok = factor_matches(tiles, nt, b, seed + k as u64);
                if !ok {
                    bad += 1;
                }
                println!(
                    "job {k} (nt={nt} b={b} seed={}): {messages} messages, {bytes} bytes, \
                     {elapsed:?}, plan {}, factor {}",
                    seed + k as u64,
                    if *plan_cached { "cached" } else { "computed" },
                    if ok { "bit-exact" } else { "MISMATCH" },
                );
            }
            JobReply::Rejected(info) => {
                bad += 1;
                println!("job {k}: rejected — {info}");
            }
            JobReply::Failed(info) => {
                bad += 1;
                println!("job {k}: failed — {info}");
            }
        }
    }
    if stats {
        let snap = client.stats().expect("stats scrape failed");
        let c = |name: &str| snap.counter(name).unwrap_or(0);
        println!(
            "service: {} done / {} submitted ({} rejected, {} failed), drift ok={} msg={} bytes={}",
            c("serve.jobs.done"),
            c("serve.jobs.submitted"),
            c("serve.jobs.rejected"),
            c("serve.jobs.failed"),
            c("obs.drift.ok"),
            c("obs.drift.messages"),
            c("obs.drift.bytes"),
        );
        if let Some(h) = snap.histogram("serve.job.latency") {
            println!(
                "latency: {} jobs, mean {:.4}s, min {:.4}s, max {:.4}s",
                h.count,
                h.mean(),
                h.min,
                h.max
            );
        }
    }
    if shutdown {
        client.shutdown().expect("shutdown request failed");
        println!("shutdown requested");
    }
    if bad > 0 {
        eprintln!("{bad} of {} jobs did not validate", replies.len());
        std::process::exit(1);
    }
}

/// `paper top`: a live text dashboard over a running `paper serve`.
/// Scrapes the service's metrics and event tail over the wire every
/// `--interval` seconds and redraws; the scrape path is answered from
/// atomic snapshots, so watching a service does not slow it down.
/// `--iters <n>` stops after n frames (0 = until interrupted), `--once`
/// prints a single frame without clearing the screen, `--raw` dumps the
/// Prometheus-style exposition text verbatim and exits (the form CI
/// archives and external scrapers ingest).
fn top_run(args: &[String]) {
    use sbc_obs::MetricsSnapshot;
    use sbc_serve::Client;
    use std::io::Write as _;
    use std::time::{Duration, Instant};

    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let addr = value_of("--addr")
        .cloned()
        .unwrap_or_else(|| "/tmp/sbc-serve.sock".to_string());
    let interval: f64 = value_of("--interval")
        .map(|v| v.parse().expect("--interval takes seconds (a float)"))
        .unwrap_or(1.0);
    let iters: u64 = value_of("--iters")
        .map(|v| v.parse().expect("--iters takes an integer"))
        .unwrap_or(0);
    let events_shown: u32 = value_of("--events")
        .map(|v| v.parse().expect("--events takes an integer"))
        .unwrap_or(8);
    let once = args.iter().any(|a| a == "--once");
    let raw = args.iter().any(|a| a == "--raw");

    let mut client =
        Client::connect(&addr).expect("connect to the service (is `paper serve` running?)");
    // a monitor whose reader went away (`paper top | head`) exits
    // quietly instead of panicking on the broken pipe
    let mut emit = {
        let mut stdout = std::io::stdout();
        move |s: &str| write!(stdout, "{s}").and_then(|()| stdout.flush()).is_ok()
    };
    if raw {
        emit(&client.stats_text().expect("stats scrape failed mid-run"));
        return;
    }

    let mut prev: Option<(MetricsSnapshot, Instant)> = None;
    let mut frame = 0u64;
    loop {
        let snap = client.stats().expect("stats scrape failed mid-run");
        let events = client
            .events(events_shown)
            .expect("event scrape failed mid-run");
        let now = Instant::now();
        frame += 1;
        if !once && frame > 1 {
            // redraw in place between frames; the first frame scrolls
            if !emit("\x1b[2J\x1b[H") {
                return;
            }
        }
        if !emit(&render_top(&addr, frame, &snap, prev.as_ref(), &events)) {
            return;
        }
        prev = Some((snap, now));
        if once || (iters > 0 && frame >= iters) {
            return;
        }
        std::thread::sleep(Duration::from_secs_f64(interval.max(0.01)));
    }
}

/// One `paper top` frame: throughput, admission counters, plan-cache hit
/// rate, drift status, latency, per-rank engine gauges and the event tail.
fn render_top(
    addr: &str,
    frame: u64,
    snap: &sbc_obs::MetricsSnapshot,
    prev: Option<&(sbc_obs::MetricsSnapshot, std::time::Instant)>,
    events: &[sbc_serve::EventRecord],
) -> String {
    use sbc_obs::{EventKind, Severity};
    use std::fmt::Write as _;

    let c = |name: &str| snap.counter(name).unwrap_or(0);
    let g = |name: &str| {
        snap.gauges
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, v, _)| *v)
    };

    let mut out = String::new();
    let _ = writeln!(out, "== sbc-serve @ {addr} — frame {frame} ==");

    // the window rate comes straight off the refreshed gauge; the
    // scrape-to-scrape rate is a counter delta over the poll interval
    let window_rate = g("serve.jobs_per_sec").unwrap_or(0.0);
    let scrape_rate = prev.map(|(p, t)| {
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        snap.delta(p).counter("serve.jobs.done").unwrap_or(0) as f64 / secs
    });
    match scrape_rate {
        Some(r) => {
            let _ = writeln!(
                out,
                "throughput: {window_rate:.2} jobs/s (window), {r:.2} jobs/s since last frame"
            );
        }
        None => {
            let _ = writeln!(out, "throughput: {window_rate:.2} jobs/s (window)");
        }
    }
    let _ = writeln!(
        out,
        "jobs: {} done, {} in flight, {} submitted, {} rejected, {} failed",
        c("serve.jobs.done"),
        g("serve.jobs.inflight").unwrap_or(0.0) as u64,
        c("serve.jobs.submitted"),
        c("serve.jobs.rejected"),
        c("serve.jobs.failed"),
    );
    let (hit, miss) = (c("planner.cache.hit"), c("planner.cache.miss"));
    if hit + miss > 0 {
        let _ = writeln!(
            out,
            "plan cache: {:.0}% hit ({hit} hit / {miss} miss)",
            100.0 * hit as f64 / (hit + miss) as f64
        );
    }
    let (dm, db) = (c("obs.drift.messages"), c("obs.drift.bytes"));
    let _ = writeln!(
        out,
        "comm drift: {} ok, {dm} message drifts, {db} byte drifts  [{}]",
        c("obs.drift.ok"),
        if dm + db == 0 { "CLEAN" } else { "DRIFTING" },
    );
    if let Some(h) = snap.histogram("serve.job.latency") {
        if h.count > 0 {
            let _ = writeln!(
                out,
                "latency: {} jobs, mean {:.4}s, min {:.4}s, max {:.4}s",
                h.count,
                h.mean(),
                h.min,
                h.max
            );
        }
    }

    // per-rank engine gauges, as long as consecutive ranks are registered
    let mut ranks = String::new();
    for r in 0.. {
        let Some(ready) = g(&format!("jobs.rank{r}.ready")) else {
            break;
        };
        let _ = writeln!(
            ranks,
            "  rank {r}: ready {:>4}  pending {:>4}  inflight {:>3}  busy {:>5.1}%",
            ready as u64,
            g(&format!("jobs.rank{r}.pending")).unwrap_or(0.0) as u64,
            g(&format!("jobs.rank{r}.inflight")).unwrap_or(0.0) as u64,
            100.0 * g(&format!("jobs.rank{r}.busy")).unwrap_or(0.0),
        );
    }
    if !ranks.is_empty() {
        let _ = writeln!(out, "engines:");
        out.push_str(&ranks);
    }

    if !events.is_empty() {
        let _ = writeln!(out, "events (newest last):");
        for e in events {
            let sev = Severity::from_code(e.severity).map_or("?????", Severity::name);
            let kind = EventKind::from_code(e.kind).map_or("?", EventKind::name);
            let job = if e.job == u32::MAX {
                "-".to_string()
            } else {
                format!("#{}", e.job)
            };
            let _ = writeln!(
                out,
                "  {:>9.3}s [{sev:<5}] {kind:<8} job {job:<6} {}",
                e.t, e.detail
            );
        }
    }
    out
}

/// The observability pipeline end to end: plan a POTRF, execute it on the
/// real threaded runtime with a recorder attached, then emit every export
/// `sbc-obs` offers — Chrome trace (open in Perfetto / chrome://tracing),
/// measured Gantt, metrics report, and the planner's drift report.
fn observed_run(out_path: &str, full: bool, workers: Option<usize>) {
    use sbc_obs::{
        chrome_trace, json, metrics_from_recording, render_gantt, task_spans, ExecProfile, Recorder,
    };
    use sbc_planner::{Op, Planner};
    use sbc_runtime::PlannedExecutor;
    use sbc_simgrid::Platform;

    let (nt, b) = if full { (40, 64) } else { (20, 32) };
    let p = 10;
    println!("== Observed run: POTRF nt={nt} b={b} on {p} virtual nodes ==");

    let planner = Planner::new(Platform::bora(p));
    let plan = planner.plan(Op::Potrf, nt, b);
    println!("plan: {}", plan.choice.describe());
    if let Some(w) = workers {
        println!("workers per node: {w}");
    }

    let mut exec = PlannedExecutor::new(plan, 0xB10C, 0xCAFE);
    if let Some(w) = workers {
        exec = exec.workers(w);
    }
    let recorder = Recorder::new();
    let outcome = exec.run_recorded(&recorder);
    let recording = recorder.drain();
    let nodes = recording.nodes();

    let trace_json = chrome_trace(&recording);
    json::validate(&trace_json).expect("chrome trace must be valid JSON");
    std::fs::write(out_path, &trace_json).expect("failed to write trace file");
    println!(
        "chrome trace: {out_path} ({} bytes, {} events over {nodes} nodes) — load in Perfetto or chrome://tracing",
        trace_json.len(),
        recording.events.len(),
    );

    println!("\nmeasured per-node occupancy:");
    let spans = task_spans(&recording);
    print!("{}", render_gantt(&spans, nodes, 1, 72));

    let profile = ExecProfile::from_recording(&recording);
    println!(
        "\n{}",
        metrics_from_recording(&recording).snapshot().render()
    );

    let report = sbc_planner::compare(exec.plan(), &profile);
    print!("{}", report.render());
    assert_eq!(outcome.stats.messages, profile.messages);
}

/// `paper topo`: the {topology × scheduler × distribution} sweep.
///
/// Simulates a POTRF under every combination of (single-switch, mildly and
/// heavily oversubscribed 2-rack topologies) × (the `sbc-topo` scheduler
/// zoo) × (the best-fitting SBC, the squarest 2DBC, and a rack-local SBC),
/// then prints the deterministic Pareto report of (makespan, cross-rack
/// bytes) against the analytic lower bound, followed by the flat-vs-
/// topology-aware planner comparison. `--nodes`, `--nt`, `--block` resize
/// the sweep; `--out <path>` additionally writes the report to a file
/// (the CI determinism check compares two such files byte-for-byte).
fn topo_run(args: &[String], full: bool) {
    use sbc_dist::table1;
    use sbc_planner::{DistChoice, Op, Planner};
    use sbc_simgrid::{Platform, SimConfig, Simulator};
    use sbc_taskgraph::priority::critical_path_length;
    use sbc_topo::{render_report, zoo, SweepPoint, Topology};

    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let nodes: usize = value_of("--nodes")
        .map(|v| v.parse().expect("--nodes takes a positive integer"))
        .unwrap_or(12);
    assert!(nodes >= 2, "--nodes must be at least 2");
    let nt: usize = value_of("--nt")
        .map(|v| v.parse().expect("--nt takes a positive integer"))
        .unwrap_or(if full { 40 } else { 24 });
    let b: usize = value_of("--block")
        .map(|v| v.parse().expect("--block takes a positive integer"))
        .unwrap_or(500);
    let out = value_of("--out");

    let platform = Platform::bora(nodes);
    let topologies: Vec<Topology> = vec![
        platform.single_switch_topology(),
        platform.rack_topology(2, 4.0),
        platform.rack_topology(2, 32.0),
    ];

    // Distributions: the largest fitting extended SBC, the squarest 2DBC,
    // and the largest SBC fitting inside one rack (zero cross-rack traffic
    // under the identity host mapping).
    let largest_sbc = |budget: usize| {
        (3..)
            .take_while(|r| r * (r - 1) / 2 <= budget)
            .last()
            .map(|r| DistChoice::SbcExtended { r })
    };
    let mut dists: Vec<DistChoice> = Vec::new();
    if let Some(d) = largest_sbc(nodes) {
        dists.push(d);
    }
    let (p, q) = table1::best_grid(nodes);
    dists.push(DistChoice::TwoDbc { p, q });
    if let Some(d) = largest_sbc(nodes.div_ceil(2)) {
        if !dists.contains(&d) {
            dists.push(d);
        }
    }

    let schedulers = zoo();
    let mut points = Vec::new();
    for topo in &topologies {
        for dist in &dists {
            let graph = dist.build_graph(Op::Potrf, nt);
            let used = dist.nodes_used();
            let flop_bound =
                graph.total_flops(b) / (used as f64 * platform.node_peak_gflops() * 1e9);
            let cp_bound = critical_path_length(&graph, |t| platform.task_seconds(&t.kind, b));
            let lower_bound = flop_bound.max(cp_bound);
            for sched in &schedulers {
                let report =
                    Simulator::with_topology(&graph, &platform, SimConfig::chameleon(b), topo)
                        .with_scheduler(sched.as_ref())
                        .run();
                points.push(SweepPoint {
                    topology: topo.name().to_string(),
                    scheduler: sched.name().to_string(),
                    distribution: dist.describe(),
                    makespan: report.makespan,
                    messages: report.messages,
                    bytes: report.bytes,
                    cross_rack_messages: report.cross_rack_messages,
                    cross_rack_bytes: report.cross_rack_bytes,
                    lower_bound,
                });
            }
        }
    }

    let mut text = render_report(
        &format!("paper topo: POTRF nt={nt} b={b} on {nodes} bora nodes"),
        &points,
    );

    // Flat vs topology-aware planner ranking on the most oversubscribed
    // topology, with the simulator as referee.
    let racks = platform.rack_topology(2, 32.0);
    let flat_planner = Planner::new(platform.clone());
    let topo_planner = Planner::new(platform.clone()).with_topology(racks);
    let flat_pick = flat_planner.plan(Op::Potrf, nt, b).choice;
    let topo_pick = topo_planner.plan(Op::Potrf, nt, b).choice;
    let sim_on_racks = |choice: DistChoice| topo_planner.simulate(choice, Op::Potrf, nt, b);
    text.push_str("\n-- planner: flat vs topology-aware (2 racks, 32x oversubscribed) --\n");
    text.push_str(&format!(
        "flat model picks {:28} simulated on racks: {:.6}s\n",
        flat_pick.describe(),
        sim_on_racks(flat_pick).makespan
    ));
    text.push_str(&format!(
        "topo model picks {:28} simulated on racks: {:.6}s\n",
        topo_pick.describe(),
        sim_on_racks(topo_pick).makespan
    ));

    print!("{text}");
    if let Some(path) = out {
        std::fs::write(path, &text).expect("failed to write the topo report");
        eprintln!("topo report written to {path}");
    }
}

/// The `sbc-planner` subsystem vs. the paper: for each operation and node
/// count, print the automatically chosen distribution next to the winner
/// the paper reports in Figs 9-12 and Table I.
fn planner_report(full: bool) {
    use sbc_planner::{DistChoice, Op, Planner};
    use sbc_simgrid::Platform;

    let b = 500;
    let nt = if full { 200 } else { 100 };
    println!(
        "== Planner: automatic distribution choice, n = {} (b = {b}) ==",
        nt * b
    );
    println!(
        "{:>4}  {:6}  {:30}  {:24}  agrees",
        "P", "op", "chosen plan", "paper winner"
    );

    // The paper's qualitative winners: SBC for the symmetric factorizations
    // (Fig 9/10), 2DBC for TRTRI and LU (Fig 12, Section VI), the remap
    // strategy for POTRI (Fig 12), SBC for POSV (Fig 11).
    let paper_family = |op: Op| match op {
        Op::Potrf | Op::Posv | Op::Lauum => "SBC",
        Op::Trtri | Op::Lu => "2DBC",
        Op::Potri => "SBC remap 2DBC",
    };
    let family = |c: DistChoice| match c {
        DistChoice::TwoDbc { .. } | DistChoice::TwoFiveDBc { .. } => "2DBC",
        DistChoice::SbcBasic { .. }
        | DistChoice::SbcExtended { .. }
        | DistChoice::TwoFiveDSbc { .. } => "SBC",
        DistChoice::PotriRemap { .. } => "SBC remap 2DBC",
    };

    for p in [15usize, 21, 28, 36] {
        let planner = Planner::new(Platform::bora(p));
        for op in Op::ALL {
            let plan = planner.plan(op, nt, b);
            let expected = paper_family(op);
            let got = family(plan.choice);
            println!(
                "{p:>4}  {:6}  {:30}  {:24}  {}",
                op.name(),
                plan.choice.describe(),
                expected,
                if got == expected { "yes" } else { "NO" },
            );
        }
    }

    println!();
    println!("POTRF candidate ranking at P = 28 (model seconds, fewer is better):");
    let planner = Planner::new(Platform::bora(28));
    for (choice, cost) in planner.scored_candidates(Op::Potrf, nt, b).iter().take(6) {
        println!(
            "  {:30} messages = {:>8}  comm = {:>7.3}s  compute = {:>7.3}s  total = {:>7.3}s",
            choice.describe(),
            cost.messages,
            cost.comm_seconds,
            cost.compute_seconds,
            cost.total_seconds
        );
    }
}

/// Gantt strips of a small POTRF under SBC vs 2DBC: visualizes where the
/// communication-induced idle time sits.
fn trace_demo() {
    use sbc_dist::{SbcExtended, TwoDBlockCyclic};
    use sbc_simgrid::{render_gantt, Platform, SimConfig, Simulator};
    use sbc_taskgraph::build_potrf;

    println!("== Trace: per-node worker occupancy, POTRF nt=40, P=15 ==");
    let p = Platform::bora(15);
    for (name, g) in [
        ("SBC r=6".to_string(), build_potrf(&SbcExtended::new(6), 40)),
        (
            "2DBC 5x3".to_string(),
            build_potrf(&TwoDBlockCyclic::new(5, 3), 40),
        ),
    ] {
        let (report, trace) = Simulator::new(&g, &p, SimConfig::chameleon(500)).run_traced();
        println!(
            "{name}: makespan {:.3}s, util {:.0}%",
            report.makespan,
            100.0 * report.utilization()
        );
        println!("{}", render_gantt(&trace, 15, p.cores_per_node, 72));
    }
}

/// Figures 1-6: the distribution patterns, as ASCII.
fn patterns() {
    use sbc_dist::sbc::pair_of;
    use sbc_dist::{Distribution, SbcBasic, SbcExtended, TwoDBlockCyclic};

    println!("== Figs 1-6: distribution patterns ==");
    let bc = TwoDBlockCyclic::new(2, 3);
    println!("Fig 1 — 2DBC 2x3 pattern (node(i,j) = (i mod 2)*3 + (j mod 3)):");
    for i in 0..2 {
        print!(" ");
        for j in 0..3 {
            // owner() is defined on the lower triangle; the pattern cell
            // (i, j) equals owner(i + 2k, j) for any row congruent to i
            // below the diagonal — use a row deep enough to be below j.
            print!(" {}", bc.owner(i + 4, j));
        }
        println!();
    }

    println!("\nFig 2/3 — basic SBC r=4 pattern (P = 8, diagonal nodes 6,7):");
    let basic = SbcBasic::new(4);
    for i in 0..4 {
        print!(" ");
        for j in 0..4 {
            let o = if j <= i {
                basic.owner(i, j)
            } else {
                basic.owner(j, i)
            };
            print!(" {o}");
        }
        println!();
    }

    for r in [5usize, 6] {
        let d = SbcExtended::new(r);
        println!(
            "\nFig {} — extended SBC r={r}: P={} with {} diagonal patterns:",
            if r == 5 { "4" } else { "5" },
            d.num_nodes(),
            d.diagonal_patterns().len()
        );
        for (i, pat) in d.diagonal_patterns().iter().enumerate() {
            let pretty: Vec<String> = pat
                .iter()
                .map(|&n| {
                    let (x, y) = pair_of(n);
                    format!("{n}{{{x},{y}}}")
                })
                .collect();
            println!("  diag pattern {i}: [{}]", pretty.join(", "));
        }
    }

    println!("\nFig 6 — extended SBC r=4 over 12x12 tiles (lower triangle):");
    let d = SbcExtended::new(4);
    for i in 0..12 {
        print!(" ");
        for j in 0..=i {
            print!(" {}", d.owner(i, j));
        }
        println!();
    }
    println!();
}
