//! One function per table/figure of the paper's evaluation (Section V).

use crate::render::{Figure, Series};
use sbc_dist::comm;
use sbc_dist::{Distribution, RowCyclic, SbcBasic, SbcExtended, TwoDBlockCyclic, TwoPointFiveD};
use sbc_kernels::{flops_cholesky_total, flops_posv_total, flops_potri_total};
use sbc_simgrid::{Platform, ScheduleMode, SimConfig, Simulator};
use sbc_taskgraph::{
    build_posv, build_potrf, build_potrf_25d, build_potri, build_potri_remap, TaskGraph,
};

/// Sweep sizes: `Quick` finishes in a couple of minutes on a laptop;
/// `Full` runs the paper's n range (up to n = 300 000 for Fig 8 and
/// n = 200 000 for the performance figures) and can take tens of minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sweeps (default).
    Quick,
    /// Paper-scale sweeps.
    Full,
}

/// The paper's tile size (Section V-A).
pub const TILE_B: usize = 500;

fn nts(scale: Scale) -> Vec<usize> {
    match scale {
        // n = 12.5k .. 75k
        Scale::Quick => vec![25, 50, 75, 100, 125, 150],
        // the paper sweeps n = 12.5k .. 300k; 200k for the time plots
        Scale::Full => vec![25, 50, 100, 150, 200, 250, 300, 400],
    }
}

fn simulate(
    graph: &TaskGraph,
    nodes: usize,
    b: usize,
    mode: ScheduleMode,
) -> sbc_simgrid::SimReport {
    let platform = Platform::bora(nodes);
    let cfg = SimConfig {
        tile_b: b,
        mode,
        use_priorities: true,
        priority_comms: false,
    };
    Simulator::new(graph, &platform, cfg).run()
}

fn gflops_potrf(graph: &TaskGraph, nodes: usize, nt: usize, mode: ScheduleMode) -> (f64, f64) {
    let r = simulate(graph, nodes, TILE_B, mode);
    let f = flops_cholesky_total(nt * TILE_B);
    (r.gflops_per_node(Some(f)), r.makespan)
}

/// Table I: sizes of the considered distributions.
pub fn table1_text() -> String {
    sbc_dist::table1::render_table1()
}

/// Fig 7: single-node Cholesky performance against tile size.
pub fn fig7(scale: Scale) -> Figure {
    let n = match scale {
        Scale::Quick => 24_000,
        Scale::Full => 50_000,
    };
    let bs: Vec<usize> = match scale {
        Scale::Quick => vec![100, 200, 300, 400, 500, 600, 750, 1000],
        Scale::Full => vec![100, 200, 300, 400, 500, 600, 700, 800, 900, 1000],
    };
    let d = TwoDBlockCyclic::new(1, 1);
    let platform = Platform::bora(1);
    let mut points = Vec::new();
    for &b in &bs {
        let nt = n / b;
        let g = build_potrf(&d, nt);
        let r = Simulator::new(&g, &platform, SimConfig::chameleon(b)).run();
        points.push((
            b as f64,
            r.gflops_per_node(Some(flops_cholesky_total(nt * b))),
        ));
        eprintln!("  fig7: b = {b} done");
    }
    Figure {
        title: format!("Fig 7: single-node POTRF performance vs tile size (n = {n})"),
        xlabel: "tile b".into(),
        ylabel: "GFlop/s (one node, 34 cores)".into(),
        series: vec![Series {
            name: "1 node".into(),
            points,
        }],
        notes: vec!["paper: almost maximum performance reached as soon as b >= 500".into()],
    }
}

/// Fig 8: inter-node communication volume of POTRF, P = 20 and 21.
pub fn fig8(scale: Scale) -> Figure {
    let tile_gb = (TILE_B * TILE_B * 8) as f64 / 1e9;
    let schemes: Vec<(String, Box<dyn Distribution>)> = vec![
        ("SBC r=7 (P=21)".into(), Box::new(SbcExtended::new(7))),
        (
            "2DBC 5x4 (P=20)".into(),
            Box::new(TwoDBlockCyclic::new(5, 4)),
        ),
        (
            "2DBC 7x3 (P=21)".into(),
            Box::new(TwoDBlockCyclic::new(7, 3)),
        ),
    ];
    let mut series = Vec::new();
    for (name, d) in &schemes {
        let points = nts(scale)
            .into_iter()
            .map(|nt| {
                let msgs = comm::potrf_messages(&d.as_ref(), nt);
                ((nt * TILE_B) as f64, msgs as f64 * tile_gb)
            })
            .collect();
        series.push(Series {
            name: name.clone(),
            points,
        });
    }
    Figure {
        title: "Fig 8: measured communication volume during POTRF (GB)".into(),
        xlabel: "n".into(),
        ylabel: "total inter-node volume (GB)".into(),
        series,
        notes: vec![
            "exact counts; tested equal to graph-derived and runtime-measured volumes".into(),
            "paper: SBC below both 2DBC grids at every n".into(),
        ],
    }
}

/// The six schemes of Fig 9 at P ~ 28.
fn fig9_schemes(nt: usize) -> Vec<(String, TaskGraph, usize, ScheduleMode)> {
    let sbc = SbcExtended::new(8); // 28
    let bc74 = TwoDBlockCyclic::new(7, 4); // 28
    let bc65 = TwoDBlockCyclic::new(6, 5); // 30
    let sbc25 = TwoPointFiveD::new(SbcBasic::new(4), 3); // 24
    let bc25 = TwoPointFiveD::new(TwoDBlockCyclic::new(3, 3), 3); // 27
    let confchox = TwoDBlockCyclic::new(8, 4); // 32, power of two as in the paper
    vec![
        (
            "2D SBC r=8".into(),
            build_potrf(&sbc, nt),
            28,
            ScheduleMode::Async,
        ),
        (
            "2DBC 7x4".into(),
            build_potrf(&bc74, nt),
            28,
            ScheduleMode::Async,
        ),
        (
            "2DBC 6x5".into(),
            build_potrf(&bc65, nt),
            30,
            ScheduleMode::Async,
        ),
        (
            "2.5D SBC c=3".into(),
            build_potrf_25d(&sbc25, nt),
            24,
            ScheduleMode::Async,
        ),
        (
            "2.5D BC c=3".into(),
            build_potrf_25d(&bc25, nt),
            27,
            ScheduleMode::Async,
        ),
        (
            "COnfCHOX-like".into(),
            build_potrf(&confchox, nt),
            32,
            ScheduleMode::BulkSynchronous,
        ),
    ]
}

/// Fig 9: POTRF GFlop/s per node for all schemes at P ~ 28-32.
pub fn fig9(scale: Scale) -> Figure {
    let mut series: Vec<Series> = Vec::new();
    for nt in nts(scale) {
        for (name, graph, nodes, mode) in fig9_schemes(nt) {
            let (gf, _) = gflops_potrf(&graph, nodes, nt, mode);
            match series.iter_mut().find(|s| s.name == name) {
                Some(s) => s.points.push(((nt * TILE_B) as f64, gf)),
                None => series.push(Series {
                    name,
                    points: vec![((nt * TILE_B) as f64, gf)],
                }),
            }
        }
        eprintln!("  fig9: n = {} done", nt * TILE_B);
    }
    Figure {
        title: "Fig 9: POTRF performance, 2D/2.5D x BC/SBC + COnfCHOX-like (P = 24..32)".into(),
        xlabel: "n".into(),
        ylabel: "GFlop/s per node".into(),
        series,
        notes: vec![
            "paper: SBC > 2DBC in the mid band; 2.5D SBC best overall;".into(),
            "asynchronous Chameleon-style schedules beat the bulk-synchronous baseline".into(),
            "(COnfCHOX is closed-source: modelled as bulk-synchronous 2DBC, see DESIGN.md)".into(),
        ],
    }
}

/// Fig 10: SBC vs 2DBC per node count (r = 6..9 with Table I grids).
pub fn fig10(scale: Scale) -> Figure {
    let mut series: Vec<Series> = Vec::new();
    for r in 6..=9usize {
        let sbc = SbcExtended::new(r);
        let p_sbc = sbc.num_nodes();
        let grids = sbc_dist::table1::comparison_grids(p_sbc);
        for nt in nts(scale) {
            let x = (nt * TILE_B) as f64;
            let (gf, _) = gflops_potrf(&build_potrf(&sbc, nt), p_sbc, nt, ScheduleMode::Async);
            let name = format!("SBC r={r} (P={p_sbc})");
            push_point(&mut series, &name, x, gf);
            for &(p, q, pn) in &grids {
                let d = TwoDBlockCyclic::new(p, q);
                let (gf, _) = gflops_potrf(&build_potrf(&d, nt), pn, nt, ScheduleMode::Async);
                push_point(&mut series, &format!("2DBC {p}x{q} (P={pn})"), x, gf);
            }
        }
        eprintln!("  fig10: r = {r} done");
    }
    Figure {
        title: "Fig 10: POTRF GFlop/s per node, SBC vs 2DBC, P = 15..36".into(),
        xlabel: "n".into(),
        ylabel: "GFlop/s per node".into(),
        series,
        notes: vec!["paper: the SBC advantage holds for every tested P".into()],
    }
}

/// Fig 11: strong scaling at fixed n.
pub fn fig11(scale: Scale) -> Figure {
    let nt = match scale {
        Scale::Quick => 120, // n = 60 000
        Scale::Full => 400,  // n = 200 000 as in the paper
    };
    let mut sbc_pts = Vec::new();
    let mut dbc_pts = Vec::new();
    for r in 6..=9usize {
        let sbc = SbcExtended::new(r);
        let p_sbc = sbc.num_nodes();
        let (gf, _) = gflops_potrf(&build_potrf(&sbc, nt), p_sbc, nt, ScheduleMode::Async);
        sbc_pts.push((p_sbc as f64, gf));
        let (p, q) = sbc_dist::table1::best_grid(p_sbc);
        let d = TwoDBlockCyclic::new(p, q);
        let (gf, _) = gflops_potrf(&build_potrf(&d, nt), p_sbc, nt, ScheduleMode::Async);
        dbc_pts.push((p_sbc as f64, gf));
        eprintln!("  fig11: P = {p_sbc} done");
    }
    Figure {
        title: format!("Fig 11: strong scaling of POTRF at n = {}", nt * TILE_B),
        xlabel: "P (nodes)".into(),
        ylabel: "GFlop/s per node".into(),
        series: vec![
            Series {
                name: "SBC".into(),
                points: sbc_pts,
            },
            Series {
                name: "2DBC".into(),
                points: dbc_pts,
            },
        ],
        notes: vec![
            "paper: SBC with P=36 matches 2DBC with ~half the nodes per-node throughput".into(),
        ],
    }
}

/// Fig 12: total running time against matrix size (n <= 200 000).
pub fn fig12(scale: Scale) -> Figure {
    let mut series: Vec<Series> = Vec::new();
    for r in [6usize, 9] {
        let sbc = SbcExtended::new(r);
        let p_sbc = sbc.num_nodes();
        let (p, q) = sbc_dist::table1::best_grid(p_sbc);
        let dbc = TwoDBlockCyclic::new(p, q);
        for nt in nts(scale) {
            let x = (nt * TILE_B) as f64;
            let (_, t) = gflops_potrf(&build_potrf(&sbc, nt), p_sbc, nt, ScheduleMode::Async);
            push_point(&mut series, &format!("SBC r={r} (P={p_sbc})"), x, t);
            let (_, t) = gflops_potrf(&build_potrf(&dbc, nt), p_sbc, nt, ScheduleMode::Async);
            push_point(&mut series, &format!("2DBC {p}x{q} (P={p_sbc})"), x, t);
        }
        eprintln!("  fig12: r = {r} done");
    }
    Figure {
        title: "Fig 12: total POTRF running time (seconds)".into(),
        xlabel: "n".into(),
        ylabel: "time (s)".into(),
        series,
        notes: vec!["paper: overall time reduction from the SBC mapping".into()],
    }
}

/// Fig 13: POSV performance at P = 28.
pub fn fig13(scale: Scale) -> Figure {
    let mut series: Vec<Series> = Vec::new();
    let sbc = SbcExtended::new(8);
    let bc = TwoDBlockCyclic::new(7, 4);
    let rhs = RowCyclic::new(28);
    for nt in nts(scale) {
        let x = (nt * TILE_B) as f64;
        let f = flops_posv_total(nt * TILE_B, TILE_B);
        for (name, d) in [("SBC r=8", &sbc as &dyn Distribution), ("2DBC 7x4", &bc)] {
            let g = build_posv(&d, &rhs, nt);
            let r = simulate(&g, 28, TILE_B, ScheduleMode::Async);
            push_point(&mut series, name, x, r.gflops_per_node(Some(f)));
        }
        eprintln!("  fig13: n = {} done", nt * TILE_B);
    }
    Figure {
        title: "Fig 13: POSV performance (P = 28), RHS one tile wide, 1D row-cyclic".into(),
        xlabel: "n".into(),
        ylabel: "GFlop/s per node".into(),
        series,
        notes: vec![
            "paper: SBC still ahead, but by less than on POTRF (solve adds".into(),
            "distribution-independent time)".into(),
        ],
    }
}

/// Fig 14: POTRI performance at P = 28, including the remap strategy.
pub fn fig14(scale: Scale) -> Figure {
    let mut series: Vec<Series> = Vec::new();
    let sbc = SbcExtended::new(8);
    let bc = TwoDBlockCyclic::new(7, 4);
    let sweep = match scale {
        Scale::Quick => vec![25usize, 50, 75, 100],
        Scale::Full => vec![25, 50, 100, 150, 200],
    };
    for nt in sweep {
        let x = (nt * TILE_B) as f64;
        let f = flops_potri_total(nt * TILE_B);
        let runs: Vec<(&str, TaskGraph)> = vec![
            ("SBC r=8", build_potri(&sbc, nt)),
            ("2DBC 7x4", build_potri(&bc, nt)),
            ("SBC remap 2DBC", build_potri_remap(&sbc, &bc, nt)),
        ];
        for (name, g) in runs {
            let r = simulate(&g, 28, TILE_B, ScheduleMode::Async);
            push_point(&mut series, name, x, r.gflops_per_node(Some(f)));
        }
        eprintln!("  fig14: n = {} done", nt * TILE_B);
    }
    Figure {
        title: "Fig 14: POTRI performance (P = 28) with data redistribution".into(),
        xlabel: "n".into(),
        ylabel: "GFlop/s per node".into(),
        series,
        notes: vec![
            "paper: at this P the remap reduces volume by only 27/23, so curves".into(),
            "are close; SBC integrates into multi-operation workflows without loss".into(),
        ],
    }
}

/// Ablations called out in DESIGN.md: scheduling priorities, communication
/// ordering, bulk-synchronous barrier, diagonal-pattern cycling.
pub fn ablations(scale: Scale) -> Figure {
    let nt = match scale {
        Scale::Quick => 100,
        Scale::Full => 200,
    };
    let sbc = SbcExtended::new(8);
    let g = build_potrf(&sbc, nt);
    let platform = Platform::bora(28);
    let mk = |mode, prio, pcomm| SimConfig {
        tile_b: TILE_B,
        mode,
        use_priorities: prio,
        priority_comms: pcomm,
    };
    let configs = [
        (
            "baseline (async, prio tasks, fifo msgs)",
            mk(ScheduleMode::Async, true, false),
        ),
        ("fifo ready queues", mk(ScheduleMode::Async, false, false)),
        (
            "priority-ordered messages",
            mk(ScheduleMode::Async, true, true),
        ),
        (
            "bulk-synchronous barrier",
            mk(ScheduleMode::BulkSynchronous, true, false),
        ),
    ];
    let mut points = Vec::new();
    let mut notes = vec![format!("SBC r=8, nt = {nt}, P = 28; y = makespan seconds")];
    for (i, (name, cfg)) in configs.iter().enumerate() {
        let r = Simulator::new(&g, &platform, *cfg).run();
        points.push((i as f64, r.makespan));
        notes.push(format!("x={i}: {name}"));
    }
    // diagonal-cycling variant (communication identical; balance differs)
    let anti = sbc_dist::SbcExtended::with_cycling(8, sbc_dist::DiagonalCycling::AntiDiagonal);
    let g2 = build_potrf(&anti, nt);
    let r = Simulator::new(&g2, &platform, mk(ScheduleMode::Async, true, false)).run();
    points.push((configs.len() as f64, r.makespan));
    notes.push(format!(
        "x={}: anti-diagonal pattern cycling",
        configs.len()
    ));
    Figure {
        title: "Ablations: scheduling and construction choices".into(),
        xlabel: "variant".into(),
        ylabel: "makespan (s)".into(),
        series: vec![Series {
            name: "makespan".into(),
            points,
        }],
        notes,
    }
}

fn push_point(series: &mut Vec<Series>, name: &str, x: f64, y: f64) {
    match series.iter_mut().find(|s| s.name == name) {
        Some(s) => s.points.push((x, y)),
        None => series.push(Series {
            name: name.to_string(),
            points: vec![(x, y)],
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_quick_has_expected_shape() {
        let f = fig8(Scale::Quick);
        assert_eq!(f.series.len(), 3);
        // SBC strictly below both 2DBC grids at every x
        let sbc = &f.series[0];
        for (i, &(_, v)) in sbc.points.iter().enumerate() {
            assert!(v < f.series[1].points[i].1);
            assert!(v < f.series[2].points[i].1);
        }
    }

    #[test]
    fn table1_text_contains_all_rows() {
        let t = table1_text();
        for frag in ["15", "21", "28", "36"] {
            assert!(t.contains(frag));
        }
    }

    #[test]
    fn push_point_appends_and_creates() {
        let mut s = Vec::new();
        push_point(&mut s, "a", 1.0, 2.0);
        push_point(&mut s, "a", 2.0, 3.0);
        push_point(&mut s, "b", 1.0, 4.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].points.len(), 2);
    }
}
