//! A stream connection that is either TCP or Unix-domain, so the server
//! and client speak both through one code path. Addresses containing a
//! `:` are `host:port`; anything else is a socket path.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

pub(crate) enum Conn {
    Tcp(TcpStream),
    Uds(UnixStream),
}

pub(crate) fn is_tcp(addr: &str) -> bool {
    addr.contains(':')
}

impl Conn {
    /// Connects, retrying while the server is still binding (a freshly
    /// spawned `paper serve` races its clients).
    pub(crate) fn connect_retry(addr: &str, budget: Duration) -> std::io::Result<Conn> {
        let deadline = std::time::Instant::now() + budget;
        loop {
            let attempt = if is_tcp(addr) {
                TcpStream::connect(addr).map(Conn::Tcp)
            } else {
                UnixStream::connect(addr).map(Conn::Uds)
            };
            match attempt {
                Ok(c) => return Ok(c),
                Err(e) if std::time::Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Uds(s) => s.flush(),
        }
    }
}
