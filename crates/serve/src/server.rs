//! The wire front of a [`Service`]: an accept loop speaking the job
//! protocol (`JobSubmit` / `JobStatus` / `JobResult` / `Shutdown`) over
//! UDS or TCP, one handler thread per client connection.

use crate::service::Service;
use crate::sock::{is_tcp, Conn};
use sbc_net::wire::{encode_into, read_frame, EventRecord, Frame};
use sbc_planner::Op;
use sbc_taskgraph::TileRef;
use std::io::Write;
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

enum ListenerKind {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl ListenerKind {
    fn bind(addr: &str) -> std::io::Result<ListenerKind> {
        if is_tcp(addr) {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            Ok(ListenerKind::Tcp(l))
        } else {
            // a stale socket file from a previous run blocks the bind
            let _ = std::fs::remove_file(addr);
            let l = UnixListener::bind(addr)?;
            l.set_nonblocking(true)?;
            Ok(ListenerKind::Uds(l))
        }
    }

    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            ListenerKind::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nonblocking(false);
                Conn::Tcp(s)
            }),
            ListenerKind::Uds(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nonblocking(false);
                Conn::Uds(s)
            }),
        }
    }
}

/// Runs the accept loop of `service` on `addr` (a `host:port` or a socket
/// path) until a client sends [`Frame::Shutdown`], then drains in-flight
/// jobs, stops the resident mesh and returns. Engine failures surface as
/// an error after the drain.
pub fn serve(service: Arc<Service>, addr: &str) -> std::io::Result<()> {
    let listener = ListenerKind::bind(addr)?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut handlers = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(conn) => {
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                handlers.push(std::thread::spawn(move || handle(conn, &service, &stop)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    if !is_tcp(addr) {
        let _ = std::fs::remove_file(addr);
    }
    service
        .shutdown()
        .map_err(|e| std::io::Error::other(format!("resident mesh failed: {e}")))
}

/// Encodes `f` into a buffer checked out of the service's reply pool and
/// writes it — every reply on every client connection reuses the pool's
/// recycled capacity instead of allocating (visible as `net.pool.hit`).
fn write_reply(conn: &mut Conn, service: &Service, f: &Frame) -> std::io::Result<()> {
    let mut buf = service.reply_pool().checkout();
    encode_into(f, &mut buf);
    conn.write_all(&buf)
}

/// One client connection: submissions stream in, per-job answers stream
/// out in submission order.
fn handle(mut conn: Conn, service: &Service, stop: &AtomicBool) {
    loop {
        let frame = match read_frame(&mut conn) {
            Ok(Some((f, _))) => f,
            Ok(None) | Err(_) => return,
        };
        match frame {
            Frame::JobSubmit {
                req,
                op,
                prio,
                batch,
                nt,
                b,
                seed,
                seed_rhs,
            } => {
                if handle_submit(
                    &mut conn, service, req, op, prio, batch, nt, b, seed, seed_rhs,
                )
                .is_err()
                {
                    return; // client went away mid-answer
                }
            }
            // scrapes answer from atomically-taken snapshots; they never
            // touch the job table's state lock or the ready heaps, so a
            // monitor polling here costs the job path nothing
            Frame::StatsRequest => {
                let text = service.stats_text();
                if write_reply(&mut conn, service, &Frame::StatsReply { text }).is_err()
                    || conn.flush().is_err()
                {
                    return;
                }
            }
            Frame::EventsRequest { max } => {
                let events = service
                    .events_tail(max as usize)
                    .into_iter()
                    .map(|e| EventRecord {
                        seq: e.seq,
                        t: e.t,
                        severity: e.severity.code(),
                        kind: e.kind.code(),
                        job: e.job.unwrap_or(u32::MAX),
                        detail: e.detail,
                    })
                    .collect();
                if write_reply(&mut conn, service, &Frame::EventsReply { events }).is_err()
                    || conn.flush().is_err()
                {
                    return;
                }
            }
            Frame::Shutdown => {
                stop.store(true, Ordering::SeqCst);
                return;
            }
            // anything else on a job connection is a protocol error;
            // drop the client rather than the service
            _ => return,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_submit(
    conn: &mut Conn,
    service: &Service,
    req: u32,
    op: u8,
    prio: u8,
    batch: u32,
    nt: u32,
    b: u32,
    seed: u64,
    seed_rhs: u64,
) -> std::io::Result<()> {
    let (nt, b) = (nt as usize, b as usize);
    if Op::ALL.get(op as usize) != Some(&Op::Potrf) {
        write_reply(
            conn,
            service,
            &Frame::JobStatus {
                req,
                state: 3,
                info: format!("op {op} is not served over the wire (only 0 = POTRF)"),
            },
        )?;
        return conn.flush();
    }
    if nt == 0 || b == 0 {
        write_reply(
            conn,
            service,
            &Frame::JobStatus {
                req,
                state: 3,
                info: format!("degenerate shape nt={nt} b={b}"),
            },
        )?;
        return conn.flush();
    }

    // admit the whole batch first (same shape → one graph, one plan),
    // then answer in seed order
    let mut admitted = Vec::new();
    for k in 0..u64::from(batch.max(1)) {
        match service.submit(Op::Potrf, nt, b, seed + k, seed_rhs + k, prio) {
            Ok(sub) => {
                write_reply(
                    conn,
                    service,
                    &Frame::JobStatus {
                        req,
                        state: 0,
                        info: format!(
                            "job {} queued ({})",
                            sub.id,
                            if sub.plan_cached {
                                "plan cached"
                            } else {
                                "planned"
                            }
                        ),
                    },
                )?;
                admitted.push(sub);
            }
            Err(rej) => {
                write_reply(
                    conn,
                    service,
                    &Frame::JobStatus {
                        req,
                        state: 3,
                        info: rej.to_string(),
                    },
                )?;
            }
        }
    }
    conn.flush()?;

    for sub in admitted {
        let answer = match service.wait(sub.id) {
            Ok(out) => match service.gather_potrf(nt, b, &out) {
                Ok(factor) => {
                    let mut tiles = Vec::with_capacity(nt * (nt + 1) / 2);
                    for i in 0..nt {
                        for j in 0..=i {
                            tiles.push((
                                TileRef::A {
                                    phase: 0,
                                    slice: 0,
                                    i: i as u32,
                                    j: j as u32,
                                },
                                factor.tile(i, j).clone(),
                            ));
                        }
                    }
                    Frame::JobResult {
                        req,
                        messages: out.stats.messages,
                        bytes: out.stats.bytes,
                        elapsed_ns: out.elapsed.as_nanos() as u64,
                        plan_cached: u8::from(sub.plan_cached),
                        tiles,
                    }
                }
                Err(e) => Frame::JobStatus {
                    req,
                    state: 4,
                    info: format!("gather failed: {e}"),
                },
            },
            Err(e) => Frame::JobStatus {
                req,
                state: 4,
                info: e.to_string(),
            },
        };
        write_reply(conn, service, &answer)?;
        conn.flush()?;
    }
    Ok(())
}
