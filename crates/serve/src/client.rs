//! The blocking client of a [`crate::Service`]'s wire front, plus the
//! bit-exact validation helpers every caller should run on the factors it
//! gets back.

use crate::sock::Conn;
use sbc_kernels::Tile;
use sbc_matrix::{generate::random_spd, potrf_tiled, SymmetricTiledMatrix};
use sbc_net::wire::{read_frame, write_frame, EventRecord, Frame, FrameError};
use sbc_obs::{expo, MetricsSnapshot};
use sbc_taskgraph::TileRef;
use std::collections::HashMap;
use std::io::Write;
use std::time::Duration;

/// One submission: `batch` same-shape POTRF jobs whose seeds count up from
/// `seed` / `seed_rhs`.
#[derive(Debug, Clone, Copy)]
pub struct JobRequest {
    /// Tile count per side.
    pub nt: usize,
    /// Tile (block) size.
    pub b: usize,
    /// SPD input seed of the first job.
    pub seed: u64,
    /// Right-hand-side seed of the first job.
    pub seed_rhs: u64,
    /// Job priority (higher jumps the service's shared ready heap).
    pub prio: u8,
    /// Jobs in the batch; `0` is treated as `1`.
    pub batch: u32,
}

impl JobRequest {
    /// A single POTRF job of the given shape and seed.
    pub fn potrf(nt: usize, b: usize, seed: u64) -> JobRequest {
        JobRequest {
            nt,
            b,
            seed,
            seed_rhs: seed ^ 0x5EED,
            prio: 0,
            batch: 1,
        }
    }
}

/// The service's answer for one job of a submission.
#[derive(Debug, Clone)]
pub enum JobReply {
    /// The job ran; stats are exact, tiles are the lower-triangular factor.
    Done {
        /// Payload messages the job moved across the mesh.
        messages: u64,
        /// Payload bytes the job moved across the mesh.
        bytes: u64,
        /// Wall-clock from admission to completion.
        elapsed: Duration,
        /// Whether the plan came from the warm cache.
        plan_cached: bool,
        /// Factor tiles, `TileRef::A { phase: 0, slice: 0, i, j }` with
        /// `j <= i`.
        tiles: Vec<(TileRef, Tile)>,
    },
    /// Admission control refused the job; the reason is verbatim.
    Rejected(String),
    /// The job was admitted but the mesh failed it.
    Failed(String),
}

/// A client-side failure (transport or protocol).
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(std::io::Error),
    /// A frame could not be decoded.
    Frame(FrameError),
    /// The server answered out of protocol.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Frame(e) => write!(f, "bad frame: {e:?}"),
            ClientError::Protocol(s) => write!(f, "protocol violation: {s}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A blocking connection to a running service. One client drives one
/// connection; submissions answer in order.
pub struct Client {
    conn: Conn,
    next_req: u32,
}

impl Client {
    /// Connects to `addr` (a `host:port` or a socket path), retrying for
    /// up to five seconds while the server is still starting.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        Self::connect_with_budget(addr, Duration::from_secs(5))
    }

    /// [`Client::connect`] with an explicit retry budget.
    pub fn connect_with_budget(addr: &str, budget: Duration) -> std::io::Result<Client> {
        Ok(Client {
            conn: Conn::connect_retry(addr, budget)?,
            next_req: 0,
        })
    }

    /// Submits one request and blocks until every job of the batch has a
    /// terminal answer, returned in seed order.
    pub fn submit(&mut self, req: &JobRequest) -> Result<Vec<JobReply>, ClientError> {
        let id = self.next_req;
        self.next_req += 1;
        write_frame(
            &mut self.conn,
            &Frame::JobSubmit {
                req: id,
                op: 0,
                prio: req.prio,
                batch: req.batch,
                nt: req.nt as u32,
                b: req.b as u32,
                seed: req.seed,
                seed_rhs: req.seed_rhs,
            },
        )?;
        self.conn.flush()?;

        let expect = req.batch.max(1) as usize;
        let mut replies = Vec::with_capacity(expect);
        while replies.len() < expect {
            let frame = match read_frame(&mut self.conn)? {
                Some((f, _)) => f,
                None => {
                    return Err(ClientError::Protocol(format!(
                        "server closed after {} of {expect} answers",
                        replies.len()
                    )))
                }
            };
            match frame {
                Frame::JobStatus { req: r, .. } if r != id => {
                    return Err(ClientError::Protocol(format!(
                        "status for request {r}, expected {id}"
                    )))
                }
                Frame::JobStatus { state: 0, .. } | Frame::JobStatus { state: 1, .. } => {
                    // queued/running updates are informational
                }
                Frame::JobStatus { state: 3, info, .. } => replies.push(JobReply::Rejected(info)),
                Frame::JobStatus { state: 4, info, .. } => replies.push(JobReply::Failed(info)),
                Frame::JobStatus { state, .. } => {
                    return Err(ClientError::Protocol(format!("unknown job state {state}")))
                }
                Frame::JobResult {
                    req: r,
                    messages,
                    bytes,
                    elapsed_ns,
                    plan_cached,
                    tiles,
                } => {
                    if r != id {
                        return Err(ClientError::Protocol(format!(
                            "result for request {r}, expected {id}"
                        )));
                    }
                    replies.push(JobReply::Done {
                        messages,
                        bytes,
                        elapsed: Duration::from_nanos(elapsed_ns),
                        plan_cached: plan_cached != 0,
                        tiles,
                    });
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame {other:?} while waiting for answers"
                    )))
                }
            }
        }
        Ok(replies)
    }

    /// Scrapes the service's metrics as raw exposition text. The server
    /// answers from an atomically-taken snapshot; a monitor polling this
    /// does not contend with the job path.
    pub fn stats_text(&mut self) -> Result<String, ClientError> {
        write_frame(&mut self.conn, &Frame::StatsRequest)?;
        self.conn.flush()?;
        match self.read_reply()? {
            Frame::StatsReply { text } => Ok(text),
            other => Err(ClientError::Protocol(format!(
                "unexpected frame {other:?} while waiting for stats"
            ))),
        }
    }

    /// [`Client::stats_text`] parsed back into a structured snapshot.
    pub fn stats(&mut self) -> Result<MetricsSnapshot, ClientError> {
        let text = self.stats_text()?;
        expo::parse(&text)
            .map_err(|e| ClientError::Protocol(format!("stats exposition did not parse: {e}")))
    }

    /// The newest `max` lifecycle events, oldest first. `job` is
    /// `u32::MAX` when the event is not about a specific job; `severity`
    /// and `kind` decode via [`sbc_obs::Severity::from_code`] and
    /// [`sbc_obs::EventKind::from_code`].
    pub fn events(&mut self, max: u32) -> Result<Vec<EventRecord>, ClientError> {
        write_frame(&mut self.conn, &Frame::EventsRequest { max })?;
        self.conn.flush()?;
        match self.read_reply()? {
            Frame::EventsReply { events } => Ok(events),
            other => Err(ClientError::Protocol(format!(
                "unexpected frame {other:?} while waiting for events"
            ))),
        }
    }

    fn read_reply(&mut self) -> Result<Frame, ClientError> {
        match read_frame(&mut self.conn)? {
            Some((f, _)) => Ok(f),
            None => Err(ClientError::Protocol(
                "server closed before answering".into(),
            )),
        }
    }

    /// Asks the service to drain and exit, then closes the connection.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        write_frame(&mut self.conn, &Frame::Shutdown)?;
        self.conn.flush()
    }
}

/// The sequential reference factor for a seeded SPD input — what every
/// served POTRF job must reproduce bit-for-bit.
pub fn potrf_reference(nt: usize, b: usize, seed: u64) -> SymmetricTiledMatrix {
    let mut m = random_spd(seed, nt, b);
    potrf_tiled(&mut m).expect("seeded SPD input factors");
    m
}

/// Checks a [`JobReply::Done`] tile set bit-for-bit against the sequential
/// reference for `seed`.
pub fn factor_matches(tiles: &[(TileRef, Tile)], nt: usize, b: usize, seed: u64) -> bool {
    if tiles.len() != nt * (nt + 1) / 2 {
        return false;
    }
    let map: HashMap<TileRef, &Tile> = tiles.iter().map(|(r, t)| (*r, t)).collect();
    let expect = potrf_reference(nt, b, seed);
    for i in 0..nt {
        for j in 0..=i {
            let r = TileRef::A {
                phase: 0,
                slice: 0,
                i: i as u32,
                j: j as u32,
            };
            match map.get(&r) {
                Some(t) if t.as_slice() == expect.tile(i, j).as_slice() => {}
                _ => return false,
            }
        }
    }
    true
}
