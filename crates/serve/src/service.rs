//! The resident service core: a warm mesh of rank engines, a warm plan
//! cache, a task-graph cache, admission-controlled job submission and
//! first-class observability.

use sbc_matrix::SymmetricTiledMatrix;
use sbc_net::inproc_mesh;
use sbc_obs::{chrome_trace_from_spans, Counter, Gauge, Metrics, TraceEvent};
use sbc_planner::{Op, Planner, PlannerConfig};
use sbc_runtime::jobs::{run_jobs_rank, JobEngineConfig, JobId, JobOutcome, JobTable, Rejection};
use sbc_runtime::{gather_symmetric, ExecError};
use sbc_simgrid::Platform;
use sbc_taskgraph::TaskGraph;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Shape of a resident service.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Mesh size: ranks kept resident (the planner plans for exactly this
    /// platform, so its cache stays valid for the service lifetime).
    pub nodes: usize,
    /// Worker threads per rank engine.
    pub workers: usize,
    /// Admission bound: jobs admitted and not yet finished.
    pub max_inflight: usize,
    /// Rank engines' receive poll tick.
    pub heartbeat: Duration,
    /// Per-job no-progress watchdog (never fires on an idle rank).
    pub deadline: Option<Duration>,
    /// Planner tunables; the plan cache is the service's per-job tuning
    /// layer, so its capacity bounds how many shapes stay warm.
    pub planner: PlannerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            nodes: 6,
            workers: 1,
            max_inflight: 16,
            heartbeat: Duration::from_millis(2),
            deadline: None,
            planner: PlannerConfig::default(),
        }
    }
}

/// An admitted job's ticket.
#[derive(Debug, Clone, Copy)]
pub struct Submitted {
    /// Table-assigned job id, for [`Service::wait`].
    pub id: JobId,
    /// Whether planning was served from the warm plan cache.
    pub plan_cached: bool,
}

/// A resident factorization service: submit jobs from any thread, wait for
/// their outcomes, read the metrics, shut down once.
pub struct Service {
    table: Arc<JobTable>,
    planner: Planner,
    metrics: Arc<Metrics>,
    graphs: Mutex<HashMap<(Op, usize, usize), Arc<TaskGraph>>>,
    engines: Mutex<Vec<JoinHandle<Result<(), ExecError>>>>,
    spans: Mutex<Vec<TraceEvent>>,
    submitted: Arc<Counter>,
    rejected: Arc<Counter>,
    done: Arc<Counter>,
    failed: Arc<Counter>,
    throughput: Arc<Gauge>,
    started: Instant,
}

impl Service {
    /// Starts the resident mesh (spawning one engine thread per rank) and
    /// binds the observability registry.
    pub fn start(cfg: ServeConfig) -> Arc<Service> {
        let metrics = Arc::new(Metrics::new());
        let planner =
            Planner::with_config(Platform::bora(cfg.nodes), cfg.planner).with_metrics(&metrics);
        let table = Arc::new(JobTable::new(cfg.nodes, cfg.max_inflight));
        let engine_cfg = JobEngineConfig {
            workers: cfg.workers,
            heartbeat: cfg.heartbeat,
            deadline: cfg.deadline,
        };
        let engines = inproc_mesh(cfg.nodes)
            .into_iter()
            .map(|net| {
                let table = Arc::clone(&table);
                std::thread::spawn(move || run_jobs_rank(&net, &table, engine_cfg))
            })
            .collect();
        Arc::new(Service {
            table,
            planner,
            submitted: metrics.counter("serve.jobs.submitted"),
            rejected: metrics.counter("serve.jobs.rejected"),
            done: metrics.counter("serve.jobs.done"),
            failed: metrics.counter("serve.jobs.failed"),
            throughput: metrics.gauge("serve.jobs_per_sec"),
            metrics,
            graphs: Mutex::new(HashMap::new()),
            engines: Mutex::new(engines),
            spans: Mutex::new(Vec::new()),
            started: Instant::now(),
        })
    }

    /// Plans (warm cache first), reuses the shape's shared task graph, and
    /// submits one job. The ticket reports whether the plan was cached.
    pub fn submit(
        &self,
        op: Op,
        nt: usize,
        b: usize,
        seed: u64,
        seed_rhs: u64,
        prio: u8,
    ) -> Result<Submitted, Rejection> {
        let plan = self.planner.plan(op, nt, b);
        let graph = Arc::clone(
            lock(&self.graphs)
                .entry((op, nt, b))
                .or_insert_with(|| Arc::new(plan.build_graph())),
        );
        match self
            .table
            .submit(graph, b, seed, seed_rhs, prio, plan.use_priorities)
        {
            Ok(id) => {
                self.submitted.inc();
                Ok(Submitted {
                    id,
                    plan_cached: plan.cached,
                })
            }
            Err(r) => {
                self.rejected.inc();
                Err(r)
            }
        }
    }

    /// Blocks until `id` finishes, updating the `serve.jobs.*` counters,
    /// the throughput gauge and the per-job trace.
    pub fn wait(&self, id: JobId) -> Result<JobOutcome, ExecError> {
        match self.table.wait(id) {
            Ok(out) => {
                self.done.inc();
                self.throughput.set(self.jobs_per_sec());
                let end = self.started.elapsed().as_secs_f64();
                lock(&self.spans).push(TraceEvent {
                    task: id,
                    node: 0,
                    start: (end - out.elapsed.as_secs_f64()).max(0.0),
                    end,
                });
                Ok(out)
            }
            Err(e) => {
                self.failed.inc();
                Err(e)
            }
        }
    }

    /// Assembles a POTRF job's lower-triangular factor from its outcome,
    /// resolving the shape's 2.5D slice layout from the shared graph.
    pub fn gather_potrf(
        &self,
        nt: usize,
        b: usize,
        out: &JobOutcome,
    ) -> Result<SymmetricTiledMatrix, ExecError> {
        let slices = lock(&self.graphs)
            .get(&(Op::Potrf, nt, b))
            .map_or(1, |g| g.slices.max(1));
        gather_symmetric(&out.tiles, nt, b, 0, |j| (j % slices) as u8)
    }

    /// The service's metrics registry (`serve.jobs.*`,
    /// `planner.cache.{hit,miss}`, `serve.jobs_per_sec`).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The shared planner (its cache statistics are also in the metrics).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Jobs completed since start.
    pub fn completed(&self) -> u64 {
        self.table.completed()
    }

    /// Completed jobs per wall-clock second since the service started.
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs > 0.0 {
            self.table.completed() as f64 / secs
        } else {
            0.0
        }
    }

    /// One span per completed job, as a Chrome trace JSON string.
    pub fn chrome_trace(&self) -> String {
        let spans = lock(&self.spans).clone();
        chrome_trace_from_spans(&spans, |e| format!("job {}", e.task))
    }

    /// Drains admitted jobs, stops the engines and joins them. Returns the
    /// first engine failure, if any.
    pub fn shutdown(&self) -> Result<(), ExecError> {
        self.table.shutdown();
        let mut first = None;
        for h in lock(&self.engines).drain(..) {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    first.get_or_insert(e);
                }
                Err(_) => {
                    first.get_or_insert(ExecError::Remote);
                }
            }
        }
        match first {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}
