//! The resident service core: a warm mesh of rank engines, a warm plan
//! cache, a task-graph cache, admission-controlled job submission and
//! first-class observability.
//!
//! Telemetry is split in two planes. The *job path* (engines, job table)
//! updates `Arc`'d atomics and a cold-path event ring; the *scrape path*
//! ([`Service::stats_text`], [`Service::events_tail`]) reads those atomics
//! and renders text — it never takes the job-table state mutex, the ready
//! heap, or any engine lock, so a `paper top` polling the service costs
//! the job path nothing measurable.

use sbc_matrix::SymmetricTiledMatrix;
use sbc_net::{inproc_mesh, BufferPool, PoolStats};
use sbc_obs::{
    chrome_trace_from_spans, expo, Counter, EventLog, Gauge, Metrics, MetricsSnapshot, ObsEvent,
    SpanRing, TraceEvent,
};
use sbc_planner::{Op, Planner, PlannerConfig};
use sbc_runtime::jobs::{run_jobs_rank, JobEngineConfig, JobId, JobOutcome, JobTable, Rejection};
use sbc_runtime::{gather_symmetric, ExecError, KernelBackend};
use sbc_simgrid::Platform;
use sbc_taskgraph::TaskGraph;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Shape of a resident service.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Mesh size: ranks kept resident (the planner plans for exactly this
    /// platform, so its cache stays valid for the service lifetime).
    pub nodes: usize,
    /// Worker threads per rank engine.
    pub workers: usize,
    /// Admission bound: jobs admitted and not yet finished.
    pub max_inflight: usize,
    /// Rank engines' receive poll tick.
    pub heartbeat: Duration,
    /// Per-job no-progress watchdog (never fires on an idle rank).
    pub deadline: Option<Duration>,
    /// Planner tunables; the plan cache is the service's per-job tuning
    /// layer, so its capacity bounds how many shapes stay warm.
    pub planner: PlannerConfig,
    /// Per-job trace spans retained (newest-first rotation); bounds the
    /// memory a week-long service spends on [`Service::chrome_trace`].
    pub trace_spans: usize,
    /// Lifecycle events retained in the structured event ring.
    pub events_capacity: usize,
    /// Sliding window for [`Service::jobs_per_sec`]: the rate decays to
    /// zero this long after traffic stops.
    pub rate_window: Duration,
    /// Kernel backend the rank engines' workers dispatch through. All
    /// backends are bit-identical, so this only changes job latency; the
    /// `SBC_KERNELS` environment variable overrides it at start time.
    pub kernels: KernelBackend,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            nodes: 6,
            workers: 1,
            max_inflight: 16,
            heartbeat: Duration::from_millis(2),
            deadline: None,
            planner: PlannerConfig::default(),
            trace_spans: 4096,
            events_capacity: 1024,
            rate_window: Duration::from_secs(30),
            kernels: KernelBackend::default(),
        }
    }
}

/// An admitted job's ticket.
#[derive(Debug, Clone, Copy)]
pub struct Submitted {
    /// Table-assigned job id, for [`Service::wait`].
    pub id: JobId,
    /// Whether planning was served from the warm plan cache.
    pub plan_cached: bool,
}

/// A resident factorization service: submit jobs from any thread, wait for
/// their outcomes, read the metrics, shut down once.
pub struct Service {
    table: Arc<JobTable>,
    planner: Planner,
    metrics: Arc<Metrics>,
    events: Arc<EventLog>,
    graphs: Mutex<HashMap<(Op, usize, usize), Arc<TaskGraph>>>,
    engines: Mutex<Vec<JoinHandle<Result<(), ExecError>>>>,
    spans: SpanRing,
    throughput: Arc<Gauge>,
    rate_window: Duration,
    started: Instant,
    /// Send-buffer pool the wire front encodes its replies through.
    reply_pool: BufferPool,
    pool_hits: Arc<Counter>,
    pool_misses: Arc<Counter>,
    pool_outstanding: Arc<Gauge>,
    /// Pool totals already folded into the counters (scrape-path only).
    pool_seen: Mutex<PoolStats>,
}

impl Service {
    /// Starts the resident mesh (spawning one engine thread per rank) and
    /// binds the observability registry: `serve.jobs.*` counters, the
    /// `serve.job.latency` histogram, the `obs.drift.*` alarm counters and
    /// per-rank engine gauges all register eagerly here.
    pub fn start(cfg: ServeConfig) -> Arc<Service> {
        let metrics = Arc::new(Metrics::new());
        let events = Arc::new(EventLog::with_capacity(cfg.events_capacity));
        let planner =
            Planner::with_config(Platform::bora(cfg.nodes), cfg.planner).with_metrics(&metrics);
        let table = Arc::new(JobTable::new(cfg.nodes, cfg.max_inflight));
        // the throughput ring must remember at least a window's worth of
        // completions at any rate worth telling apart
        table.bind_obs(&metrics, Arc::clone(&events), 4096);
        let engine_cfg = JobEngineConfig {
            workers: cfg.workers,
            heartbeat: cfg.heartbeat,
            deadline: cfg.deadline,
            kernels: KernelBackend::resolve(cfg.kernels),
        };
        let engines = inproc_mesh(cfg.nodes)
            .into_iter()
            .map(|net| {
                let table = Arc::clone(&table);
                std::thread::spawn(move || run_jobs_rank(&net, &table, engine_cfg))
            })
            .collect();
        Arc::new(Service {
            table,
            planner,
            throughput: metrics.gauge("serve.jobs_per_sec"),
            // registered eagerly so an idle scrape still shows the pool
            // plane at zero, exactly like the serve.jobs.* counters
            pool_hits: metrics.counter("net.pool.hit"),
            pool_misses: metrics.counter("net.pool.miss"),
            pool_outstanding: metrics.gauge("net.pool.outstanding"),
            pool_seen: Mutex::new(PoolStats::default()),
            reply_pool: BufferPool::default(),
            metrics,
            events,
            graphs: Mutex::new(HashMap::new()),
            engines: Mutex::new(engines),
            spans: SpanRing::with_capacity(cfg.trace_spans),
            rate_window: cfg.rate_window,
            started: Instant::now(),
        })
    }

    /// Plans (warm cache first), reuses the shape's shared task graph, and
    /// submits one job. The ticket reports whether the plan was cached.
    /// Admission counters and lifecycle events are recorded by the job
    /// table itself.
    pub fn submit(
        &self,
        op: Op,
        nt: usize,
        b: usize,
        seed: u64,
        seed_rhs: u64,
        prio: u8,
    ) -> Result<Submitted, Rejection> {
        let plan = self.planner.plan(op, nt, b);
        let graph = Arc::clone(
            lock(&self.graphs)
                .entry((op, nt, b))
                .or_insert_with(|| Arc::new(plan.build_graph())),
        );
        let id = self
            .table
            .submit(graph, b, seed, seed_rhs, prio, plan.use_priorities)?;
        Ok(Submitted {
            id,
            plan_cached: plan.cached,
        })
    }

    /// Blocks until `id` finishes. Completion counters, latency and drift
    /// are recorded by the job table the moment the last rank reports; this
    /// method only adds the per-job trace span and refreshes the
    /// throughput gauge.
    pub fn wait(&self, id: JobId) -> Result<JobOutcome, ExecError> {
        let out = self.table.wait(id)?;
        self.throughput.set(self.jobs_per_sec());
        let end = self.started.elapsed().as_secs_f64();
        self.spans.push(TraceEvent {
            task: id,
            node: 0,
            start: (end - out.elapsed.as_secs_f64()).max(0.0),
            end,
        });
        Ok(out)
    }

    /// Assembles a POTRF job's lower-triangular factor from its outcome,
    /// resolving the shape's 2.5D slice layout from the shared graph.
    pub fn gather_potrf(
        &self,
        nt: usize,
        b: usize,
        out: &JobOutcome,
    ) -> Result<SymmetricTiledMatrix, ExecError> {
        let slices = lock(&self.graphs)
            .get(&(Op::Potrf, nt, b))
            .map_or(1, |g| g.slices.max(1));
        gather_symmetric(&out.tiles, nt, b, 0, |j| (j % slices) as u8)
    }

    /// The service's metrics registry (`serve.jobs.*`, `serve.job.latency`,
    /// `obs.drift.*`, `planner.cache.{hit,miss}`, `jobs.rank<r>.*`,
    /// `serve.jobs_per_sec`).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The structured lifecycle event ring.
    pub fn events(&self) -> &Arc<EventLog> {
        &self.events
    }

    /// The shared planner (its cache statistics are also in the metrics).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Jobs completed since start (lock-free).
    pub fn completed(&self) -> u64 {
        self.table.completed()
    }

    /// Jobs admitted and not yet finished (lock-free).
    pub fn inflight(&self) -> usize {
        self.table.inflight()
    }

    /// Completed jobs per second over the configured sliding window — an
    /// idle-overnight service reads `0`, not a forever-decaying average.
    pub fn jobs_per_sec(&self) -> f64 {
        self.table.completion_rate(self.rate_window)
    }

    /// The send-buffer pool the wire front ([`crate::serve`]) encodes its
    /// replies through. Its checkout accounting surfaces as the
    /// `net.pool.{hit,miss,outstanding}` metrics.
    pub fn reply_pool(&self) -> &BufferPool {
        &self.reply_pool
    }

    /// Folds the reply pool's checkout totals into the `net.pool.*`
    /// instruments (delta adds — counters stay monotone across scrapes).
    fn refresh_pool_metrics(&self) {
        let s = self.reply_pool.stats();
        let mut seen = lock(&self.pool_seen);
        self.pool_hits.add(s.hits.saturating_sub(seen.hits));
        self.pool_misses.add(s.misses.saturating_sub(seen.misses));
        *seen = s;
        drop(seen);
        self.pool_outstanding.set(s.outstanding as f64);
    }

    /// An atomically-taken snapshot of every instrument, with the
    /// throughput gauge and the `net.pool.*` instruments refreshed first
    /// (so a scrape sees the current sliding-window rate and pool state,
    /// not the last `wait`'s). Touches no lock shared with the engine hot
    /// loop.
    pub fn stats(&self) -> MetricsSnapshot {
        self.throughput.set(self.jobs_per_sec());
        self.refresh_pool_metrics();
        self.metrics.snapshot()
    }

    /// [`Service::stats`] rendered as Prometheus-style exposition text —
    /// what a [`sbc_net::wire::Frame::StatsReply`] carries.
    pub fn stats_text(&self) -> String {
        expo::render(&self.stats())
    }

    /// The newest `max` lifecycle events, oldest first.
    pub fn events_tail(&self, max: usize) -> Vec<ObsEvent> {
        self.events.tail(max)
    }

    /// One span per completed job (newest `trace_spans` of them), as a
    /// Chrome trace JSON string.
    pub fn chrome_trace(&self) -> String {
        let spans = self.spans.snapshot();
        chrome_trace_from_spans(&spans, |e| format!("job {}", e.task))
    }

    /// Drains admitted jobs, stops the engines and joins them. Returns the
    /// first engine failure, if any.
    pub fn shutdown(&self) -> Result<(), ExecError> {
        self.table.shutdown();
        let mut first = None;
        for h in lock(&self.engines).drain(..) {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    first.get_or_insert(e);
                }
                Err(_) => {
                    first.get_or_insert(ExecError::Remote);
                }
            }
        }
        match first {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}
