//! # sbc-serve — a resident multi-job factorization service
//!
//! Everything below the service boundary in this workspace is one-shot: a
//! process meshes its ranks up, factorizes one matrix, gathers, exits. For
//! a stream of small and mid-size problems that shape is backwards — mesh
//! setup, session handshakes and distribution planning dominate the actual
//! factorization. This crate keeps all of it **warm**:
//!
//! - [`Service`] owns a resident mesh (one
//!   [`sbc_runtime::jobs::run_jobs_rank`] engine per rank), a shared
//!   [`sbc_planner::Planner`] whose concurrent plan cache makes the second
//!   job of any shape skip the search, and a task-graph cache so
//!   same-shape jobs share one graph. Jobs stream through the mesh
//!   concurrently — tile traffic is namespaced by job id — with admission
//!   control bounding the in-flight set and `(job priority, task
//!   priority)` ordering the shared ready heap.
//! - [`serve`] exposes a service over the existing CRC-checked wire
//!   protocol (UDS or TCP): clients speak
//!   [`sbc_net::wire::Frame::JobSubmit`] / `JobStatus` / `JobResult` /
//!   `Shutdown` from separate OS processes.
//! - [`Client`] is the matching blocking client, plus bit-exact
//!   validation helpers ([`potrf_reference`], [`factor_matches`]) so
//!   every caller can check the returned factor against the sequential
//!   algorithm.
//!
//! Observability is first-class and **wire-scrapeable**: the service's
//! [`sbc_obs::Metrics`] registry carries `serve.jobs.*` counters, the
//! `serve.job.latency` histogram, `obs.drift.*` comm-drift alarms,
//! `planner.cache.{hit,miss}` from the planner, per-rank engine gauges
//! (`jobs.rank<r>.{ready,pending,inflight,busy}`) and a sliding-window
//! [`Service::jobs_per_sec`] throughput figure. Any client can scrape it
//! live over the same socket — [`Client::stats`] /
//! [`Client::stats_text`] return a Prometheus-style exposition
//! ([`sbc_obs::expo`]) answered from an atomically-taken snapshot, and
//! [`Client::events`] tails the structured job-lifecycle
//! [`sbc_obs::EventLog`]; neither path touches a lock the engine hot loop
//! holds. Per-job trace spans rotate in a bounded ring and export as a
//! Chrome trace ([`Service::chrome_trace`]).

#![warn(missing_docs)]

mod client;
mod server;
mod service;
mod sock;

pub use client::{factor_matches, potrf_reference, Client, ClientError, JobReply, JobRequest};
pub use sbc_net::wire::EventRecord;
pub use server::serve;
pub use service::{ServeConfig, Service, Submitted};
