//! End-to-end tests of the resident service: plan-cache reuse across
//! jobs, wire-protocol round trips with bit-exact factors and exact
//! analytic accounting, and admission/protocol rejections.

use sbc_dist::comm::messages_to_bytes;
use sbc_net::wire::{read_frame, write_frame, Frame};
use sbc_obs::{EventKind, Severity};
use sbc_planner::{Op, Planner};
use sbc_serve::{factor_matches, serve, Client, JobReply, JobRequest, ServeConfig, Service};
use sbc_simgrid::Platform;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::sync::Arc;

const B: usize = 8;

fn sock_path(tag: &str) -> String {
    let path =
        std::env::temp_dir().join(format!("sbc-serve-test-{tag}-{}.sock", std::process::id()));
    path.to_string_lossy().into_owned()
}

#[test]
fn second_job_of_a_shape_hits_the_plan_cache() {
    let service = Service::start(ServeConfig {
        nodes: 6,
        ..ServeConfig::default()
    });
    let first = service.submit(Op::Potrf, 10, B, 41, 1, 0).unwrap();
    let second = service.submit(Op::Potrf, 10, B, 42, 2, 0).unwrap();
    assert!(!first.plan_cached, "cold cache must plan");
    assert!(second.plan_cached, "same shape must reuse the cached plan");
    service.wait(first.id).unwrap();
    service.wait(second.id).unwrap();

    let snap = service.metrics().snapshot();
    assert_eq!(snap.counter("planner.cache.hit"), Some(1));
    assert_eq!(snap.counter("planner.cache.miss"), Some(1));
    assert_eq!(snap.counter("serve.jobs.submitted"), Some(2));
    assert_eq!(snap.counter("serve.jobs.done"), Some(2));
    assert_eq!(snap.counter("serve.jobs.failed"), Some(0));
    assert!(service.jobs_per_sec() > 0.0, "throughput metric must move");
    assert!(
        service.chrome_trace().contains("job 0"),
        "per-job trace must name the first job"
    );
    service.shutdown().unwrap();
}

#[test]
fn served_factors_are_bit_exact_and_analytically_accounted() {
    let nodes = 6;
    let addr = sock_path("roundtrip");
    let service = Service::start(ServeConfig {
        nodes,
        ..ServeConfig::default()
    });
    let server = {
        let service = Arc::clone(&service);
        let addr = addr.clone();
        std::thread::spawn(move || serve(service, &addr))
    };

    // an independent planner over the same platform predicts the traffic
    // the service must measure, per job shape
    let oracle = Planner::new(Platform::bora(nodes));

    let shapes = [(10usize, 7u64), (12, 8), (10, 9)];
    let worker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr)?;
            let mut checked = 0;
            for (nt, seed) in shapes {
                for reply in client.submit(&JobRequest::potrf(nt, B, seed))? {
                    match reply {
                        JobReply::Done { tiles, .. } => {
                            assert!(factor_matches(&tiles, nt, B, seed));
                            checked += 1;
                        }
                        other => panic!("job refused: {other:?}"),
                    }
                }
            }
            Ok::<usize, sbc_serve::ClientError>(checked)
        })
    };

    let mut client = Client::connect(&addr).unwrap();
    let batch = JobRequest {
        batch: 3,
        ..JobRequest::potrf(10, B, 100)
    };
    let replies = client.submit(&batch).unwrap();
    assert_eq!(replies.len(), 3, "one answer per batched job");
    let expect_messages = oracle.plan(Op::Potrf, 10, B).cost.messages;
    for (k, reply) in replies.iter().enumerate() {
        let JobReply::Done {
            messages,
            bytes,
            tiles,
            ..
        } = reply
        else {
            panic!("batched job {k} refused: {reply:?}");
        };
        assert!(factor_matches(tiles, 10, B, 100 + k as u64));
        assert_eq!(*messages, expect_messages, "per-job messages must be exact");
        assert_eq!(
            *bytes,
            messages_to_bytes(expect_messages, B),
            "per-job bytes must be exact"
        );
    }
    assert_eq!(worker.join().unwrap().unwrap(), shapes.len());

    assert!(service.completed() >= 6);
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
    let snap = service.metrics().snapshot();
    assert_eq!(snap.counter("serve.jobs.done"), Some(6));
    assert!(
        snap.counter("planner.cache.hit").unwrap_or(0) > 0,
        "repeated shapes must hit the plan cache"
    );
}

#[test]
fn wire_scrapes_parse_mid_run_and_show_zero_drift() {
    let addr = sock_path("scrape");
    let service = Service::start(ServeConfig {
        nodes: 4,
        trace_spans: 2,
        ..ServeConfig::default()
    });
    let server = {
        let service = Arc::clone(&service);
        let addr = addr.clone();
        std::thread::spawn(move || serve(service, &addr))
    };

    let worker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr)?;
            let replies = client.submit(&JobRequest {
                batch: 4,
                ..JobRequest::potrf(10, B, 500)
            })?;
            Ok::<usize, sbc_serve::ClientError>(
                replies
                    .iter()
                    .filter(|r| matches!(r, JobReply::Done { .. }))
                    .count(),
            )
        })
    };

    // a second connection scrapes while the batch runs: whatever instant a
    // scrape lands on, the exposition must parse back to a snapshot
    let mut monitor = Client::connect(&addr).unwrap();
    let mut scrapes = 0;
    let done = loop {
        let snap = monitor.stats().expect("every mid-run scrape parses");
        scrapes += 1;
        if snap.counter("serve.jobs.done") == Some(4) {
            break snap;
        }
        assert!(scrapes < 4000, "batch never completed under the monitor");
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    assert_eq!(worker.join().unwrap().unwrap(), 4);

    // a clean run drift-checks clean: every completion matched the plan
    assert_eq!(done.counter("obs.drift.ok"), Some(4));
    assert_eq!(done.counter("obs.drift.messages"), Some(0));
    assert_eq!(done.counter("obs.drift.bytes"), Some(0));
    assert_eq!(
        done.histogram("serve.job.latency").map(|h| h.count),
        Some(4),
        "latency is recorded at completion, not at wait"
    );
    let (_, rate, _) = done
        .gauges
        .iter()
        .find(|(n, _, _)| n == "serve.jobs_per_sec")
        .expect("throughput gauge registers eagerly");
    assert!(*rate > 0.0, "a scrape refreshes the sliding-window rate");

    // the reply pool's checkout plane rides the same exposition: every
    // wire reply above went through the pool, so by now the first
    // checkout has missed (cold pool) and later replies were hits
    let snap = monitor.stats().unwrap();
    let hits = snap
        .counter("net.pool.hit")
        .expect("pool hit counter registers eagerly");
    let misses = snap
        .counter("net.pool.miss")
        .expect("pool miss counter registers eagerly");
    assert!(misses >= 1, "the cold pool's first checkout is a miss");
    assert!(hits >= 1, "steady-state replies reuse returned buffers");
    assert!(
        snap.gauges
            .iter()
            .any(|(n, _, _)| n == "net.pool.outstanding"),
        "outstanding gauge registers eagerly"
    );

    // the event tail decodes: admissions and completions, all about jobs
    let events = monitor.events(64).unwrap();
    assert!(!events.is_empty());
    let mut kinds = std::collections::HashMap::new();
    for e in &events {
        Severity::from_code(e.severity).expect("severity codes are stable");
        let kind = EventKind::from_code(e.kind).expect("kind codes are stable");
        assert_ne!(e.job, u32::MAX, "lifecycle events name their job");
        *kinds.entry(kind).or_insert(0u32) += 1;
    }
    assert_eq!(kinds.get(&EventKind::Admitted), Some(&4));
    assert_eq!(kinds.get(&EventKind::Done), Some(&4));
    assert_eq!(kinds.get(&EventKind::Failed), None);

    // the span ring keeps only the newest trace_spans jobs
    let trace = service.chrome_trace();
    assert!(trace.contains("job 3"), "newest span survives rotation");
    assert!(!trace.contains("job 0"), "oldest span rotated out");

    monitor.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn wire_rejects_unknown_ops_and_degenerate_shapes() {
    let addr = sock_path("reject");
    let service = Service::start(ServeConfig {
        nodes: 4,
        ..ServeConfig::default()
    });
    let server = {
        let service = Arc::clone(&service);
        let addr = addr.clone();
        std::thread::spawn(move || serve(service, &addr))
    };

    // raw frames, bypassing the Client's always-valid submissions
    let mut conn = loop {
        match UnixStream::connect(&addr) {
            Ok(s) => break s,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    };
    let submit = |op: u8, nt: u32| Frame::JobSubmit {
        req: 9,
        op,
        prio: 0,
        batch: 1,
        nt,
        b: B as u32,
        seed: 1,
        seed_rhs: 2,
    };
    for (op, nt) in [(5u8, 8u32), (0, 0)] {
        write_frame(&mut conn, &submit(op, nt)).unwrap();
        conn.flush().unwrap();
        let (frame, _) = read_frame(&mut conn).unwrap().expect("an answer");
        match frame {
            Frame::JobStatus { state: 3, info, .. } => {
                assert!(!info.is_empty(), "rejections must carry a reason")
            }
            other => panic!("expected a rejection, got {other:?}"),
        }
    }
    write_frame(&mut conn, &Frame::Shutdown).unwrap();
    conn.flush().unwrap();
    drop(conn);
    server.join().unwrap().unwrap();
    assert_eq!(
        service.metrics().snapshot().counter("serve.jobs.rejected"),
        Some(0),
        "wire-level rejections never reach admission"
    );
}
