//! A small metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Instruments are handed out as `Arc`s by the [`Metrics`] registry;
//! registration takes a lock, updates are lock-free atomics, and
//! [`Metrics::snapshot`] freezes everything into a plain
//! [`MetricsSnapshot`] that renders as an aligned text report. No external
//! dependency, no background thread, no global state.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An `f64` stored in an `AtomicU64` (bit-cast), updated with CAS loops.
#[derive(Debug, Default)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }
    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
    fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }
    fn update(&self, f: impl Fn(f64) -> f64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some(f(f64::from_bits(bits)).to_bits())
            });
    }
}

/// A monotonically increasing integer.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins floating-point sample that also remembers its maximum.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicF64,
    max: AtomicF64,
}

impl Gauge {
    /// Sets the current value (and raises the running maximum).
    pub fn set(&self, v: f64) {
        self.value.set(v);
        self.max.update(|m| m.max(v));
    }
    /// Last set value.
    pub fn get(&self) -> f64 {
        self.value.get()
    }
    /// Largest value ever set.
    pub fn max(&self) -> f64 {
        self.max.get()
    }
}

/// A histogram with fixed bucket upper bounds (plus an overflow bucket).
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing. A value `v` lands in
    /// the first bucket with `v <= bound`, or in the overflow bucket.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicF64,
    min: AtomicF64,
    max: AtomicF64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicF64::new(0.0),
            min: AtomicF64::new(f64::INFINITY),
            max: AtomicF64::new(f64::NEG_INFINITY),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.update(|s| s + v);
        self.min.update(|m| m.min(v));
        self.max.update(|m| m.max(v));
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Plain-data copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: self.sum.get(),
            min: if count == 0 { 0.0 } else { self.min.get() },
            max: if count == 0 { 0.0 } else { self.max.get() },
        }
    }
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (the final bucket is the overflow `> last`).
    pub bounds: Vec<f64>,
    /// Observation count per bucket (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The registry: names to instruments. Get-or-register semantics, so two
/// components asking for the same name share the instrument.
#[derive(Default)]
pub struct Metrics {
    by_name: Mutex<BTreeMap<String, Instrument>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter `name`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different instrument
    /// kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.by_name.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::default())))
        {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("metric '{name}' is not a counter"),
        }
    }

    /// The gauge `name`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different instrument
    /// kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.by_name.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::default())))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("metric '{name}' is not a gauge"),
        }
    }

    /// The histogram `name` with the given bucket bounds, registering it on
    /// first use (later calls may pass any bounds; the first registration
    /// wins).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different instrument
    /// kind, or if `bounds` is not strictly increasing.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.by_name.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Instrument::Histogram(h) => h.clone(),
            _ => panic!("metric '{name}' is not a histogram"),
        }
    }

    /// Freezes every instrument into a plain snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.by_name.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, inst) in map.iter() {
            match inst {
                Instrument::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Instrument::Gauge(g) => snap.gauges.push((name.clone(), g.get(), g.max())),
                Instrument::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// Frozen registry state: plain data, cheap to clone, easy to assert on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, last, max)` for every gauge, name-sorted.
    pub gauges: Vec<(String, f64, f64)>,
    /// `(name, state)` for every histogram, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Snapshot of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The change from `earlier` to `self`, for rate computation between
    /// two scrapes.
    ///
    /// Counters and histogram buckets/counts/sums are differenced
    /// (saturating at zero, so a restarted registry reads as a fresh
    /// start rather than a negative rate); a counter absent from `earlier`
    /// contributes its full value. Gauges are instantaneous, not
    /// cumulative, so the newer last/max pass through unchanged. Histogram
    /// `min`/`max` likewise pass through (the registry does not remember
    /// per-interval extrema). A histogram whose bucket layout changed
    /// between the snapshots also passes through unchanged.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (name, v) in &mut out.counters {
            if let Some(prev) = earlier.counter(name) {
                *v = v.saturating_sub(prev);
            }
        }
        for (name, h) in &mut out.histograms {
            let Some(prev) = earlier.histogram(name) else {
                continue;
            };
            if prev.bounds != h.bounds || prev.buckets.len() != h.buckets.len() {
                continue;
            }
            for (b, pb) in h.buckets.iter_mut().zip(&prev.buckets) {
                *b = b.saturating_sub(*pb);
            }
            h.count = h.count.saturating_sub(prev.count);
            h.sum = (h.sum - prev.sum).max(0.0);
        }
        out
    }

    /// Renders the snapshot as an aligned text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<32} {v:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges (last / max):\n");
            for (name, last, max) in &self.gauges {
                out.push_str(&format!("  {name:<32} {last:>12.3} / {max:.3}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<32} count = {:<8} mean = {:<12.3e} min = {:<12.3e} max = {:.3e}\n",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                ));
                let peak = h.buckets.iter().copied().max().unwrap_or(0);
                if peak == 0 {
                    continue;
                }
                for (i, &c) in h.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    let label = if i < h.bounds.len() {
                        format!("<= {:.1e}", h.bounds[i])
                    } else {
                        format!("> {:.1e}", h.bounds.last().copied().unwrap_or(0.0))
                    };
                    let bar = "#".repeat((c * 40).div_ceil(peak) as usize);
                    out.push_str(&format!("    {label:<12} {c:>10} {bar}\n"));
                }
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics registered)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let m = Metrics::new();
        m.counter("msgs").add(3);
        m.counter("msgs").inc();
        m.gauge("depth").set(5.0);
        m.gauge("depth").set(2.0);
        let s = m.snapshot();
        assert_eq!(s.counter("msgs"), Some(4));
        assert_eq!(s.gauges, vec![("depth".to_string(), 2.0, 5.0)]);
        assert_eq!(s.counter("absent"), None);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let m = Metrics::new();
        let h = m.histogram("lat", &[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        let s = m.snapshot();
        let hs = s.histogram("lat").unwrap();
        assert_eq!(hs.buckets, vec![1, 2, 1, 1]);
        assert_eq!(hs.count, 5);
        assert_eq!(hs.min, 0.5);
        assert_eq!(hs.max, 500.0);
        assert!((hs.mean() - 112.1).abs() < 1e-9);
        let report = s.render();
        assert!(report.contains("lat"), "{report}");
        assert!(report.contains("count = 5"), "{report}");
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let m = Metrics::new();
        let h = m.histogram("h", &[0.5]);
        let c = m.counter("c");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe((i % 2) as f64);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        let hs = h.snapshot();
        assert_eq!(hs.count, 4000);
        assert_eq!(hs.buckets, vec![2000, 2000]);
        assert_eq!(hs.sum, 2000.0);
    }

    #[test]
    fn delta_differences_counters_and_histograms() {
        let m = Metrics::new();
        let c = m.counter("jobs");
        let h = m.histogram("lat", &[1.0, 10.0]);
        c.add(3);
        h.observe(0.5);
        h.observe(5.0);
        m.gauge("depth").set(7.0);
        let before = m.snapshot();
        c.add(4);
        h.observe(0.5);
        h.observe(50.0);
        m.gauge("depth").set(2.0);
        m.counter("fresh").inc();
        let after = m.snapshot();

        let d = after.delta(&before);
        assert_eq!(d.counter("jobs"), Some(4));
        assert_eq!(d.counter("fresh"), Some(1), "new counters pass through");
        let dh = d.histogram("lat").unwrap();
        assert_eq!(dh.buckets, vec![1, 0, 1]);
        assert_eq!(dh.count, 2);
        assert!((dh.sum - 50.5).abs() < 1e-9);
        // gauges are instantaneous: the newer values pass through
        assert_eq!(d.gauges, vec![("depth".to_string(), 2.0, 7.0)]);
        // a "shrinking" counter (registry restart) saturates at zero
        assert_eq!(before.delta(&after).counter("jobs"), Some(0));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn mismatched_kind_panics() {
        let m = Metrics::new();
        m.gauge("x");
        m.counter("x");
    }
}
