//! The execution recorder: typed events, per-thread buffers, one merge.
//!
//! Every node thread of the runtime (and, in principle, any other
//! instrumented component) asks the shared [`Recorder`] for a
//! [`NodeRecorder`] handle and appends events to it. A handle owns a plain
//! `Vec` — recording an event is a timestamp read plus a push, no locks, no
//! atomics — and flushes that buffer into the recorder exactly once, when
//! the handle is dropped (or [`NodeRecorder::flush`] is called early). The
//! only synchronized operation is that single per-thread flush, so the
//! recorder's cost is O(events) memory and effectively zero contention.
//!
//! Timestamps are `f64` seconds relative to the recorder's creation
//! ([`Recorder::now`]), the same unit the simulator's virtual clock uses —
//! which is what lets measured and simulated timelines share one trace
//! type, one Gantt renderer and one Chrome-trace exporter.

use parking_lot::Mutex;
use sbc_taskgraph::TaskKind;
use std::time::Instant;

/// A periodically sampled quantity (as opposed to a span or a point event).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GaugeKind {
    /// Number of tiles resident in a node's local tile store.
    TileStore,
    /// Number of dependency-free tasks queued on a node's scheduler.
    ReadyQueue,
    /// Number of workers of a node currently executing a task.
    ActiveWorkers,
}

/// How many [`GaugeKind`] variants exist (size of the coalescing cache).
const GAUGE_KINDS: usize = 3;

/// A reliability-layer incident observed during an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A payload's retransmission timer fired and the payload was resent.
    Retransmit,
    /// A cumulative ack arrived; the span is the oldest covered payload's
    /// send-to-ack round trip.
    AckRtt,
    /// A rank exceeded its progress deadline while blocked on the network.
    Stall,
}

impl FaultKind {
    /// Stable display name (also the Chrome-trace span name).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Retransmit => "retransmit",
            FaultKind::AckRtt => "ack_rtt",
            FaultKind::Stall => "stall",
        }
    }
}

impl GaugeKind {
    /// Stable display name (also the Chrome-trace counter name).
    pub fn name(&self) -> &'static str {
        match self {
            GaugeKind::TileStore => "tile_store_tiles",
            GaugeKind::ReadyQueue => "ready_queue_depth",
            GaugeKind::ActiveWorkers => "active_workers",
        }
    }

    fn idx(self) -> usize {
        match self {
            GaugeKind::TileStore => 0,
            GaugeKind::ReadyQueue => 1,
            GaugeKind::ActiveWorkers => 2,
        }
    }
}

/// One recorded observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A task executed on a node: the span of the kernel call itself.
    Task {
        /// Task index in the graph.
        task: u32,
        /// What was computed (kind + coordinates).
        kind: TaskKind,
        /// Executing node.
        node: u32,
        /// Worker within the node that ran the kernel.
        worker: u32,
        /// Start time in seconds.
        start: f64,
        /// End time in seconds.
        end: f64,
    },
    /// A message left a node towards `dest`.
    Send {
        /// Sending node.
        node: u32,
        /// Destination node.
        dest: u32,
        /// Payload size.
        bytes: u64,
        /// `true` for an original-tile fetch, `false` for a producer output.
        orig: bool,
        /// Time of the send.
        at: f64,
    },
    /// A message was received and applied on a node.
    Recv {
        /// Receiving node.
        node: u32,
        /// Sending node (pairs this receive with its send for flow arrows).
        src: u32,
        /// Payload size.
        bytes: u64,
        /// `true` for an original-tile fetch, `false` for a producer output.
        orig: bool,
        /// Time of the receive.
        at: f64,
    },
    /// A node sat idle blocking on a dependency that had not arrived yet.
    DepWait {
        /// Waiting node.
        node: u32,
        /// When the node started blocking.
        start: f64,
        /// When the awaited message arrived.
        end: f64,
    },
    /// A reliability-layer incident (retransmission, ack round trip, stall).
    Fault {
        /// Node the incident belongs to.
        node: u32,
        /// What happened.
        kind: FaultKind,
        /// Start of the incident span (send time for ack RTTs).
        start: f64,
        /// End of the incident span.
        end: f64,
    },
    /// A sampled gauge value.
    Gauge {
        /// Sampling node.
        node: u32,
        /// Which quantity.
        gauge: GaugeKind,
        /// The sampled value.
        value: f64,
        /// Sampling time.
        at: f64,
    },
}

impl Event {
    /// The time this event is ordered by (span start for spans).
    pub fn at(&self) -> f64 {
        match *self {
            Event::Task { start, .. }
            | Event::DepWait { start, .. }
            | Event::Fault { start, .. } => start,
            Event::Send { at, .. } | Event::Recv { at, .. } | Event::Gauge { at, .. } => at,
        }
    }

    /// The node the event belongs to.
    pub fn node(&self) -> u32 {
        match *self {
            Event::Task { node, .. }
            | Event::Send { node, .. }
            | Event::Recv { node, .. }
            | Event::DepWait { node, .. }
            | Event::Fault { node, .. }
            | Event::Gauge { node, .. } => node,
        }
    }
}

/// The merged, time-ordered result of one recorded execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recording {
    /// All events, sorted by [`Event::at`].
    pub events: Vec<Event>,
}

impl Recording {
    /// Number of events recorded on `node`.
    pub fn events_on(&self, node: u32) -> usize {
        self.events.iter().filter(|e| e.node() == node).count()
    }

    /// Highest node index observed plus one (0 for an empty recording).
    pub fn nodes(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.node() as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Shared event sink for one instrumented execution.
///
/// Cheap to create, cheap to carry: the hot path lives entirely in the
/// [`NodeRecorder`] handles. Dropping all handles and calling
/// [`Recorder::drain`] yields the merged [`Recording`].
pub struct Recorder {
    epoch: Instant,
    sink: Mutex<Vec<Vec<Event>>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh recorder; its clock starts now.
    pub fn new() -> Self {
        Recorder {
            epoch: Instant::now(),
            sink: Mutex::new(Vec::new()),
        }
    }

    /// Seconds elapsed since the recorder was created.
    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Converts an externally captured [`Instant`] (e.g. a transport
    /// session's event timestamp) onto the recorder clock. Instants taken
    /// before the recorder existed map to 0.
    pub fn time_of(&self, t: Instant) -> f64 {
        t.saturating_duration_since(self.epoch).as_secs_f64()
    }

    /// A per-thread handle recording on behalf of `node` (worker 0).
    pub fn node(&self, node: u32) -> NodeRecorder<'_> {
        self.worker(node, 0)
    }

    /// A per-thread handle recording on behalf of one `worker` of `node` —
    /// task spans land on that worker's track in the Chrome trace.
    pub fn worker(&self, node: u32, worker: u32) -> NodeRecorder<'_> {
        NodeRecorder {
            rec: self,
            node,
            worker,
            buf: Vec::with_capacity(256),
            last_gauge: [None; GAUGE_KINDS],
        }
    }

    /// Merges every flushed buffer into one time-ordered [`Recording`].
    ///
    /// Buffers of handles still alive are not included — drop (or `flush`)
    /// all handles first; the runtime does this before returning.
    pub fn drain(&self) -> Recording {
        let mut bufs = self.sink.lock();
        let mut events: Vec<Event> = bufs.drain(..).flatten().collect();
        events.sort_by(|a, b| a.at().total_cmp(&b.at()));
        Recording { events }
    }
}

/// A node thread's private recording handle. All methods are lock-free
/// appends; the buffer reaches the [`Recorder`] on drop (or `flush`).
pub struct NodeRecorder<'r> {
    rec: &'r Recorder,
    node: u32,
    worker: u32,
    buf: Vec<Event>,
    last_gauge: [Option<f64>; GAUGE_KINDS],
}

impl NodeRecorder<'_> {
    /// Seconds on the shared recorder clock.
    pub fn now(&self) -> f64 {
        self.rec.now()
    }

    /// Records a completed task span on this handle's worker track.
    pub fn task(&mut self, task: u32, kind: TaskKind, start: f64, end: f64) {
        self.buf.push(Event::Task {
            task,
            kind,
            node: self.node,
            worker: self.worker,
            start,
            end,
        });
    }

    /// Records an outgoing message.
    pub fn send(&mut self, dest: u32, bytes: u64, orig: bool) {
        let at = self.now();
        self.buf.push(Event::Send {
            node: self.node,
            dest,
            bytes,
            orig,
            at,
        });
    }

    /// Records an applied incoming message from node `src`.
    pub fn recv(&mut self, src: u32, bytes: u64, orig: bool) {
        let at = self.now();
        self.buf.push(Event::Recv {
            node: self.node,
            src,
            bytes,
            orig,
            at,
        });
    }

    /// Records a reliability-layer incident span.
    pub fn fault(&mut self, kind: FaultKind, start: f64, end: f64) {
        self.buf.push(Event::Fault {
            node: self.node,
            kind,
            start,
            end,
        });
    }

    /// Records a blocking wait for a dependency.
    pub fn dep_wait(&mut self, start: f64, end: f64) {
        self.buf.push(Event::DepWait {
            node: self.node,
            start,
            end,
        });
    }

    /// Records a gauge sample. Consecutive samples with an unchanged value
    /// are coalesced — the timeline is identical, the event stream smaller.
    pub fn gauge(&mut self, gauge: GaugeKind, value: f64) {
        if self.last_gauge[gauge.idx()] == Some(value) {
            return;
        }
        self.last_gauge[gauge.idx()] = Some(value);
        let at = self.now();
        self.buf.push(Event::Gauge {
            node: self.node,
            gauge,
            value,
            at,
        });
    }

    /// Pushes the buffered events into the recorder early (drop does the
    /// same once).
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.rec.sink.lock().push(std::mem::take(&mut self.buf));
        }
    }
}

impl Drop for NodeRecorder<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_merge_time_ordered_across_handles() {
        let rec = Recorder::new();
        let mut a = rec.node(0);
        let mut b = rec.node(1);
        a.task(0, TaskKind::Potrf { k: 0 }, 0.5, 0.6);
        b.task(1, TaskKind::Trsm { k: 0, i: 1 }, 0.1, 0.2);
        a.send(1, 128, false);
        drop(a);
        drop(b);
        let r = rec.drain();
        assert_eq!(r.events.len(), 3);
        let times: Vec<f64> = r.events.iter().map(|e| e.at()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        assert_eq!(r.nodes(), 2);
        assert_eq!(r.events_on(0), 2);
        assert_eq!(r.events_on(1), 1);
    }

    #[test]
    fn drain_skips_unflushed_then_picks_up_after_flush() {
        let rec = Recorder::new();
        let mut h = rec.node(3);
        h.gauge(GaugeKind::TileStore, 4.0);
        assert_eq!(rec.drain().events.len(), 0);
        h.flush();
        let r = rec.drain();
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.nodes(), 4);
        drop(h); // second flush is a no-op
        assert_eq!(rec.drain().events.len(), 0);
    }

    #[test]
    fn worker_handles_tag_task_spans() {
        let rec = Recorder::new();
        let mut w0 = rec.worker(2, 0);
        let mut w1 = rec.worker(2, 1);
        w0.task(5, TaskKind::Potrf { k: 0 }, 0.0, 0.1);
        w1.task(6, TaskKind::Syrk { i: 0, k: 1 }, 0.0, 0.2);
        w1.gauge(GaugeKind::ActiveWorkers, 2.0);
        drop(w0);
        drop(w1);
        let r = rec.drain();
        let workers: Vec<u32> = r
            .events
            .iter()
            .filter_map(|e| match *e {
                Event::Task { worker, .. } => Some(worker),
                _ => None,
            })
            .collect();
        assert_eq!(workers.len(), 2);
        assert!(workers.contains(&0) && workers.contains(&1));
        assert!(r
            .events
            .iter()
            .any(|e| matches!(e, Event::Gauge { gauge: GaugeKind::ActiveWorkers, value, .. } if *value == 2.0)));
    }

    #[test]
    fn recorder_clock_is_monotonic() {
        let rec = Recorder::new();
        let a = rec.now();
        let b = rec.now();
        assert!(b >= a && a >= 0.0);
    }
}
