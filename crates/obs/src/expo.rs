//! Prometheus-style text exposition of a [`MetricsSnapshot`], and the
//! matching parser.
//!
//! The format is the classic scrape text: `# HELP` / `# TYPE` comment
//! lines introduce each metric family, then one sample per line. Because
//! both ends are in-tree (the service renders, `paper top` and CI parse)
//! the format keeps the registry's dotted names verbatim and extends the
//! histogram family with `_min` / `_max` samples and gauges with a
//! `{stat="max"}` sample, so [`parse`] reconstructs the exact
//! [`MetricsSnapshot`] that was rendered — [`parse`]`(`[`render`]`(s)) == s`
//! for every snapshot (floats are printed with Rust's shortest round-trip
//! formatting).
//!
//! ```text
//! # HELP serve.jobs.done counter
//! # TYPE serve.jobs.done counter
//! serve.jobs.done 42
//! # TYPE serve.jobs_per_sec gauge
//! serve.jobs_per_sec 1.25
//! serve.jobs_per_sec{stat="max"} 3.5
//! # TYPE serve.job.latency histogram
//! serve.job.latency_bucket{le="0.001"} 3
//! serve.job.latency_bucket{le="+Inf"} 5
//! serve.job.latency_sum 0.42
//! serve.job.latency_count 5
//! serve.job.latency_min 0.0002
//! serve.job.latency_max 0.39
//! ```
//!
//! Histogram `_bucket` samples are cumulative (Prometheus semantics); the
//! parser de-cumulates them back into the snapshot's per-bucket counts.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;

/// Where and why a scrape text failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub what: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exposition line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for ParseError {}

/// Renders a snapshot as scrape text. Families appear counters first, then
/// gauges, then histograms, each name-sorted (the registry order).
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "# HELP {name} counter");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, last, max) in &snap.gauges {
        let _ = writeln!(out, "# HELP {name} gauge (last and max)");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {last}");
        let _ = writeln!(out, "{name}{{stat=\"max\"}} {max}");
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(out, "# HELP {name} histogram (cumulative buckets)");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            cum += c;
            if i < h.bounds.len() {
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", h.bounds[i]);
            } else {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
            }
        }
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
        let _ = writeln!(out, "{name}_min {}", h.min);
        let _ = writeln!(out, "{name}_max {}", h.max);
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

/// One family being assembled by the parser.
struct Family {
    name: String,
    kind: Kind,
    counter: Option<u64>,
    gauge_last: Option<f64>,
    gauge_max: Option<f64>,
    bounds: Vec<f64>,
    cum: Vec<u64>,
    saw_inf: bool,
    sum: Option<f64>,
    count: Option<u64>,
    min: Option<f64>,
    max: Option<f64>,
}

impl Family {
    fn new(name: String, kind: Kind) -> Family {
        Family {
            name,
            kind,
            counter: None,
            gauge_last: None,
            gauge_max: None,
            bounds: Vec::new(),
            cum: Vec::new(),
            saw_inf: false,
            sum: None,
            count: None,
            min: None,
            max: None,
        }
    }

    fn finish(self, snap: &mut MetricsSnapshot, line: usize) -> Result<(), ParseError> {
        let fname = self.name.clone();
        let err = move |what: &str| ParseError {
            line,
            what: format!("family '{fname}': {what}"),
        };
        match self.kind {
            Kind::Counter => {
                let v = self.counter.ok_or_else(|| err("no sample"))?;
                snap.counters.push((self.name, v));
            }
            Kind::Gauge => {
                let last = self.gauge_last.ok_or_else(|| err("no sample"))?;
                let max = self.gauge_max.unwrap_or(last);
                snap.gauges.push((self.name, last, max));
            }
            Kind::Histogram => {
                if !self.saw_inf {
                    return Err(err("missing the +Inf bucket"));
                }
                let mut buckets = Vec::with_capacity(self.cum.len());
                let mut prev = 0u64;
                for &c in &self.cum {
                    if c < prev {
                        return Err(err("bucket counts are not cumulative"));
                    }
                    buckets.push(c - prev);
                    prev = c;
                }
                if !self.bounds.windows(2).all(|w| w[0] < w[1]) {
                    return Err(err("bucket bounds are not strictly increasing"));
                }
                let count = self.count.ok_or_else(|| err("missing _count"))?;
                if prev != count {
                    return Err(err("_count disagrees with the +Inf bucket"));
                }
                snap.histograms.push((
                    self.name,
                    HistogramSnapshot {
                        bounds: self.bounds,
                        buckets,
                        count,
                        sum: self.sum.ok_or_else(|| err("missing _sum"))?,
                        min: self.min.ok_or_else(|| err("missing _min"))?,
                        max: self.max.ok_or_else(|| err("missing _max"))?,
                    },
                ));
            }
        }
        Ok(())
    }
}

fn parse_f64(s: &str, line: usize) -> Result<f64, ParseError> {
    s.parse().map_err(|_| ParseError {
        line,
        what: format!("'{s}' is not a float"),
    })
}

fn parse_u64(s: &str, line: usize) -> Result<u64, ParseError> {
    s.parse().map_err(|_| ParseError {
        line,
        what: format!("'{s}' is not an unsigned integer"),
    })
}

/// Parses scrape text produced by [`render`] back into the snapshot.
pub fn parse(text: &str) -> Result<MetricsSnapshot, ParseError> {
    let mut snap = MetricsSnapshot::default();
    let mut family: Option<Family> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with("# HELP") {
            continue;
        }
        if let Some(rest) = l.strip_prefix("# TYPE ") {
            if let Some(f) = family.take() {
                f.finish(&mut snap, line)?;
            }
            let (name, kind) = rest.rsplit_once(' ').ok_or(ParseError {
                line,
                what: "TYPE line needs '<name> <kind>'".into(),
            })?;
            let kind = match kind {
                "counter" => Kind::Counter,
                "gauge" => Kind::Gauge,
                "histogram" => Kind::Histogram,
                other => {
                    return Err(ParseError {
                        line,
                        what: format!("unknown family kind '{other}'"),
                    })
                }
            };
            family = Some(Family::new(name.to_string(), kind));
            continue;
        }
        if l.starts_with('#') {
            continue; // other comments are legal scrape text
        }
        let fam = family.as_mut().ok_or(ParseError {
            line,
            what: "sample before any # TYPE line".into(),
        })?;
        let (series, value) = l.rsplit_once(' ').ok_or(ParseError {
            line,
            what: "sample needs '<series> <value>'".into(),
        })?;
        let (series_name, label) = match series.split_once('{') {
            Some((n, rest)) => {
                let label = rest.strip_suffix('}').ok_or(ParseError {
                    line,
                    what: "unterminated label set".into(),
                })?;
                (n, Some(label))
            }
            None => (series, None),
        };
        match fam.kind {
            Kind::Counter => {
                if series_name != fam.name || label.is_some() {
                    return Err(ParseError {
                        line,
                        what: format!("unexpected counter series '{series}'"),
                    });
                }
                fam.counter = Some(parse_u64(value, line)?);
            }
            Kind::Gauge => {
                if series_name != fam.name {
                    return Err(ParseError {
                        line,
                        what: format!("unexpected gauge series '{series}'"),
                    });
                }
                match label {
                    None => fam.gauge_last = Some(parse_f64(value, line)?),
                    Some("stat=\"max\"") => fam.gauge_max = Some(parse_f64(value, line)?),
                    Some(other) => {
                        return Err(ParseError {
                            line,
                            what: format!("unknown gauge label '{{{other}}}'"),
                        })
                    }
                }
            }
            Kind::Histogram => {
                let suffix =
                    series_name
                        .strip_prefix(fam.name.as_str())
                        .ok_or_else(|| ParseError {
                            line,
                            what: format!("series '{series}' outside family '{}'", fam.name),
                        })?;
                match (suffix, label) {
                    ("_bucket", Some(label)) => {
                        let le = label
                            .strip_prefix("le=\"")
                            .and_then(|s| s.strip_suffix('"'))
                            .ok_or(ParseError {
                                line,
                                what: "bucket needs an le=\"...\" label".into(),
                            })?;
                        if fam.saw_inf {
                            return Err(ParseError {
                                line,
                                what: "bucket after the +Inf bucket".into(),
                            });
                        }
                        if le == "+Inf" {
                            fam.saw_inf = true;
                        } else {
                            fam.bounds.push(parse_f64(le, line)?);
                        }
                        fam.cum.push(parse_u64(value, line)?);
                    }
                    ("_sum", None) => fam.sum = Some(parse_f64(value, line)?),
                    ("_count", None) => fam.count = Some(parse_u64(value, line)?),
                    ("_min", None) => fam.min = Some(parse_f64(value, line)?),
                    ("_max", None) => fam.max = Some(parse_f64(value, line)?),
                    _ => {
                        return Err(ParseError {
                            line,
                            what: format!("unexpected histogram series '{series}'"),
                        })
                    }
                }
            }
        }
    }
    if let Some(f) = family.take() {
        let last = text.lines().count();
        f.finish(&mut snap, last)?;
    }
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn sample_snapshot() -> MetricsSnapshot {
        let m = Metrics::new();
        m.counter("serve.jobs.done").add(42);
        m.counter("obs.drift.ok").add(42);
        let g = m.gauge("serve.jobs_per_sec");
        g.set(3.5);
        g.set(1.25);
        let h = m.histogram("serve.job.latency", &[0.001, 0.1, 1.0]);
        for v in [0.0002, 0.0004, 0.05, 0.39, 2.0] {
            h.observe(v);
        }
        m.snapshot()
    }

    #[test]
    fn golden_exposition_text() {
        let text = render(&sample_snapshot());
        let expected = "\
# HELP obs.drift.ok counter
# TYPE obs.drift.ok counter
obs.drift.ok 42
# HELP serve.jobs.done counter
# TYPE serve.jobs.done counter
serve.jobs.done 42
# HELP serve.jobs_per_sec gauge (last and max)
# TYPE serve.jobs_per_sec gauge
serve.jobs_per_sec 1.25
serve.jobs_per_sec{stat=\"max\"} 3.5
# HELP serve.job.latency histogram (cumulative buckets)
# TYPE serve.job.latency histogram
serve.job.latency_bucket{le=\"0.001\"} 2
serve.job.latency_bucket{le=\"0.1\"} 3
serve.job.latency_bucket{le=\"1\"} 4
serve.job.latency_bucket{le=\"+Inf\"} 5
serve.job.latency_sum 2.4406
serve.job.latency_count 5
serve.job.latency_min 0.0002
serve.job.latency_max 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn parse_roundtrips_the_render() {
        let snap = sample_snapshot();
        let back = parse(&render(&snap)).expect("own output parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_and_degenerate_snapshots_roundtrip() {
        let empty = MetricsSnapshot::default();
        assert_eq!(parse(&render(&empty)).unwrap(), empty);

        // an empty histogram (count 0, min/max forced to 0) and extreme
        // float gauges survive the text
        let m = Metrics::new();
        m.histogram("h.empty", &[0.5, 2.5]);
        let g = m.gauge("g.weird");
        g.set(f64::INFINITY);
        g.set(-0.0);
        let snap = m.snapshot();
        assert_eq!(parse(&render(&snap)).unwrap(), snap);
    }

    #[test]
    fn parse_rejects_malformed_text() {
        // sample before any family
        assert!(parse("x 1\n").is_err());
        // non-cumulative buckets
        let bad = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"+Inf\"} 3
h_sum 0
h_count 3
h_min 0
h_max 0
";
        let e = parse(bad).unwrap_err();
        assert!(e.what.contains("cumulative"), "{e}");
        // missing +Inf
        let bad =
            "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 0\nh_count 1\nh_min 0\nh_max 0\n";
        assert!(parse(bad).unwrap_err().what.contains("+Inf"));
        // a counter value that is not an integer
        assert!(parse("# TYPE c counter\nc 1.5\n").is_err());
        // count disagreeing with the +Inf bucket
        let bad = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 3
h_sum 0
h_count 7
h_min 0
h_max 0
";
        assert!(parse(bad).unwrap_err().what.contains("_count"));
    }

    #[test]
    fn foreign_comments_and_blank_lines_are_tolerated() {
        let text = "\n# scraped at t=0\n# TYPE c counter\n\nc 9\n";
        let snap = parse(text).unwrap();
        assert_eq!(snap.counter("c"), Some(9));
    }
}
