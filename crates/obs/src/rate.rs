//! A lock-free sliding-window event rate.
//!
//! `Service::jobs_per_sec` used to divide completed jobs by wall-clock
//! since start, so a service idle overnight reported a near-zero rate
//! forever. [`RateWindow`] instead remembers the timestamps of the newest
//! `slots` events in a fixed ring of atomics and reports
//! `events-in-window / window`, so the rate decays to zero a window after
//! traffic stops and recovers instantly when it resumes. Both
//! [`RateWindow::record`] and [`RateWindow::rate`] are a handful of relaxed
//! atomic operations — no lock is shared with anything.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Sentinel for a ring slot that has never held an event.
const EMPTY: u64 = u64::MAX;

/// A fixed ring of event timestamps supporting lock-free windowed rates.
///
/// The ring holds the newest `slots` events; a window that saw more events
/// than `slots` under-counts (the rate saturates at `slots / window`), so
/// size the ring for the highest rate worth distinguishing.
pub struct RateWindow {
    started: Instant,
    head: AtomicU64,
    ring: Vec<AtomicU64>,
}

impl RateWindow {
    /// A window remembering the newest `slots` events (`slots >= 1`).
    pub fn new(slots: usize) -> RateWindow {
        RateWindow {
            started: Instant::now(),
            head: AtomicU64::new(0),
            ring: (0..slots.max(1)).map(|_| AtomicU64::new(EMPTY)).collect(),
        }
    }

    fn now_nanos(&self) -> u64 {
        // ~584 years of range: no wrap concern
        self.started.elapsed().as_nanos() as u64
    }

    /// Records one event now.
    pub fn record(&self) {
        self.record_at(self.now_nanos());
    }

    fn record_at(&self, t: u64) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.ring.len();
        self.ring[idx].store(t, Ordering::Relaxed);
    }

    /// Events recorded within the trailing `window` (saturating at the
    /// ring size).
    pub fn count(&self, window: Duration) -> u64 {
        self.count_at(self.now_nanos(), window.as_nanos() as u64)
    }

    fn count_at(&self, now: u64, window: u64) -> u64 {
        let cutoff = now.saturating_sub(window);
        self.ring
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .filter(|&t| t != EMPTY && t >= cutoff && t <= now)
            .count() as u64
    }

    /// Events per second over the trailing `window`. Early in the window's
    /// life — before a full `window` has elapsed — the divisor is the time
    /// since creation, so a burst right after start is not diluted.
    pub fn rate(&self, window: Duration) -> f64 {
        self.rate_at(self.now_nanos(), window.as_nanos() as u64)
    }

    fn rate_at(&self, now: u64, window: u64) -> f64 {
        let span = now.min(window);
        if span == 0 {
            return 0.0;
        }
        self.count_at(now, window) as f64 / (span as f64 / 1e9)
    }

    /// Events ever recorded (not bounded by the ring).
    pub fn total(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn rate_counts_only_events_inside_the_window() {
        let w = RateWindow::new(16);
        for t in [1, 2, 3, 10, 11] {
            w.record_at(t * SEC);
        }
        // at t = 12s with a 3s window only t = 10, 11 qualify
        assert_eq!(w.count_at(12 * SEC, 3 * SEC), 2);
        let r = w.rate_at(12 * SEC, 3 * SEC);
        assert!((r - 2.0 / 3.0).abs() < 1e-12, "{r}");
        // a window after the last event the rate is zero
        assert_eq!(w.rate_at(30 * SEC, 3 * SEC), 0.0);
        assert_eq!(w.total(), 5);
    }

    #[test]
    fn young_window_divides_by_elapsed_not_window() {
        let w = RateWindow::new(8);
        w.record_at(SEC / 2);
        w.record_at(SEC);
        // 2 events in the first second of a 30s window: 2/s, not 2/30
        let r = w.rate_at(SEC, 30 * SEC);
        assert!((r - 2.0).abs() < 1e-12, "{r}");
        // and exactly at t = 0 there is nothing to divide by
        assert_eq!(RateWindow::new(4).rate_at(0, SEC), 0.0);
    }

    #[test]
    fn ring_saturates_at_slot_count() {
        let w = RateWindow::new(4);
        for t in 1..=10u64 {
            w.record_at(t);
        }
        assert_eq!(w.count_at(10, SEC), 4, "only the newest 4 survive");
        assert_eq!(w.total(), 10);
    }

    #[test]
    fn live_clock_path_works() {
        let w = RateWindow::new(32);
        for _ in 0..5 {
            w.record();
        }
        assert_eq!(w.count(Duration::from_secs(3600)), 5);
        assert!(w.rate(Duration::from_secs(3600)) > 0.0);
    }

    #[test]
    fn concurrent_records_all_land() {
        let w = RateWindow::new(1024);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        w.record();
                    }
                });
            }
        });
        assert_eq!(w.total(), 400);
        assert_eq!(w.count(Duration::from_secs(3600)), 400);
    }
}
