//! Aggregating a [`Recording`] into a measured execution profile and a
//! populated metrics registry.

use std::collections::BTreeMap;

use crate::metrics::Metrics;
use crate::recorder::{Event, Recording};

/// Latency bucket bounds (seconds) for kernel and wait histograms:
/// exponential from 1 µs to 10 s.
pub const LATENCY_BOUNDS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// Message-size bucket bounds (bytes): powers of four from 1 KiB to 16 MiB.
pub const BYTES_BOUNDS: [f64; 8] = [
    1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0, 16777216.0,
];

/// Per-task-kind timing aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindStats {
    /// Number of executed tasks of this kind.
    pub count: u64,
    /// Summed kernel time in seconds.
    pub total_seconds: f64,
    /// Fastest instance.
    pub min_seconds: f64,
    /// Slowest instance.
    pub max_seconds: f64,
}

impl KindStats {
    /// Mean kernel time (0 when empty).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_seconds / self.count as f64
        }
    }
}

/// What the runtime *actually did*, summarized: the measured counterpart of
/// the planner's predicted `CostBreakdown`, and the input to its drift
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecProfile {
    /// Wall-clock span from the first task start to the last task end.
    pub wall_seconds: f64,
    /// Number of nodes that produced events.
    pub nodes: usize,
    /// Summed kernel (busy) seconds per node.
    pub busy_per_node: Vec<f64>,
    /// Total messages sent.
    pub messages: u64,
    /// Total bytes sent.
    pub bytes: u64,
    /// Seconds spent blocking on dependencies, summed over nodes.
    pub dep_wait_seconds: f64,
    /// Timing aggregates keyed by kernel name.
    pub per_kind: BTreeMap<&'static str, KindStats>,
}

impl ExecProfile {
    /// Builds the profile from a drained recording.
    pub fn from_recording(rec: &Recording) -> Self {
        let nodes = rec.nodes();
        let mut busy_per_node = vec![0.0f64; nodes];
        let mut per_kind: BTreeMap<&'static str, KindStats> = BTreeMap::new();
        let mut messages = 0u64;
        let mut bytes = 0u64;
        let mut dep_wait_seconds = 0.0f64;
        let mut first = f64::INFINITY;
        let mut last = f64::NEG_INFINITY;
        for e in &rec.events {
            match *e {
                Event::Task {
                    kind,
                    node,
                    start,
                    end,
                    ..
                } => {
                    let dur = (end - start).max(0.0);
                    busy_per_node[node as usize] += dur;
                    first = first.min(start);
                    last = last.max(end);
                    let s = per_kind.entry(kind.name()).or_insert(KindStats {
                        count: 0,
                        total_seconds: 0.0,
                        min_seconds: f64::INFINITY,
                        max_seconds: 0.0,
                    });
                    s.count += 1;
                    s.total_seconds += dur;
                    s.min_seconds = s.min_seconds.min(dur);
                    s.max_seconds = s.max_seconds.max(dur);
                }
                Event::Send { bytes: b, .. } => {
                    messages += 1;
                    bytes += b;
                }
                Event::DepWait { start, end, .. } => {
                    dep_wait_seconds += (end - start).max(0.0);
                }
                Event::Recv { .. } | Event::Gauge { .. } | Event::Fault { .. } => {}
            }
        }
        ExecProfile {
            wall_seconds: if last > first { last - first } else { 0.0 },
            nodes,
            busy_per_node,
            messages,
            bytes,
            dep_wait_seconds,
            per_kind,
        }
    }

    /// Busy seconds of the busiest node (the measured analogue of the cost
    /// model's `compute_seconds`).
    pub fn max_busy_seconds(&self) -> f64 {
        self.busy_per_node.iter().fold(0.0f64, |m, &b| m.max(b))
    }

    /// Total kernel seconds across all nodes.
    pub fn total_busy_seconds(&self) -> f64 {
        self.busy_per_node.iter().sum()
    }
}

/// Populates a [`Metrics`] registry from a recording: message/byte/task
/// counters, per-kind kernel-latency histograms (`latency.<kind>`), the
/// message-size histogram, the dependency-wait histogram, and peak gauges.
pub fn metrics_from_recording(rec: &Recording) -> Metrics {
    let m = Metrics::new();
    for e in &rec.events {
        match *e {
            Event::Task {
                kind, start, end, ..
            } => {
                m.counter("tasks.executed").inc();
                m.histogram(&format!("latency.{}", kind.name()), &LATENCY_BOUNDS)
                    .observe((end - start).max(0.0));
            }
            Event::Send { bytes, orig, .. } => {
                m.counter("messages.sent").inc();
                m.counter(if orig {
                    "messages.sent.orig"
                } else {
                    "messages.sent.data"
                })
                .inc();
                m.counter("bytes.sent").add(bytes);
                m.histogram("message.bytes", &BYTES_BOUNDS)
                    .observe(bytes as f64);
            }
            Event::Recv { .. } => m.counter("messages.received").inc(),
            Event::DepWait { start, end, .. } => {
                m.histogram("wait.dependency", &LATENCY_BOUNDS)
                    .observe((end - start).max(0.0));
            }
            Event::Fault {
                kind, start, end, ..
            } => {
                use crate::recorder::FaultKind;
                match kind {
                    FaultKind::AckRtt => {
                        m.histogram("ack.rtt", &LATENCY_BOUNDS)
                            .observe((end - start).max(0.0));
                    }
                    FaultKind::Retransmit | FaultKind::Stall => {
                        m.counter(&format!("faults.{}", kind.name())).inc();
                    }
                }
            }
            Event::Gauge { gauge, value, .. } => {
                m.gauge(&format!("gauge.{}", gauge.name())).set(value);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{GaugeKind, Recorder};
    use sbc_taskgraph::TaskKind;

    fn sample_recording() -> Recording {
        let rec = Recorder::new();
        let mut n0 = rec.node(0);
        let mut n1 = rec.node(1);
        n0.task(0, TaskKind::Potrf { k: 0 }, 0.0, 0.5);
        n0.send(1, 512, false);
        n1.recv(0, 512, false);
        n1.task(1, TaskKind::Trsm { k: 0, i: 1 }, 0.6, 1.0);
        n1.dep_wait(0.1, 0.6);
        n1.gauge(GaugeKind::ReadyQueue, 3.0);
        drop(n0);
        drop(n1);
        rec.drain()
    }

    #[test]
    fn profile_aggregates_spans_and_messages() {
        let p = ExecProfile::from_recording(&sample_recording());
        assert_eq!(p.nodes, 2);
        assert_eq!(p.messages, 1);
        assert_eq!(p.bytes, 512);
        assert!((p.wall_seconds - 1.0).abs() < 1e-12);
        assert!((p.busy_per_node[0] - 0.5).abs() < 1e-12);
        assert!((p.busy_per_node[1] - 0.4).abs() < 1e-12);
        assert!((p.dep_wait_seconds - 0.5).abs() < 1e-12);
        assert!((p.max_busy_seconds() - 0.5).abs() < 1e-12);
        assert!((p.total_busy_seconds() - 0.9).abs() < 1e-12);
        let potrf = p.per_kind["potrf"];
        assert_eq!(potrf.count, 1);
        assert!((potrf.mean_seconds() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn metrics_registry_is_populated() {
        let m = metrics_from_recording(&sample_recording());
        let s = m.snapshot();
        assert_eq!(s.counter("tasks.executed"), Some(2));
        assert_eq!(s.counter("messages.sent"), Some(1));
        assert_eq!(s.counter("messages.sent.data"), Some(1));
        assert_eq!(s.counter("messages.received"), Some(1));
        assert_eq!(s.counter("bytes.sent"), Some(512));
        assert_eq!(s.histogram("latency.potrf").unwrap().count, 1);
        assert_eq!(s.histogram("latency.trsm").unwrap().count, 1);
        assert_eq!(s.histogram("wait.dependency").unwrap().count, 1);
        assert_eq!(s.histogram("message.bytes").unwrap().count, 1);
        assert!(s.render().contains("latency.potrf"));
    }

    #[test]
    fn fault_events_feed_counters_and_rtt_histogram() {
        use crate::recorder::FaultKind;
        let rec = Recorder::new();
        let mut h = rec.node(0);
        h.fault(FaultKind::Retransmit, 0.1, 0.1);
        h.fault(FaultKind::Retransmit, 0.2, 0.2);
        h.fault(FaultKind::AckRtt, 0.1, 0.15);
        h.fault(FaultKind::Stall, 0.0, 1.0);
        drop(h);
        let recording = rec.drain();
        let m = metrics_from_recording(&recording);
        let s = m.snapshot();
        assert_eq!(s.counter("faults.retransmit"), Some(2));
        assert_eq!(s.counter("faults.stall"), Some(1));
        assert_eq!(s.histogram("ack.rtt").unwrap().count, 1);
        // faults never leak into the payload aggregates
        let p = ExecProfile::from_recording(&recording);
        assert_eq!(p.messages, 0);
        assert_eq!(p.bytes, 0);
    }

    #[test]
    fn empty_recording_yields_empty_profile() {
        let p = ExecProfile::from_recording(&Recording::default());
        assert_eq!(p.nodes, 0);
        assert_eq!(p.messages, 0);
        assert_eq!(p.wall_seconds, 0.0);
        assert!(p.per_kind.is_empty());
    }
}
