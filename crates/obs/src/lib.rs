//! # sbc-obs — unified observability for the runtime and the simulator
//!
//! The paper's whole argument is about *where time goes*: per-message host
//! overhead, per-node communication volume, idle time on the critical path
//! (Sections V-C/V-E). This crate is the layer that makes those quantities
//! visible on the *real* threaded runtime, not just in the simulator:
//!
//! * [`Recorder`] / [`NodeRecorder`] — a lock-cheap event recorder: each
//!   node thread appends typed events (task spans with
//!   [`sbc_taskgraph::TaskKind`] and coordinates, message sends/receives with bytes, dependency waits,
//!   tile-store and ready-queue gauges) to a private buffer, flushed into
//!   the shared sink once per thread;
//! * [`Metrics`] — a registry of counters, gauges and fixed-bucket
//!   histograms with atomic updates, frozen into a plain
//!   [`MetricsSnapshot`] and rendered as a text report;
//! * [`TraceEvent`] + [`render_gantt`] — the timeline type formerly owned
//!   by `sbc-simgrid`, now shared so the same Gantt renderer draws both
//!   simulated and measured executions ([`task_spans`] bridges a
//!   [`Recording`] to it);
//! * [`chrome_trace`] / [`chrome_trace_from_spans`] — Chrome
//!   `chrome://tracing` / Perfetto JSON export (one pid per node, one tid
//!   per worker), hand-serialized and checked by the in-tree [`json`]
//!   validator;
//! * [`ExecProfile`] — the measured aggregate (wall time, per-node busy
//!   time, messages, bytes, per-kind latency) that `sbc-planner`'s drift
//!   report compares against its predicted cost;
//! * [`expo`] — a Prometheus-style text exposition of a
//!   [`MetricsSnapshot`] plus the matching parser, the scrape wire format
//!   of the resident service's telemetry plane;
//! * [`EventLog`] — a bounded ring of structured job-lifecycle events
//!   ([`Severity`] / [`EventKind`] / [`ObsEvent`]);
//! * [`RateWindow`] — a lock-free sliding-window event rate (jobs/sec that
//!   decays when traffic stops);
//! * [`SpanRing`] — rotating retention for trace spans, so a resident
//!   service holds bounded trace memory.
//!
//! Zero external dependencies (the offline build rule): everything here is
//! `std` plus the in-tree `parking_lot` stand-in.
//!
//! ```
//! use sbc_obs::{chrome_trace, render_gantt, task_spans, ExecProfile, Recorder};
//! use sbc_taskgraph::TaskKind;
//!
//! let rec = Recorder::new();
//! let mut node0 = rec.node(0);
//! node0.task(0, TaskKind::Potrf { k: 0 }, 0.0, 0.4);
//! node0.send(1, 8 * 64, false);
//! drop(node0);
//!
//! let recording = rec.drain();
//! let profile = ExecProfile::from_recording(&recording);
//! assert_eq!(profile.messages, 1);
//! let gantt = render_gantt(&task_spans(&recording), 1, 1, 8);
//! assert!(gantt.contains("node   0"));
//! sbc_obs::json::validate(&chrome_trace(&recording)).unwrap();
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod events;
pub mod expo;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod rate;
pub mod recorder;
pub mod trace;

pub use chrome::{chrome_trace, chrome_trace_from_spans, merge_chrome_traces};
pub use events::{EventKind, EventLog, ObsEvent, Severity};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot};
pub use profile::{metrics_from_recording, ExecProfile, KindStats, BYTES_BOUNDS, LATENCY_BOUNDS};
pub use rate::RateWindow;
pub use recorder::{Event, FaultKind, GaugeKind, NodeRecorder, Recorder, Recording};
pub use trace::{render_gantt, task_spans, SpanRing, TraceEvent};
