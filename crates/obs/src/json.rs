//! A minimal JSON *syntax* validator (RFC 8259), used to check exported
//! Chrome traces without serde: the offline build vendors no JSON crate,
//! and the exporters hand-serialize — so tests and the CI smoke step need
//! an independent checker that the output actually parses.
//!
//! It validates structure only; it builds no DOM and allocates nothing but
//! the error message.

/// Where and why validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.err(format!("expected '{lit}'"))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => {
                    self.pos -= usize::from(self.pos > 0);
                    return self.err("expected ',' or '}'");
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => {
                    self.pos -= usize::from(self.pos > 0);
                    return self.err("expected ',' or ']'");
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => return self.err("invalid \\u escape"),
                            }
                        }
                    }
                    _ => return self.err("invalid escape"),
                },
                Some(c) if c < 0x20 => return self.err("raw control character in string"),
                Some(_) => {}
            }
        }
    }

    fn digits(&mut self) -> Result<(), JsonError> {
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return self.err("expected digit");
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits()?,
            _ => return self.err("expected digit"),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }
}

/// Validates that `input` is exactly one well-formed JSON value (plus
/// optional surrounding whitespace).
pub fn validate(input: &str) -> Result<(), JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after JSON value");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            " -12.5e+3 ",
            r#"{"a": [1, 2.5, -3e2, "x\n\"yé", {"b": null}], "c": false}"#,
            "{\"traceEvents\":[\n{\"ph\":\"X\",\"ts\":1.5}\n]}",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "nul",
            "[1] trailing",
            "\"raw\u{0001}control\"",
            "{\"a\":1,}",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn error_reports_position() {
        let e = validate("[1, x]").unwrap_err();
        assert_eq!(e.at, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
