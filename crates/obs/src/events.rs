//! A bounded ring buffer of structured job-lifecycle events.
//!
//! A resident service emits a small, fixed vocabulary of events — a job was
//! admitted, rejected, started, finished, failed, or a rank stalled — and a
//! week-long service must not grow memory with them. [`EventLog`] keeps the
//! newest `capacity` events, stamps each with a monotone sequence number
//! (so a consumer can tell how many it missed after a wrap) and a timestamp
//! relative to the log's creation. Pushes take one short mutex on a cold
//! path (job lifecycle, not task dispatch), so the log is safe to share
//! with the engine mesh without showing up in its profile.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// How loud an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Normal lifecycle progress.
    Info,
    /// Unusual but recovered (a rejection, a drifted job).
    Warn,
    /// Something was lost (a failed job, a stalled rank).
    Error,
}

impl Severity {
    /// Stable wire code.
    pub fn code(self) -> u8 {
        match self {
            Severity::Info => 0,
            Severity::Warn => 1,
            Severity::Error => 2,
        }
    }

    /// Inverse of [`Severity::code`].
    pub fn from_code(c: u8) -> Option<Severity> {
        match c {
            0 => Some(Severity::Info),
            1 => Some(Severity::Warn),
            2 => Some(Severity::Error),
            _ => None,
        }
    }

    /// Short display tag (`info` / `warn` / `error`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// The job-lifecycle vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Admission control accepted the job.
    Admitted,
    /// Admission control refused the job (the detail carries the reason).
    Rejected,
    /// The first rank engine picked the job up.
    Started,
    /// The job completed; the detail carries its comm accounting.
    Done,
    /// The mesh failed the job.
    Failed,
    /// A rank's liveness watchdog fired while the job was in flight.
    Stalled,
}

impl EventKind {
    /// Stable wire code.
    pub fn code(self) -> u8 {
        match self {
            EventKind::Admitted => 0,
            EventKind::Rejected => 1,
            EventKind::Started => 2,
            EventKind::Done => 3,
            EventKind::Failed => 4,
            EventKind::Stalled => 5,
        }
    }

    /// Inverse of [`EventKind::code`].
    pub fn from_code(c: u8) -> Option<EventKind> {
        match c {
            0 => Some(EventKind::Admitted),
            1 => Some(EventKind::Rejected),
            2 => Some(EventKind::Started),
            3 => Some(EventKind::Done),
            4 => Some(EventKind::Failed),
            5 => Some(EventKind::Stalled),
            _ => None,
        }
    }

    /// Short display tag (`admitted`, `rejected`, …).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Admitted => "admitted",
            EventKind::Rejected => "rejected",
            EventKind::Started => "started",
            EventKind::Done => "done",
            EventKind::Failed => "failed",
            EventKind::Stalled => "stalled",
        }
    }
}

/// One structured lifecycle event.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// Monotone per-log sequence number (never reused, survives wraps).
    pub seq: u64,
    /// Seconds since the log was created.
    pub t: f64,
    /// How loud.
    pub severity: Severity,
    /// What happened.
    pub kind: EventKind,
    /// The job concerned, when one exists (rejections have none).
    pub job: Option<u32>,
    /// Free-form detail (reason, accounting, shape).
    pub detail: String,
}

struct LogState {
    next_seq: u64,
    ring: VecDeque<ObsEvent>,
}

/// A bounded, shareable event ring. Capacity `0` records nothing (but still
/// counts sequence numbers); the newest `capacity` events are retained.
pub struct EventLog {
    capacity: usize,
    started: Instant,
    state: Mutex<LogState>,
}

impl EventLog {
    /// A log retaining the newest `capacity` events.
    pub fn with_capacity(capacity: usize) -> EventLog {
        EventLog {
            capacity,
            started: Instant::now(),
            state: Mutex::new(LogState {
                next_seq: 0,
                ring: VecDeque::with_capacity(capacity.min(1024)),
            }),
        }
    }

    /// Appends one event, evicting the oldest once full. Returns the
    /// event's sequence number.
    pub fn push(
        &self,
        severity: Severity,
        kind: EventKind,
        job: Option<u32>,
        detail: impl Into<String>,
    ) -> u64 {
        let t = self.started.elapsed().as_secs_f64();
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let seq = st.next_seq;
        st.next_seq += 1;
        if self.capacity > 0 {
            if st.ring.len() == self.capacity {
                st.ring.pop_front();
            }
            st.ring.push_back(ObsEvent {
                seq,
                t,
                severity,
                kind,
                job,
                detail: detail.into(),
            });
        }
        seq
    }

    /// The newest `max` retained events, oldest first.
    pub fn tail(&self, max: usize) -> Vec<ObsEvent> {
        let st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let skip = st.ring.len().saturating_sub(max);
        st.ring.iter().skip(skip).cloned().collect()
    }

    /// Every retained event, oldest first (at most `capacity`).
    pub fn snapshot(&self) -> Vec<ObsEvent> {
        self.tail(usize::MAX)
    }

    /// Events pushed over the log's lifetime (including evicted ones).
    pub fn total(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .next_seq
    }

    /// Retained events right now.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .ring
            .len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_n(log: &EventLog, n: u64) {
        for i in 0..n {
            log.push(Severity::Info, EventKind::Admitted, Some(i as u32), "x");
        }
    }

    #[test]
    fn ring_wraps_keeping_the_newest() {
        let log = EventLog::with_capacity(3);
        push_n(&log, 5);
        let tail = log.snapshot();
        assert_eq!(log.total(), 5);
        assert_eq!(log.len(), 3);
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "newest three, oldest first");
        assert_eq!(tail[0].job, Some(2));
    }

    #[test]
    fn tail_orders_oldest_first_and_bounds_by_max() {
        let log = EventLog::with_capacity(8);
        push_n(&log, 6);
        let tail = log.tail(2);
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
        assert!(log.tail(0).is_empty());
        // monotone timestamps
        let all = log.snapshot();
        assert!(all.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn capacity_zero_counts_but_retains_nothing() {
        let log = EventLog::with_capacity(0);
        assert_eq!(
            log.push(Severity::Error, EventKind::Failed, None, "boom"),
            0
        );
        assert_eq!(log.push(Severity::Info, EventKind::Done, Some(1), "ok"), 1);
        assert_eq!(log.total(), 2);
        assert!(log.is_empty());
        assert!(log.snapshot().is_empty());
    }

    #[test]
    fn capacity_one_keeps_exactly_the_last() {
        let log = EventLog::with_capacity(1);
        push_n(&log, 4);
        let tail = log.snapshot();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].seq, 3);
        assert_eq!(log.capacity(), 1);
    }

    #[test]
    fn codes_roundtrip() {
        for sev in [Severity::Info, Severity::Warn, Severity::Error] {
            assert_eq!(Severity::from_code(sev.code()), Some(sev));
            assert!(!sev.name().is_empty());
        }
        assert_eq!(Severity::from_code(9), None);
        for kind in [
            EventKind::Admitted,
            EventKind::Rejected,
            EventKind::Started,
            EventKind::Done,
            EventKind::Failed,
            EventKind::Stalled,
        ] {
            assert_eq!(EventKind::from_code(kind.code()), Some(kind));
            assert!(!kind.name().is_empty());
        }
        assert_eq!(EventKind::from_code(77), None);
    }

    #[test]
    fn concurrent_pushes_never_lose_sequence_numbers() {
        let log = EventLog::with_capacity(64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| push_n(&log, 100));
            }
        });
        assert_eq!(log.total(), 400);
        assert_eq!(log.len(), 64);
        let snap = log.snapshot();
        // strictly increasing sequence numbers survive interleaving
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
