//! The shared timeline type and the text Gantt renderer.
//!
//! [`TraceEvent`] used to live in `sbc-simgrid`; it now lives here so the
//! simulator's virtual timeline and the threaded runtime's *measured*
//! timeline are literally the same type — `render_gantt` and the Chrome
//! exporter do not care whether time was simulated or real.

use crate::recorder::{Event, Recording};
use std::collections::VecDeque;
use std::sync::Mutex;

/// One executed task in a recorded trace (simulated or measured).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Task index in the graph.
    pub task: u32,
    /// Executing node.
    pub node: u32,
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds).
    pub end: f64,
}

/// Extracts the task spans of a [`Recording`] as [`TraceEvent`]s — the
/// bridge that lets [`render_gantt`] draw *measured* executions.
pub fn task_spans(rec: &Recording) -> Vec<TraceEvent> {
    rec.events
        .iter()
        .filter_map(|e| match *e {
            Event::Task {
                task,
                node,
                start,
                end,
                ..
            } => Some(TraceEvent {
                task,
                node,
                start,
                end,
            }),
            _ => None,
        })
        .collect()
}

/// Renders a per-node utilization Gantt strip as text: `width` buckets per
/// node, each showing the fraction of busy worker-core time in that time
/// slice (' ' empty, '.' <25%, '-' <50%, '=' <75%, '#' full).
///
/// Degenerate inputs render degenerately instead of panicking: an empty
/// event list, `width == 0`, `nodes == 0`, or a zero makespan all yield an
/// empty string; an event whose `node` is `>= nodes` is clamped onto the
/// last row; instantaneous events (`end <= start`) contribute no busy time.
pub fn render_gantt(events: &[TraceEvent], nodes: usize, cores: usize, width: usize) -> String {
    let makespan = events.iter().fold(0.0f64, |m, e| m.max(e.end));
    if makespan <= 0.0 || width == 0 || nodes == 0 || cores == 0 {
        return String::new();
    }
    let dt = makespan / width as f64;
    let mut busy = vec![vec![0.0f64; width]; nodes];
    for e in events {
        if e.end <= e.start {
            continue;
        }
        let b0 = ((e.start / dt) as usize).min(width - 1);
        let b1 = ((e.end / dt) as usize).min(width - 1);
        let row = &mut busy[(e.node as usize).min(nodes - 1)];
        for (bucket, cell) in row.iter_mut().enumerate().take(b1 + 1).skip(b0) {
            let lo = (bucket as f64 * dt).max(e.start);
            let hi = ((bucket + 1) as f64 * dt).min(e.end);
            if hi > lo {
                *cell += hi - lo;
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("gantt ({makespan:.3}s across {width} buckets):\n"));
    for (n, row) in busy.iter().enumerate() {
        out.push_str(&format!("node {n:>3} |"));
        for &b in row {
            let frac = b / (dt * cores as f64);
            out.push(match frac {
                f if f <= 0.01 => ' ',
                f if f < 0.25 => '.',
                f if f < 0.5 => '-',
                f if f < 0.75 => '=',
                _ => '#',
            });
        }
        out.push_str("|\n");
    }
    out
}

/// Bounded, rotating retention for trace spans.
///
/// A resident service accumulates one span per task per job forever; this
/// ring keeps only the newest `capacity` spans (dropping the oldest) so a
/// week-long service holds a fixed amount of trace memory. [`SpanRing::total`]
/// reports how many spans were ever pushed, so an exporter can say how much
/// history rotated away.
pub struct SpanRing {
    capacity: usize,
    state: Mutex<SpanState>,
}

struct SpanState {
    total: u64,
    ring: VecDeque<TraceEvent>,
}

impl SpanRing {
    /// A ring retaining the newest `capacity` spans. Capacity `0` retains
    /// nothing (but still counts).
    pub fn with_capacity(capacity: usize) -> SpanRing {
        SpanRing {
            capacity,
            state: Mutex::new(SpanState {
                total: 0,
                ring: VecDeque::with_capacity(capacity.min(4096)),
            }),
        }
    }

    /// Appends spans, evicting the oldest past capacity.
    pub fn extend(&self, spans: impl IntoIterator<Item = TraceEvent>) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for span in spans {
            st.total += 1;
            if self.capacity == 0 {
                continue;
            }
            if st.ring.len() == self.capacity {
                st.ring.pop_front();
            }
            st.ring.push_back(span);
        }
    }

    /// Appends one span.
    pub fn push(&self, span: TraceEvent) {
        self.extend([span]);
    }

    /// The retained spans, oldest first (at most `capacity` of them).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.ring.iter().copied().collect()
    }

    /// Spans ever pushed (including rotated-away ones).
    pub fn total(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .total
    }

    /// Retained spans right now.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .ring
            .len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(task: u32, node: u32, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            task,
            node,
            start,
            end,
        }
    }

    #[test]
    fn gantt_renders_buckets() {
        let events = vec![ev(0, 0, 0.0, 1.0), ev(1, 1, 0.5, 1.0)];
        let g = render_gantt(&events, 2, 1, 4);
        assert!(g.contains("node   0 |####|"), "{g}");
        assert!(g.contains("node   1 |  ##|"), "{g}");
    }

    #[test]
    fn gantt_empty_events() {
        assert_eq!(render_gantt(&[], 2, 1, 4), "");
    }

    #[test]
    fn gantt_zero_width_and_zero_nodes() {
        let events = vec![ev(0, 0, 0.0, 1.0)];
        assert_eq!(render_gantt(&events, 2, 1, 0), "");
        assert_eq!(render_gantt(&events, 0, 1, 4), "");
        assert_eq!(render_gantt(&events, 2, 0, 4), "");
    }

    #[test]
    fn gantt_instantaneous_event() {
        // end == start: no busy time, but the makespan still frames the strip
        let g = render_gantt(&[ev(0, 0, 1.0, 1.0)], 1, 1, 4);
        assert!(g.contains("node   0 |    |"), "{g}");
        // at t = 0 the makespan itself is 0: nothing to draw
        assert_eq!(render_gantt(&[ev(0, 0, 0.0, 0.0)], 1, 1, 4), "");
    }

    #[test]
    fn gantt_out_of_range_node_is_clamped_not_panicking() {
        // node 7 with nodes = 2 lands on the last row
        let g = render_gantt(&[ev(0, 0, 0.0, 1.0), ev(1, 7, 0.0, 1.0)], 2, 1, 4);
        assert!(g.contains("node   0 |####|"), "{g}");
        assert!(g.contains("node   1 |####|"), "{g}");
    }

    #[test]
    fn span_ring_rotates_keeping_the_newest() {
        let ring = SpanRing::with_capacity(3);
        ring.extend((0..5).map(|i| ev(i, 0, i as f64, i as f64 + 1.0)));
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.len(), 3);
        let tasks: Vec<u32> = ring.snapshot().iter().map(|e| e.task).collect();
        assert_eq!(tasks, vec![2, 3, 4], "newest three, oldest first");
        ring.push(ev(9, 0, 9.0, 10.0));
        assert_eq!(ring.snapshot().last().unwrap().task, 9);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn span_ring_capacity_zero_counts_but_keeps_nothing() {
        let ring = SpanRing::with_capacity(0);
        ring.push(ev(0, 0, 0.0, 1.0));
        assert_eq!(ring.total(), 1);
        assert!(ring.is_empty());
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn task_spans_filters_recording() {
        use crate::recorder::Recorder;
        use sbc_taskgraph::TaskKind;
        let rec = Recorder::new();
        let mut h = rec.node(2);
        h.task(5, TaskKind::Potrf { k: 0 }, 0.1, 0.2);
        h.send(0, 64, false);
        drop(h);
        let spans = task_spans(&rec.drain());
        assert_eq!(spans, vec![ev(5, 2, 0.1, 0.2)]);
    }
}
