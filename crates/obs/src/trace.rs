//! The shared timeline type and the text Gantt renderer.
//!
//! [`TraceEvent`] used to live in `sbc-simgrid`; it now lives here so the
//! simulator's virtual timeline and the threaded runtime's *measured*
//! timeline are literally the same type — `render_gantt` and the Chrome
//! exporter do not care whether time was simulated or real.

use crate::recorder::{Event, Recording};

/// One executed task in a recorded trace (simulated or measured).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Task index in the graph.
    pub task: u32,
    /// Executing node.
    pub node: u32,
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds).
    pub end: f64,
}

/// Extracts the task spans of a [`Recording`] as [`TraceEvent`]s — the
/// bridge that lets [`render_gantt`] draw *measured* executions.
pub fn task_spans(rec: &Recording) -> Vec<TraceEvent> {
    rec.events
        .iter()
        .filter_map(|e| match *e {
            Event::Task {
                task,
                node,
                start,
                end,
                ..
            } => Some(TraceEvent {
                task,
                node,
                start,
                end,
            }),
            _ => None,
        })
        .collect()
}

/// Renders a per-node utilization Gantt strip as text: `width` buckets per
/// node, each showing the fraction of busy worker-core time in that time
/// slice (' ' empty, '.' <25%, '-' <50%, '=' <75%, '#' full).
///
/// Degenerate inputs render degenerately instead of panicking: an empty
/// event list, `width == 0`, `nodes == 0`, or a zero makespan all yield an
/// empty string; an event whose `node` is `>= nodes` is clamped onto the
/// last row; instantaneous events (`end <= start`) contribute no busy time.
pub fn render_gantt(events: &[TraceEvent], nodes: usize, cores: usize, width: usize) -> String {
    let makespan = events.iter().fold(0.0f64, |m, e| m.max(e.end));
    if makespan <= 0.0 || width == 0 || nodes == 0 || cores == 0 {
        return String::new();
    }
    let dt = makespan / width as f64;
    let mut busy = vec![vec![0.0f64; width]; nodes];
    for e in events {
        if e.end <= e.start {
            continue;
        }
        let b0 = ((e.start / dt) as usize).min(width - 1);
        let b1 = ((e.end / dt) as usize).min(width - 1);
        let row = &mut busy[(e.node as usize).min(nodes - 1)];
        for (bucket, cell) in row.iter_mut().enumerate().take(b1 + 1).skip(b0) {
            let lo = (bucket as f64 * dt).max(e.start);
            let hi = ((bucket + 1) as f64 * dt).min(e.end);
            if hi > lo {
                *cell += hi - lo;
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("gantt ({makespan:.3}s across {width} buckets):\n"));
    for (n, row) in busy.iter().enumerate() {
        out.push_str(&format!("node {n:>3} |"));
        for &b in row {
            let frac = b / (dt * cores as f64);
            out.push(match frac {
                f if f <= 0.01 => ' ',
                f if f < 0.25 => '.',
                f if f < 0.5 => '-',
                f if f < 0.75 => '=',
                _ => '#',
            });
        }
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(task: u32, node: u32, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            task,
            node,
            start,
            end,
        }
    }

    #[test]
    fn gantt_renders_buckets() {
        let events = vec![ev(0, 0, 0.0, 1.0), ev(1, 1, 0.5, 1.0)];
        let g = render_gantt(&events, 2, 1, 4);
        assert!(g.contains("node   0 |####|"), "{g}");
        assert!(g.contains("node   1 |  ##|"), "{g}");
    }

    #[test]
    fn gantt_empty_events() {
        assert_eq!(render_gantt(&[], 2, 1, 4), "");
    }

    #[test]
    fn gantt_zero_width_and_zero_nodes() {
        let events = vec![ev(0, 0, 0.0, 1.0)];
        assert_eq!(render_gantt(&events, 2, 1, 0), "");
        assert_eq!(render_gantt(&events, 0, 1, 4), "");
        assert_eq!(render_gantt(&events, 2, 0, 4), "");
    }

    #[test]
    fn gantt_instantaneous_event() {
        // end == start: no busy time, but the makespan still frames the strip
        let g = render_gantt(&[ev(0, 0, 1.0, 1.0)], 1, 1, 4);
        assert!(g.contains("node   0 |    |"), "{g}");
        // at t = 0 the makespan itself is 0: nothing to draw
        assert_eq!(render_gantt(&[ev(0, 0, 0.0, 0.0)], 1, 1, 4), "");
    }

    #[test]
    fn gantt_out_of_range_node_is_clamped_not_panicking() {
        // node 7 with nodes = 2 lands on the last row
        let g = render_gantt(&[ev(0, 0, 0.0, 1.0), ev(1, 7, 0.0, 1.0)], 2, 1, 4);
        assert!(g.contains("node   0 |####|"), "{g}");
        assert!(g.contains("node   1 |####|"), "{g}");
    }

    #[test]
    fn task_spans_filters_recording() {
        use crate::recorder::Recorder;
        use sbc_taskgraph::TaskKind;
        let rec = Recorder::new();
        let mut h = rec.node(2);
        h.task(5, TaskKind::Potrf { k: 0 }, 0.1, 0.2);
        h.send(0, 64, false);
        drop(h);
        let spans = task_spans(&rec.drain());
        assert_eq!(spans, vec![ev(5, 2, 0.1, 0.2)]);
    }
}
