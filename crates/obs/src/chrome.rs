//! Chrome-trace (`chrome://tracing` / Perfetto) JSON export.
//!
//! Emits the JSON Object Format: `{"traceEvents": [...]}` with one *pid*
//! per node and one *tid* per worker, so Perfetto renders each node as a
//! process lane. Task spans become complete events (`"ph": "X"`), message
//! sends/receives become thread-scoped instant events (`"ph": "i"`), and
//! gauges become counter tracks (`"ph": "C"`). Timestamps are microseconds,
//! as the format requires. Everything is hand-serialized — the offline
//! build has no serde — and [`crate::json::validate`] checks the output in
//! tests and in the CI smoke job.

use crate::recorder::{Event, Recording};
use crate::trace::TraceEvent;

fn push_escaped(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Microseconds with sub-microsecond fraction preserved.
fn us(seconds: f64) -> f64 {
    seconds * 1e6
}

struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Self {
        Writer {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
        }
    }

    /// Appends one event object given its pre-rendered interior fields.
    fn event(&mut self, fields: std::fmt::Arguments<'_>) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push('{');
        self.out.push_str(&fields.to_string());
        self.out.push('}');
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        self.out
    }
}

fn process_names(w: &mut Writer, nodes: usize) {
    for n in 0..nodes {
        w.event(format_args!(
            "\"ph\":\"M\",\"pid\":{n},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"node {n}\"}}"
        ));
    }
}

/// Exports a full [`Recording`] (the threaded runtime's measured events).
pub fn chrome_trace(rec: &Recording) -> String {
    let mut w = Writer::new();
    process_names(&mut w, rec.nodes());
    // one named thread track per (node, worker) pair that executed tasks
    let mut tracks: Vec<(u32, u32)> = rec
        .events
        .iter()
        .filter_map(|e| match *e {
            Event::Task { node, worker, .. } => Some((node, worker)),
            _ => None,
        })
        .collect();
    tracks.sort_unstable();
    tracks.dedup();
    for (node, worker) in tracks {
        w.event(format_args!(
            "\"ph\":\"M\",\"pid\":{node},\"tid\":{worker},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"worker {worker}\"}}"
        ));
    }
    for e in &rec.events {
        match *e {
            Event::Task {
                task,
                kind,
                node,
                worker,
                start,
                end,
            } => {
                let mut name = String::new();
                push_escaped(&mut name, kind.name());
                w.event(format_args!(
                    "\"ph\":\"X\",\"pid\":{node},\"tid\":{worker},\"ts\":{:.3},\
                     \"dur\":{:.3},\"name\":\"{name}\",\"cat\":\"task\",\
                     \"args\":{{\"task\":{task}}}",
                    us(start),
                    us(end - start),
                ));
            }
            Event::Send {
                node,
                dest,
                bytes,
                orig,
                at,
            } => {
                w.event(format_args!(
                    "\"ph\":\"i\",\"pid\":{node},\"tid\":0,\"ts\":{:.3},\"s\":\"t\",\
                     \"name\":\"send to {dest}\",\"cat\":\"comm\",\
                     \"args\":{{\"bytes\":{bytes},\"orig\":{orig}}}",
                    us(at),
                ));
            }
            Event::Recv {
                node,
                bytes,
                orig,
                at,
            } => {
                w.event(format_args!(
                    "\"ph\":\"i\",\"pid\":{node},\"tid\":0,\"ts\":{:.3},\"s\":\"t\",\
                     \"name\":\"recv\",\"cat\":\"comm\",\
                     \"args\":{{\"bytes\":{bytes},\"orig\":{orig}}}",
                    us(at),
                ));
            }
            Event::DepWait { node, start, end } => {
                w.event(format_args!(
                    "\"ph\":\"X\",\"pid\":{node},\"tid\":0,\"ts\":{:.3},\"dur\":{:.3},\
                     \"name\":\"wait\",\"cat\":\"idle\",\"args\":{{}}",
                    us(start),
                    us(end - start),
                ));
            }
            Event::Gauge {
                node,
                gauge,
                value,
                at,
            } => {
                w.event(format_args!(
                    "\"ph\":\"C\",\"pid\":{node},\"tid\":0,\"ts\":{:.3},\
                     \"name\":\"{}\",\"args\":{{\"value\":{value}}}",
                    us(at),
                    gauge.name(),
                ));
            }
        }
    }
    w.finish()
}

/// Exports bare task spans (e.g. the simulator's trace) with `labeler`
/// naming each span — typically the task's kernel name.
pub fn chrome_trace_from_spans(
    spans: &[TraceEvent],
    labeler: impl Fn(&TraceEvent) -> String,
) -> String {
    let mut w = Writer::new();
    let nodes = spans.iter().map(|e| e.node as usize + 1).max().unwrap_or(0);
    process_names(&mut w, nodes);
    for e in spans {
        let mut name = String::new();
        push_escaped(&mut name, &labeler(e));
        w.event(format_args!(
            "\"ph\":\"X\",\"pid\":{},\"tid\":0,\"ts\":{:.3},\"dur\":{:.3},\
             \"name\":\"{name}\",\"cat\":\"task\",\"args\":{{\"task\":{}}}",
            e.node,
            us(e.start),
            us(e.end - e.start),
            e.task,
        ));
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::recorder::{GaugeKind, Recorder};
    use sbc_taskgraph::TaskKind;

    #[test]
    fn exported_trace_is_valid_json_with_all_event_kinds() {
        let rec = Recorder::new();
        let mut h = rec.node(0);
        h.task(0, TaskKind::Gemm { i: 0, j: 2, k: 1 }, 0.0, 0.25);
        h.send(1, 2048, true);
        h.recv(2048, false);
        h.dep_wait(0.25, 0.5);
        h.gauge(GaugeKind::TileStore, 12.0);
        drop(h);
        let json = chrome_trace(&rec.drain());
        validate(&json).unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"gemm\""));
        assert!(json.contains("\"name\":\"send to 1\""));
        assert!(json.contains("tile_store_tiles"));
    }

    #[test]
    fn worker_tracks_are_named_and_separated() {
        let rec = Recorder::new();
        let mut w0 = rec.worker(1, 0);
        let mut w1 = rec.worker(1, 1);
        w0.task(0, TaskKind::Potrf { k: 0 }, 0.0, 0.1);
        w1.task(1, TaskKind::Trsm { k: 0, i: 1 }, 0.05, 0.2);
        drop(w0);
        drop(w1);
        let json = chrome_trace(&rec.drain());
        validate(&json).unwrap();
        assert!(json.contains("\"name\":\"worker 0\""));
        assert!(json.contains("\"name\":\"worker 1\""));
        assert!(json.contains("\"pid\":1,\"tid\":1,"));
    }

    #[test]
    fn empty_recording_exports_valid_empty_trace() {
        let json = chrome_trace(&Recording::default());
        validate(&json).unwrap();
        assert!(json.contains("\"traceEvents\":[\n\n]"));
    }

    #[test]
    fn span_export_names_and_validates() {
        let spans = vec![TraceEvent {
            task: 7,
            node: 3,
            start: 1.0,
            end: 2.0,
        }];
        let json = chrome_trace_from_spans(&spans, |e| format!("task {}", e.task));
        validate(&json).unwrap();
        assert!(json.contains("\"name\":\"task 7\""));
        assert!(json.contains("\"pid\":3"));
        // four process_name metadata events (nodes 0..=3) plus the span
        assert!(json.contains("\"name\":\"node 3\""));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        let spans = vec![TraceEvent {
            task: 0,
            node: 0,
            start: 0.0,
            end: 1.0,
        }];
        let json = chrome_trace_from_spans(&spans, |_| "a\"b\\c\nd".to_string());
        validate(&json).unwrap();
        assert!(json.contains("a\\\"b\\\\c\\u000ad"));
    }
}
