//! Chrome-trace (`chrome://tracing` / Perfetto) JSON export.
//!
//! Emits the JSON Object Format: `{"traceEvents": [...]}` with one *pid*
//! per node and one *tid* per worker, so Perfetto renders each node as a
//! process lane. Task spans become complete events (`"ph": "X"`), message
//! sends/receives become thread-scoped instant events (`"ph": "i"`) *plus*
//! paired flow events (`"ph": "s"` at the send, `"ph": "f"` at the matching
//! receive) so tile movement renders as arrows between node lanes, and
//! gauges become counter tracks (`"ph": "C"`). Timestamps are microseconds,
//! as the format requires. Everything is hand-serialized — the offline
//! build has no serde — and [`crate::json::validate`] checks the output in
//! tests and in the CI smoke job.
//!
//! Flow pairing relies on the transports' per-pair FIFO ordering: the k-th
//! send from node *s* to node *d* is the k-th receive on *d* from *s*, so
//! both ends derive the same flow id from `(s, d, k)` without any shared
//! state.

use crate::recorder::{Event, Recording};
use crate::trace::TraceEvent;
use std::collections::HashMap;

fn push_escaped(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Microseconds with sub-microsecond fraction preserved.
fn us(seconds: f64) -> f64 {
    seconds * 1e6
}

struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Self {
        Writer {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
        }
    }

    /// Appends one event object given its pre-rendered interior fields.
    fn event(&mut self, fields: std::fmt::Arguments<'_>) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push('{');
        self.out.push_str(&fields.to_string());
        self.out.push('}');
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        self.out
    }
}

/// The flow id linking the `k`-th message from `src` to `dest`: both the
/// send and the receive side compute it independently.
fn flow_id(src: u32, dest: u32, k: u64) -> u64 {
    ((src as u64) << 48) | ((dest as u64) << 32) | (k & 0xFFFF_FFFF)
}

fn process_names(w: &mut Writer, nodes: usize) {
    for n in 0..nodes {
        w.event(format_args!(
            "\"ph\":\"M\",\"pid\":{n},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"node {n}\"}}"
        ));
    }
}

/// Exports a full [`Recording`] (the threaded runtime's measured events).
pub fn chrome_trace(rec: &Recording) -> String {
    let mut w = Writer::new();
    process_names(&mut w, rec.nodes());
    // one named thread track per (node, worker) pair that executed tasks
    let mut tracks: Vec<(u32, u32)> = rec
        .events
        .iter()
        .filter_map(|e| match *e {
            Event::Task { node, worker, .. } => Some((node, worker)),
            _ => None,
        })
        .collect();
    tracks.sort_unstable();
    tracks.dedup();
    for (node, worker) in tracks {
        w.event(format_args!(
            "\"ph\":\"M\",\"pid\":{node},\"tid\":{worker},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"worker {worker}\"}}"
        ));
    }
    let mut send_seq: HashMap<(u32, u32), u64> = HashMap::new();
    let mut recv_seq: HashMap<(u32, u32), u64> = HashMap::new();
    for e in &rec.events {
        match *e {
            Event::Task {
                task,
                kind,
                node,
                worker,
                start,
                end,
            } => {
                let mut name = String::new();
                push_escaped(&mut name, kind.name());
                w.event(format_args!(
                    "\"ph\":\"X\",\"pid\":{node},\"tid\":{worker},\"ts\":{:.3},\
                     \"dur\":{:.3},\"name\":\"{name}\",\"cat\":\"task\",\
                     \"args\":{{\"task\":{task}}}",
                    us(start),
                    us(end - start),
                ));
            }
            Event::Send {
                node,
                dest,
                bytes,
                orig,
                at,
            } => {
                w.event(format_args!(
                    "\"ph\":\"i\",\"pid\":{node},\"tid\":0,\"ts\":{:.3},\"s\":\"t\",\
                     \"name\":\"send to {dest}\",\"cat\":\"comm\",\
                     \"args\":{{\"bytes\":{bytes},\"orig\":{orig}}}",
                    us(at),
                ));
                let k = send_seq.entry((node, dest)).or_insert(0);
                w.event(format_args!(
                    "\"ph\":\"s\",\"pid\":{node},\"tid\":0,\"ts\":{:.3},\
                     \"name\":\"tile\",\"cat\":\"flow\",\"id\":{}",
                    us(at),
                    flow_id(node, dest, *k),
                ));
                *k += 1;
            }
            Event::Recv {
                node,
                src,
                bytes,
                orig,
                at,
            } => {
                w.event(format_args!(
                    "\"ph\":\"i\",\"pid\":{node},\"tid\":0,\"ts\":{:.3},\"s\":\"t\",\
                     \"name\":\"recv from {src}\",\"cat\":\"comm\",\
                     \"args\":{{\"bytes\":{bytes},\"orig\":{orig}}}",
                    us(at),
                ));
                let k = recv_seq.entry((src, node)).or_insert(0);
                w.event(format_args!(
                    "\"ph\":\"f\",\"bp\":\"e\",\"pid\":{node},\"tid\":0,\"ts\":{:.3},\
                     \"name\":\"tile\",\"cat\":\"flow\",\"id\":{}",
                    us(at),
                    flow_id(src, node, *k),
                ));
                *k += 1;
            }
            Event::DepWait { node, start, end } => {
                w.event(format_args!(
                    "\"ph\":\"X\",\"pid\":{node},\"tid\":0,\"ts\":{:.3},\"dur\":{:.3},\
                     \"name\":\"wait\",\"cat\":\"idle\",\"args\":{{}}",
                    us(start),
                    us(end - start),
                ));
            }
            Event::Fault {
                node,
                kind,
                start,
                end,
            } => {
                w.event(format_args!(
                    "\"ph\":\"X\",\"pid\":{node},\"tid\":0,\"ts\":{:.3},\"dur\":{:.3},\
                     \"name\":\"{}\",\"cat\":\"fault\",\"args\":{{}}",
                    us(start),
                    us(end - start),
                    kind.name(),
                ));
            }
            Event::Gauge {
                node,
                gauge,
                value,
                at,
            } => {
                w.event(format_args!(
                    "\"ph\":\"C\",\"pid\":{node},\"tid\":0,\"ts\":{:.3},\
                     \"name\":\"{}\",\"args\":{{\"value\":{value}}}",
                    us(at),
                    gauge.name(),
                ));
            }
        }
    }
    w.finish()
}

/// Merges several Chrome-trace documents (each produced by
/// [`chrome_trace`]) into one, concatenating their `traceEvents` arrays.
///
/// Every per-rank trace of a multi-process run already tags its events
/// with the rank's real node id as the *pid*, and both ends of a flow
/// arrow derive the same id from `(src, dest, k)`, so a plain
/// concatenation yields a coherent cross-process timeline: node lanes
/// stay distinct and send→recv arrows connect across the original
/// process boundaries.
pub fn merge_chrome_traces<S: AsRef<str>>(traces: &[S]) -> String {
    let mut bodies = Vec::with_capacity(traces.len());
    for t in traces {
        let t = t.as_ref();
        let start = t
            .find("\"traceEvents\":[")
            .map(|i| i + "\"traceEvents\":[".len())
            .unwrap_or(t.len());
        let end = t.rfind(']').unwrap_or(start);
        let body = t[start..end.max(start)].trim();
        if !body.is_empty() {
            bodies.push(body.to_string());
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&bodies.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Exports bare task spans (e.g. the simulator's trace) with `labeler`
/// naming each span — typically the task's kernel name.
pub fn chrome_trace_from_spans(
    spans: &[TraceEvent],
    labeler: impl Fn(&TraceEvent) -> String,
) -> String {
    let mut w = Writer::new();
    let nodes = spans.iter().map(|e| e.node as usize + 1).max().unwrap_or(0);
    process_names(&mut w, nodes);
    for e in spans {
        let mut name = String::new();
        push_escaped(&mut name, &labeler(e));
        w.event(format_args!(
            "\"ph\":\"X\",\"pid\":{},\"tid\":0,\"ts\":{:.3},\"dur\":{:.3},\
             \"name\":\"{name}\",\"cat\":\"task\",\"args\":{{\"task\":{}}}",
            e.node,
            us(e.start),
            us(e.end - e.start),
            e.task,
        ));
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::recorder::{GaugeKind, Recorder};
    use sbc_taskgraph::TaskKind;

    #[test]
    fn exported_trace_is_valid_json_with_all_event_kinds() {
        let rec = Recorder::new();
        let mut h = rec.node(0);
        h.task(0, TaskKind::Gemm { i: 0, j: 2, k: 1 }, 0.0, 0.25);
        h.send(1, 2048, true);
        h.recv(2, 2048, false);
        h.dep_wait(0.25, 0.5);
        h.gauge(GaugeKind::TileStore, 12.0);
        h.fault(crate::recorder::FaultKind::Retransmit, 0.3, 0.3);
        drop(h);
        let json = chrome_trace(&rec.drain());
        validate(&json).unwrap();
        assert!(json.contains("\"name\":\"retransmit\",\"cat\":\"fault\""));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"gemm\""));
        assert!(json.contains("\"name\":\"send to 1\""));
        assert!(json.contains("\"name\":\"recv from 2\""));
        assert!(json.contains("tile_store_tiles"));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
    }

    #[test]
    fn flow_events_pair_sends_with_receives() {
        let rec = Recorder::new();
        let mut a = rec.node(0);
        let mut b = rec.node(1);
        // two messages 0 -> 1 and one 1 -> 0
        a.send(1, 64, false);
        a.send(1, 64, false);
        b.send(0, 64, true);
        b.recv(0, 64, false);
        b.recv(0, 64, false);
        a.recv(1, 64, true);
        drop(a);
        drop(b);
        let json = chrome_trace(&rec.drain());
        validate(&json).unwrap();
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 3);
        // both directions and both sequence numbers show up, each id twice
        for id in [flow_id(0, 1, 0), flow_id(0, 1, 1), flow_id(1, 0, 0)] {
            let needle = format!("\"id\":{id}");
            assert_eq!(json.matches(&needle).count(), 2, "{needle}");
        }
    }

    #[test]
    fn merged_traces_validate_and_keep_all_events() {
        let rec_a = Recorder::new();
        let mut h = rec_a.node(0);
        h.task(0, TaskKind::Potrf { k: 0 }, 0.0, 0.1);
        h.send(1, 128, false);
        drop(h);
        let rec_b = Recorder::new();
        let mut h = rec_b.node(1);
        h.recv(0, 128, false);
        drop(h);
        let a = chrome_trace(&rec_a.drain());
        let b = chrome_trace(&rec_b.drain());
        let merged = merge_chrome_traces(&[a, b]);
        validate(&merged).unwrap();
        assert!(merged.contains("\"name\":\"potrf\""));
        assert!(merged.contains("\"name\":\"send to 1\""));
        assert!(merged.contains("\"name\":\"recv from 0\""));
        // the flow arrow survives the merge: same id on both sides
        let needle = format!("\"id\":{}", flow_id(0, 1, 0));
        assert_eq!(merged.matches(&needle).count(), 2);
        // merging an empty trace is harmless
        let empty = chrome_trace(&Recording::default());
        validate(&merge_chrome_traces(&[merged, empty])).unwrap();
    }

    #[test]
    fn worker_tracks_are_named_and_separated() {
        let rec = Recorder::new();
        let mut w0 = rec.worker(1, 0);
        let mut w1 = rec.worker(1, 1);
        w0.task(0, TaskKind::Potrf { k: 0 }, 0.0, 0.1);
        w1.task(1, TaskKind::Trsm { k: 0, i: 1 }, 0.05, 0.2);
        drop(w0);
        drop(w1);
        let json = chrome_trace(&rec.drain());
        validate(&json).unwrap();
        assert!(json.contains("\"name\":\"worker 0\""));
        assert!(json.contains("\"name\":\"worker 1\""));
        assert!(json.contains("\"pid\":1,\"tid\":1,"));
    }

    #[test]
    fn empty_recording_exports_valid_empty_trace() {
        let json = chrome_trace(&Recording::default());
        validate(&json).unwrap();
        assert!(json.contains("\"traceEvents\":[\n\n]"));
    }

    #[test]
    fn span_export_names_and_validates() {
        let spans = vec![TraceEvent {
            task: 7,
            node: 3,
            start: 1.0,
            end: 2.0,
        }];
        let json = chrome_trace_from_spans(&spans, |e| format!("task {}", e.task));
        validate(&json).unwrap();
        assert!(json.contains("\"name\":\"task 7\""));
        assert!(json.contains("\"pid\":3"));
        // four process_name metadata events (nodes 0..=3) plus the span
        assert!(json.contains("\"name\":\"node 3\""));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        let spans = vec![TraceEvent {
            task: 0,
            node: 0,
            start: 0.0,
            end: 1.0,
        }];
        let json = chrome_trace_from_spans(&spans, |_| "a\"b\\c\nd".to_string());
        validate(&json).unwrap();
        assert!(json.contains("a\\\"b\\\\c\\u000ad"));
    }
}
