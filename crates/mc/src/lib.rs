//! Exhaustive model checking for the `sbc-net` ARQ session protocol.
//!
//! The chaos suite (`tests/chaos.rs`) samples the protocol's behavior under
//! randomized faults; this crate *enumerates* it. A [`Scenario`] fixes a
//! small mesh, a script of payload sends, and a loss model, and
//! [`check`] then explores every reachable interleaving of the
//! network-level events — deliver a frame, drop it, duplicate it, or fire
//! the earliest retransmission timer — running the **real**
//! [`sbc_net::Session`] state machine on a [`sbc_net::VirtualClock`] so
//! each execution is a pure function of its action sequence.
//!
//! After every action the checker re-evaluates the protocol's contract as
//! explicit invariants:
//!
//! - **exactly-once, in-order delivery** — each scripted payload surfaces
//!   at its destination exactly once, in per-channel send order, and
//!   nothing ever surfaces that was not scripted;
//! - **exact accounting** — `sent_messages` counts each logical payload
//!   once however many wire copies existed, retransmissions land in
//!   `retrans_messages`, acks in `control_messages`, and the wire-frame
//!   ledger balances: per rank, seq-frame send attempts equal
//!   `sent_messages + retrans_messages`;
//! - **bounded liveness** — a state with no traffic in flight and no timer
//!   armed must have delivered everything (else [`Violation::LostPayload`]),
//!   and an action path that revisits one of its own earlier states has
//!   made no progress and never will ([`Violation::Livelock`] — the class
//!   of bug the strictly periodic drop filter caused before the fair-loss
//!   fix).
//!
//! States are deduplicated by hashing a canonical, time-relative encoding
//! of (session probes, in-flight frames, fault-gate state), so the search
//! is breadth-first over *distinct protocol states*, not action strings —
//! and breadth-first order makes the first counterexample a minimal one.
//! A counterexample is an ordinary `Vec<Action>`; [`replay`] runs it back
//! through a fresh world, which is how found bugs become pinned
//! regression tests.

#![warn(missing_docs)]

mod explore;
mod scenario;
mod world;

pub use explore::{check, replay, CheckReport, Counterexample, ReplayOutcome};
pub use scenario::{LossModel, Scenario};
pub use world::{Action, Violation};
