//! What to check: a bounded protocol workload plus a loss model.

use std::time::Duration;

use sbc_dist::comm::potrf_messages;
use sbc_dist::Distribution;
use sbc_net::{FaultConfig, NodeId, SessionConfig};

/// How the modeled network may misbehave.
///
/// `Clean` and `Nondet` put the *checker* in charge of faults: dropping and
/// duplicating become explicit, budgeted actions so every fault placement
/// is explored. `Periodic` and `Seeded` instead replay the two
/// deterministic gates the chaos transport has shipped — the strictly
/// periodic pre-fix filter and the splitmix fair-loss filter — applied at
/// network entry, so the checker can prove one livelocks and the other
/// does not.
#[derive(Debug, Clone, PartialEq)]
pub enum LossModel {
    /// A faithful FIFO network: the only nondeterminism is interleaving.
    Clean,
    /// Adversarial faults under explicit budgets. Each in-flight payload
    /// frame may be dropped (at most `max_drops` times per execution) or
    /// duplicated (at most `max_dups`); with `reorder`, frames on a
    /// channel may also be delivered in any order rather than FIFO.
    Nondet {
        /// Upper bound on checker-injected drops per execution.
        max_drops: u32,
        /// Upper bound on checker-injected duplicates per execution.
        max_dups: u32,
        /// Allow out-of-order delivery within a channel.
        reorder: bool,
    },
    /// The pre-fix strictly periodic drop gate: payload frame number `k`
    /// (a per-sender counter offset by `phase`) is censored whenever
    /// `k % drop_every == 0`. This is the filter that phase-locked with
    /// fixed retransmission batches and censored the same payload forever.
    Periodic {
        /// Censor every `drop_every`-th payload frame.
        drop_every: u64,
        /// Counter offset, to aim the gate at a particular frame.
        phase: u64,
    },
    /// The shipped fair-loss gate: [`FaultConfig::decide`] on the same
    /// per-sender counter, i.e. exactly what `Faulty` injects in the chaos
    /// suite (the `delay` field is ignored — the checker has no wall
    /// clock).
    Seeded(FaultConfig),
}

impl LossModel {
    /// Whether delivery order within a channel is adversarial.
    pub(crate) fn reorder(&self) -> bool {
        matches!(self, LossModel::Nondet { reorder: true, .. })
    }
}

/// A bounded model-checking problem: the mesh, the scripted payload sends,
/// the session configuration, the loss model, and the search bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Number of ranks in the modeled mesh.
    pub peers: usize,
    /// The scripted payload sends, issued in order before exploration
    /// starts. Payload `i` of the script carries producer id `i`, so the
    /// checker can recognize every delivery.
    pub sends: Vec<(NodeId, NodeId)>,
    /// Tile dimension of each payload (bytes per payload = `dim² · 8`).
    pub tile_dim: usize,
    /// Session tuning. `linger` is forcibly zeroed by the checker: a
    /// virtual clock never reaches a drain deadline, so a lingering drop
    /// would hang.
    pub session: SessionConfig,
    /// The loss model to explore under.
    pub loss: LossModel,
    /// Maximum action-path depth before a branch is truncated.
    pub max_depth: usize,
    /// Maximum number of distinct states before the search is truncated.
    pub max_states: usize,
}

impl Scenario {
    /// A scenario with an explicit send script and checker-friendly
    /// defaults: 2×2 tiles, a small reorder window, 10 ms virtual RTO with
    /// a 40 ms backoff cap, `Clean` loss, depth 40, 100 000 states.
    pub fn scripted(peers: usize, sends: &[(NodeId, NodeId)]) -> Self {
        for &(s, d) in sends {
            assert!((s as usize) < peers && (d as usize) < peers && s != d);
        }
        Scenario {
            peers,
            sends: sends.to_vec(),
            tile_dim: 2,
            session: SessionConfig {
                rto: Duration::from_millis(10),
                backoff_cap: Duration::from_millis(40),
                tick: Duration::from_millis(1),
                linger: Duration::ZERO,
                window: 4,
            },
            loss: LossModel::Clean,
            max_depth: 40,
            max_states: 100_000,
        }
    }

    /// The send script of one tiled Cholesky factorization (Algorithm 1)
    /// under `dist`: every producer-to-consumer tile message of
    /// [`potrf_messages`], in a deterministic order, so the checker
    /// exercises the protocol on the paper's actual traffic pattern. The
    /// script length equals the analytic message count by construction.
    pub fn potrf<D: Distribution>(dist: &D, nt: usize) -> Self {
        let mut sends = Vec::new();
        for i in 0..nt {
            let owner = dist.owner(i, i);
            let mut dests: Vec<NodeId> = Vec::new();
            for j in i + 1..nt {
                push_unique(&mut dests, dist.owner(j, i) as NodeId);
            }
            for d in dests.drain(..) {
                if d != owner as NodeId {
                    sends.push((owner as NodeId, d));
                }
            }
            for j in i + 1..nt {
                let owner = dist.owner(j, i);
                push_unique(&mut dests, dist.owner(j, j) as NodeId);
                for k in i + 1..j {
                    push_unique(&mut dests, dist.owner(j, k) as NodeId);
                }
                for j2 in j + 1..nt {
                    push_unique(&mut dests, dist.owner(j2, j) as NodeId);
                }
                for d in dests.drain(..) {
                    if d != owner as NodeId {
                        sends.push((owner as NodeId, d));
                    }
                }
            }
        }
        assert_eq!(
            sends.len() as u64,
            potrf_messages(dist, nt),
            "derived send script must match the analytic message count"
        );
        Scenario::scripted(dist.num_nodes(), &sends)
    }

    /// Replaces the loss model.
    pub fn loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Replaces the search depth bound.
    pub fn depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Replaces the distinct-state bound.
    pub fn states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Replaces the session reorder window.
    pub fn window(mut self, window: u64) -> Self {
        self.session.window = window;
        self
    }

    /// Scripted sends originating at `rank`.
    pub(crate) fn sends_from(&self, rank: NodeId) -> u64 {
        self.sends.iter().filter(|&&(s, _)| s == rank).count() as u64
    }

    /// Bytes of one payload under this scenario's tile dimension.
    pub(crate) fn payload_bytes(&self) -> u64 {
        let d = self.tile_dim as u64;
        d * d * 8
    }
}

fn push_unique(v: &mut Vec<NodeId>, n: NodeId) {
    if !v.contains(&n) {
        v.push(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_dist::{SbcExtended, TwoDBlockCyclic};

    #[test]
    fn potrf_script_matches_analytic_count_for_both_distributions() {
        for nt in [2, 3, 4, 6] {
            let s = Scenario::potrf(&TwoDBlockCyclic::new(1, 2), nt);
            assert_eq!(
                s.sends.len() as u64,
                potrf_messages(&TwoDBlockCyclic::new(1, 2), nt)
            );
            let s = Scenario::potrf(&SbcExtended::new(3), nt);
            assert_eq!(
                s.sends.len() as u64,
                potrf_messages(&SbcExtended::new(3), nt)
            );
        }
    }

    #[test]
    #[should_panic]
    fn self_sends_are_rejected() {
        Scenario::scripted(2, &[(0, 0)]);
    }
}
