//! Breadth-first state-space search with dedup, and counterexample replay.

use std::collections::{HashSet, VecDeque};

use crate::scenario::Scenario;
use crate::world::{Action, Violation, World};

/// What one bounded exploration did and found.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// States expanded (dequeued and had their successors generated).
    pub states_explored: u64,
    /// Distinct protocol states seen (size of the dedup table).
    pub distinct_states: u64,
    /// Invariant evaluations performed (one full pass per transition).
    pub invariant_checks: u64,
    /// Terminal states reached (wire empty, nothing unacked).
    pub terminal_states: u64,
    /// Deepest action path examined.
    pub max_depth_seen: usize,
    /// `true` if a depth or state bound cut the search short.
    pub truncated: bool,
    /// The first (minimal, by breadth-first order) violation found.
    pub violation: Option<Counterexample>,
}

impl CheckReport {
    /// `true` when the search found no violation.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

/// A violation plus the exact action sequence that reaches it from the
/// initial state. Breadth-first search guarantees no shorter sequence
/// reaches any violation, so the trace is minimal.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The contract that failed.
    pub violation: Violation,
    /// The action path from the initial state, replayable with
    /// [`replay`].
    pub actions: Vec<Action>,
    /// A human-readable rendering of the trace, one line per action.
    pub rendered: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {}", self.violation)?;
        write!(f, "{}", self.rendered)
    }
}

/// What replaying an action sequence observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The first violation hit, if any (including a livelock cycle — a
    /// replay that revisits one of its own states).
    pub violation: Option<Violation>,
    /// Human-readable rendering of the replayed trace.
    pub rendered: String,
    /// Whether the final state is terminal.
    pub terminal: bool,
}

/// Exhaustively explores `scenario` breadth-first up to its bounds,
/// checking every invariant after every transition. Deterministic: same
/// scenario, same report.
pub fn check(scenario: &Scenario) -> CheckReport {
    let mut report = CheckReport {
        states_explored: 0,
        distinct_states: 0,
        invariant_checks: 0,
        terminal_states: 0,
        max_depth_seen: 0,
        truncated: false,
        violation: None,
    };
    let counterexample = |actions: Vec<Action>, v: Violation| {
        let rendered = render(scenario, &actions);
        Counterexample {
            violation: v,
            actions,
            rendered,
        }
    };

    let root = World::new(scenario);
    report.invariant_checks += 1;
    if let Some(v) = root.check_invariants(scenario) {
        report.violation = Some(counterexample(Vec::new(), v));
        return report;
    }
    let mut visited: HashSet<u128> = HashSet::new();
    visited.insert(root.digest(scenario));
    report.distinct_states = 1;
    if root.is_terminal() {
        report.terminal_states += 1;
        if let Some(v) = root.check_terminal(scenario) {
            report.violation = Some(counterexample(Vec::new(), v));
        }
        return report;
    }

    let mut queue: VecDeque<Vec<Action>> = VecDeque::new();
    queue.push_back(Vec::new());
    'search: while let Some(path) = queue.pop_front() {
        report.states_explored += 1;
        report.max_depth_seen = report.max_depth_seen.max(path.len());
        if path.len() >= scenario.max_depth {
            report.truncated = true;
            continue;
        }
        // One replay to enumerate this state's successors and collect the
        // digests of every state along the path (for cycle detection).
        let (world, ancestors) = rebuild(scenario, &path);
        for action in world.enabled(scenario) {
            let (mut w, _) = rebuild(scenario, &path);
            let trace = || {
                let mut t = path.clone();
                t.push(action);
                t
            };
            if let Err(v) = w.apply(&action, scenario) {
                report.invariant_checks += 1;
                report.violation = Some(counterexample(trace(), v));
                break 'search;
            }
            report.invariant_checks += 1;
            if let Some(v) = w.check_invariants(scenario) {
                report.violation = Some(counterexample(trace(), v));
                break 'search;
            }
            let d = w.digest(scenario);
            if let Some(pos) = ancestors.iter().position(|&a| a == d) {
                let v = Violation::Livelock {
                    cycle_len: path.len() + 1 - pos,
                };
                report.violation = Some(counterexample(trace(), v));
                break 'search;
            }
            let terminal = w.is_terminal();
            if terminal {
                report.terminal_states += 1;
                if let Some(v) = w.check_terminal(scenario) {
                    report.violation = Some(counterexample(trace(), v));
                    break 'search;
                }
            }
            if visited.insert(d) {
                report.distinct_states += 1;
                if !terminal {
                    queue.push_back(trace());
                }
            }
            if visited.len() >= scenario.max_states {
                report.truncated = true;
                break 'search;
            }
        }
    }

    if report.violation.is_none() && !report.truncated && report.terminal_states == 0 {
        // the search closed without ever finding a state from which the
        // protocol can rest: every execution spins forever
        report.violation = Some(counterexample(Vec::new(), Violation::NoTerminalState));
    }
    report
}

/// Replays an action sequence from the initial state, re-checking every
/// invariant (and the ancestor-cycle livelock check) at each step. This is
/// how a checker-found counterexample becomes an ordinary regression test.
///
/// # Panics
/// Panics if the sequence references a frame that is not in flight — i.e.
/// the trace does not belong to this scenario.
pub fn replay(scenario: &Scenario, actions: &[Action]) -> ReplayOutcome {
    let mut world = World::new(scenario);
    let mut rendered = String::new();
    let mut digests = vec![world.digest(scenario)];
    if let Some(v) = world.check_invariants(scenario) {
        return ReplayOutcome {
            violation: Some(v),
            rendered,
            terminal: world.is_terminal(),
        };
    }
    for (i, action) in actions.iter().enumerate() {
        let step = match world.apply(action, scenario) {
            Ok(desc) => desc,
            Err(v) => {
                rendered.push_str(&format!(
                    "{:>3}. {} !! {v}\n",
                    i + 1,
                    describe_plain(action)
                ));
                return ReplayOutcome {
                    violation: Some(v),
                    rendered,
                    terminal: false,
                };
            }
        };
        rendered.push_str(&format!("{:>3}. {step}\n", i + 1));
        if let Some(v) = world.check_invariants(scenario) {
            rendered.push_str(&format!("     !! {v}\n"));
            return ReplayOutcome {
                violation: Some(v),
                rendered,
                terminal: false,
            };
        }
        let d = world.digest(scenario);
        if let Some(pos) = digests.iter().position(|&a| a == d) {
            let v = Violation::Livelock {
                cycle_len: i + 1 - pos,
            };
            rendered.push_str(&format!("     !! {v}\n"));
            return ReplayOutcome {
                violation: Some(v),
                rendered,
                terminal: false,
            };
        }
        digests.push(d);
    }
    let terminal = world.is_terminal();
    let violation = if terminal {
        world.check_terminal(scenario)
    } else {
        None
    };
    if let Some(v) = &violation {
        rendered.push_str(&format!("     !! {v}\n"));
    }
    ReplayOutcome {
        violation,
        rendered,
        terminal,
    }
}

/// Rebuilds the world at the end of `path`, returning it together with the
/// digest of every state along the way (initial state first). The prefix
/// was validated when it was first enqueued, so violations here are
/// checker bugs.
fn rebuild(scenario: &Scenario, path: &[Action]) -> (World, Vec<u128>) {
    let mut world = World::new(scenario);
    let mut digests = vec![world.digest(scenario)];
    for action in path {
        world
            .apply(action, scenario)
            .expect("validated prefix must replay cleanly");
        digests.push(world.digest(scenario));
    }
    (world, digests)
}

/// Renders an action path as a numbered trace (used for counterexamples).
fn render(scenario: &Scenario, actions: &[Action]) -> String {
    let mut world = World::new(scenario);
    let mut out = String::new();
    for (i, action) in actions.iter().enumerate() {
        match world.apply(action, scenario) {
            Ok(desc) => out.push_str(&format!("{:>3}. {desc}\n", i + 1)),
            Err(v) => {
                out.push_str(&format!(
                    "{:>3}. {} !! {v}\n",
                    i + 1,
                    describe_plain(action)
                ));
                break;
            }
        }
    }
    out
}

fn describe_plain(a: &Action) -> String {
    match a {
        Action::Deliver { uid } => format!("deliver frame {uid}"),
        Action::Drop { uid } => format!("drop frame {uid}"),
        Action::Duplicate { uid } => format!("duplicate frame {uid}"),
        Action::Tick => "tick".to_string(),
    }
}
