//! The modeled world: real sessions over an inspectable in-memory network.
//!
//! A [`World`] is one execution state — `peers` real [`Session`] state
//! machines sharing one [`VirtualClock`], wired over [`McNet`], a
//! [`Transport`] whose "wire" is an explicit vector of in-flight frames
//! the checker picks from. Nothing in here is random or time-dependent:
//! a world is a pure function of the scenario and the action sequence
//! applied to it, which is what makes replay (and therefore state-space
//! search) possible.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use sbc_kernels::Tile;
use sbc_net::{
    Clock, Message, NodeId, Payload, PeerStats, RecvTimeout, Session, SessionConfig, Transport,
    TransportStats, VirtualClock,
};
use sbc_taskgraph::TileRef;

use crate::scenario::{LossModel, Scenario};

/// One transition the checker can take from a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Hand in-flight frame `uid` to its destination session.
    Deliver {
        /// Frame id within the current execution.
        uid: u64,
    },
    /// Lose in-flight payload frame `uid` (adversarial, budgeted).
    Drop {
        /// Frame id within the current execution.
        uid: u64,
    },
    /// Clone in-flight payload frame `uid` onto the wire (budgeted).
    Duplicate {
        /// Frame id within the current execution.
        uid: u64,
    },
    /// Advance the virtual clock to the earliest armed retransmission
    /// timer and fire every timer due, on all sessions.
    Tick,
}

/// A checked protocol contract that failed, with enough context to read
/// the counterexample without the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A payload surfaced at its destination a second time.
    DuplicateDelivery {
        /// Sending rank.
        src: NodeId,
        /// Receiving rank.
        dst: NodeId,
        /// Script index of the payload.
        producer: u32,
    },
    /// A payload surfaced out of per-channel send order.
    OutOfOrderDelivery {
        /// Sending rank.
        src: NodeId,
        /// Receiving rank.
        dst: NodeId,
        /// Script index that surfaced.
        got: u32,
        /// Script index that should have surfaced next.
        expected: u32,
    },
    /// A payload surfaced that the script never sent on this channel.
    PhantomDelivery {
        /// Sending rank.
        src: NodeId,
        /// Receiving rank.
        dst: NodeId,
        /// Script index of the payload.
        producer: u32,
    },
    /// A transport-statistics ledger stopped balancing.
    AccountingDrift {
        /// Rank whose ledger drifted.
        rank: NodeId,
        /// Which equality failed, with both sides.
        detail: String,
    },
    /// A session probe reported internally inconsistent protocol state.
    ProbeInconsistency {
        /// Rank whose probe is inconsistent.
        rank: NodeId,
        /// What is inconsistent.
        detail: String,
    },
    /// A terminal state (no traffic in flight, no timer armed) was reached
    /// with undelivered scripted payloads.
    LostPayload {
        /// Which channels are incomplete.
        detail: String,
    },
    /// An action path revisited one of its own earlier states: a cycle
    /// with zero progress, reachable forever.
    Livelock {
        /// Number of actions in the cycle.
        cycle_len: usize,
    },
    /// The bounded search completed without truncation, yet no execution
    /// ever reached a terminal state.
    NoTerminalState,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DuplicateDelivery { src, dst, producer } => {
                write!(f, "payload #{producer} delivered twice on r{src}->r{dst}")
            }
            Violation::OutOfOrderDelivery { src, dst, got, expected } => write!(
                f,
                "out-of-order delivery on r{src}->r{dst}: got payload #{got}, expected #{expected}"
            ),
            Violation::PhantomDelivery { src, dst, producer } => {
                write!(f, "phantom payload #{producer} delivered on r{src}->r{dst}")
            }
            Violation::AccountingDrift { rank, detail } => {
                write!(f, "accounting drift at r{rank}: {detail}")
            }
            Violation::ProbeInconsistency { rank, detail } => {
                write!(f, "inconsistent probe at r{rank}: {detail}")
            }
            Violation::LostPayload { detail } => write!(f, "terminal state lost payloads: {detail}"),
            Violation::Livelock { cycle_len } => write!(
                f,
                "livelock: execution revisited its own state ({cycle_len}-action cycle with no progress)"
            ),
            Violation::NoTerminalState => {
                write!(f, "no execution reached a terminal state within bounds")
            }
        }
    }
}

/// One frame on the modeled wire.
struct WireFrame {
    uid: u64,
    src: NodeId,
    dst: NodeId,
    msg: Message,
}

/// The shared network fabric: in-flight frames plus the per-sender
/// counters the deterministic loss gates and the accounting invariants
/// read.
struct NetState {
    inflight: Vec<WireFrame>,
    next_uid: u64,
    loss: LossModel,
    /// Per-sender payload-frame counter (the `k` the gates hash).
    counter: Vec<u64>,
    /// Per-sender frames censored by a deterministic gate.
    gate_drops: Vec<u64>,
    /// Per-sender `send_seq` attempts — the wire-ledger side of
    /// `sent_messages + retrans_messages`.
    seq_attempts: Vec<u64>,
    /// Per-sender acks emitted.
    acks: Vec<u64>,
}

impl NetState {
    fn new(peers: usize, loss: LossModel) -> Self {
        NetState {
            inflight: Vec::new(),
            next_uid: 0,
            loss,
            counter: vec![0; peers],
            gate_drops: vec![0; peers],
            seq_attempts: vec![0; peers],
            acks: vec![0; peers],
        }
    }

    fn enqueue(&mut self, src: NodeId, dst: NodeId, msg: Message) {
        let uid = self.next_uid;
        self.next_uid += 1;
        self.inflight.push(WireFrame { uid, src, dst, msg });
    }

    /// Applies the deterministic loss gate (if any) to one submitted
    /// payload frame and enqueues 0, 1 or 2 wire copies.
    fn submit_seq(&mut self, src: NodeId, dst: NodeId, msg: Message) -> bool {
        let s = src as usize;
        self.seq_attempts[s] += 1;
        self.counter[s] += 1;
        let copies = match self.loss.clone() {
            LossModel::Clean | LossModel::Nondet { .. } => 1,
            LossModel::Periodic { drop_every, phase } => {
                let k = phase + self.counter[s];
                if drop_every != 0 && k.is_multiple_of(drop_every) {
                    0
                } else {
                    1
                }
            }
            LossModel::Seeded(cfg) => {
                let k = cfg.phase.wrapping_add(self.counter[s]);
                match cfg.decide(k, self.gate_drops[s]) {
                    sbc_net::FaultDecision::Drop => 0,
                    sbc_net::FaultDecision::Duplicate => 2,
                    sbc_net::FaultDecision::Deliver => 1,
                }
            }
        };
        if copies == 0 {
            self.gate_drops[s] += 1;
        }
        for _ in 0..copies {
            self.enqueue(src, dst, msg.clone());
        }
        copies > 0
    }
}

/// The checker-controlled transport: sends land on the shared in-flight
/// vector (through the deterministic gate, for `Periodic`/`Seeded`
/// scenarios); receives return nothing, because the checker injects frames
/// directly via [`Session::handle_wire`].
struct McNet {
    rank: NodeId,
    peers: usize,
    net: Arc<Mutex<NetState>>,
    control_sent: AtomicU64,
}

impl McNet {
    fn lock(&self) -> MutexGuard<'_, NetState> {
        self.net
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Transport for McNet {
    fn rank(&self) -> NodeId {
        self.rank
    }

    fn num_nodes(&self) -> usize {
        self.peers
    }

    fn send_payload(&self, dest: NodeId, payload: Payload) -> Option<u64> {
        let bytes = payload.payload_bytes();
        self.lock().enqueue(
            self.rank,
            dest,
            Message::Payload {
                src: self.rank,
                payload,
            },
        );
        Some(bytes)
    }

    fn send_seq(&self, dest: NodeId, seq: u64, payload: Payload) -> Option<u64> {
        let bytes = payload.payload_bytes();
        let delivered = self.lock().submit_seq(
            self.rank,
            dest,
            Message::Seq {
                src: self.rank,
                seq,
                payload,
            },
        );
        delivered.then_some(bytes)
    }

    fn send_ack(&self, dest: NodeId, upto: u64) {
        self.control_sent.fetch_add(1, Ordering::Relaxed);
        let mut net = self.lock();
        net.acks[self.rank as usize] += 1;
        net.enqueue(
            self.rank,
            dest,
            Message::Ack {
                src: self.rank,
                upto,
            },
        );
    }

    fn send_poison(&self, dest: NodeId) {
        self.lock().enqueue(self.rank, dest, Message::Poison);
    }

    fn send_result(&self, dest: NodeId, tile_ref: TileRef, tile: Tile) {
        self.lock()
            .enqueue(self.rank, dest, Message::Result { tile_ref, tile });
    }

    fn send_done(&self, dest: NodeId, stats: PeerStats) {
        self.lock().enqueue(
            self.rank,
            dest,
            Message::Done {
                src: self.rank,
                stats,
            },
        );
    }

    fn wake(&self) {}

    fn recv(&self) -> Option<Message> {
        None
    }

    fn try_recv(&self) -> Option<Message> {
        None
    }

    fn recv_timeout(&self, _timeout: Duration) -> RecvTimeout {
        RecvTimeout::TimedOut
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            control_messages: self.control_sent.load(Ordering::Relaxed),
            ..TransportStats::default()
        }
    }
}

/// One fully materialized execution state.
pub(crate) struct World {
    clock: Arc<VirtualClock>,
    net: Arc<Mutex<NetState>>,
    sessions: Vec<Session<McNet>>,
    /// Per channel: producer ids delivered so far, in delivery order.
    delivered: BTreeMap<(NodeId, NodeId), Vec<u32>>,
    drops_used: u32,
    dups_used: u32,
}

impl World {
    /// Builds the initial state: fresh sessions on a fresh virtual clock,
    /// with every scripted payload already sent (and gated). `linger` is
    /// forced to zero — on a frozen virtual clock a lingering `Drop`
    /// drain would never terminate.
    pub(crate) fn new(sc: &Scenario) -> World {
        let clock = Arc::new(VirtualClock::new());
        let net = Arc::new(Mutex::new(NetState::new(sc.peers, sc.loss.clone())));
        let cfg = SessionConfig {
            linger: Duration::ZERO,
            ..sc.session
        };
        let sessions: Vec<Session<McNet>> = (0..sc.peers)
            .map(|r| {
                Session::with_clock(
                    McNet {
                        rank: r as NodeId,
                        peers: sc.peers,
                        net: Arc::clone(&net),
                        control_sent: AtomicU64::new(0),
                    },
                    cfg,
                    clock.clone() as Arc<dyn Clock>,
                )
            })
            .collect();
        for (idx, &(src, dst)) in sc.sends.iter().enumerate() {
            sessions[src as usize].send_payload(
                dst,
                Payload::Data {
                    job: 0,
                    producer: idx as u32,
                    tile: Tile::zeros(sc.tile_dim),
                },
            );
        }
        World {
            clock,
            net,
            sessions,
            delivered: BTreeMap::new(),
            drops_used: 0,
            dups_used: 0,
        }
    }

    fn lock_net(&self) -> MutexGuard<'_, NetState> {
        self.net
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enumerates every action enabled in this state, in a deterministic
    /// order (deliveries first, so breadth-first search prefers progress
    /// and counterexamples stay short).
    pub(crate) fn enabled(&self, sc: &Scenario) -> Vec<Action> {
        let net = self.lock_net();
        let mut out = Vec::new();
        if sc.loss.reorder() {
            for f in &net.inflight {
                out.push(Action::Deliver { uid: f.uid });
            }
        } else {
            // FIFO per channel: only the oldest frame of each (src, dst)
            // pair is deliverable.
            let mut heads: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
            for f in &net.inflight {
                heads.entry((f.src, f.dst)).or_insert(f.uid);
            }
            out.extend(heads.into_values().map(|uid| Action::Deliver { uid }));
        }
        // Progress-guided timer reduction: a timer firing is only
        // *necessary* when some unacked payload has neither a wire copy
        // nor a covering ack in flight — anything the sender could learn
        // of is still on its way. Spurious timeouts (an RTO racing an ack)
        // only manufacture duplicates the adversary already injects
        // explicitly via `Drop`/`Duplicate`, so pruning them loses no
        // distinct protocol behavior while keeping clean state spaces
        // finite.
        if self.tick_needed(&net) {
            out.push(Action::Tick);
        }
        if let LossModel::Nondet {
            max_drops,
            max_dups,
            ..
        } = sc.loss
        {
            if self.drops_used < max_drops {
                // both payload frames and acks are fair game for loss —
                // a lost ack is what forces a retransmission into an
                // already-delivered window
                out.extend(
                    net.inflight
                        .iter()
                        .filter(|f| matches!(f.msg, Message::Seq { .. } | Message::Ack { .. }))
                        .map(|f| Action::Drop { uid: f.uid }),
                );
            }
            if self.dups_used < max_dups {
                out.extend(
                    net.inflight
                        .iter()
                        .filter(|f| matches!(f.msg, Message::Seq { .. }))
                        .map(|f| Action::Duplicate { uid: f.uid }),
                );
            }
        }
        out
    }

    /// Whether any armed retransmission timer could fire a *necessary*
    /// retransmit (see the comment at the call site).
    fn tick_needed(&self, net: &NetState) -> bool {
        for (r, session) in self.sessions.iter().enumerate() {
            let src = r as NodeId;
            let probe = session.probe();
            for (peer, ps) in probe.send.iter().enumerate() {
                let dst = peer as NodeId;
                for u in &ps.unacked {
                    let wire_copy = net.inflight.iter().any(|f| {
                        f.dst == dst
                            && matches!(&f.msg, Message::Seq { src: s, seq, .. }
                                if *s == src && *seq == u.seq)
                    });
                    let covering_ack = net.inflight.iter().any(|f| {
                        f.dst == src
                            && matches!(&f.msg, Message::Ack { src: s, upto }
                                if *s == dst && *upto > u.seq)
                    });
                    if !wire_copy && !covering_ack {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Applies one action, returning a human-readable description of what
    /// happened, or the violation it directly caused. Panics if the action
    /// references a frame that is not in flight — that means the caller's
    /// trace diverged from the world, which is a checker bug, not a
    /// protocol one.
    pub(crate) fn apply(&mut self, action: &Action, sc: &Scenario) -> Result<String, Violation> {
        match *action {
            Action::Deliver { uid } => {
                let frame = self.take_frame(uid);
                let desc = describe_frame("deliver", &frame);
                let dst = frame.dst as usize;
                self.sessions[dst].handle_wire(frame.msg);
                while let Some(m) = self.sessions[dst].pop_ready() {
                    if let Message::Payload {
                        src,
                        payload: Payload::Data { producer, .. },
                    } = m
                    {
                        self.record_delivery(src, frame.dst, producer, sc)?;
                    }
                }
                Ok(desc)
            }
            Action::Drop { uid } => {
                let frame = self.take_frame(uid);
                self.drops_used += 1;
                Ok(describe_frame("drop", &frame))
            }
            Action::Duplicate { uid } => {
                let mut net = self.lock_net();
                let pos = net
                    .inflight
                    .iter()
                    .position(|f| f.uid == uid)
                    .expect("duplicated frame must be in flight");
                let (src, dst, msg) = (
                    net.inflight[pos].src,
                    net.inflight[pos].dst,
                    net.inflight[pos].msg.clone(),
                );
                let uid2 = net.next_uid;
                net.next_uid += 1;
                // the copy travels right behind the original
                net.inflight.insert(
                    pos + 1,
                    WireFrame {
                        uid: uid2,
                        src,
                        dst,
                        msg,
                    },
                );
                let desc = describe_frame("duplicate", &net.inflight[pos]);
                drop(net);
                self.dups_used += 1;
                Ok(desc)
            }
            Action::Tick => {
                let due = self
                    .sessions
                    .iter()
                    .filter_map(|s| s.next_retransmit_due())
                    .min()
                    .expect("Tick is only enabled with an armed timer");
                let step = due.saturating_duration_since(self.clock.now());
                self.clock.advance_to(due);
                for s in &self.sessions {
                    s.drive_timers();
                }
                Ok(format!(
                    "tick: advance virtual clock {step:?} to next timer; fire retransmits"
                ))
            }
        }
    }

    fn take_frame(&mut self, uid: u64) -> WireFrame {
        let mut net = self.lock_net();
        let pos = net
            .inflight
            .iter()
            .position(|f| f.uid == uid)
            .expect("acted-on frame must be in flight");
        net.inflight.remove(pos)
    }

    /// Validates one surfaced payload against the script: each channel
    /// must deliver exactly its scripted producer ids, in order.
    fn record_delivery(
        &mut self,
        src: NodeId,
        dst: NodeId,
        producer: u32,
        sc: &Scenario,
    ) -> Result<(), Violation> {
        let expected: Vec<u32> = sc
            .sends
            .iter()
            .enumerate()
            .filter(|&(_, &(s, d))| s == src && d == dst)
            .map(|(i, _)| i as u32)
            .collect();
        let got = self.delivered.entry((src, dst)).or_default();
        if got.contains(&producer) {
            return Err(Violation::DuplicateDelivery { src, dst, producer });
        }
        match expected.get(got.len()) {
            Some(&e) if e == producer => {
                got.push(producer);
                Ok(())
            }
            Some(&e) if expected.contains(&producer) => Err(Violation::OutOfOrderDelivery {
                src,
                dst,
                got: producer,
                expected: e,
            }),
            _ => Err(Violation::PhantomDelivery { src, dst, producer }),
        }
    }

    /// Re-checks every ledger and structural invariant. Called after each
    /// action; `None` means all contracts hold.
    pub(crate) fn check_invariants(&self, sc: &Scenario) -> Option<Violation> {
        let net = self.lock_net();
        for (r, session) in self.sessions.iter().enumerate() {
            let rank = r as NodeId;
            let st = session.stats();
            let drift = |detail: String| Violation::AccountingDrift { rank, detail };
            if st.sent_messages != sc.sends_from(rank) {
                return Some(drift(format!(
                    "sent_messages={} but the script sends {} payloads from this rank",
                    st.sent_messages,
                    sc.sends_from(rank)
                )));
            }
            if st.sent_payload_bytes != st.sent_messages * sc.payload_bytes() {
                return Some(drift(format!(
                    "sent_payload_bytes={} != sent_messages({}) * payload_bytes({})",
                    st.sent_payload_bytes,
                    st.sent_messages,
                    sc.payload_bytes()
                )));
            }
            if net.seq_attempts[r] != st.sent_messages + st.retrans_messages {
                return Some(drift(format!(
                    "wire ledger: {} seq-frame send attempts != sent_messages({}) + retrans_messages({})",
                    net.seq_attempts[r], st.sent_messages, st.retrans_messages
                )));
            }
            // the ack ledger crosses two counters: the session's folded
            // stats against the network fabric's own tally
            if st.control_messages != net.acks[r] {
                return Some(drift(format!(
                    "control_messages={} but the fabric saw {} acks from this rank",
                    st.control_messages, net.acks[r]
                )));
            }
            let recvd: u64 = self
                .delivered
                .iter()
                .filter(|&(&(_, d), _)| d == rank)
                .map(|(_, v)| v.len() as u64)
                .sum();
            if st.recv_messages != recvd {
                return Some(drift(format!(
                    "recv_messages={} but {} payloads surfaced at this rank",
                    st.recv_messages, recvd
                )));
            }
            let probe = session.probe();
            if probe.pending != 0 {
                return Some(Violation::ProbeInconsistency {
                    rank,
                    detail: format!("{} deliveries left undrained", probe.pending),
                });
            }
            for (peer, ps) in probe.send.iter().enumerate() {
                let mut prev = None;
                for u in &ps.unacked {
                    if u.seq >= ps.next_seq {
                        return Some(Violation::ProbeInconsistency {
                            rank,
                            detail: format!(
                                "unacked seq {} >= next_seq {} toward r{peer}",
                                u.seq, ps.next_seq
                            ),
                        });
                    }
                    if prev.is_some_and(|p| u.seq <= p) {
                        return Some(Violation::ProbeInconsistency {
                            rank,
                            detail: format!("unacked seqs not increasing toward r{peer}"),
                        });
                    }
                    prev = Some(u.seq);
                }
            }
            for (peer, pr) in probe.recv.iter().enumerate() {
                for &w in &pr.window {
                    if w < pr.next_expected || w >= pr.next_expected + sc.session.window {
                        return Some(Violation::ProbeInconsistency {
                            rank,
                            detail: format!(
                                "window seq {} outside [{}, {}) from r{peer}",
                                w,
                                pr.next_expected,
                                pr.next_expected + sc.session.window
                            ),
                        });
                    }
                }
            }
        }
        None
    }

    /// A state is terminal when the wire is empty and nothing is unacked
    /// (hence no retransmission timer armed): no action except the ones
    /// already taken can ever occur.
    pub(crate) fn is_terminal(&self) -> bool {
        self.lock_net().inflight.is_empty() && self.sessions.iter().all(|s| s.unacked() == 0)
    }

    /// The liveness contract at a terminal state: every scripted payload
    /// must have been delivered.
    pub(crate) fn check_terminal(&self, sc: &Scenario) -> Option<Violation> {
        let mut missing = Vec::new();
        for (idx, &(src, dst)) in sc.sends.iter().enumerate() {
            let done = self
                .delivered
                .get(&(src, dst))
                .is_some_and(|v| v.contains(&(idx as u32)));
            if !done {
                missing.push(format!("payload #{idx} (r{src}->r{dst})"));
            }
        }
        if missing.is_empty() {
            None
        } else {
            Some(Violation::LostPayload {
                detail: missing.join(", "),
            })
        }
    }

    /// Hashes a canonical encoding of the protocol state: time-relative
    /// session probes, per-channel in-flight frame sequences (sorted
    /// within a channel when delivery order is adversarial, since order
    /// then carries no information), fault budgets, and the loss gate's
    /// residual state (`counter mod period` for the periodic gate — its
    /// future is periodic — but the raw counter for the seeded gate, whose
    /// future depends on it entirely).
    pub(crate) fn digest(&self, sc: &Scenario) -> u128 {
        let mut buf: Vec<u8> = Vec::new();
        let push = |buf: &mut Vec<u8>, x: u64| buf.extend_from_slice(&x.to_le_bytes());
        for s in &self.sessions {
            let p = s.probe();
            push(&mut buf, p.send.len() as u64);
            for ps in &p.send {
                push(&mut buf, ps.next_seq);
                push(&mut buf, ps.unacked.len() as u64);
                for u in &ps.unacked {
                    push(&mut buf, u.seq);
                    push(&mut buf, u.bytes);
                    push(&mut buf, u.due_in_ns);
                    push(&mut buf, u.rto_ns);
                }
            }
            for pr in &p.recv {
                push(&mut buf, pr.next_expected);
                push(&mut buf, pr.window.len() as u64);
                for &w in &pr.window {
                    push(&mut buf, w);
                }
            }
            push(&mut buf, p.pending as u64);
            push(&mut buf, u64::from(p.poisoned));
        }
        {
            let net = self.lock_net();
            let mut channels: BTreeMap<(NodeId, NodeId), Vec<[u64; 4]>> = BTreeMap::new();
            for f in &net.inflight {
                channels
                    .entry((f.src, f.dst))
                    .or_default()
                    .push(encode_frame(&f.msg));
            }
            push(&mut buf, channels.len() as u64);
            for ((src, dst), mut frames) in channels {
                if sc.loss.reorder() {
                    frames.sort_unstable();
                }
                push(&mut buf, u64::from(src));
                push(&mut buf, u64::from(dst));
                push(&mut buf, frames.len() as u64);
                for f in frames {
                    for x in f {
                        push(&mut buf, x);
                    }
                }
            }
            match sc.loss {
                LossModel::Clean | LossModel::Nondet { .. } => {}
                LossModel::Periodic { drop_every, .. } => {
                    for &c in &net.counter {
                        push(&mut buf, if drop_every == 0 { 0 } else { c % drop_every });
                    }
                }
                LossModel::Seeded(_) => {
                    for (&c, &d) in net.counter.iter().zip(&net.gate_drops) {
                        push(&mut buf, c);
                        push(&mut buf, d);
                    }
                }
            }
        }
        push(&mut buf, u64::from(self.drops_used));
        push(&mut buf, u64::from(self.dups_used));
        for (&(src, dst), v) in &self.delivered {
            push(&mut buf, u64::from(src));
            push(&mut buf, u64::from(dst));
            push(&mut buf, v.len() as u64);
        }
        let lo = fnv1a64(&buf, 0xcbf2_9ce4_8422_2325);
        let hi = fnv1a64(&buf, 0x6c62_272e_07bb_0142);
        (u128::from(hi) << 64) | u128::from(lo)
    }
}

fn encode_frame(msg: &Message) -> [u64; 4] {
    match msg {
        Message::Seq { src, seq, payload } => {
            let producer = match payload {
                Payload::Data { producer, .. } => u64::from(*producer),
                Payload::Orig { .. } => u64::MAX,
            };
            [0, u64::from(*src), *seq, producer]
        }
        Message::Ack { src, upto } => [1, u64::from(*src), *upto, 0],
        _ => [2, 0, 0, 0],
    }
}

fn describe_frame(verb: &str, f: &WireFrame) -> String {
    match &f.msg {
        Message::Seq {
            seq,
            payload: Payload::Data { producer, .. },
            ..
        } => {
            format!(
                "{verb} r{}->r{} seq={} (payload #{})",
                f.src, f.dst, seq, producer
            )
        }
        Message::Seq { seq, .. } => format!("{verb} r{}->r{} seq={}", f.src, f.dst, seq),
        Message::Ack { upto, .. } => format!("{verb} r{}->r{} ack upto={}", f.src, f.dst, upto),
        other => format!(
            "{verb} r{}->r{} {:?}",
            f.src,
            f.dst,
            std::mem::discriminant(other)
        ),
    }
}

fn fnv1a64(bytes: &[u8], offset: u64) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
