//! End-to-end model-checking runs: the session protocol survives an
//! exhaustive adversary, the pre-fix periodic drop gate provably
//! livelocks, and checker-found traces replay as ordinary tests.

use sbc_mc::{check, replay, LossModel, Scenario, Violation};
use sbc_net::FaultConfig;

/// Two peers exchanging three payloads over a faithful network: the only
/// nondeterminism is interleaving, and every execution must terminate
/// fully delivered.
#[test]
fn clean_network_delivers_exactly_once_under_all_interleavings() {
    let sc = Scenario::scripted(2, &[(0, 1), (0, 1), (1, 0)]);
    let report = check(&sc);
    assert!(report.passed(), "violation: {:?}", report.violation);
    assert!(!report.truncated, "clean scenario must close: {report:?}");
    assert!(report.terminal_states >= 1);
    assert!(report.distinct_states > 1);
    // deterministic: the same scenario yields the identical report
    assert_eq!(report, check(&sc));
}

/// The acceptance scenario: two peers, three payloads, and an adversary
/// that may drop, duplicate, and reorder at will. The session's
/// retransmission, dedup, and reordering logic must hold every invariant
/// on every reachable interleaving. (`paper mc` runs the same shape with
/// a larger fault budget in release mode.)
#[test]
fn session_survives_exhaustive_drop_dup_reorder_adversary() {
    let sc = Scenario::scripted(2, &[(0, 1), (0, 1), (1, 0)])
        .loss(LossModel::Nondet {
            max_drops: 1,
            max_dups: 1,
            reorder: true,
        })
        .depth(12)
        .states(5_000);
    let report = check(&sc);
    assert!(report.passed(), "violation: {:?}", report.violation);
    assert!(
        report.terminal_states >= 1,
        "some execution must complete: {report:?}"
    );
    assert!(
        report.states_explored > 100,
        "the adversary must branch: {report:?}"
    );
}

/// A one-slot reorder window forces the sender to retransmit anything the
/// receiver had to discard; exactly-once delivery must still hold.
#[test]
fn window_of_one_discards_and_retransmits_without_violations() {
    let sc = Scenario::scripted(2, &[(0, 1), (0, 1)])
        .loss(LossModel::Nondet {
            max_drops: 1,
            max_dups: 0,
            reorder: true,
        })
        .window(1)
        .depth(12)
        .states(40_000);
    let report = check(&sc);
    assert!(report.passed(), "violation: {:?}", report.violation);
    assert!(report.terminal_states >= 1);
}

/// The checker proves the pre-fix strictly periodic drop filter wrong: it
/// finds an execution that revisits its own state with a payload still
/// censored — the livelock the chaos suite once hit as a wall-clock hang.
#[test]
fn periodic_drop_gate_livelocks_and_the_trace_replays() {
    let sc = Scenario::scripted(2, &[(0, 1), (0, 1)])
        .loss(LossModel::Periodic {
            drop_every: 2,
            phase: 1,
        })
        .depth(30)
        .states(60_000);
    let report = check(&sc);
    let cx = report.violation.expect("the periodic gate must be caught");
    assert!(
        matches!(cx.violation, Violation::Livelock { .. }),
        "expected a livelock, got {:?}",
        cx.violation
    );
    assert!(!cx.actions.is_empty());
    assert!(!cx.rendered.is_empty());
    // the counterexample is replayable: the same actions reproduce the
    // same violation from a fresh world
    let outcome = replay(&sc, &cx.actions);
    assert_eq!(outcome.violation, Some(cx.violation));
}

/// Degenerate periodicity — drop everything — is the latent all-drop hang:
/// the retransmission loop closes on itself once backoff saturates.
#[test]
fn all_drop_gate_is_a_short_livelock_cycle() {
    let sc = Scenario::scripted(2, &[(0, 1)])
        .loss(LossModel::Periodic {
            drop_every: 1,
            phase: 0,
        })
        .depth(10)
        .states(1_000);
    let report = check(&sc);
    let cx = report.violation.expect("all-drop must livelock");
    assert!(matches!(cx.violation, Violation::Livelock { .. }));
    // rto 10ms doubling to the 40ms cap: the cycle closes within a few
    // ticks, and breadth-first search finds the minimal trace
    assert!(
        cx.actions.len() <= 5,
        "expected a short trace, got {:?}",
        cx.actions
    );
}

/// The shipped fair-loss gate on the same counters does not livelock: the
/// splitmix hash decorrelates drops from the retransmission period, so
/// executions reach termination.
#[test]
fn fair_loss_gate_admits_termination_where_periodic_livelocked() {
    let sc = Scenario::scripted(2, &[(0, 1), (0, 1)])
        .loss(LossModel::Seeded(FaultConfig {
            drop_every: 2,
            dup_every: 0,
            delay: None,
            max_drops: 3,
            phase: 1,
        }))
        .depth(16)
        .states(60_000);
    let report = check(&sc);
    assert!(report.passed(), "violation: {:?}", report.violation);
    assert!(
        report.terminal_states >= 1,
        "the fair gate must let traffic through: {report:?}"
    );
}

/// The checker runs the paper's own traffic: the send script of a tiled
/// Cholesky factorization on a 2-node column-cyclic grid, whose length
/// equals the analytic `potrf_messages` count by construction.
#[test]
fn potrf_traffic_checks_clean_on_a_two_node_grid() {
    let dist = sbc_dist::TwoDBlockCyclic::new(1, 2);
    let sc = Scenario::potrf(&dist, 3).depth(30).states(60_000);
    assert!(!sc.sends.is_empty());
    let report = check(&sc);
    assert!(report.passed(), "violation: {:?}", report.violation);
    assert!(report.terminal_states >= 1);
}

/// Replaying an empty trace on an empty script is a terminal, fully
/// delivered world.
#[test]
fn empty_script_is_immediately_terminal() {
    let sc = Scenario::scripted(2, &[]);
    let report = check(&sc);
    assert!(report.passed());
    assert_eq!(report.terminal_states, 1);
    let outcome = replay(&sc, &[]);
    assert!(outcome.terminal);
    assert_eq!(outcome.violation, None);
}
