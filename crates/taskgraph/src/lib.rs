//! # sbc-taskgraph — distributed task DAGs for the tiled symmetric kernels
//!
//! This crate turns the sequential tiled algorithms of `sbc-matrix` into
//! distributed task graphs under a data distribution, exactly the way the
//! Chameleon + StarPU stack does in the paper:
//!
//! * tasks are placed by the **owner-computes** rule — every task that
//!   *modifies* a tile runs on the node owning that tile (Section III-A);
//! * dependencies are inferred *superscalar-style* from the access modes of
//!   each submitted task ([`GraphBuilder`]): read-after-write edges carry
//!   data, write-after-read edges only order local storage reuse — the same
//!   inference StarPU performs from `(tile, access-mode)` declarations;
//! * an inter-node **message** exists for every distinct
//!   `(producer task, consumer node)` pair over data edges — one tile per
//!   message, no collectives (Section V-C).
//!
//! Builders are provided for 2D POTRF ([`build_potrf`]), 2.5D POTRF with
//! accumulation buffers and reduction tasks ([`build_potrf_25d`],
//! Section IV), POSV ([`build_posv`]), TRTRI, LAUUM, POTRI and the paper's
//! "SBC remap 2DBC" POTRI with explicit redistribution tasks
//! ([`build_potri_remap`], Section V-F.2).
//!
//! The [`TaskGraph::count_messages`] derivation is tested to agree exactly
//! with the independent analytic counters in `sbc_dist::comm` — two
//! implementations of the paper's communication model that must coincide.

#![warn(missing_docs)]

pub mod builders;
pub mod graph;
pub mod priority;
pub mod task;

pub use builders::{
    build_lauum, build_lu, build_posv, build_potrf, build_potrf_25d, build_potri,
    build_potri_remap, build_trtri,
};
pub use graph::{EdgeKind, GraphBuilder, InitialFetch, TaskGraph};
pub use priority::{critical_path_length, critical_path_priorities, flops_cost, flops_priorities};
pub use task::{Task, TaskId, TaskKind, TileRef};
