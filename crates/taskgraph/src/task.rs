//! Task and data identifiers.

use sbc_kernels::flops;

/// Index of a task within its [`crate::TaskGraph`].
pub type TaskId = u32;

/// A logical tile instance — the unit of data access, versioning and
/// communication.
///
/// `phase` distinguishes redistributed generations of the matrix in the
/// remapped POTRI workflow (0 = first distribution, 1 = after the first
/// redistribution, ...). `slice` distinguishes the per-slice copies of the
/// 2.5D layout. Both are 0 for plain 2D operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileRef {
    /// Lower tile `(i, j)` of the symmetric matrix (`j <= i`).
    A {
        /// Redistribution generation.
        phase: u8,
        /// 2.5D slice of this copy.
        slice: u8,
        /// Tile row.
        i: u32,
        /// Tile column.
        j: u32,
    },
    /// 2.5D accumulation buffer for tile `(i, j)` on a slice (starts zero).
    Buf {
        /// Owning slice.
        slice: u8,
        /// Tile row.
        i: u32,
        /// Tile column.
        j: u32,
    },
    /// Right-hand-side panel tile row `i`.
    B {
        /// Tile row.
        i: u32,
    },
}

/// The kind (and coordinates) of a task. Coordinates follow the loop
/// variables of the corresponding sequential algorithm in `sbc-matrix`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Cholesky of diagonal tile `k` (Algorithm 1 line 2).
    Potrf {
        /// Iteration / diagonal index.
        k: u32,
    },
    /// Panel solve of tile `(i, k)` against diagonal `k` (line 4), `i > k`.
    Trsm {
        /// Iteration (column).
        k: u32,
        /// Row of the target tile.
        i: u32,
    },
    /// Trailing diagonal update of `(k, k)` from panel tile `(k, i)`
    /// (line 6), `k > i`.
    Syrk {
        /// Iteration generating the update.
        i: u32,
        /// Diagonal index updated.
        k: u32,
    },
    /// Trailing update of `(j, k)` from panel tiles `(j, i)`, `(k, i)`
    /// (line 8), `j > k > i`.
    Gemm {
        /// Iteration generating the update.
        i: u32,
        /// Row of the target tile.
        j: u32,
        /// Column of the target tile.
        k: u32,
    },
    /// 2.5D reduction: add slice `from_slice`'s accumulation buffer of tile
    /// `(i, j)` into the executing slice's copy (Section IV).
    Reduce {
        /// Tile row.
        i: u32,
        /// Tile column (= iteration whose panel consumes the result).
        j: u32,
        /// Slice whose buffer is folded in.
        from_slice: u32,
    },
    /// POSV forward solve of RHS row `i`.
    TrsmFwd {
        /// Iteration.
        i: u32,
    },
    /// POSV forward update `B[j] -= A[j][i] B[i]`, `j > i`.
    GemmFwd {
        /// Iteration.
        i: u32,
        /// Target RHS row.
        j: u32,
    },
    /// POSV backward solve of RHS row `i`.
    TrsmBwd {
        /// Iteration.
        i: u32,
    },
    /// POSV backward update `B[j] -= A[i][j]^T B[i]`, `j < i`.
    GemmBwd {
        /// Iteration.
        i: u32,
        /// Target RHS row.
        j: u32,
    },
    /// TRTRI right solve `A[m][k] := -A[m][k] A[k][k]^{-1}`, `m > k`.
    TrsmRInv {
        /// Iteration.
        k: u32,
        /// Row of the target tile.
        m: u32,
    },
    /// TRTRI update `A[m][n] += A[m][k] A[k][n]`, `m > k > n`.
    GemmInv {
        /// Iteration.
        k: u32,
        /// Row of the target tile.
        m: u32,
        /// Column of the target tile.
        n: u32,
    },
    /// TRTRI left solve `A[k][n] := A[k][k]^{-1} A[k][n]`, `n < k`.
    TrsmLInv {
        /// Iteration.
        k: u32,
        /// Column of the target tile.
        n: u32,
    },
    /// TRTRI of diagonal tile `k`.
    TrtriDiag {
        /// Iteration.
        k: u32,
    },
    /// LAUUM diagonal update `A[n][n] += A[k][n]^T A[k][n]`, `n < k`.
    SyrkLu {
        /// Iteration.
        k: u32,
        /// Diagonal index updated.
        n: u32,
    },
    /// LAUUM update `A[m][n] += A[k][m]^T A[k][n]`, `n < m < k`.
    GemmLu {
        /// Iteration.
        k: u32,
        /// Row of the target tile.
        m: u32,
        /// Column of the target tile.
        n: u32,
    },
    /// LAUUM row scale `A[k][n] := A[k][k]^T A[k][n]`, `n < k`.
    TrmmLu {
        /// Iteration.
        k: u32,
        /// Column of the target tile.
        n: u32,
    },
    /// LAUUM of diagonal tile `k`.
    LauumDiag {
        /// Iteration.
        k: u32,
    },
    /// LU factorization of diagonal tile `k` (no pivoting; Section III-E's
    /// comparison case).
    Getrf {
        /// Iteration / diagonal index.
        k: u32,
    },
    /// LU row-panel solve `A[k][j] := L(kk)^{-1} A[k][j]`, `j > k`.
    TrsmRow {
        /// Iteration.
        k: u32,
        /// Column of the target tile.
        j: u32,
    },
    /// LU column-panel solve `A[i][k] := A[i][k] U(kk)^{-1}`, `i > k`.
    TrsmCol {
        /// Iteration.
        k: u32,
        /// Row of the target tile.
        i: u32,
    },
    /// LU trailing update `A[i][j] -= A[i][k] A[k][j]`, `i, j > k`.
    GemmTrail {
        /// Iteration generating the update.
        k: u32,
        /// Row of the target tile.
        i: u32,
        /// Column of the target tile.
        j: u32,
    },
    /// Redistribution copy of tile `(i, j)` to its next-phase owner
    /// (zero flops; generates one message when the owner changes).
    Move {
        /// Tile row.
        i: u32,
        /// Tile column.
        j: u32,
    },
}

impl TaskKind {
    /// Flop cost of this task for tile dimension `b`.
    pub fn flops(&self, b: usize) -> f64 {
        match self {
            TaskKind::Potrf { .. } => flops::flops_potrf(b),
            TaskKind::Trsm { .. } => flops::flops_trsm(b),
            TaskKind::Syrk { .. } | TaskKind::SyrkLu { .. } => flops::flops_syrk(b),
            TaskKind::Gemm { .. }
            | TaskKind::GemmInv { .. }
            | TaskKind::GemmLu { .. }
            | TaskKind::GemmTrail { .. } => flops::flops_gemm(b),
            TaskKind::Getrf { .. } => flops::flops_getrf(b),
            TaskKind::TrsmRow { .. } | TaskKind::TrsmCol { .. } => flops::flops_trsm(b),
            TaskKind::Reduce { .. } => (b * b) as f64,
            // RHS tasks operate on one b x b tile of right-hand sides
            TaskKind::TrsmFwd { .. } | TaskKind::TrsmBwd { .. } => flops::flops_trsm(b),
            TaskKind::GemmFwd { .. } | TaskKind::GemmBwd { .. } => flops::flops_gemm(b),
            TaskKind::TrsmRInv { .. } | TaskKind::TrsmLInv { .. } => flops::flops_trsm(b),
            TaskKind::TrtriDiag { .. } => flops::flops_trtri(b),
            TaskKind::TrmmLu { .. } => flops::flops_trmm(b),
            TaskKind::LauumDiag { .. } => flops::flops_lauum(b),
            TaskKind::Move { .. } => 0.0,
        }
    }

    /// Stable lower-case kernel name, without coordinates — the key used by
    /// per-kind metrics and trace exporters in `sbc-obs`.
    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::Potrf { .. } => "potrf",
            TaskKind::Trsm { .. } => "trsm",
            TaskKind::Syrk { .. } => "syrk",
            TaskKind::Gemm { .. } => "gemm",
            TaskKind::Reduce { .. } => "reduce",
            TaskKind::TrsmFwd { .. } => "trsm_fwd",
            TaskKind::GemmFwd { .. } => "gemm_fwd",
            TaskKind::TrsmBwd { .. } => "trsm_bwd",
            TaskKind::GemmBwd { .. } => "gemm_bwd",
            TaskKind::TrsmRInv { .. } => "trsm_rinv",
            TaskKind::GemmInv { .. } => "gemm_inv",
            TaskKind::TrsmLInv { .. } => "trsm_linv",
            TaskKind::TrtriDiag { .. } => "trtri",
            TaskKind::SyrkLu { .. } => "syrk_lu",
            TaskKind::GemmLu { .. } => "gemm_lu",
            TaskKind::TrmmLu { .. } => "trmm_lu",
            TaskKind::LauumDiag { .. } => "lauum",
            TaskKind::Getrf { .. } => "getrf",
            TaskKind::TrsmRow { .. } => "trsm_row",
            TaskKind::TrsmCol { .. } => "trsm_col",
            TaskKind::GemmTrail { .. } => "gemm_trail",
            TaskKind::Move { .. } => "move",
        }
    }

    /// The algorithm iteration this task belongs to — used by priorities and
    /// by the bulk-synchronous (COnfCHOX-like) scheduling mode.
    pub fn iteration(&self) -> u32 {
        match *self {
            TaskKind::Potrf { k }
            | TaskKind::Trsm { k, .. }
            | TaskKind::TrsmRInv { k, .. }
            | TaskKind::GemmInv { k, .. }
            | TaskKind::TrsmLInv { k, .. }
            | TaskKind::TrtriDiag { k }
            | TaskKind::SyrkLu { k, .. }
            | TaskKind::GemmLu { k, .. }
            | TaskKind::TrmmLu { k, .. }
            | TaskKind::LauumDiag { k }
            | TaskKind::Getrf { k }
            | TaskKind::TrsmRow { k, .. }
            | TaskKind::TrsmCol { k, .. }
            | TaskKind::GemmTrail { k, .. } => k,
            TaskKind::Syrk { i, .. }
            | TaskKind::Gemm { i, .. }
            | TaskKind::TrsmFwd { i }
            | TaskKind::GemmFwd { i, .. }
            | TaskKind::TrsmBwd { i }
            | TaskKind::GemmBwd { i, .. } => i,
            // a reduction feeds the panel tasks of iteration j
            TaskKind::Reduce { j, .. } => j,
            TaskKind::Move { .. } => 0,
        }
    }
}

/// A task: its kind, the node executing it (owner-computes), and the
/// redistribution phase its tile accesses refer to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// What to compute.
    pub kind: TaskKind,
    /// Executing node.
    pub node: u32,
    /// Redistribution generation of the `A` tiles this task touches.
    pub phase: u8,
}

/// The (at most two) tiles a task reads besides its read-modify-write
/// target. Returned by [`Task::reads`]; avoids heap allocation in the hot
/// graph-construction loop.
#[derive(Debug, Clone, Copy)]
pub struct ReadSet {
    arr: [TileRef; 2],
    len: u8,
}

impl ReadSet {
    const EMPTY_SLOT: TileRef = TileRef::B { i: u32::MAX };

    fn none() -> Self {
        ReadSet {
            arr: [Self::EMPTY_SLOT; 2],
            len: 0,
        }
    }
    fn one(a: TileRef) -> Self {
        ReadSet {
            arr: [a, Self::EMPTY_SLOT],
            len: 1,
        }
    }
    fn two(a: TileRef, b: TileRef) -> Self {
        ReadSet {
            arr: [a, b],
            len: 2,
        }
    }

    /// The reads as a slice.
    pub fn as_slice(&self) -> &[TileRef] {
        &self.arr[..self.len as usize]
    }
}

impl Task {
    /// 2.5D slice executing iteration `k` for `c` slices.
    #[inline]
    fn sigma(k: u32, c: usize) -> u8 {
        (k as usize % c) as u8
    }

    /// The tile this task read-modify-writes, for a graph with `c` slices.
    ///
    /// This is the single source of truth for task data accesses: the graph
    /// builders and the distributed runtime's executor both use it, so the
    /// dependence structure and the actual kernel operands cannot diverge.
    pub fn output(&self, c: usize) -> TileRef {
        let ph = self.phase;
        let a = |slice: u8, i: u32, j: u32| TileRef::A {
            phase: ph,
            slice,
            i,
            j,
        };
        match self.kind {
            TaskKind::Potrf { k } => a(Self::sigma(k, c), k, k),
            TaskKind::Trsm { k, i } => a(Self::sigma(k, c), i, k),
            TaskKind::Syrk { i, k } => {
                let s = Self::sigma(i, c);
                if Self::sigma(k, c) == s {
                    a(s, k, k)
                } else {
                    TileRef::Buf {
                        slice: s,
                        i: k,
                        j: k,
                    }
                }
            }
            TaskKind::Gemm { i, j, k } => {
                let s = Self::sigma(i, c);
                if Self::sigma(k, c) == s {
                    a(s, j, k)
                } else {
                    TileRef::Buf {
                        slice: s,
                        i: j,
                        j: k,
                    }
                }
            }
            TaskKind::Reduce { i, j, .. } => a(Self::sigma(j, c), i, j),
            TaskKind::TrsmFwd { i } | TaskKind::TrsmBwd { i } => TileRef::B { i },
            TaskKind::GemmFwd { j, .. } | TaskKind::GemmBwd { j, .. } => TileRef::B { i: j },
            TaskKind::TrsmRInv { k, m } => a(0, m, k),
            TaskKind::GemmInv { m, n, .. } => a(0, m, n),
            TaskKind::TrsmLInv { k, n } => a(0, k, n),
            TaskKind::TrtriDiag { k } => a(0, k, k),
            TaskKind::SyrkLu { n, .. } => a(0, n, n),
            TaskKind::GemmLu { m, n, .. } => a(0, m, n),
            TaskKind::TrmmLu { k, n } => a(0, k, n),
            TaskKind::LauumDiag { k } => a(0, k, k),
            TaskKind::Getrf { k } => a(0, k, k),
            TaskKind::TrsmRow { k, j } => a(0, k, j),
            TaskKind::TrsmCol { k, i } => a(0, i, k),
            TaskKind::GemmTrail { i, j, .. } => a(0, i, j),
            TaskKind::Move { i, j } => a(0, i, j),
        }
    }

    /// The tiles this task reads (excluding the read-modify-write target),
    /// for a graph with `c` slices, in the operand order the executor's
    /// kernel dispatch expects.
    pub fn reads(&self, c: usize) -> ReadSet {
        let ph = self.phase;
        let a = |slice: u8, i: u32, j: u32| TileRef::A {
            phase: ph,
            slice,
            i,
            j,
        };
        match self.kind {
            TaskKind::Potrf { .. }
            | TaskKind::TrtriDiag { .. }
            | TaskKind::LauumDiag { .. }
            | TaskKind::Getrf { .. } => ReadSet::none(),
            TaskKind::TrsmRow { k, .. } | TaskKind::TrsmCol { k, .. } => ReadSet::one(a(0, k, k)),
            TaskKind::GemmTrail { k, i, j } => ReadSet::two(a(0, i, k), a(0, k, j)),
            TaskKind::Trsm { k, .. } => ReadSet::one(a(Self::sigma(k, c), k, k)),
            TaskKind::Syrk { i, k } => ReadSet::one(a(Self::sigma(i, c), k, i)),
            TaskKind::Gemm { i, j, k } => {
                let s = Self::sigma(i, c);
                ReadSet::two(a(s, j, i), a(s, k, i))
            }
            TaskKind::Reduce { i, j, from_slice } => ReadSet::one(TileRef::Buf {
                slice: from_slice as u8,
                i,
                j,
            }),
            TaskKind::TrsmFwd { i } | TaskKind::TrsmBwd { i } => ReadSet::one(a(0, i, i)),
            TaskKind::GemmFwd { i, j } => ReadSet::two(a(0, j, i), TileRef::B { i }),
            TaskKind::GemmBwd { i, j } => ReadSet::two(a(0, i, j), TileRef::B { i }),
            TaskKind::TrsmRInv { k, .. } => ReadSet::one(a(0, k, k)),
            TaskKind::GemmInv { k, m, n } => ReadSet::two(a(0, m, k), a(0, k, n)),
            TaskKind::TrsmLInv { k, .. } => ReadSet::one(a(0, k, k)),
            TaskKind::SyrkLu { k, n } => ReadSet::one(a(0, k, n)),
            TaskKind::GemmLu { k, m, n } => ReadSet::two(a(0, k, m), a(0, k, n)),
            TaskKind::TrmmLu { k, .. } => ReadSet::one(a(0, k, k)),
            TaskKind::Move { i, j } => ReadSet::one(TileRef::A {
                phase: ph - 1,
                slice: 0,
                i,
                j,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_are_positive_except_move() {
        let b = 64;
        assert!(TaskKind::Potrf { k: 0 }.flops(b) > 0.0);
        assert!(TaskKind::Gemm { i: 0, j: 2, k: 1 }.flops(b) > 0.0);
        assert_eq!(TaskKind::Move { i: 1, j: 0 }.flops(b), 0.0);
        assert!(
            TaskKind::Reduce {
                i: 1,
                j: 0,
                from_slice: 1
            }
            .flops(b)
                > 0.0
        );
    }

    #[test]
    fn gemm_dominates_costs() {
        let b = 128;
        let g = TaskKind::Gemm { i: 0, j: 2, k: 1 }.flops(b);
        for k in [
            TaskKind::Potrf { k: 0 },
            TaskKind::Trsm { k: 0, i: 1 },
            TaskKind::Syrk { i: 0, k: 1 },
        ] {
            assert!(k.flops(b) <= g);
        }
    }

    #[test]
    fn iterations() {
        assert_eq!(TaskKind::Potrf { k: 3 }.iteration(), 3);
        assert_eq!(TaskKind::Gemm { i: 2, j: 5, k: 4 }.iteration(), 2);
        assert_eq!(
            TaskKind::Reduce {
                i: 5,
                j: 4,
                from_slice: 0
            }
            .iteration(),
            4
        );
        assert_eq!(TaskKind::GemmBwd { i: 4, j: 1 }.iteration(), 4);
    }

    #[test]
    fn tileref_equality_and_hash() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(TileRef::A {
            phase: 0,
            slice: 0,
            i: 1,
            j: 0,
        });
        s.insert(TileRef::A {
            phase: 0,
            slice: 1,
            i: 1,
            j: 0,
        });
        s.insert(TileRef::Buf {
            slice: 1,
            i: 1,
            j: 0,
        });
        s.insert(TileRef::B { i: 1 });
        assert_eq!(s.len(), 4);
        assert!(s.contains(&TileRef::A {
            phase: 0,
            slice: 0,
            i: 1,
            j: 0
        }));
    }
}
