//! Task graph storage and the superscalar dependency-inference builder.

use crate::task::{Task, TaskId, TileRef};
use std::collections::HashMap;

/// A transfer of *original* (never written in this graph) tile data from its
/// home node to a consumer node, needed before the consumers can run.
///
/// These arise in standalone TRTRI/LAUUM graphs whose inputs are consumed
/// before any task rewrites them; composed graphs (POTRF, POSV, POTRI) read
/// originals only on their owner node and have none.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitialFetch {
    /// The tile fetched.
    pub tile: TileRef,
    /// Node storing the original.
    pub home: u32,
    /// Node needing it.
    pub dest: u32,
    /// Tasks on `dest` blocked on this fetch.
    pub consumers: Vec<TaskId>,
}

/// Kind of a dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Read-after-write: the consumer needs the producer's output tile. If
    /// the two tasks run on different nodes, this edge implies a message.
    Data,
    /// Write-after-read on the same node's storage: pure ordering, no data
    /// moves (a remote reader works on its received copy instead).
    Ordering,
}

const WAR_BIT: u32 = 1 << 31;

/// Compressed sparse storage of predecessor/successor lists.
#[derive(Debug, Clone, Default)]
struct Csr {
    offsets: Vec<u32>,
    edges: Vec<u32>, // task id, top bit = Ordering edge
}

impl Csr {
    fn range(&self, t: TaskId) -> &[u32] {
        let t = t as usize;
        &self.edges[self.offsets[t] as usize..self.offsets[t + 1] as usize]
    }
}

/// An immutable distributed task graph.
///
/// Tasks are stored in submission order, which is a valid topological order
/// (the builder only creates edges to previously submitted tasks).
pub struct TaskGraph {
    tasks: Vec<Task>,
    preds: Csr,
    succs: Csr,
    initial_fetches: Vec<InitialFetch>,
    /// Number of nodes across the whole platform.
    num_nodes: usize,
    /// Tile count `N` of the matrix the graph was built for.
    pub nt: usize,
    /// 2.5D slice count (1 for plain 2D graphs).
    pub slices: usize,
}

impl TaskGraph {
    /// The tasks in submission (= topological) order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of platform nodes this graph is placed on.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Predecessors of `t` with edge kinds.
    pub fn preds(&self, t: TaskId) -> impl Iterator<Item = (TaskId, EdgeKind)> + '_ {
        self.preds.range(t).iter().map(|&e| decode(e))
    }

    /// Successors of `t` with edge kinds.
    pub fn succs(&self, t: TaskId) -> impl Iterator<Item = (TaskId, EdgeKind)> + '_ {
        self.succs.range(t).iter().map(|&e| decode(e))
    }

    /// In-degree (all edge kinds) of every task — the initial dependency
    /// counters for schedulers.
    pub fn in_degrees(&self) -> Vec<u32> {
        (0..self.len())
            .map(|t| self.preds.offsets[t + 1] - self.preds.offsets[t])
            .collect()
    }

    /// Collects the distinct remote nodes that need `t`'s output tile
    /// (consumers of data edges on other nodes), appending into `out`.
    pub fn remote_consumer_nodes(&self, t: TaskId, out: &mut Vec<u32>) {
        out.clear();
        let own = self.tasks[t as usize].node;
        for (s, kind) in self.succs(t) {
            if kind == EdgeKind::Data {
                let n = self.tasks[s as usize].node;
                if n != own && !out.contains(&n) {
                    out.push(n);
                }
            }
        }
    }

    /// Transfers of original input tiles to remote consumers.
    pub fn initial_fetches(&self) -> &[InitialFetch] {
        &self.initial_fetches
    }

    /// Total number of inter-node messages implied by the graph: one per
    /// distinct `(producer, consumer node)` pair over data edges, plus one
    /// per initial fetch of original data.
    ///
    /// This is the quantity `sbc_dist::comm` computes analytically; the two
    /// must agree exactly (tested).
    pub fn count_messages(&self) -> u64 {
        let mut total = self.initial_fetches.len() as u64;
        let mut buf = Vec::new();
        for t in 0..self.len() as TaskId {
            self.remote_consumer_nodes(t, &mut buf);
            total += buf.len() as u64;
        }
        total
    }

    /// Extra dependency counts per task contributed by initial fetches (a
    /// consumer cannot start before its fetched originals arrive).
    pub fn fetch_deps(&self) -> Vec<u32> {
        let mut deps = vec![0u32; self.len()];
        for f in &self.initial_fetches {
            for &t in &f.consumers {
                deps[t as usize] += 1;
            }
        }
        deps
    }

    /// Total flops of the graph for tile dimension `b`.
    pub fn total_flops(&self, b: usize) -> f64 {
        self.tasks.iter().map(|t| t.kind.flops(b)).sum()
    }

    /// Per-node task counts (all kinds).
    pub fn tasks_per_node(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_nodes];
        for t in &self.tasks {
            counts[t.node as usize] += 1;
        }
        counts
    }

    /// Validates structural invariants: edges point to earlier tasks
    /// (acyclicity via topological submission order), symmetric pred/succ
    /// storage, and node ids within range.
    pub fn validate(&self) -> Result<(), String> {
        for t in 0..self.len() as TaskId {
            if self.tasks[t as usize].node as usize >= self.num_nodes {
                return Err(format!("task {t} on out-of-range node"));
            }
            for (p, _) in self.preds(t) {
                if p >= t {
                    return Err(format!("edge {p} -> {t} does not point backwards"));
                }
                if !self.succs(p).any(|(s, _)| s == t) {
                    return Err(format!("missing mirror succ edge {p} -> {t}"));
                }
            }
        }
        let pred_edges: usize = self.preds.edges.len();
        let succ_edges: usize = self.succs.edges.len();
        if pred_edges != succ_edges {
            return Err(format!("edge count mismatch {pred_edges} vs {succ_edges}"));
        }
        Ok(())
    }
}

#[inline]
fn decode(e: u32) -> (TaskId, EdgeKind) {
    if e & WAR_BIT != 0 {
        (e & !WAR_BIT, EdgeKind::Ordering)
    } else {
        (e, EdgeKind::Data)
    }
}

/// Per-tile access state tracked during graph construction.
#[derive(Default)]
struct DataState {
    last_writer: Option<TaskId>,
    /// Readers since the last write, with their executing node.
    readers: Vec<(TaskId, u32)>,
}

/// Superscalar task-graph builder: submit tasks in sequential-program order
/// with explicit read/write tile sets; dependencies are inferred exactly as
/// StarPU infers them from access modes:
///
/// * each *read* depends on the tile's last writer (read-after-write, a
///   data edge carrying the tile),
/// * each *write* depends on the tile's last writer (write chains; all
///   writers of a tile share its owner node, so these are local) and on all
///   same-node readers since then (write-after-read ordering edges —
///   remote readers received a copy and impose nothing).
pub struct GraphBuilder {
    tasks: Vec<Task>,
    // flat (consumer, encoded pred) pairs, turned into CSR at finish
    edge_list: Vec<(u32, u32)>,
    data: HashMap<TileRef, DataState>,
    /// Home node of original (input) data, for tiles consumed before any
    /// task writes them. Registered by builders of standalone operations.
    homes: HashMap<TileRef, u32>,
    fetches: HashMap<(TileRef, u32), Vec<TaskId>>,
    num_nodes: usize,
    nt: usize,
    slices: usize,
    // scratch for dedup
    scratch: Vec<u32>,
}

impl GraphBuilder {
    /// Creates a builder for a platform of `num_nodes` nodes and a matrix of
    /// `nt x nt` tiles, with `slices` 2.5D slices (1 for 2D).
    pub fn new(num_nodes: usize, nt: usize, slices: usize) -> Self {
        GraphBuilder {
            tasks: Vec::new(),
            edge_list: Vec::new(),
            data: HashMap::new(),
            homes: HashMap::new(),
            fetches: HashMap::new(),
            num_nodes,
            nt,
            slices,
            scratch: Vec::new(),
        }
    }

    /// Declares the home node of an original input tile. A read of a tile
    /// with no writer yet, by a task on a different node, then records an
    /// [`InitialFetch`] instead of being silently treated as local.
    pub fn set_home(&mut self, tile: TileRef, node: u32) {
        self.homes.insert(tile, node);
    }

    /// Submits a task reading `reads` and read-modify-writing `target`.
    /// Returns the new task's id.
    pub fn submit(&mut self, task: Task, reads: &[TileRef], target: TileRef) -> TaskId {
        let tid = self.tasks.len() as TaskId;
        assert!(
            (task.node as usize) < self.num_nodes,
            "task node out of range"
        );
        self.scratch.clear();
        for r in reads {
            debug_assert_ne!(*r, target, "target must not be listed in reads");
            let st = self.data.entry(*r).or_default();
            match st.last_writer {
                Some(w) => self.scratch.push(w), // data edge
                None => {
                    // reading original data: remote homes need a fetch
                    if let Some(&home) = self.homes.get(r) {
                        if home != task.node {
                            let entry = self.fetches.entry((*r, task.node)).or_default();
                            if entry.last() != Some(&tid) {
                                entry.push(tid);
                            }
                        }
                    }
                }
            }
            st.readers.push((tid, task.node));
        }
        {
            if self
                .data
                .get(&target)
                .is_none_or(|st| st.last_writer.is_none())
            {
                // first write read-modifies the original: remote home needs a fetch
                if let Some(&home) = self.homes.get(&target) {
                    if home != task.node {
                        let entry = self.fetches.entry((target, task.node)).or_default();
                        if entry.last() != Some(&tid) {
                            entry.push(tid);
                        }
                    }
                }
            }
            let st = self.data.entry(target).or_default();
            if let Some(w) = st.last_writer {
                self.scratch.push(w); // write chain (local, still carries data for RMW)
            }
            for &(rdr, node) in &st.readers {
                if node == task.node {
                    self.scratch.push(rdr | WAR_BIT);
                }
            }
            st.last_writer = Some(tid);
            st.readers.clear();
        }
        // dedup, preferring Data over Ordering when both exist
        self.scratch
            .sort_unstable_by_key(|&e| (e & !WAR_BIT, e & WAR_BIT));
        let mut last: Option<u32> = None;
        for &e in &self.scratch {
            let id = e & !WAR_BIT;
            if last == Some(id) {
                continue;
            }
            last = Some(id);
            self.edge_list.push((tid, e));
        }
        self.tasks.push(task);
        tid
    }

    /// Submits a task, deriving its read set and target from
    /// [`Task::reads`] / [`Task::output`] with this builder's slice count —
    /// the normal entry point for the operation builders.
    pub fn submit_task(&mut self, task: Task) -> TaskId {
        let reads = task.reads(self.slices);
        let target = task.output(self.slices);
        self.submit(task, reads.as_slice(), target)
    }

    /// Number of tasks submitted so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no tasks have been submitted.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Finalizes the graph: packs predecessor and successor CSR structures.
    pub fn finish(mut self) -> TaskGraph {
        let n = self.tasks.len();
        // predecessor CSR (edge_list is grouped by consumer already since
        // submissions append in order, but sort defensively)
        self.edge_list.sort_unstable_by_key(|&(c, _)| c);
        let mut pred_offsets = vec![0u32; n + 1];
        for &(c, _) in &self.edge_list {
            pred_offsets[c as usize + 1] += 1;
        }
        for i in 0..n {
            pred_offsets[i + 1] += pred_offsets[i];
        }
        let pred_edges: Vec<u32> = self.edge_list.iter().map(|&(_, e)| e).collect();

        // successor CSR by counting sort over producers
        let mut succ_offsets = vec![0u32; n + 1];
        for &(_, e) in &self.edge_list {
            succ_offsets[(e & !WAR_BIT) as usize + 1] += 1;
        }
        for i in 0..n {
            succ_offsets[i + 1] += succ_offsets[i];
        }
        let mut cursor = succ_offsets.clone();
        let mut succ_edges = vec![0u32; self.edge_list.len()];
        for &(c, e) in &self.edge_list {
            let p = (e & !WAR_BIT) as usize;
            succ_edges[cursor[p] as usize] = c | (e & WAR_BIT);
            cursor[p] += 1;
        }

        let homes = self.homes;
        let mut initial_fetches: Vec<InitialFetch> = self
            .fetches
            .into_iter()
            .map(|((tile, dest), consumers)| InitialFetch {
                tile,
                home: homes[&tile],
                dest,
                consumers,
            })
            .collect();
        initial_fetches.sort_by_key(|f| (f.home, f.dest, f.consumers.first().copied()));

        TaskGraph {
            tasks: self.tasks,
            preds: Csr {
                offsets: pred_offsets,
                edges: pred_edges,
            },
            succs: Csr {
                offsets: succ_offsets,
                edges: succ_edges,
            },
            initial_fetches,
            num_nodes: self.num_nodes,
            nt: self.nt,
            slices: self.slices,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKind;

    fn a(i: u32, j: u32) -> TileRef {
        TileRef::A {
            phase: 0,
            slice: 0,
            i,
            j,
        }
    }

    fn mk(kind: TaskKind, node: u32) -> Task {
        Task {
            kind,
            node,
            phase: 0,
        }
    }

    #[test]
    fn raw_edge_inferred() {
        let mut b = GraphBuilder::new(2, 2, 1);
        let t0 = b.submit(mk(TaskKind::Potrf { k: 0 }, 0), &[], a(0, 0));
        let t1 = b.submit(mk(TaskKind::Trsm { k: 0, i: 1 }, 1), &[a(0, 0)], a(1, 0));
        let g = b.finish();
        g.validate().unwrap();
        let preds: Vec<_> = g.preds(t1).collect();
        assert_eq!(preds, vec![(t0, EdgeKind::Data)]);
        assert_eq!(g.count_messages(), 1); // cross-node data edge
    }

    #[test]
    fn write_chain_inferred() {
        let mut b = GraphBuilder::new(1, 3, 1);
        let t0 = b.submit(
            mk(TaskKind::Gemm { i: 0, j: 2, k: 1 }, 0),
            &[a(2, 0), a(1, 0)],
            a(2, 1),
        );
        let t1 = b.submit(mk(TaskKind::Trsm { k: 1, i: 2 }, 0), &[a(1, 1)], a(2, 1));
        let g = b.finish();
        let preds: Vec<_> = g.preds(t1).collect();
        assert!(preds.contains(&(t0, EdgeKind::Data)));
    }

    #[test]
    fn war_edge_only_for_same_node_readers() {
        // reader on node 1 reads tile X; writer on node 0 overwrites X.
        // No WAR edge (remote copy). Same-node reader does get one.
        let mut b = GraphBuilder::new(2, 3, 1);
        let w0 = b.submit(mk(TaskKind::Potrf { k: 0 }, 0), &[], a(0, 0));
        let remote_reader = b.submit(mk(TaskKind::Trsm { k: 0, i: 1 }, 1), &[a(0, 0)], a(1, 0));
        let local_reader = b.submit(mk(TaskKind::Trsm { k: 0, i: 2 }, 0), &[a(0, 0)], a(2, 0));
        let w1 = b.submit(mk(TaskKind::LauumDiag { k: 0 }, 0), &[], a(0, 0));
        let g = b.finish();
        let preds: Vec<_> = g.preds(w1).collect();
        assert!(preds.contains(&(w0, EdgeKind::Data))); // write chain
        assert!(preds.contains(&(local_reader, EdgeKind::Ordering)));
        assert!(!preds.iter().any(|&(p, _)| p == remote_reader));
    }

    #[test]
    fn duplicate_reads_deduplicated() {
        let mut b = GraphBuilder::new(2, 3, 1);
        let p = b.submit(mk(TaskKind::Trsm { k: 0, i: 1 }, 0), &[], a(1, 0));
        // syrk reads the same tile "twice" (A A^T)
        let s = b.submit(
            mk(TaskKind::Syrk { i: 0, k: 1 }, 1),
            &[a(1, 0), a(1, 0)],
            a(1, 1),
        );
        let g = b.finish();
        assert_eq!(g.preds(s).count(), 1);
        assert_eq!(g.count_messages(), 1);
        let _ = p;
    }

    #[test]
    fn message_dedup_per_consumer_node() {
        // one producer feeding two tasks on the same remote node = 1 message
        let mut b = GraphBuilder::new(2, 4, 1);
        let p = b.submit(mk(TaskKind::Trsm { k: 0, i: 1 }, 0), &[], a(1, 0));
        b.submit(mk(TaskKind::Syrk { i: 0, k: 1 }, 1), &[a(1, 0)], a(1, 1));
        b.submit(
            mk(TaskKind::Gemm { i: 0, j: 2, k: 1 }, 1),
            &[a(2, 0), a(1, 0)],
            a(2, 1),
        );
        let g = b.finish();
        let mut buf = Vec::new();
        g.remote_consumer_nodes(p, &mut buf);
        assert_eq!(buf, vec![1]);
    }

    #[test]
    fn validate_catches_everything_on_good_graphs() {
        let mut b = GraphBuilder::new(3, 4, 1);
        let mut prev = None;
        for k in 0..4u32 {
            let reads: Vec<TileRef> = prev.into_iter().collect();
            let t = b.submit(mk(TaskKind::Potrf { k }, k % 3), &reads, a(k, k));
            let _ = t;
            prev = Some(a(k, k));
        }
        let g = b.finish();
        g.validate().unwrap();
        assert_eq!(g.len(), 4);
        // chain of data edges across nodes 0,1,2,0 -> 3 messages
        assert_eq!(g.count_messages(), 3);
    }

    #[test]
    fn in_degrees_count_all_edges() {
        let mut b = GraphBuilder::new(1, 3, 1);
        b.submit(mk(TaskKind::Potrf { k: 0 }, 0), &[], a(0, 0));
        b.submit(mk(TaskKind::Trsm { k: 0, i: 1 }, 0), &[a(0, 0)], a(1, 0));
        b.submit(mk(TaskKind::Syrk { i: 0, k: 1 }, 0), &[a(1, 0)], a(1, 1));
        let g = b.finish();
        assert_eq!(g.in_degrees(), vec![0, 1, 1]);
    }
}
