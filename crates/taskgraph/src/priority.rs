//! Task priorities.
//!
//! StarPU schedules ready tasks by dynamic priorities; for tiled Cholesky
//! the decisive heuristic is to favour tasks on the critical path (the
//! POTRF→TRSM chain down the diagonal) so panel results are produced — and
//! broadcast — as early as possible. We compute the classical *upward rank*:
//! `prio[t] = cost(t) + max over successors prio[s]`, in one reverse pass
//! over the topological (submission) order.

use crate::graph::TaskGraph;
use crate::task::Task;

/// Computes longest-path-to-exit priorities with a per-task cost model
/// (typically estimated execution seconds; flops work as well since only
/// ordering matters).
///
/// Larger is more urgent. Communication costs are not included — the
/// simulator/runtime use these as list-scheduling keys only.
pub fn critical_path_priorities(g: &TaskGraph, cost: impl Fn(&Task) -> f64) -> Vec<f32> {
    let n = g.len();
    let mut prio = vec![0.0f32; n];
    for t in (0..n).rev() {
        let mut best = 0.0f32;
        for (s, _) in g.succs(t as u32) {
            best = best.max(prio[s as usize]);
        }
        prio[t] = best + cost(&g.tasks()[t]) as f32;
    }
    prio
}

/// The weighted critical-path length of the graph (the makespan lower bound
/// with infinite resources and free communication).
pub fn critical_path_length(g: &TaskGraph, cost: impl Fn(&Task) -> f64) -> f64 {
    critical_path_priorities(g, cost)
        .into_iter()
        .fold(0.0f32, f32::max) as f64
}

/// The default per-task cost hook: each kind's flop count at tile size `b`.
///
/// Runtimes that have measured per-kind kernel times can pass their own
/// closure to [`critical_path_priorities`]; for list-scheduling only the
/// *ordering* of priorities matters, and flops preserve the ordering that
/// real kernel times induce (all kinds are O(b^3) dense kernels).
pub fn flops_cost(b: usize) -> impl Fn(&Task) -> f64 {
    move |t| t.kind.flops(b)
}

/// Upward-rank priorities under the default flop cost model — the key the
/// threaded runtime's ready heaps are ordered by.
pub fn flops_priorities(g: &TaskGraph, b: usize) -> Vec<f32> {
    critical_path_priorities(g, flops_cost(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::build_potrf;
    use sbc_dist::TwoDBlockCyclic;

    #[test]
    fn priorities_decrease_along_edges() {
        let d = TwoDBlockCyclic::new(2, 2);
        let g = build_potrf(&d, 8);
        let prio = critical_path_priorities(&g, |t| t.kind.flops(8));
        for t in 0..g.len() as u32 {
            for (s, _) in g.succs(t) {
                assert!(prio[t as usize] > prio[s as usize]);
            }
        }
    }

    #[test]
    fn first_potrf_is_most_urgent() {
        let d = TwoDBlockCyclic::new(2, 2);
        let g = build_potrf(&d, 10);
        let prio = critical_path_priorities(&g, |t| t.kind.flops(16));
        let max = prio.iter().cloned().fold(0.0f32, f32::max);
        assert_eq!(prio[0], max); // task 0 is Potrf{0}
    }

    #[test]
    fn critical_path_grows_linearly_in_nt() {
        let d = TwoDBlockCyclic::new(2, 2);
        let c8 = critical_path_length(&build_potrf(&d, 8), |t| t.kind.flops(4));
        let c16 = critical_path_length(&build_potrf(&d, 16), |t| t.kind.flops(4));
        // chain length ~ 3N tasks (potrf, trsm, gemm per iteration)
        assert!(c16 > 1.5 * c8);
        assert!(c16 < 3.0 * c8);
    }

    #[test]
    fn flops_priorities_match_explicit_cost() {
        let d = TwoDBlockCyclic::new(2, 3);
        let g = build_potrf(&d, 9);
        assert_eq!(
            flops_priorities(&g, 16),
            critical_path_priorities(&g, |t| t.kind.flops(16))
        );
    }

    #[test]
    fn zero_cost_gives_zero_length() {
        let d = TwoDBlockCyclic::new(1, 1);
        let g = build_potrf(&d, 5);
        assert_eq!(critical_path_length(&g, |_| 0.0), 0.0);
    }
}
