//! 1D row-cyclic distribution for right-hand-side panels.

use crate::NodeId;

/// 1D row-cyclic distribution: tile row `i` of a panel belongs to node
/// `i mod P`.
///
/// Used for the POSV right-hand side `B` (Section V-F.1 of the paper): since
/// `B` is one tile wide, the dominant communication is the transfer of the
/// column-`i` tiles of `A` to the owners of the matching rows of `B`, and a
/// 1D row-cyclic layout minimizes the per-row owner variety.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowCyclic {
    p: usize,
}

impl RowCyclic {
    /// Creates a row-cyclic distribution over `p` nodes.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "node count must be positive");
        RowCyclic { p }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.p
    }

    /// Owner of panel tile row `i`.
    #[inline]
    pub fn owner_row(&self, i: usize) -> NodeId {
        i % self.p
    }

    /// Human-readable name.
    pub fn name(&self) -> String {
        format!("RowCyclic P={}", self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_over_nodes() {
        let d = RowCyclic::new(4);
        assert_eq!(d.owner_row(0), 0);
        assert_eq!(d.owner_row(5), 1);
        assert_eq!(d.owner_row(7), 3);
        assert_eq!(d.owner_row(8), 0);
    }

    #[test]
    fn balanced_over_rows() {
        let d = RowCyclic::new(5);
        let mut counts = [0usize; 5];
        for i in 0..100 {
            counts[d.owner_row(i)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 20));
    }
}
