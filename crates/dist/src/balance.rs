//! Load-balance metrics for tile distributions.
//!
//! The paper's premise (Section I) is that 2D block-cyclic is used because
//! it balances load, including *over time* as the trailing matrix shrinks;
//! SBC must match that. These metrics quantify it: total tiles per node,
//! GEMM-task counts per node (the dominant work), and the per-iteration
//! trailing-submatrix balance.

use crate::Distribution;

/// Summary statistics over per-node counts.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceStats {
    /// Per-node counts.
    pub per_node: Vec<u64>,
    /// Minimum count over nodes.
    pub min: u64,
    /// Maximum count over nodes.
    pub max: u64,
    /// Mean count.
    pub mean: f64,
}

impl BalanceStats {
    fn from_counts(per_node: Vec<u64>) -> Self {
        let min = per_node.iter().copied().min().unwrap_or(0);
        let max = per_node.iter().copied().max().unwrap_or(0);
        let mean = if per_node.is_empty() {
            0.0
        } else {
            per_node.iter().sum::<u64>() as f64 / per_node.len() as f64
        };
        BalanceStats {
            per_node,
            min,
            max,
            mean,
        }
    }

    /// `max / mean`: 1.0 is perfect balance.
    pub fn imbalance(&self) -> f64 {
        if self.mean == 0.0 {
            1.0
        } else {
            self.max as f64 / self.mean
        }
    }
}

/// Tiles owned per node over the `nt x nt` lower triangle.
pub fn tile_balance<D: Distribution>(dist: &D, nt: usize) -> BalanceStats {
    let mut counts = vec![0u64; dist.num_nodes()];
    for i in 0..nt {
        for j in 0..=i {
            counts[dist.owner(i, j)] += 1;
        }
    }
    BalanceStats::from_counts(counts)
}

/// GEMM tasks executed per node over the whole Cholesky factorization
/// (owner-computes: the GEMM updating tile `(j, k)` at iteration `i` runs on
/// `owner(j, k)`). GEMM dominates the flop count, so this is the primary
/// compute-balance metric.
pub fn gemm_balance<D: Distribution>(dist: &D, nt: usize) -> BalanceStats {
    let mut counts = vec![0u64; dist.num_nodes()];
    for k in 0..nt {
        for j in k + 1..nt {
            // tile (j,k) is a GEMM target once per iteration i < k
            counts[dist.owner(j, k)] += k as u64;
        }
    }
    BalanceStats::from_counts(counts)
}

/// Per-iteration balance: for iteration `i`, the number of *active* tiles
/// (trailing submatrix tiles, rows/cols `> i`) owned per node; returns the
/// worst `max/mean` imbalance over iterations `0..nt_check`.
pub fn worst_trailing_imbalance<D: Distribution>(dist: &D, nt: usize, nt_check: usize) -> f64 {
    let mut worst: f64 = 1.0;
    for i in 0..nt_check.min(nt.saturating_sub(1)) {
        let mut counts = vec![0u64; dist.num_nodes()];
        for r in i + 1..nt {
            for c in i + 1..=r {
                counts[dist.owner(r, c)] += 1;
            }
        }
        let s = BalanceStats::from_counts(counts);
        if s.mean > 0.0 {
            worst = worst.max(s.imbalance());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiagonalCycling, SbcBasic, SbcExtended, TwoDBlockCyclic};

    #[test]
    fn two_dbc_perfectly_balanced_on_multiples() {
        // On an nt multiple of lcm windows the 2DBC tile counts differ by a
        // bounded amount across nodes.
        let d = TwoDBlockCyclic::new(3, 2);
        let s = tile_balance(&d, 36);
        assert!(s.imbalance() < 1.10, "imbalance={}", s.imbalance());
    }

    #[test]
    fn sbc_extended_tile_balance_close_to_uniform() {
        for r in [5, 6, 7, 8, 9] {
            let d = SbcExtended::new(r);
            // whole number of diagonal-pattern cycles so the diagonal is
            // evenly distributed
            let npat = d.diagonal_patterns().len();
            let nt = r * npat * 2;
            let s = tile_balance(&d, nt);
            assert!(
                s.imbalance() < 1.10,
                "r={r} imbalance={} (min={} max={} mean={})",
                s.imbalance(),
                s.min,
                s.max,
                s.mean
            );
        }
    }

    #[test]
    fn sbc_basic_tile_balance() {
        for r in [4, 6, 8] {
            let d = SbcBasic::new(r);
            let nt = 6 * r;
            let s = tile_balance(&d, nt);
            // pair nodes get 2 pattern cells, diagonal nodes 2 cells: balanced
            assert!(s.imbalance() < 1.15, "r={r} imbalance={}", s.imbalance());
        }
    }

    #[test]
    fn gemm_balance_sbc_matches_2dbc_quality() {
        let sbc = SbcExtended::new(7); // P=21
        let dbc = TwoDBlockCyclic::new(7, 3); // P=21
        let nt = 84;
        let sb = gemm_balance(&sbc, nt).imbalance();
        let db = gemm_balance(&dbc, nt).imbalance();
        assert!(sb < 1.15, "sbc gemm imbalance {sb}");
        assert!(sb < db * 1.2, "sbc {sb} vs 2dbc {db}");
    }

    #[test]
    fn trailing_balance_is_bounded() {
        let sbc = SbcExtended::new(6);
        let w = worst_trailing_imbalance(&sbc, 48, 12);
        assert!(w < 1.6, "worst trailing imbalance {w}");
    }

    #[test]
    fn cycling_strategies_both_balanced() {
        for cyc in [DiagonalCycling::ColumnWise, DiagonalCycling::AntiDiagonal] {
            let d = SbcExtended::with_cycling(7, cyc);
            let npat = d.diagonal_patterns().len();
            let s = tile_balance(&d, 7 * npat * 2);
            assert!(s.imbalance() < 1.12, "{cyc:?}: {}", s.imbalance());
        }
    }

    #[test]
    fn stats_helpers() {
        let s = BalanceStats::from_counts(vec![2, 4, 6]);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 6);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.imbalance() - 1.5).abs() < 1e-12);
    }
}
