//! Standard 2D block-cyclic distribution (Fig 1 of the paper).

use crate::{Distribution, NodeId};

/// ScaLAPACK-style 2D block-cyclic distribution over a `p x q` node grid:
/// tile `(i, j)` belongs to node `(i mod p) * q + (j mod q)`.
///
/// With this distribution a TRSM result tile is needed by `p + q - 2` other
/// nodes (the `q - 1` other nodes of its pattern row and the `p - 1` other
/// nodes of its pattern column), which is the communication volume SBC
/// improves on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoDBlockCyclic {
    p: usize,
    q: usize,
}

impl TwoDBlockCyclic {
    /// Creates a `p x q` block-cyclic distribution.
    ///
    /// # Panics
    /// Panics if `p == 0 || q == 0`.
    pub fn new(p: usize, q: usize) -> Self {
        assert!(p > 0 && q > 0, "grid dimensions must be positive");
        TwoDBlockCyclic { p, q }
    }

    /// Grid rows `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Grid columns `q`.
    pub fn q(&self) -> usize {
        self.q
    }
}

impl Distribution for TwoDBlockCyclic {
    fn num_nodes(&self) -> usize {
        self.p * self.q
    }

    fn owner(&self, i: usize, j: usize) -> NodeId {
        (i % self.p) * self.q + (j % self.q)
    }

    fn name(&self) -> String {
        format!("2DBC {}x{}", self.p, self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_pattern() {
        // Fig 1: 2x3 pattern over a 12x12 tile matrix, P = 6.
        let d = TwoDBlockCyclic::new(2, 3);
        assert_eq!(d.num_nodes(), 6);
        // pattern row 0: nodes 0,1,2 ; row 1: nodes 3,4,5
        assert_eq!(d.owner(0, 0), 0);
        assert_eq!(d.owner(0, 0), d.owner(2, 3)); // periodicity
        assert_eq!(d.owner(1, 2), 5);
        assert_eq!(d.owner(7, 4), 3 + (4 % 3));
    }

    #[test]
    fn pattern_is_periodic() {
        let d = TwoDBlockCyclic::new(3, 4);
        for i in 0..24 {
            for j in 0..=i {
                assert_eq!(d.owner(i, j), d.owner(i + 3, j + 4));
                assert_eq!(d.owner(i, j), d.owner(i + 3 * 5, j + 4 * 5));
            }
        }
    }

    #[test]
    fn row_has_q_distinct_nodes() {
        let d = TwoDBlockCyclic::new(4, 3);
        let mut nodes: Vec<_> = (0..12).map(|j| d.owner(20, j)).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 3);
    }

    #[test]
    fn column_has_p_distinct_nodes() {
        let d = TwoDBlockCyclic::new(4, 3);
        let mut nodes: Vec<_> = (5..25).map(|i| d.owner(i, 5)).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 4);
    }

    #[test]
    fn all_nodes_used() {
        let d = TwoDBlockCyclic::new(5, 4);
        let mut seen = [false; 20];
        for i in 0..20 {
            for j in 0..=i {
                seen[d.owner(i, j)] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
