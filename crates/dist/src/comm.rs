//! Exact communication-volume counting and closed-form expressions.
//!
//! **Counting model.** Matching the Chameleon/StarPU behaviour described in
//! Section V-C/D of the paper: every inter-node transfer carries exactly one
//! tile, there are no collectives, and a tile *version* is sent at most once
//! to each consumer node (StarPU caches received data until it changes).
//! Hence the exact communication volume of an operation is the number of
//! distinct `(tile version, consumer node)` pairs where the consumer is not
//! the producer's node. The functions below enumerate those pairs for the
//! tiled POTRF, TRTRI, LAUUM and POSV loops; the distributed runtime and the
//! simulator are tested to measure *exactly* these counts.
//!
//! **Closed forms.** The paper's analytic results (Theorem 1, the 2DBC
//! comparison of Section III-D, the 2.5D results of Section IV, and the
//! TRTRI/POTRI volumes of Section V-F.2) are provided as leading-term
//! formulas for cross-checking.

use crate::two_five_d::TwoPointFiveD;
use crate::{Distribution, NodeId, RowCyclic};

/// A small, reusable set of node ids.
struct NodeSet {
    words: Vec<u64>,
    members: Vec<NodeId>,
}

impl NodeSet {
    fn new(p: usize) -> Self {
        NodeSet {
            words: vec![0; p.div_ceil(64)],
            members: Vec::with_capacity(p),
        }
    }

    fn clear(&mut self) {
        for &m in &self.members {
            self.words[m / 64] &= !(1 << (m % 64));
        }
        self.members.clear();
    }

    fn insert(&mut self, n: NodeId) {
        let (w, b) = (n / 64, n % 64);
        if self.words[w] & (1 << b) == 0 {
            self.words[w] |= 1 << b;
            self.members.push(n);
        }
    }

    fn contains(&self, n: NodeId) -> bool {
        self.words[n / 64] & (1 << (n % 64)) != 0
    }

    fn len(&self) -> usize {
        self.members.len()
    }

    /// Number of members excluding `producer` (the messages needed to feed
    /// this consumer set).
    fn messages_from(&self, producer: NodeId) -> u64 {
        (self.len() - usize::from(self.contains(producer))) as u64
    }
}

/// Exact number of tile messages of the tiled Cholesky factorization
/// (Algorithm 1) under `dist`, for an `nt x nt`-tile matrix.
///
/// Two message classes exist (Section III-D): POTRF results broadcast down
/// their column, and TRSM results broadcast to the owners of the row/column
/// tiles they update.
///
/// ```
/// use sbc_dist::comm::potrf_messages;
/// use sbc_dist::{SbcExtended, TwoDBlockCyclic};
///
/// // Fig 8's setting: SBC r=7 vs the 7x3 grid, both on 21 nodes
/// let nt = 60;
/// let sbc = potrf_messages(&SbcExtended::new(7), nt);
/// let dbc = potrf_messages(&TwoDBlockCyclic::new(7, 3), nt);
/// assert!(sbc < dbc); // fewer communications...
/// assert!((dbc as f64 / sbc as f64) > 1.3); // ...by roughly sqrt(2)
/// ```
pub fn potrf_messages<D: Distribution>(dist: &D, nt: usize) -> u64 {
    let mut set = NodeSet::new(dist.num_nodes());
    let mut total = 0u64;
    for i in 0..nt {
        // POTRF(i,i) -> TRSM tasks of column i
        set.clear();
        for j in i + 1..nt {
            set.insert(dist.owner(j, i));
        }
        total += set.messages_from(dist.owner(i, i));
        // TRSM(j,i) -> SYRK(j,j), GEMMs on row j (first operand) and
        // column j (second operand)
        for j in i + 1..nt {
            set.clear();
            set.insert(dist.owner(j, j));
            for k in i + 1..j {
                set.insert(dist.owner(j, k));
            }
            for j2 in j + 1..nt {
                set.insert(dist.owner(j2, j));
            }
            total += set.messages_from(dist.owner(j, i));
        }
    }
    total
}

/// Exact number of tile messages of the tiled lower-triangular inversion
/// (TRTRI) under `dist`.
///
/// Per iteration `k` the diagonal tile is broadcast to the TRSM targets of
/// column `k` and row `k`; each column tile `(m, k)` (post right-TRSM) feeds
/// the GEMM targets on row `m` left of `k`; each row tile `(k, n)` (after
/// its accumulated updates) feeds the GEMM targets on column `n` below `k`.
/// The sub-diagonal tiles `(n+1, n)` have no updates between their two roles
/// so both consumer sets share one version (deduplicated here, exactly as a
/// caching runtime would).
pub fn trtri_messages<D: Distribution>(dist: &D, nt: usize) -> u64 {
    let mut set = NodeSet::new(dist.num_nodes());
    let mut total = 0u64;
    for k in 0..nt {
        // diagonal tile (k,k), original value -> right-TRSM targets (m,k)
        // and left-TRSM targets (k,n)
        set.clear();
        for m in k + 1..nt {
            set.insert(dist.owner(m, k));
        }
        for n in 0..k {
            set.insert(dist.owner(k, n));
        }
        total += set.messages_from(dist.owner(k, k));
    }
    // off-diagonal tiles: two versions, v1 after the right-TRSM of
    // iteration n, v2 (accumulated) read at iteration m.
    for m in 1..nt {
        for n in 0..m {
            let producer = dist.owner(m, n);
            if m == n + 1 {
                // single version: union of both consumer sets
                set.clear();
                for n2 in 0..n {
                    set.insert(dist.owner(m, n2));
                }
                for m2 in m + 1..nt {
                    set.insert(dist.owner(m2, n));
                }
                total += set.messages_from(producer);
            } else {
                set.clear();
                for n2 in 0..n {
                    set.insert(dist.owner(m, n2));
                }
                total += set.messages_from(producer);
                set.clear();
                for m2 in m + 1..nt {
                    set.insert(dist.owner(m2, n));
                }
                total += set.messages_from(producer);
            }
        }
    }
    total
}

/// Exact number of tile messages of the tiled LAUUM sweep under `dist`.
///
/// Tile `(k, n)` (its value before the iteration-`k` TRMM) feeds the SYRK at
/// `(n, n)`, the GEMM targets `(m, n)` for `n < m < k`, and the GEMM targets
/// `(n, n2)` for `n2 < n` — a row-plus-column set around index `n`, the same
/// symmetric shape as POTRF (which is why SBC keeps its advantage here).
pub fn lauum_messages<D: Distribution>(dist: &D, nt: usize) -> u64 {
    let mut set = NodeSet::new(dist.num_nodes());
    let mut total = 0u64;
    for k in 0..nt {
        // diagonal tile (k,k) original -> TRMM targets on row k
        set.clear();
        for n in 0..k {
            set.insert(dist.owner(k, n));
        }
        total += set.messages_from(dist.owner(k, k));
        // row tiles (k,n)
        for n in 0..k {
            set.clear();
            set.insert(dist.owner(n, n));
            for m in n + 1..k {
                set.insert(dist.owner(m, n));
            }
            for n2 in 0..n {
                set.insert(dist.owner(n, n2));
            }
            total += set.messages_from(dist.owner(k, n));
        }
    }
    total
}

/// Exact number of tile messages of the tiled LU factorization without
/// pivoting under `dist` (full `nt x nt` matrix; Section III-E's comparison
/// case). Per iteration `k`: the GETRF result feeds both panels; each
/// column-panel tile `(i, k)` feeds the trailing GEMMs of row `i`; each
/// row-panel tile `(k, j)` feeds the trailing GEMMs of column `j`. Unlike
/// Cholesky, the row and column consumer sets involve *different* tiles, so
/// no symmetric reuse exists — 2DBC is the right distribution here.
pub fn lu_messages<D: Distribution>(dist: &D, nt: usize) -> u64 {
    let mut set = NodeSet::new(dist.num_nodes());
    let mut total = 0u64;
    for k in 0..nt {
        // GETRF(k,k) -> both panels
        set.clear();
        for j in k + 1..nt {
            set.insert(dist.owner(k, j));
            set.insert(dist.owner(j, k));
        }
        total += set.messages_from(dist.owner(k, k));
        // column panel (i,k) -> row i trailing targets
        for i in k + 1..nt {
            set.clear();
            for j in k + 1..nt {
                set.insert(dist.owner(i, j));
            }
            total += set.messages_from(dist.owner(i, k));
        }
        // row panel (k,j) -> column j trailing targets
        for j in k + 1..nt {
            set.clear();
            for i in k + 1..nt {
                set.insert(dist.owner(i, j));
            }
            total += set.messages_from(dist.owner(k, j));
        }
    }
    total
}

/// LU 2DBC leading term: every one of the `nt^2` tiles is broadcast to its
/// pattern row (`q - 1`) or column (`p - 1`): `D = nt^2 (p + q - 2) / 2`
/// ... more precisely panels dominate: `D ~ nt^2 (p + q) / 2` counting both
/// panel roles; returned as the panel-exact closed form
/// `nt (nt - 1) / 2 * ((p - 1) + (q - 1))` plus diagonal broadcasts.
pub fn lu_2dbc_closed_form(nt: usize, p: usize, q: usize) -> u64 {
    // each column-panel tile -> q - 1 nodes; each row-panel tile -> p - 1;
    // there are nt (nt - 1) / 2 of each; diagonal tiles -> min(P-1, ...)
    let panels = (nt * (nt - 1) / 2) as u64;
    panels * (q as u64 - 1) + panels * (p as u64 - 1)
}

/// Breakdown of POSV solve-phase messages (the two TRSM sweeps, excluding
/// the factorization itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveMessages {
    /// Transfers of `A` tiles to right-hand-side owners.
    pub a_tiles: u64,
    /// Broadcasts of `B` tiles between right-hand-side owners.
    pub b_tiles: u64,
}

impl SolveMessages {
    /// Total messages.
    pub fn total(&self) -> u64 {
        self.a_tiles + self.b_tiles
    }
}

/// Exact messages of the two POSV triangular-solve sweeps with `A`
/// distributed by `dist` and the one-tile-wide `B` panel distributed by
/// `rhs` (Section V-F.1).
///
/// Tile `A(x, y)` (`x > y`, unchanged between the sweeps) goes to
/// `owner_B(x)` (forward) and `owner_B(y)` (backward) — deduplicated when
/// they coincide. `B[i]` is broadcast to the owners of the later rows in
/// each sweep; its value differs between sweeps so the two broadcasts are
/// distinct versions.
pub fn solve_messages<D: Distribution>(dist: &D, rhs: &RowCyclic, nt: usize) -> SolveMessages {
    let mut a_tiles = 0u64;
    for x in 0..nt {
        for y in 0..x {
            let producer = dist.owner(x, y);
            let fwd = rhs.owner_row(x);
            let bwd = rhs.owner_row(y);
            if fwd != producer {
                a_tiles += 1;
            }
            if bwd != producer && bwd != fwd {
                a_tiles += 1;
            }
        }
        // diagonal tile used by both sweeps' TRSM on B[x]
        if rhs.owner_row(x) != dist.owner(x, x) {
            a_tiles += 1;
        }
    }
    let mut b_tiles = 0u64;
    let mut set = NodeSet::new(rhs.num_nodes());
    for i in 0..nt {
        // forward broadcast of B[i] to owners of rows below
        set.clear();
        for j in i + 1..nt {
            set.insert(rhs.owner_row(j));
        }
        b_tiles += set.messages_from(rhs.owner_row(i));
        // backward broadcast of B[i] to owners of rows above
        set.clear();
        for j in 0..i {
            set.insert(rhs.owner_row(j));
        }
        b_tiles += set.messages_from(rhs.owner_row(i));
    }
    SolveMessages { a_tiles, b_tiles }
}

/// Exact messages of the full POSV (factorization + solve sweeps).
pub fn posv_messages<D: Distribution>(dist: &D, rhs: &RowCyclic, nt: usize) -> u64 {
    potrf_messages(dist, nt) + solve_messages(dist, rhs, nt).total()
}

/// Exact messages to redistribute all lower tiles from `from` to `to` (one
/// message per tile whose owner changes).
pub fn redistribution_messages<A: Distribution, B: Distribution>(
    from: &A,
    to: &B,
    nt: usize,
) -> u64 {
    let mut total = 0u64;
    for i in 0..nt {
        for j in 0..=i {
            if from.owner(i, j) != to.owner(i, j) {
                total += 1;
            }
        }
    }
    total
}

/// Exact messages of POTRI run entirely under one distribution:
/// POTRF + TRTRI + LAUUM.
pub fn potri_messages<D: Distribution>(dist: &D, nt: usize) -> u64 {
    potrf_messages(dist, nt) + trtri_messages(dist, nt) + lauum_messages(dist, nt)
}

/// Exact messages of the paper's "SBC remap 2DBC" POTRI strategy
/// (Section V-F.2): POTRF and LAUUM under `sym` (an SBC distribution),
/// TRTRI under `bc` (a 2DBC distribution), with full redistributions
/// before and after the TRTRI step.
pub fn potri_remap_messages<A: Distribution, B: Distribution>(sym: &A, bc: &B, nt: usize) -> u64 {
    potrf_messages(sym, nt)
        + redistribution_messages(sym, bc, nt)
        + trtri_messages(bc, nt)
        + redistribution_messages(bc, sym, nt)
        + lauum_messages(sym, nt)
}

/// Per-class breakdown of 2.5D POTRF messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoFiveDMessages {
    /// Intra-slice broadcasts of POTRF/TRSM results (`D1` in Section IV-A).
    pub broadcasts: u64,
    /// Inter-slice reduction messages (`D2` in Section IV-A).
    pub reductions: u64,
}

impl TwoFiveDMessages {
    /// Total messages.
    pub fn total(&self) -> u64 {
        self.broadcasts + self.reductions
    }
}

/// Exact messages of the 2.5D tiled Cholesky (Section IV): iteration `i`
/// runs on slice `i mod c`; panel results are broadcast within that slice
/// only; before the panel tasks of iteration `k`, the partial updates of
/// the column-`k` tiles are reduced from every *contributing* slice onto
/// slice `k mod c` (a slice contributes if some earlier iteration was
/// assigned to it). All slices hold a copy of the input, so the reduction
/// needs no extra message for the original values.
pub fn potrf_25d_messages<D: Distribution>(d25: &TwoPointFiveD<D>, nt: usize) -> TwoFiveDMessages {
    let c = d25.slices();
    let inner = d25.inner();
    let mut set = NodeSet::new(inner.num_nodes());
    let mut broadcasts = 0u64;
    for i in 0..nt {
        // panel broadcasts within slice sigma(i); intra-slice consumer sets
        // are identical to the 2D case, just offset by the slice id.
        set.clear();
        for j in i + 1..nt {
            set.insert(inner.owner(j, i));
        }
        broadcasts += set.messages_from(inner.owner(i, i));
        for j in i + 1..nt {
            set.clear();
            set.insert(inner.owner(j, j));
            for k in i + 1..j {
                set.insert(inner.owner(j, k));
            }
            for j2 in j + 1..nt {
                set.insert(inner.owner(j2, j));
            }
            broadcasts += set.messages_from(inner.owner(j, i));
        }
    }
    // reductions: tile (j,k) for j >= k, contributing slices are
    // {i mod c : i < k}; each one except sigma(k) sends one message.
    let mut reductions = 0u64;
    for k in 0..nt {
        let contributing = k.min(c) as u64;
        let sigma_contributes = k >= c || (k % c) < k; // sigma(k)=k%c had an earlier iteration?
                                                       // sigma(k) = k mod c contributes iff exists i < k with i ≡ k (mod c),
                                                       // i.e. iff k >= c (the smallest such i is k - c).
        let _ = sigma_contributes;
        let senders = if k >= c { c as u64 - 1 } else { contributing };
        let tiles_in_column = (nt - k) as u64;
        reductions += senders * tiles_in_column;
    }
    TwoFiveDMessages {
        broadcasts,
        reductions,
    }
}

/// Total size of the symmetric matrix in tiles: `S = nt (nt + 1) / 2`.
pub fn matrix_tiles(nt: usize) -> u64 {
    (nt * (nt + 1) / 2) as u64
}

/// Converts a tile-message count to bytes for tile dimension `b` (f64).
pub fn messages_to_bytes(messages: u64, b: usize) -> u64 {
    messages * (b * b * 8) as u64
}

// ---------------------------------------------------------------------------
// Closed forms from the paper
// ---------------------------------------------------------------------------

/// Theorem 1 (basic): `D = S (r - 1)` tile sends.
pub fn theorem1_basic(nt: usize, r: usize) -> u64 {
    matrix_tiles(nt) * (r as u64 - 1)
}

/// Theorem 1 (extended): `D = S (r - 2)` tile sends.
pub fn theorem1_extended(nt: usize, r: usize) -> u64 {
    matrix_tiles(nt) * (r as u64 - 2)
}

/// 2DBC POTRF leading term: `D = S (p + q - 2)` tile sends.
pub fn potrf_2dbc_closed_form(nt: usize, p: usize, q: usize) -> u64 {
    matrix_tiles(nt) * (p + q - 2) as u64
}

/// 2.5D SBC POTRF leading term (Section IV-A): `D = S (r + c - 2)`.
pub fn potrf_25d_sbc_closed_form(nt: usize, r: usize, c: usize) -> u64 {
    matrix_tiles(nt) * (r + c - 2) as u64
}

/// 2.5D 2DBC POTRF leading term: `D = S (p + q + c - 3)`.
pub fn potrf_25d_bc_closed_form(nt: usize, p: usize, q: usize, c: usize) -> u64 {
    matrix_tiles(nt) * (p + q + c - 3) as u64
}

/// TRTRI leading terms (Section V-F.2): `S (p + q - 2)` for 2DBC.
pub fn trtri_2dbc_closed_form(nt: usize, p: usize, q: usize) -> u64 {
    matrix_tiles(nt) * (p + q - 2) as u64
}

/// TRTRI leading terms (Section V-F.2): `S (2r - 2)` for extended SBC.
pub fn trtri_sbc_closed_form(nt: usize, r: usize) -> u64 {
    matrix_tiles(nt) * (2 * r - 2) as u64
}

/// POTRI all-2DBC leading term: `3 S (p + q - 2)`.
pub fn potri_2dbc_closed_form(nt: usize, p: usize, q: usize) -> u64 {
    3 * matrix_tiles(nt) * (p + q - 2) as u64
}

/// POTRI "SBC remap 2DBC" leading term: `S (2r + p + q - 4)`.
pub fn potri_remap_closed_form(nt: usize, r: usize, p: usize, q: usize) -> u64 {
    matrix_tiles(nt) * (2 * r + p + q - 4) as u64
}

/// Optimal slice count for 2.5D SBC with ample memory (Section IV-B):
/// `r = 2c`, `c = (P/2)^{1/3}` — returned as the best integer `c >= 1` for
/// `P` nodes given that `r^2 c = 2 P` must hold with even `r`.
pub fn optimal_c_sbc(p_nodes: usize) -> usize {
    ((p_nodes as f64 / 2.0).cbrt().round() as usize).max(1)
}

/// Optimal slice count for 2.5D block-cyclic: `p = q = c = P^{1/3}`.
pub fn optimal_c_bc(p_nodes: usize) -> usize {
    ((p_nodes as f64).cbrt().round() as usize).max(1)
}

/// Average arithmetic intensity of Cholesky under 2DBC (Section III-E):
/// `sqrt(M)/sqrt(2)` at the first iteration, `(2/3) sqrt(M/2)` averaged over
/// the whole computation — a factor sqrt(2) below the SBC value.
pub fn intensity_cholesky_2dbc(m_tiles: f64) -> f64 {
    (2.0 / 3.0) * (m_tiles / 2.0).sqrt()
}

/// Average arithmetic intensity of Cholesky under SBC (Section III-E):
/// `(2/3) sqrt(M)` (matching LU under 2DBC and Béreux's sequential bound up
/// to the 2/3 shrinking factor).
pub fn intensity_cholesky_sbc(m_tiles: f64) -> f64 {
    (2.0 / 3.0) * m_tiles.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SbcBasic, SbcExtended, TwoDBlockCyclic};

    #[test]
    fn nodeset_dedup_and_producer_exclusion() {
        let mut s = NodeSet::new(10);
        s.insert(3);
        s.insert(3);
        s.insert(7);
        assert_eq!(s.len(), 2);
        assert_eq!(s.messages_from(3), 1);
        assert_eq!(s.messages_from(0), 2);
        s.clear();
        assert_eq!(s.len(), 0);
        assert!(!s.contains(3));
    }

    #[test]
    fn single_node_never_communicates() {
        let d = TwoDBlockCyclic::new(1, 1);
        for nt in [1, 5, 12] {
            assert_eq!(potrf_messages(&d, nt), 0);
            assert_eq!(trtri_messages(&d, nt), 0);
            assert_eq!(lauum_messages(&d, nt), 0);
            let rhs = RowCyclic::new(1);
            assert_eq!(posv_messages(&d, &rhs, nt), 0);
        }
    }

    #[test]
    fn potrf_sbc_basic_matches_theorem1_asymptotically() {
        // Each tile sent to at most r-1 nodes; the ratio approaches 1 as nt
        // grows (edge effects shrink).
        let r = 4;
        let d = SbcBasic::new(r);
        for nt in [8 * r, 16 * r] {
            let exact = potrf_messages(&d, nt);
            let closed = theorem1_basic(nt, r);
            assert!(exact <= closed);
            let ratio = exact as f64 / closed as f64;
            assert!(ratio > 0.85, "nt={nt} ratio={ratio}");
        }
        // monotone convergence
        let r16 = potrf_messages(&d, 16 * r) as f64 / theorem1_basic(16 * r, r) as f64;
        let r8 = potrf_messages(&d, 8 * r) as f64 / theorem1_basic(8 * r, r) as f64;
        assert!(r16 > r8);
    }

    #[test]
    fn potrf_sbc_extended_matches_theorem1_asymptotically() {
        for r in [5, 6, 7, 8] {
            let d = SbcExtended::new(r);
            let nt = 12 * r;
            let exact = potrf_messages(&d, nt);
            let closed = theorem1_extended(nt, r);
            assert!(exact <= closed, "r={r}");
            let ratio = exact as f64 / closed as f64;
            assert!(ratio > 0.85, "r={r} ratio={ratio}");
        }
    }

    #[test]
    fn potrf_2dbc_matches_closed_form_asymptotically() {
        let (p, q) = (4, 3);
        let d = TwoDBlockCyclic::new(p, q);
        let nt = 72;
        let exact = potrf_messages(&d, nt);
        let closed = potrf_2dbc_closed_form(nt, p, q);
        assert!(exact <= closed);
        assert!(exact as f64 / closed as f64 > 0.85);
    }

    #[test]
    fn sbc_beats_2dbc_at_equal_node_count() {
        // r=7 -> P=21 vs 2DBC 7x3=21 and 5x4=20 (Fig 8 setting).
        let sbc = SbcExtended::new(7);
        let bc73 = TwoDBlockCyclic::new(7, 3);
        let bc54 = TwoDBlockCyclic::new(5, 4);
        let nt = 60;
        let vs = potrf_messages(&sbc, nt);
        assert!(vs < potrf_messages(&bc73, nt));
        assert!(vs < potrf_messages(&bc54, nt));
    }

    #[test]
    fn sqrt2_asymptotic_improvement() {
        // Section III-D: SBC volume ~ S*sqrt(2P), square 2DBC ~ 2S*sqrt(P):
        // ratio -> sqrt(2). Check the closed-form ratio for growing square P.
        for r in [9, 17, 33] {
            let p_nodes = r * (r - 1) / 2;
            let side = (p_nodes as f64).sqrt();
            let sbc_per_tile = (r - 2) as f64;
            let dbc_per_tile = 2.0 * side - 2.0;
            let ratio = dbc_per_tile / sbc_per_tile;
            // approaches sqrt(2) ~ 1.414 from... check within 10% for r>=9
            assert!(
                (ratio - std::f64::consts::SQRT_2).abs() < 0.15,
                "r={r} ratio={ratio}"
            );
        }
    }

    #[test]
    fn trtri_prefers_2dbc() {
        // Section V-F.2: for TRTRI, 2DBC generates a smaller volume than SBC.
        let sbc = SbcExtended::new(8); // P=28
        let bc = TwoDBlockCyclic::new(7, 4); // P=28
        let nt = 64;
        assert!(trtri_messages(&bc, nt) < trtri_messages(&sbc, nt));
        // and both are near their closed forms
        let e = trtri_messages(&bc, nt) as f64 / trtri_2dbc_closed_form(nt, 7, 4) as f64;
        assert!(e > 0.8 && e <= 1.0, "e={e}");
        // SBC's row/column broadcasts need longer spans to reach all r-1
        // nodes, so edge effects are larger; the ratio converges to 1 slowly.
        let s = trtri_messages(&sbc, nt) as f64 / trtri_sbc_closed_form(nt, 8) as f64;
        assert!(s > 0.65 && s <= 1.0, "s={s}");
        let s2 = trtri_messages(&sbc, 2 * nt) as f64 / trtri_sbc_closed_form(2 * nt, 8) as f64;
        assert!(s2 > s, "convergence: {s2} vs {s}");
    }

    #[test]
    fn lauum_matches_potrf_volume_shape() {
        // Section V-F.2: LAUUM has the same dependency pattern as POTRF and
        // should induce (asymptotically) the same volume per distribution.
        let sbc = SbcExtended::new(7);
        let nt = 56;
        let l = lauum_messages(&sbc, nt) as f64;
        let p = potrf_messages(&sbc, nt) as f64;
        assert!((l / p - 1.0).abs() < 0.05, "l={l} p={p}");
    }

    #[test]
    fn potri_remap_beats_all_2dbc_asymptotically() {
        // closed-form ratio 3(p+q-2) vs (2r+p+q-4): for square grids and
        // matching P the ratio approaches 3/(1+sqrt(2)) ~ 1.24.
        let r = 40usize;
        let p_nodes = r * (r - 1) / 2; // 780
        let side = (p_nodes as f64).sqrt(); // ~27.9
        let p = side.round() as usize;
        let all_bc = 3.0 * (2 * p - 2) as f64;
        let remap = (2 * r + 2 * p - 4) as f64;
        let ratio = all_bc / remap;
        assert!(
            (ratio - 3.0 / (1.0 + std::f64::consts::SQRT_2)).abs() < 0.08,
            "ratio={ratio}"
        );
    }

    #[test]
    fn potri_remap_exact_counts_fig14_case() {
        // Fig 14: r=8 (P=28), 2DBC 7x4: volume reduction factor 27/23 ~ 1.17.
        let sbc = SbcExtended::new(8);
        let bc = TwoDBlockCyclic::new(7, 4);
        let nt = 64;
        let all_bc = potri_messages(&bc, nt);
        let remap = potri_remap_messages(&sbc, &bc, nt);
        let ratio = all_bc as f64 / remap as f64;
        // the paper's leading-order ratio is 27/23 ~ 1.174; exact counts
        // include redistribution and edge effects, so allow a window.
        assert!(ratio > 1.0 && ratio < 1.35, "ratio={ratio}");
    }

    #[test]
    fn solve_messages_bounded_and_positive() {
        let sbc = SbcExtended::new(6); // P=15
        let rhs = RowCyclic::new(15);
        let nt = 30;
        let m = solve_messages(&sbc, &rhs, nt);
        assert!(m.a_tiles > 0 && m.b_tiles > 0);
        // At most 2 sends per A tile + diagonal, at most (P-1) per B row x 2.
        assert!(m.a_tiles <= (nt * (nt + 1)) as u64);
        assert!(m.b_tiles <= (2 * nt * 14) as u64);
    }

    #[test]
    fn posv_close_to_potrf_plus_solve() {
        let sbc = SbcExtended::new(6);
        let rhs = RowCyclic::new(15);
        let nt = 24;
        assert_eq!(
            posv_messages(&sbc, &rhs, nt),
            potrf_messages(&sbc, nt) + solve_messages(&sbc, &rhs, nt).total()
        );
    }

    #[test]
    fn two_five_d_counts_match_section_iv() {
        // c slices of basic SBC r: D = S (r + c - 2) asymptotically.
        let r = 4;
        let c = 3;
        let d25 = TwoPointFiveD::new(SbcBasic::new(r), c);
        let nt = 48;
        let m = potrf_25d_messages(&d25, nt);
        let closed = potrf_25d_sbc_closed_form(nt, r, c);
        assert!(m.total() <= closed);
        assert!(
            m.total() as f64 / closed as f64 > 0.85,
            "{} vs {closed}",
            m.total()
        );
        // reductions alone ~ S (c - 1)
        let red_closed = matrix_tiles(nt) * (c as u64 - 1);
        assert!(m.reductions <= red_closed);
        assert!(m.reductions as f64 / red_closed as f64 > 0.9);
    }

    #[test]
    fn two_five_d_with_one_slice_equals_2d() {
        let r = 4;
        let d2 = SbcBasic::new(r);
        let d25 = TwoPointFiveD::new(d2.clone(), 1);
        let nt = 32;
        let m = potrf_25d_messages(&d25, nt);
        assert_eq!(m.reductions, 0);
        assert_eq!(m.broadcasts, potrf_messages(&d2, nt));
    }

    #[test]
    fn optimal_c_values() {
        // Section IV-B: c ~ (P/2)^(1/3); for P=256, c ~ 5.04 -> 5.
        assert_eq!(optimal_c_sbc(256), 5);
        assert_eq!(optimal_c_bc(27), 3);
        assert_eq!(optimal_c_bc(1000), 10);
        assert!(optimal_c_sbc(1) >= 1);
    }

    #[test]
    fn redistribution_counts_differing_owners() {
        let a = TwoDBlockCyclic::new(2, 2);
        let nt = 8;
        assert_eq!(redistribution_messages(&a, &a, nt), 0);
        let b = TwoDBlockCyclic::new(4, 1);
        let m = redistribution_messages(&a, &b, nt);
        assert!(m > 0 && m <= matrix_tiles(nt));
    }

    #[test]
    fn arithmetic_intensity_ratio_is_sqrt2() {
        // Section III-E / conclusion: SBC raises Cholesky's arithmetic
        // intensity by sqrt(2) over 2DBC.
        let m = 10_000.0;
        let sbc = intensity_cholesky_sbc(m);
        let dbc = (2.0 / 3.0) * (m / 2.0).sqrt();
        assert!((sbc / dbc - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
