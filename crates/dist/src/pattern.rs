//! User-defined periodic distributions.
//!
//! The paper closes by noting that a `sqrt(2)` gap remains between SBC and
//! the Cholesky lower bound: "it might be possible to design even more
//! efficient data distribution schemes". [`PatternDistribution`] is the
//! experimentation hook for that search — any rectangular pattern of node
//! ids, repeated cyclically over the tile grid, pluggable into every
//! analysis and execution engine of this workspace (exact communication
//! counting, load balance, task graphs, simulator, threaded runtime).

use crate::{Distribution, NodeId};

/// A distribution defined by an explicit `rows x cols` pattern of node ids,
/// repeated cyclically: tile `(i, j)` belongs to
/// `pattern[i mod rows][j mod cols]`.
///
/// ```
/// use sbc_dist::{Distribution, PatternDistribution};
///
/// // a hand-rolled symmetric 3x3 pattern on 3 nodes
/// let d = PatternDistribution::new(vec![
///     vec![0, 0, 1],
///     vec![0, 1, 2],
///     vec![1, 2, 2],
/// ]).unwrap();
/// assert_eq!(d.num_nodes(), 3);
/// assert_eq!(d.owner(4, 2), 2); // pattern cell (1, 2)
/// assert!(d.is_symmetric_pattern());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternDistribution {
    rows: usize,
    cols: usize,
    pattern: Vec<NodeId>, // row-major
    num_nodes: usize,
}

impl PatternDistribution {
    /// Builds a distribution from a rectangular pattern.
    ///
    /// Node ids may be arbitrary, but every id in `0..max+1` must appear at
    /// least once (no dead nodes) — otherwise the platform would ship idle
    /// nodes.
    ///
    /// # Errors
    /// Returns a description of the first structural problem: empty
    /// pattern, ragged rows, or unused node ids.
    pub fn new(pattern: Vec<Vec<NodeId>>) -> Result<Self, String> {
        let rows = pattern.len();
        if rows == 0 {
            return Err("pattern must have at least one row".into());
        }
        let cols = pattern[0].len();
        if cols == 0 {
            return Err("pattern must have at least one column".into());
        }
        if pattern.iter().any(|r| r.len() != cols) {
            return Err("pattern rows must all have the same length".into());
        }
        let flat: Vec<NodeId> = pattern.into_iter().flatten().collect();
        let num_nodes = flat.iter().copied().max().unwrap_or(0) + 1;
        let mut seen = vec![false; num_nodes];
        for &n in &flat {
            seen[n] = true;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("node id {missing} never appears in the pattern"));
        }
        Ok(PatternDistribution {
            rows,
            cols,
            pattern: flat,
            num_nodes,
        })
    }

    /// Pattern height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Pattern width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the pattern has the *SBC property* for a square pattern:
    /// for every index `x`, the set of nodes appearing in pattern row `x`
    /// equals the set appearing in pattern column `x`. This is exactly what
    /// makes a TRSM result's row- and column-broadcasts reach the same
    /// nodes (Section III-A), and is the property to preserve when
    /// searching for better distributions.
    pub fn is_symmetric_pattern(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let r = self.rows;
        for x in 0..r {
            let mut row: Vec<NodeId> = (0..r).map(|j| self.pattern[x * r + j]).collect();
            let mut col: Vec<NodeId> = (0..r).map(|i| self.pattern[i * r + x]).collect();
            row.sort_unstable();
            row.dedup();
            col.sort_unstable();
            col.dedup();
            if row != col {
                return false;
            }
        }
        true
    }

    /// Captures any existing distribution's behaviour on a `rows x cols`
    /// window as an explicit pattern. Useful to inspect, perturb, or
    /// serialize built-in distributions. (Only faithful if the source is
    /// actually periodic with the given period, as 2DBC and basic SBC are.)
    pub fn sample<D: Distribution>(dist: &D, rows: usize, cols: usize) -> Self {
        // sample deep inside the lower triangle so owner(i, j) is defined:
        // the representative (i + off, j) is congruent to (i, j) modulo the
        // pattern period and always below the diagonal since off > cols.
        let off = rows * (cols / rows + 2);
        let mut pattern = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                pattern.push(dist.owner(i + off, j));
            }
        }
        PatternDistribution {
            rows,
            cols,
            num_nodes: dist.num_nodes(),
            pattern,
        }
    }
}

impl Distribution for PatternDistribution {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn owner(&self, i: usize, j: usize) -> NodeId {
        self.pattern[(i % self.rows) * self.cols + (j % self.cols)]
    }

    fn name(&self) -> String {
        format!("pattern {}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::potrf_messages;
    use crate::{SbcBasic, TwoDBlockCyclic};

    #[test]
    fn rejects_malformed_patterns() {
        assert!(PatternDistribution::new(vec![]).is_err());
        assert!(PatternDistribution::new(vec![vec![]]).is_err());
        assert!(PatternDistribution::new(vec![vec![0, 1], vec![0]]).is_err());
        // node 1 missing
        assert!(PatternDistribution::new(vec![vec![0, 2], vec![2, 0]]).is_err());
    }

    #[test]
    fn replicates_2dbc_exactly() {
        let bc = TwoDBlockCyclic::new(3, 2);
        let pat = PatternDistribution::new(vec![vec![0, 1], vec![2, 3], vec![4, 5]]).unwrap();
        let nt = 24;
        for i in 0..nt {
            for j in 0..=i {
                assert_eq!(pat.owner(i, j), bc.owner(i, j));
            }
        }
        assert_eq!(potrf_messages(&pat, nt), potrf_messages(&bc, nt));
        assert!(!pat.is_symmetric_pattern());
    }

    #[test]
    fn replicates_basic_sbc_exactly() {
        // Fig 3's pattern, written out by hand
        let basic = SbcBasic::new(4);
        let pat = PatternDistribution::new(vec![
            vec![6, 0, 1, 3],
            vec![0, 7, 2, 4],
            vec![1, 2, 6, 5],
            vec![3, 4, 5, 7],
        ])
        .unwrap();
        let nt = 20;
        for i in 0..nt {
            for j in 0..=i {
                assert_eq!(pat.owner(i, j), basic.owner(i, j));
            }
        }
        assert_eq!(potrf_messages(&pat, nt), potrf_messages(&basic, nt));
        assert!(pat.is_symmetric_pattern());
    }

    #[test]
    fn symmetric_property_detection() {
        // symmetric matrix pattern => symmetric property holds
        let sym =
            PatternDistribution::new(vec![vec![0, 1, 2], vec![1, 0, 2], vec![2, 2, 1]]).unwrap();
        assert!(sym.is_symmetric_pattern());
        // non-square is never "symmetric"
        let rect = PatternDistribution::new(vec![vec![0, 1, 2]]).unwrap();
        assert!(!rect.is_symmetric_pattern());
    }

    #[test]
    fn symmetric_pattern_beats_nonsymmetric_at_equal_nodes() {
        // the paper's core claim, checked on hand-written 4x4 patterns over
        // 8 nodes: Fig 3's symmetric pattern vs a 4x2 block-cyclic layout.
        let sym = PatternDistribution::new(vec![
            vec![6, 0, 1, 3],
            vec![0, 7, 2, 4],
            vec![1, 2, 6, 5],
            vec![3, 4, 5, 7],
        ])
        .unwrap();
        let bc = TwoDBlockCyclic::new(4, 2); // same 8 nodes
        let nt = 40;
        assert!(potrf_messages(&sym, nt) < potrf_messages(&bc, nt));
    }

    #[test]
    fn sample_roundtrips_periodic_distributions() {
        let bc = TwoDBlockCyclic::new(2, 3);
        let pat = PatternDistribution::sample(&bc, 2, 3);
        for i in 0..12 {
            for j in 0..=i {
                assert_eq!(pat.owner(i, j), bc.owner(i, j), "({i},{j})");
            }
        }
        let basic = SbcBasic::new(4);
        let pat = PatternDistribution::sample(&basic, 4, 4);
        for i in 0..16 {
            for j in 0..=i {
                assert_eq!(pat.owner(i, j), basic.owner(i, j), "({i},{j})");
            }
        }
        assert!(pat.is_symmetric_pattern());
    }
}
