//! # sbc-dist — data distributions for distributed tiled Cholesky
//!
//! This crate implements the paper's central contribution: the **Symmetric
//! Block Cyclic (SBC)** distribution (Section III), alongside the baselines
//! it is compared to:
//!
//! * [`TwoDBlockCyclic`] — the standard ScaLAPACK-style `p x q` 2D
//!   block-cyclic distribution (Fig 1),
//! * [`SbcBasic`] — SBC with `r/2` extra diagonal nodes, even `r`
//!   (Section III-C.1, Fig 3),
//! * [`SbcExtended`] — SBC with diagonal nodes drawn from the existing
//!   `r(r-1)/2` nodes via rotating diagonal patterns (Section III-C.2,
//!   Figs 4–6), for any `r >= 3`,
//! * [`RowCyclic`] — the 1D distribution used for POSV right-hand sides
//!   (Section V-F.1),
//! * [`TwoPointFiveD`] — the `c`-slice replication wrapper of Section IV.
//!
//! The [`comm`] module counts communication volume *exactly* (one message
//! per distinct (tile version, consumer node) pair, matching the
//! StarPU/Chameleon behaviour the paper describes), and provides the
//! closed-form expressions of Theorem 1, Section III-D/E and IV-A/B. The
//! [`balance`] module quantifies load balance; [`table1`] regenerates
//! Table I.
//!
//! Tile coordinates `(i, j)` always refer to lower-triangular tiles
//! (`j <= i`), the only ones the symmetric algorithms touch.

#![warn(missing_docs)]

pub mod balance;
pub mod block_cyclic;
pub mod comm;
pub mod pattern;
pub mod row_cyclic;
pub mod sbc;
pub mod table1;
pub mod two_five_d;

pub use block_cyclic::TwoDBlockCyclic;
pub use pattern::PatternDistribution;
pub use row_cyclic::RowCyclic;
pub use sbc::{DiagonalCycling, SbcBasic, SbcExtended};
pub use two_five_d::TwoPointFiveD;

/// Identifier of a compute node.
pub type NodeId = usize;

/// A static assignment of lower-triangular tiles to nodes.
///
/// Implementations must be pure functions of `(i, j)`: the runtime, the
/// simulator and the analytic communication counters all call `owner`
/// independently and rely on getting identical answers.
pub trait Distribution: Send + Sync {
    /// Total number of nodes used by this distribution.
    fn num_nodes(&self) -> usize;

    /// Owner of tile `(i, j)` with `j <= i`.
    ///
    /// # Panics
    /// Implementations may panic if `j > i`.
    fn owner(&self, i: usize, j: usize) -> NodeId;

    /// Human-readable name (used by the benchmark harness output).
    fn name(&self) -> String;
}

impl<D: Distribution + ?Sized> Distribution for &D {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }
    fn owner(&self, i: usize, j: usize) -> NodeId {
        (**self).owner(i, j)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

impl Distribution for std::sync::Arc<dyn Distribution> {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }
    fn owner(&self, i: usize, j: usize) -> NodeId {
        (**self).owner(i, j)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}
