//! Table I of the paper: sizes of the considered distributions.
//!
//! For each SBC parameter `r` (6..=9), the paper compares against two 2DBC
//! grids "with a similar number of nodes, in order to cover the best
//! possible parameters p and q" — avoiding unfairness from a `P` that
//! factorizes badly.

use crate::Distribution;
use crate::SbcExtended;

/// One row of Table I: an SBC configuration and the 2DBC grids compared
/// against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// SBC pattern parameter.
    pub r: usize,
    /// SBC node count `r (r - 1) / 2`.
    pub p_sbc: usize,
    /// The 2DBC grids `(p, q, P)` compared against this SBC configuration.
    pub grids: Vec<(usize, usize, usize)>,
}

/// Most-square factor pair `(p, q)` of `n` with `p >= q` (minimizing
/// `p + q`, i.e. the perimeter — fewer communications for 2DBC).
pub fn best_grid(n: usize) -> (usize, usize) {
    assert!(n > 0);
    let mut best = (n, 1);
    let mut q = 1;
    while q * q <= n {
        if n.is_multiple_of(q) {
            best = (n / q, q);
        }
        q += 1;
    }
    best
}

/// The two comparison grids used by the paper for a given SBC node count
/// `P`: the most-square factorization of `P` itself, plus the best grid over
/// the nearby node counts `{P-1, P+1, P+2}` (minimizing perimeter `p+q`,
/// then aspect `p-q`) — capturing choices like `4x4 = 16` against `P = 15`
/// or `6x5 = 30` against `P = 28`.
pub fn comparison_grids(p_nodes: usize) -> Vec<(usize, usize, usize)> {
    let (p0, q0) = best_grid(p_nodes);
    let mut grids = vec![(p0, q0, p_nodes)];
    let alt = [p_nodes.wrapping_sub(1), p_nodes + 1, p_nodes + 2]
        .into_iter()
        .filter(|&n| n > 0 && n != p_nodes)
        .map(|n| {
            let (p, q) = best_grid(n);
            (p, q, n)
        })
        .min_by_key(|&(p, q, _)| (p + q, p - q));
    if let Some(alt) = alt {
        grids.push(alt);
    }
    grids.sort_by_key(|&(p, q, n)| (n, p + q, p.abs_diff(q)));
    grids
}

/// Regenerates Table I for `r` in `6..=9`.
pub fn table1() -> Vec<Table1Row> {
    (6..=9)
        .map(|r| {
            let d = SbcExtended::new(r);
            let p_sbc = d.num_nodes();
            Table1Row {
                r,
                p_sbc,
                grids: comparison_grids(p_sbc),
            }
        })
        .collect()
}

/// Renders Table I as aligned text (the benchmark harness prints this).
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str("Symmetric Block Cyclic | 2D Block Cyclic\n");
    out.push_str("   r        P          |   p    q    P\n");
    for row in table1() {
        let mut first = true;
        for (p, q, n) in &row.grids {
            if first {
                out.push_str(&format!(
                    "   {:<8} {:<10} |   {:<4} {:<4} {}\n",
                    row.r, row.p_sbc, p, q, n
                ));
                first = false;
            } else {
                out.push_str(&format!(
                    "   {:<8} {:<10} |   {:<4} {:<4} {}\n",
                    "", "", p, q, n
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_grid_examples() {
        assert_eq!(best_grid(16), (4, 4));
        assert_eq!(best_grid(21), (7, 3));
        assert_eq!(best_grid(20), (5, 4));
        assert_eq!(best_grid(28), (7, 4));
        assert_eq!(best_grid(30), (6, 5));
        assert_eq!(best_grid(35), (7, 5));
        assert_eq!(best_grid(36), (6, 6));
        assert_eq!(best_grid(13), (13, 1));
    }

    #[test]
    fn table1_matches_paper() {
        // Table I:
        //  r=6, P=15: grids 5x3 (15) and 4x4 (16)
        //  r=7, P=21: grids 5x4 (20) and 7x3 (21)
        //  r=8, P=28: grids 7x4 (28) and 6x5 (30)
        //  r=9, P=36: grids 7x5 (35) and 6x6 (36)
        let t = table1();
        assert_eq!(t.len(), 4);

        assert_eq!(t[0].p_sbc, 15);
        assert!(t[0].grids.contains(&(5, 3, 15)));
        assert!(t[0].grids.contains(&(4, 4, 16)));

        assert_eq!(t[1].p_sbc, 21);
        assert!(t[1].grids.contains(&(7, 3, 21)));
        assert!(t[1].grids.contains(&(5, 4, 20)));

        assert_eq!(t[2].p_sbc, 28);
        assert!(t[2].grids.contains(&(7, 4, 28)));
        assert!(t[2].grids.contains(&(6, 5, 30)));

        assert_eq!(t[3].p_sbc, 36);
        assert!(t[3].grids.contains(&(6, 6, 36)));
        assert!(t[3].grids.contains(&(7, 5, 35)));
    }

    #[test]
    fn render_contains_all_rows() {
        let s = render_table1();
        for frag in ["6", "15", "21", "28", "36"] {
            assert!(s.contains(frag), "missing {frag} in:\n{s}");
        }
    }
}
