//! The Symmetric Block Cyclic (SBC) distribution — Section III of the paper.
//!
//! The generic SBC pattern is an `r x r` grid in which each of the
//! `r (r - 1) / 2` nodes is identified with an unordered pair `{x, y}`
//! (`0 <= x < y < r`) and occupies the two symmetric positions `(x, y)` and
//! `(y, x)`. Tile `(i, j)` maps to pattern position
//! `(i mod r, j mod r)`. Because the nodes appearing in pattern row `x` are
//! exactly the nodes appearing in pattern column `x` (all pairs containing
//! `x`), the row-broadcast and column-broadcast consumer sets of a TRSM
//! result coincide — this is the whole trick that saves the factor sqrt(2).
//!
//! Diagonal pattern positions `(x, x)` are not covered by pairs; the two
//! variants differ in how they fill them:
//!
//! * **basic** ([`SbcBasic`], even `r`): `r/2` extra nodes are added, each
//!   taking two diagonal positions round-robin (Fig 3). `P = r^2 / 2`; each
//!   tile is communicated to `r - 1` nodes.
//! * **extended** ([`SbcExtended`], any `r >= 3`): diagonal positions are
//!   filled with existing pair nodes, chosen so that the node at diagonal
//!   position `d` is a pair containing `d` (hence already a member of row
//!   and column `d`'s consumer set — no extra communication). Load balance
//!   across the diagonal requires a family of diagonal *patterns* used in
//!   round-robin (Figs 4–6). `P = r (r - 1) / 2`; each tile is communicated
//!   to `r - 2` nodes.

use crate::{Distribution, NodeId};

/// Node id of the pair `{x, y}`, `x < y`: pairs are numbered in column-major
/// order of the strict lower triangle, `id = y (y - 1) / 2 + x`, matching the
/// numbering of Fig 4 of the paper.
#[inline]
pub fn pair_id(x: usize, y: usize) -> NodeId {
    debug_assert!(x < y);
    y * (y - 1) / 2 + x
}

/// Inverse of [`pair_id`]: the pair `{x, y}` (`x < y`) of a node id.
pub fn pair_of(id: NodeId) -> (usize, usize) {
    // find y: largest with y (y - 1) / 2 <= id
    let mut y = 1;
    while (y + 1) * y / 2 <= id {
        y += 1;
    }
    let x = id - y * (y - 1) / 2;
    debug_assert!(x < y);
    (x, y)
}

/// How the family of diagonal patterns of [`SbcExtended`] is cycled over the
/// pattern-diagonal tiles of the matrix.
///
/// Both strategies keep Theorem 1's communication count (any valid diagonal
/// node is already in the consumer set); they only differ in load balance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiagonalCycling {
    /// Pattern index = block column `(j / r) mod npat` — the "round-robin
    /// column-wise fashion" of Fig 6. Default.
    #[default]
    ColumnWise,
    /// Pattern index = `(i / r + j / r) mod npat`, which spreads diagonal
    /// work slightly more evenly on the lower triangle.
    AntiDiagonal,
}

/// Basic SBC distribution (Section III-C.1): even `r`, `r/2` extra diagonal
/// nodes, `P = r^2 / 2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SbcBasic {
    r: usize,
}

impl SbcBasic {
    /// Creates the basic SBC distribution for an even `r >= 2`.
    ///
    /// # Panics
    /// Panics if `r` is odd or `< 2`.
    pub fn new(r: usize) -> Self {
        assert!(
            r >= 2 && r.is_multiple_of(2),
            "basic SBC requires even r >= 2"
        );
        SbcBasic { r }
    }

    /// Pattern parameter `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Number of pair (off-diagonal) nodes, `r (r - 1) / 2`.
    pub fn pair_nodes(&self) -> usize {
        self.r * (self.r - 1) / 2
    }
}

impl Distribution for SbcBasic {
    fn num_nodes(&self) -> usize {
        // r(r-1)/2 pair nodes + r/2 diagonal nodes = r^2 / 2
        self.r * self.r / 2
    }

    fn owner(&self, i: usize, j: usize) -> NodeId {
        let x = i % self.r;
        let y = j % self.r;
        if x == y {
            // diagonal positions assigned round-robin to the extra nodes
            self.pair_nodes() + (x % (self.r / 2))
        } else {
            pair_id(x.min(y), x.max(y))
        }
    }

    fn name(&self) -> String {
        format!("SBC-basic r={}", self.r)
    }
}

/// One diagonal pattern: the node placed at each diagonal position
/// `0..r`.
type DiagPattern = Vec<NodeId>;

/// Extended SBC distribution (Section III-C.2): diagonal positions are
/// filled by existing pair nodes via a rotating family of diagonal patterns,
/// `P = r (r - 1) / 2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SbcExtended {
    r: usize,
    patterns: Vec<DiagPattern>,
    cycling: DiagonalCycling,
}

impl SbcExtended {
    /// Creates the extended SBC distribution for `r >= 3`, with the default
    /// column-wise diagonal cycling.
    ///
    /// ```
    /// use sbc_dist::{Distribution, SbcExtended};
    ///
    /// // the paper's r = 7 configuration: P = r(r-1)/2 = 21 nodes
    /// let d = SbcExtended::new(7);
    /// assert_eq!(d.num_nodes(), 21);
    ///
    /// // cyclic repetition: congruent positions share their owner
    /// assert_eq!(d.owner(9, 1), d.owner(16, 1)); // both map to pair {1, 2}
    /// // the symmetric trick: pattern cell (2, 1) and (1, 2) are the same node
    /// assert_eq!(d.owner(9, 1), d.owner(8, 2));
    /// ```
    ///
    /// # Panics
    /// Panics if `r < 3`.
    pub fn new(r: usize) -> Self {
        Self::with_cycling(r, DiagonalCycling::default())
    }

    /// Creates the extended SBC distribution with an explicit diagonal
    /// cycling strategy.
    pub fn with_cycling(r: usize, cycling: DiagonalCycling) -> Self {
        assert!(r >= 3, "extended SBC requires r >= 3");
        let patterns = if r % 2 == 1 {
            Self::odd_patterns(r)
        } else {
            Self::even_patterns(r)
        };
        let s = SbcExtended {
            r,
            patterns,
            cycling,
        };
        debug_assert!(s.validate().is_ok());
        s
    }

    /// Pattern parameter `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// The diagonal patterns (each of length `r`); exposed for the pattern
    /// gallery example and for tests.
    pub fn diagonal_patterns(&self) -> &[DiagPattern] {
        &self.patterns
    }

    /// Diagonal entries of "pattern l" for `l in 1..=(r-1)/2` (odd
    /// construction, also the source of the even construction's packs):
    ///
    /// * first group: node `{i-1, i+l-1}` at position `i-1`, `i = 1..=r-l`,
    /// * second group: node `{j-1, r-l+j-1}` at position `r-l+j-1`,
    ///   `j = 1..=l`.
    ///
    /// Every entry at position `d` is a pair containing `d`, so it already
    /// belongs to the consumer set of row/column `d`.
    fn pattern_l(r: usize, l: usize) -> DiagPattern {
        let mut diag = vec![usize::MAX; r];
        for i in 1..=r - l {
            diag[i - 1] = pair_id(i - 1, i + l - 1);
        }
        for j in 1..=l {
            diag[r - l + j - 1] = pair_id(j - 1, r - l + j - 1);
        }
        debug_assert!(diag.iter().all(|&d| d != usize::MAX));
        diag
    }

    fn odd_patterns(r: usize) -> Vec<DiagPattern> {
        (1..=(r - 1) / 2).map(|l| Self::pattern_l(r, l)).collect()
    }

    /// Even-`r` construction (Fig 5): split each of the first `r/2 - 1`
    /// patterns into a *left pack* (positions `0..r/2`) and a *right pack*
    /// (positions `r/2..r`); add a *bonus pack* of nodes `{j-1, r/2+j-1}`
    /// valid at either end; combine `(L_l, R_l)` for the base patterns and
    /// `(bonus, R_1), (L_1, R_2), ..., (L_{r/2-1}, bonus)` for the shifted
    /// ones — `r - 1` patterns total, each node on the diagonal of exactly
    /// two of them.
    fn even_patterns(r: usize) -> Vec<DiagPattern> {
        let h = r / 2;
        let base: Vec<DiagPattern> = (1..h).map(|l| Self::pattern_l(r, l)).collect();
        let lefts: Vec<Vec<NodeId>> = base.iter().map(|p| p[..h].to_vec()).collect();
        let rights: Vec<Vec<NodeId>> = base.iter().map(|p| p[h..].to_vec()).collect();
        let bonus: Vec<NodeId> = (1..=h).map(|j| pair_id(j - 1, h + j - 1)).collect();

        let mut patterns = base;
        // shifted combinations: left list [bonus, L1..], right list [R1.., bonus]
        let mut left_list: Vec<Vec<NodeId>> = Vec::with_capacity(h);
        left_list.push(bonus.clone());
        left_list.extend(lefts);
        let mut right_list: Vec<Vec<NodeId>> = rights;
        right_list.push(bonus);
        for (l, rgt) in left_list.into_iter().zip(right_list) {
            let mut p = l;
            p.extend(rgt);
            patterns.push(p);
        }
        patterns
    }

    /// Pattern index used for the pattern-diagonal tile `(i, j)`
    /// (`i ≡ j mod r`).
    fn pattern_index(&self, i: usize, j: usize) -> usize {
        let npat = self.patterns.len();
        match self.cycling {
            DiagonalCycling::ColumnWise => (j / self.r) % npat,
            DiagonalCycling::AntiDiagonal => (i / self.r + j / self.r) % npat,
        }
    }

    /// Checks the structural invariants of the construction. Used by tests
    /// and `debug_assert` at construction time:
    ///
    /// 1. every diagonal entry at position `d` is a pair containing `d`,
    /// 2. every node appears on the diagonal the same number of times across
    ///    the whole family (once for odd `r`, twice for even `r`),
    /// 3. the expected number of patterns.
    pub fn validate(&self) -> Result<(), String> {
        let r = self.r;
        let expected_pats = if r % 2 == 1 { (r - 1) / 2 } else { r - 1 };
        if self.patterns.len() != expected_pats {
            return Err(format!(
                "expected {expected_pats} diagonal patterns, got {}",
                self.patterns.len()
            ));
        }
        let mut appearances = vec![0usize; self.num_nodes()];
        for pat in &self.patterns {
            if pat.len() != r {
                return Err(format!("pattern length {} != r", pat.len()));
            }
            for (d, &node) in pat.iter().enumerate() {
                let (x, y) = pair_of(node);
                if x != d && y != d {
                    return Err(format!(
                        "diagonal node {node}={{{x},{y}}} at position {d} not in row/column {d}"
                    ));
                }
                appearances[node] += 1;
            }
        }
        let per_node = if r % 2 == 1 { 1 } else { 2 };
        for (node, &cnt) in appearances.iter().enumerate() {
            if cnt != per_node {
                return Err(format!(
                    "node {node} appears {cnt} times on diagonals, expected {per_node}"
                ));
            }
        }
        Ok(())
    }
}

impl Distribution for SbcExtended {
    fn num_nodes(&self) -> usize {
        self.r * (self.r - 1) / 2
    }

    fn owner(&self, i: usize, j: usize) -> NodeId {
        let x = i % self.r;
        let y = j % self.r;
        if x == y {
            self.patterns[self.pattern_index(i, j)][x]
        } else {
            pair_id(x.min(y), x.max(y))
        }
    }

    fn name(&self) -> String {
        format!("SBC r={}", self.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_id_matches_fig4_numbering() {
        // Fig 4 (r = 5): pairs numbered 0..9 as
        // (0,1)=0 (0,2)=1 (1,2)=2 (0,3)=3 (1,3)=4 (2,3)=5 (0,4)=6 ...
        assert_eq!(pair_id(0, 1), 0);
        assert_eq!(pair_id(0, 2), 1);
        assert_eq!(pair_id(1, 2), 2);
        assert_eq!(pair_id(0, 3), 3);
        assert_eq!(pair_id(1, 3), 4);
        assert_eq!(pair_id(2, 3), 5);
        assert_eq!(pair_id(0, 4), 6);
        assert_eq!(pair_id(3, 4), 9);
    }

    #[test]
    fn pair_of_inverts_pair_id() {
        for y in 1..12 {
            for x in 0..y {
                assert_eq!(pair_of(pair_id(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn generic_pattern_is_symmetric() {
        for r in [3, 4, 5, 6, 7, 8, 9] {
            let d = SbcExtended::new(r);
            for i in 0..3 * r {
                for j in 0..=i {
                    if i % r != j % r {
                        // symmetric positions map to the same node
                        let x = i % r;
                        let y = j % r;
                        assert_eq!(d.owner(i, j), pair_id(x.min(y), x.max(y)));
                    }
                }
            }
        }
    }

    #[test]
    fn basic_fig3_pattern() {
        // Fig 3 (r = 4): pattern
        //   6 0 1 3
        //   0 7 2 4
        //   1 2 6 5
        //   3 4 5 7
        let d = SbcBasic::new(4);
        assert_eq!(d.num_nodes(), 8);
        let expect = [[6, 0, 1, 3], [0, 7, 2, 4], [1, 2, 6, 5], [3, 4, 5, 7]];
        for (i, row) in expect.iter().enumerate() {
            for (j, &want) in row.iter().enumerate().take(i + 1) {
                assert_eq!(d.owner(i, j), want, "({i},{j})");
            }
        }
    }

    #[test]
    fn extended_fig4_first_pattern() {
        // Fig 4 (r = 5): pattern 1 diagonal is [0, 2, 5, 9, 6],
        // pattern 2 diagonal is [1, 4, 8, 3, 7].
        let d = SbcExtended::new(5);
        assert_eq!(d.num_nodes(), 10);
        assert_eq!(d.diagonal_patterns().len(), 2);
        assert_eq!(d.diagonal_patterns()[0], vec![0, 2, 5, 9, 6]);
        assert_eq!(d.diagonal_patterns()[1], vec![1, 4, 8, 3, 7]);
    }

    #[test]
    fn extended_construction_is_valid_for_all_r() {
        for r in 3..=20 {
            let d = SbcExtended::new(r);
            d.validate().unwrap_or_else(|e| panic!("r={r}: {e}"));
        }
    }

    #[test]
    fn even_r_has_r_minus_1_patterns_fig5() {
        // Fig 5 (r = 6): 5 diagonal sets.
        let d = SbcExtended::new(6);
        assert_eq!(d.num_nodes(), 15);
        assert_eq!(d.diagonal_patterns().len(), 5);
    }

    #[test]
    fn extended_diagonal_nodes_share_row_or_column() {
        for r in 3..=12 {
            let d = SbcExtended::new(r);
            for pat in d.diagonal_patterns() {
                for (pos, &node) in pat.iter().enumerate() {
                    let (x, y) = pair_of(node);
                    assert!(x == pos || y == pos, "r={r} pos={pos} node={node}");
                }
            }
        }
    }

    #[test]
    fn row_and_column_consumer_sets_coincide() {
        // The SBC property: the set of nodes owning tiles in (the lower part
        // of) matrix row x equals the set owning tiles in column x, and both
        // equal the pairs containing x mod r (at most r - 1 nodes).
        let r = 7;
        let d = SbcExtended::new(r);
        let nt = 4 * r;
        for x in r..2 * r {
            let mut row: Vec<_> = (0..x).map(|j| d.owner(x, j)).collect();
            let mut col: Vec<_> = (x..nt).map(|i| d.owner(i, x)).collect();
            row.sort_unstable();
            row.dedup();
            col.sort_unstable();
            col.dedup();
            assert_eq!(row, col, "x={x}");
            assert_eq!(row.len(), r - 1);
            for &n in &row {
                let (a, b) = pair_of(n);
                assert!(a == x % r || b == x % r);
            }
        }
    }

    #[test]
    fn two_dbc_row_and_column_sets_differ() {
        // Contrast with SBC: for 2DBC the two sets are disjoint except
        // around the diagonal, totalling p + q - 1 distinct nodes.
        let d = crate::TwoDBlockCyclic::new(3, 2);
        let nt = 12;
        let x = 5;
        let mut all: Vec<_> = (0..x)
            .map(|j| d.owner(x, j))
            .chain((x..nt).map(|i| d.owner(i, x)))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 3 + 2 - 1);
    }

    #[test]
    fn all_nodes_receive_tiles() {
        for r in 3..=10 {
            let d = SbcExtended::new(r);
            let nt = 3 * r;
            let mut seen = vec![false; d.num_nodes()];
            for i in 0..nt {
                for j in 0..=i {
                    seen[d.owner(i, j)] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "r={r}");
        }
        for r in [2, 4, 6, 8, 10] {
            let d = SbcBasic::new(r);
            let nt = 3 * r;
            let mut seen = vec![false; d.num_nodes()];
            for i in 0..nt {
                for j in 0..=i {
                    seen[d.owner(i, j)] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "basic r={r}");
        }
    }

    #[test]
    fn owner_ids_in_range() {
        for r in 3..=11 {
            let d = SbcExtended::new(r);
            for i in 0..5 * r {
                for j in 0..=i {
                    assert!(d.owner(i, j) < d.num_nodes());
                }
            }
        }
    }

    #[test]
    fn cycling_strategies_agree_off_diagonal() {
        let a = SbcExtended::with_cycling(6, DiagonalCycling::ColumnWise);
        let b = SbcExtended::with_cycling(6, DiagonalCycling::AntiDiagonal);
        for i in 0..30 {
            for j in 0..=i {
                if i % 6 != j % 6 {
                    assert_eq!(a.owner(i, j), b.owner(i, j));
                }
            }
        }
    }
}
