//! Property tests on distribution invariants.

use proptest::prelude::*;
use sbc_dist::comm::{potrf_messages, theorem1_basic, theorem1_extended, trtri_messages};
use sbc_dist::sbc::{pair_id, pair_of};
use sbc_dist::{Distribution, SbcBasic, SbcExtended, TwoDBlockCyclic};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// pair_of inverts pair_id everywhere.
    #[test]
    fn pair_roundtrip(y in 1usize..200, xfrac in 0.0f64..1.0) {
        let x = ((y as f64 - 1.0) * xfrac) as usize;
        prop_assert!(x < y);
        prop_assert_eq!(pair_of(pair_id(x, y)), (x, y));
    }

    /// SBC extended: symmetric pattern positions share owners; all owners in
    /// range; diagonal owners are pairs containing their position.
    #[test]
    fn sbc_extended_structural(r in 3usize..14, nt_mult in 1usize..5) {
        let d = SbcExtended::new(r);
        let nt = r * nt_mult + r / 2;
        for i in 0..nt {
            for j in 0..=i {
                let o = d.owner(i, j);
                prop_assert!(o < d.num_nodes());
                let (x, y) = (i % r, j % r);
                if x != y {
                    prop_assert_eq!(o, pair_id(x.min(y), x.max(y)));
                } else {
                    let (a, b) = pair_of(o);
                    prop_assert!(a == x || b == x);
                }
            }
        }
    }

    /// Theorem 1 upper bound: exact counts never exceed S(r-1) / S(r-2).
    #[test]
    fn theorem1_upper_bound(r_half in 1usize..6, nt in 1usize..40) {
        let r = 2 * r_half + 2; // even r >= 4
        let basic = SbcBasic::new(r);
        prop_assert!(potrf_messages(&basic, nt) <= theorem1_basic(nt, r));
        let ext = SbcExtended::new(r);
        prop_assert!(potrf_messages(&ext, nt) <= theorem1_extended(nt, r));
    }

    /// Extended SBC always beats the same-P 2DBC grids on POTRF volume for
    /// reasonably sized matrices.
    #[test]
    fn sbc_beats_2dbc_on_potrf(r in 5usize..10, nt_mult in 4usize..10) {
        let sbc = SbcExtended::new(r);
        let p_nodes = sbc.num_nodes();
        let nt = r * nt_mult;
        // best grid for the same node count
        let mut best = (p_nodes, 1);
        let mut q = 1;
        while q * q <= p_nodes {
            if p_nodes.is_multiple_of(q) { best = (p_nodes / q, q); }
            q += 1;
        }
        let dbc = TwoDBlockCyclic::new(best.0, best.1);
        prop_assert!(
            potrf_messages(&sbc, nt) < potrf_messages(&dbc, nt),
            "r={r} nt={nt}: {} vs {}", potrf_messages(&sbc, nt), potrf_messages(&dbc, nt)
        );
    }

    /// For TRTRI the ordering flips: 2DBC's split row/column sets win.
    #[test]
    fn dbc_beats_sbc_on_trtri(r in 6usize..10, nt_mult in 5usize..9) {
        let sbc = SbcExtended::new(r);
        let p_nodes = sbc.num_nodes();
        let nt = r * nt_mult;
        let mut best = (p_nodes, 1);
        let mut q = 1;
        while q * q <= p_nodes {
            if p_nodes.is_multiple_of(q) { best = (p_nodes / q, q); }
            q += 1;
        }
        let dbc = TwoDBlockCyclic::new(best.0, best.1);
        prop_assert!(trtri_messages(&dbc, nt) < trtri_messages(&sbc, nt));
    }

    /// Tile balance of extended SBC stays within 15% of uniform when the
    /// matrix covers whole pattern cycles.
    #[test]
    fn sbc_balance_bounded(r in 4usize..11) {
        let d = SbcExtended::new(r);
        let npat = d.diagonal_patterns().len();
        let nt = r * npat;
        let s = sbc_dist::balance::tile_balance(&d, nt);
        prop_assert!(s.imbalance() < 1.15, "r={r} imbalance={}", s.imbalance());
    }
}
