//! Property tests on the tiled sequential algorithms.

use proptest::prelude::*;
use sbc_matrix::{
    cholesky_residual, inverse_residual, posv_tiled, potrf_tiled, potri_tiled, random_panel,
    random_spd, solve_residual,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tiled POTRF has a tiny scaled residual for any shape.
    #[test]
    fn potrf_residual_bounded(seed in any::<u64>(), nt in 1usize..8, b in 1usize..6) {
        let a0 = random_spd(seed, nt, b);
        let mut l = a0.clone();
        potrf_tiled(&mut l).unwrap();
        prop_assert!(cholesky_residual(&a0, &l) < 1e-11);
    }

    /// POSV solves the linear system for any shape.
    #[test]
    fn posv_residual_bounded(seed in any::<u64>(), nt in 1usize..7, b in 1usize..5) {
        let a0 = random_spd(seed, nt, b);
        let rhs = random_panel(seed ^ 1, nt, b);
        let mut a = a0.clone();
        let mut x = rhs.clone();
        posv_tiled(&mut a, &mut x).unwrap();
        prop_assert!(solve_residual(&a0, &x, &rhs) < 1e-10);
    }

    /// POTRI yields the inverse for any shape.
    #[test]
    fn potri_residual_bounded(seed in any::<u64>(), nt in 1usize..6, b in 1usize..5) {
        let a0 = random_spd(seed, nt, b);
        let mut inv = a0.clone();
        potri_tiled(&mut inv).unwrap();
        prop_assert!(inverse_residual(&a0, &inv) < 1e-9);
    }

    /// The tile size does not change the computed factor (only its blocking):
    /// factorizing with (nt, b) and (nt*b, 1) gives the same matrix.
    #[test]
    fn tiling_invariance(seed in any::<u64>(), nt in 1usize..5, b in 1usize..5) {
        // Generate with the *same dense content*: use b=1 generation and
        // repack. random_spd(seed, n, 1) gives per-element tiles.
        let n = nt * b;
        let fine = random_spd(seed, n, 1);
        let coarse = sbc_matrix::SymmetricTiledMatrix::from_tile_fn(nt, b, |i, j| {
            sbc_kernels::Tile::from_fn(b, |r, c| {
                let (rr, cc) = (i * b + r, j * b + c);
                fine.element(rr, cc)
            })
        });
        let mut lf = fine.clone();
        let mut lc = coarse.clone();
        potrf_tiled(&mut lf).unwrap();
        potrf_tiled(&mut lc).unwrap();
        for r in 0..n {
            for c in 0..=r {
                let cf = lf.element(r, c);
                // read factor element from coarse tiling, lower content only
                let (ti, tj) = (r / b, c / b);
                let (ri, rj) = (r % b, c % b);
                let cv = if ti == tj && rj > ri { lc.tile(ti, tj).get(rj, ri) } else { lc.tile(ti, tj).get(ri, rj) };
                // compare only lower part of factor: mirrored reads above are fine
                if c <= r {
                    let want = cf;
                    let got = if ti == tj && rj > ri { f64::NAN } else { cv };
                    if !got.is_nan() {
                        prop_assert!((want - got).abs() < 1e-9, "({r},{c})");
                    }
                }
            }
        }
    }
}
