//! Scaled residual checks used by tests, examples and the distributed
//! runtime's validation step.

use crate::storage::{FullTiledMatrix, SymmetricTiledMatrix, TiledPanel};

/// Element of the lower-triangular content of `a` (zero above the diagonal),
/// without symmetric mirroring — i.e. reads `a` as holding a factor `L`.
fn lower_elem(a: &SymmetricTiledMatrix, r: usize, c: usize) -> f64 {
    if c > r {
        return 0.0;
    }
    let b = a.tile_dim();
    let (ti, tj) = (r / b, c / b);
    let (ri, rj) = (r % b, c % b);
    if ti == tj && rj > ri {
        0.0
    } else {
        a.tile(ti, tj).get(ri, rj)
    }
}

/// Scaled Cholesky residual `||A - L L^T||_F / ||A||_F`, where `a0` holds the
/// original symmetric matrix and `l` the computed factor.
///
/// Dense O(n^3) evaluation — meant for validation at test scales.
pub fn cholesky_residual(a0: &SymmetricTiledMatrix, l: &SymmetricTiledMatrix) -> f64 {
    let n = a0.order();
    assert_eq!(l.order(), n);
    let mut err = 0.0_f64;
    for r in 0..n {
        for c in 0..=r {
            let mut s = 0.0;
            for t in 0..=c {
                s += lower_elem(l, r, t) * lower_elem(l, c, t);
            }
            let d = a0.element(r, c) - s;
            err += if r == c { d * d } else { 2.0 * d * d };
        }
    }
    err.sqrt() / a0.norm_fro().max(f64::MIN_POSITIVE)
}

/// Scaled solve residual `||A x - B||_F / (||A||_F ||x||_F)`.
pub fn solve_residual(a0: &SymmetricTiledMatrix, x: &TiledPanel, b: &TiledPanel) -> f64 {
    let n = a0.order();
    let bt = x.tile_dim();
    assert_eq!(b.tile_dim(), bt);
    let mut err = 0.0_f64;
    for r in 0..n {
        for col in 0..bt {
            let mut s = 0.0;
            for c in 0..n {
                s += a0.element(r, c) * x.tile(c / bt).get(c % bt, col);
            }
            let d = s - b.tile(r / bt).get(r % bt, col);
            err += d * d;
        }
    }
    err.sqrt() / (a0.norm_fro() * x.norm_fro()).max(f64::MIN_POSITIVE)
}

/// Scaled inverse residual `||A W - I||_F / ||A||_F` where `w` holds the
/// lower part of the symmetric inverse `W = A^{-1}`.
pub fn inverse_residual(a0: &SymmetricTiledMatrix, w: &SymmetricTiledMatrix) -> f64 {
    let n = a0.order();
    assert_eq!(w.order(), n);
    let mut err = 0.0_f64;
    for r in 0..n {
        for c in 0..n {
            let mut s = 0.0;
            for t in 0..n {
                s += a0.element(r, t) * w.element(t, c);
            }
            let want = if r == c { 1.0 } else { 0.0 };
            let d = s - want;
            err += d * d;
        }
    }
    err.sqrt() / a0.norm_fro().max(f64::MIN_POSITIVE)
}

/// Scaled LU residual `||A - L U||_F / ||A||_F`, where `a0` holds the
/// original general matrix and `f` the packed LU factors (unit-lower below
/// the diagonal, upper on/above).
pub fn lu_residual(a0: &FullTiledMatrix, f: &FullTiledMatrix) -> f64 {
    let n = a0.order();
    assert_eq!(f.order(), n);
    let l = |r: usize, c: usize| -> f64 {
        if r == c {
            1.0
        } else if r > c {
            f.element(r, c)
        } else {
            0.0
        }
    };
    let u = |r: usize, c: usize| -> f64 {
        if r <= c {
            f.element(r, c)
        } else {
            0.0
        }
    };
    let mut err = 0.0_f64;
    for r in 0..n {
        for c in 0..n {
            let mut s = 0.0;
            for t in 0..=r.min(c) {
                s += l(r, t) * u(t, c);
            }
            let d = a0.element(r, c) - s;
            err += d * d;
        }
    }
    err.sqrt() / a0.norm_fro().max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_panel, random_spd};
    use sbc_kernels::Tile;

    #[test]
    fn residual_zero_for_exact_factor() {
        // A = I: L = I.
        let nt = 3;
        let b = 2;
        let eye = SymmetricTiledMatrix::from_tile_fn(nt, b, |i, j| {
            if i == j {
                Tile::identity(b)
            } else {
                Tile::zeros(b)
            }
        });
        assert!(cholesky_residual(&eye, &eye) < 1e-15);
        assert!(inverse_residual(&eye, &eye) < 1e-15);
    }

    #[test]
    fn residual_large_for_wrong_factor() {
        let a = random_spd(1, 3, 2);
        let wrong = random_spd(2, 3, 2);
        assert!(cholesky_residual(&a, &wrong) > 1e-3);
    }

    #[test]
    fn solve_residual_zero_for_identity_system() {
        let nt = 4;
        let b = 2;
        let eye = SymmetricTiledMatrix::from_tile_fn(nt, b, |i, j| {
            if i == j {
                Tile::identity(b)
            } else {
                Tile::zeros(b)
            }
        });
        let x = random_panel(5, nt, b);
        assert!(solve_residual(&eye, &x, &x) < 1e-15);
    }
}
