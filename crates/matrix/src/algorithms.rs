//! Sequential tiled algorithms — the ground truth for the distributed
//! runtimes.
//!
//! [`potrf_tiled`] is Algorithm 1 of the paper verbatim; the other routines
//! implement the tiled loops of POSV (forward/backward TRSM sweeps), TRTRI
//! and LAUUM exactly as the PLASMA/Chameleon tiled algorithms do, which is
//! what determines their communication patterns (Section V-F).
//!
//! All routines work in place on [`SymmetricTiledMatrix`] /
//! [`TiledPanel`]; the same loop nests (with owner-computes placement) are
//! what `sbc-taskgraph` turns into distributed task DAGs, so any change here
//! must be mirrored there (the integration tests compare the two).

use crate::storage::{FullTiledMatrix, SymmetricTiledMatrix, TiledPanel};
use sbc_kernels::{KernelBackend, KernelError, Kernels, Trans};

/// Kernel backend for the sequential sweeps: [`KernelBackend::Naive`]
/// unless the `SBC_KERNELS` environment variable overrides it. All
/// backends are bit-identical, so the override changes speed only.
fn kernels() -> KernelBackend {
    KernelBackend::resolve(KernelBackend::default())
}

/// Tiled Cholesky factorization (Algorithm 1): on success the lower tiles of
/// `a` hold `L` with `L L^T = A`.
///
/// ```text
/// for i = 0..N:
///   A[i][i] <- POTRF(A[i][i])
///   for j = i+1..N:   A[j][i] <- TRSM(A[j][i], A[i][i])
///   for k = i+1..N:
///     A[k][k] <- SYRK(A[k][k], A[k][i])
///     for j = k+1..N: A[j][k] <- GEMM(A[j][k], A[j][i], A[k][i])
/// ```
///
/// # Errors
/// Propagates [`KernelError::NotPositiveDefinite`] from the tile POTRF.
pub fn potrf_tiled(a: &mut SymmetricTiledMatrix) -> Result<(), KernelError> {
    let nt = a.tile_count();
    let krn = kernels();
    for i in 0..nt {
        krn.potrf(a.tile_mut(i, i))?;
        for j in i + 1..nt {
            let (diag, panel) = a.two_tiles_mut((i, i), (j, i));
            krn.trsm_right_lower_trans(1.0, diag, panel);
        }
        for kk in i + 1..nt {
            let (panel, diag) = a.two_tiles_mut((kk, i), (kk, kk));
            krn.syrk(Trans::No, -1.0, panel, 1.0, diag);
            for j in kk + 1..nt {
                let (aji, aki, ajk) = a.tiles_rrw((j, i), (kk, i), (j, kk));
                krn.gemm(Trans::No, Trans::Yes, -1.0, aji, aki, 1.0, ajk);
            }
        }
    }
    Ok(())
}

/// Forward sweep: `B := L^{-1} B` where `L` is the (already factorized)
/// lower-tile content of `a`.
pub fn solve_lower(a: &SymmetricTiledMatrix, b: &mut TiledPanel) {
    let nt = a.tile_count();
    let krn = kernels();
    assert_eq!(b.tile_count(), nt);
    for i in 0..nt {
        krn.trsm_left_lower(1.0, a.tile(i, i), b.tile_mut(i));
        for j in i + 1..nt {
            let (bj, bi) = b.two_tiles_mut(j, i);
            krn.gemm(Trans::No, Trans::No, -1.0, a.tile(j, i), bi, 1.0, bj);
        }
    }
}

/// Backward sweep: `B := L^{-T} B`.
pub fn solve_lower_trans(a: &SymmetricTiledMatrix, b: &mut TiledPanel) {
    let nt = a.tile_count();
    let krn = kernels();
    assert_eq!(b.tile_count(), nt);
    for i in (0..nt).rev() {
        krn.trsm_left_lower_trans(1.0, a.tile(i, i), b.tile_mut(i));
        for j in 0..i {
            // B[j] -= A[i][j]^T B[i]
            let (bj, bi) = b.two_tiles_mut(j, i);
            krn.gemm(Trans::Yes, Trans::No, -1.0, a.tile(i, j), bi, 1.0, bj);
        }
    }
}

/// POSV: factorizes `a` in place and solves `A x = B` in place in `b`
/// (`b` holds `x` on return).
///
/// # Errors
/// Propagates [`KernelError::NotPositiveDefinite`].
pub fn posv_tiled(a: &mut SymmetricTiledMatrix, b: &mut TiledPanel) -> Result<(), KernelError> {
    potrf_tiled(a)?;
    solve_lower(a, b);
    solve_lower_trans(a, b);
    Ok(())
}

/// Tiled LU factorization without pivoting (Section III-E's comparison
/// case): on success `a` holds the unit-lower factor strictly below the
/// diagonal and the upper factor on/above it, tile-wise.
///
/// ```text
/// for k = 0..N:
///   A[k][k] <- GETRF(A[k][k])
///   for j = k+1..N: A[k][j] <- L(kk)^{-1} A[k][j]       (row panel)
///   for i = k+1..N: A[i][k] <- A[i][k] U(kk)^{-1}       (column panel)
///   for i,j > k:    A[i][j] -= A[i][k] A[k][j]          (trailing update)
/// ```
///
/// # Errors
/// Propagates [`KernelError::SingularTriangle`] from the tile GETRF (no
/// pivoting — inputs should be diagonally dominant).
pub fn lu_tiled(a: &mut FullTiledMatrix) -> Result<(), KernelError> {
    let nt = a.tile_count();
    let krn = kernels();
    for kk in 0..nt {
        krn.getrf(a.tile_mut(kk, kk))?;
        for j in kk + 1..nt {
            let (diag, target) = a.two_tiles_mut((kk, kk), (kk, j));
            krn.trsm_left_unit_lower(diag, target);
        }
        for i in kk + 1..nt {
            let (diag, target) = a.two_tiles_mut((kk, kk), (i, kk));
            krn.trsm_right_upper(diag, target);
        }
        for i in kk + 1..nt {
            for j in kk + 1..nt {
                let (aik, akj, aij) = a.tiles_rrw((i, kk), (kk, j), (i, j));
                krn.gemm(Trans::No, Trans::No, -1.0, aik, akj, 1.0, aij);
            }
        }
    }
    Ok(())
}

/// Tiled lower-triangular inversion: the lower tiles of `a` (holding `L`)
/// are replaced by `L^{-1}`.
///
/// PLASMA-style sweep; at iteration `k`, tile `(m, n)` with `m > k > n`
/// receives `A[m][n] += A[m][k] * A[k][n]` — the nonsymmetric dependency
/// pattern discussed in Section V-F.2.
///
/// # Errors
/// Propagates [`KernelError::SingularTriangle`].
pub fn trtri_tiled(a: &mut SymmetricTiledMatrix) -> Result<(), KernelError> {
    let nt = a.tile_count();
    let krn = kernels();
    for kk in 0..nt {
        for m in kk + 1..nt {
            let (diag, target) = a.two_tiles_mut((kk, kk), (m, kk));
            krn.trsm_right_lower(-1.0, diag, target);
        }
        for m in kk + 1..nt {
            for n in 0..kk {
                let (amk, akn, amn) = a.tiles_rrw((m, kk), (kk, n), (m, n));
                krn.gemm(Trans::No, Trans::No, 1.0, amk, akn, 1.0, amn);
            }
        }
        for n in 0..kk {
            let (diag, target) = a.two_tiles_mut((kk, kk), (kk, n));
            krn.trsm_left_lower(1.0, diag, target);
        }
        krn.trtri(a.tile_mut(kk, kk))?;
    }
    Ok(())
}

/// Tiled LAUUM: the lower tiles of `a` (holding a lower-triangular `W`) are
/// replaced by the lower part of `W^T W`.
///
/// Same dependency pattern as POTRF (Section V-F.2), which is why SBC keeps
/// its advantage on this step.
pub fn lauum_tiled(a: &mut SymmetricTiledMatrix) {
    let nt = a.tile_count();
    let krn = kernels();
    for kk in 0..nt {
        for n in 0..kk {
            let (akn, ann) = a.two_tiles_mut((kk, n), (n, n));
            krn.syrk(Trans::Yes, 1.0, akn, 1.0, ann);
            for m in n + 1..kk {
                let (akm, akn, amn) = a.tiles_rrw((kk, m), (kk, n), (m, n));
                krn.gemm(Trans::Yes, Trans::No, 1.0, akm, akn, 1.0, amn);
            }
        }
        for n in 0..kk {
            let (diag, target) = a.two_tiles_mut((kk, kk), (kk, n));
            krn.trmm_left_lower_trans(diag, target);
        }
        krn.lauum(a.tile_mut(kk, kk));
    }
}

/// POTRI: computes `A^{-1}` of an SPD tiled matrix in place, via
/// POTRF + TRTRI + LAUUM (the three steps of Section V-F.2). On return the
/// lower tiles of `a` hold the lower part of `A^{-1}`.
///
/// # Errors
/// Propagates kernel errors from the factorization or inversion steps.
pub fn potri_tiled(a: &mut SymmetricTiledMatrix) -> Result<(), KernelError> {
    potrf_tiled(a)?;
    trtri_tiled(a)?;
    lauum_tiled(a);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_panel, random_spd};
    use crate::verify::{cholesky_residual, inverse_residual, solve_residual};
    use sbc_kernels::Tile;

    #[test]
    fn potrf_matches_scalar_cholesky() {
        // b = 1 reduces the tiled algorithm to the scalar one.
        let nt = 8;
        let a0 = random_spd(3, nt, 1);
        let mut tiled = a0.clone();
        potrf_tiled(&mut tiled).unwrap();

        // dense scalar Cholesky on the expansion
        let n = nt;
        let mut d = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..=r {
                d[c * n + r] = a0.element(r, c);
            }
        }
        for kk in 0..n {
            d[kk * n + kk] = d[kk * n + kk].sqrt();
            for r in kk + 1..n {
                d[kk * n + r] /= d[kk * n + kk];
            }
            for c in kk + 1..n {
                let s = d[kk * n + c];
                for r in c..n {
                    d[c * n + r] -= s * d[kk * n + r];
                }
            }
        }
        for r in 0..n {
            for c in 0..=r {
                assert!(
                    (tiled.element(r, c) - d[c * n + r]).abs() < 1e-10,
                    "({r},{c})"
                );
            }
        }
    }

    #[test]
    fn potrf_residual_small() {
        for (nt, b) in [(1, 4), (3, 5), (6, 4), (10, 3)] {
            let a0 = random_spd(11, nt, b);
            let mut l = a0.clone();
            potrf_tiled(&mut l).unwrap();
            let res = cholesky_residual(&a0, &l);
            assert!(res < 1e-12, "nt={nt} b={b} residual={res}");
        }
    }

    #[test]
    fn posv_solves_system() {
        for (nt, b) in [(1, 3), (4, 4), (7, 3)] {
            let a0 = random_spd(21, nt, b);
            let rhs = random_panel(22, nt, b);
            let mut a = a0.clone();
            let mut x = rhs.clone();
            posv_tiled(&mut a, &mut x).unwrap();
            let res = solve_residual(&a0, &x, &rhs);
            assert!(res < 1e-10, "nt={nt} b={b} residual={res}");
        }
    }

    #[test]
    fn trtri_inverts_factor() {
        for (nt, b) in [(1, 4), (3, 3), (6, 2), (5, 4)] {
            let a0 = random_spd(31, nt, b);
            let mut l = a0.clone();
            potrf_tiled(&mut l).unwrap();
            let mut w = l.clone();
            trtri_tiled(&mut w).unwrap();
            // check W * L == I on the dense expansion (both lower triangular)
            let n = nt * b;
            let mut maxdiff = 0.0_f64;
            for r in 0..n {
                for c in 0..n {
                    let mut s = 0.0;
                    for t in c..=r {
                        // W[r][t] * L[t][c], both lower
                        let wrt = lower_elem(&w, r, t);
                        let ltc = lower_elem(&l, t, c);
                        s += wrt * ltc;
                    }
                    let want = if r == c { 1.0 } else { 0.0 };
                    maxdiff = maxdiff.max((s - want).abs());
                }
            }
            assert!(maxdiff < 1e-9, "nt={nt} b={b} diff={maxdiff}");
        }
    }

    /// Element of the lower-triangular content (zero above diagonal),
    /// *without* the symmetric mirroring of `element()`.
    fn lower_elem(a: &SymmetricTiledMatrix, r: usize, c: usize) -> f64 {
        if c > r {
            return 0.0;
        }
        let b = a.tile_dim();
        let (ti, tj) = (r / b, c / b);
        let (ri, rj) = (r % b, c % b);
        if ti == tj && rj > ri {
            0.0
        } else {
            a.tile(ti, tj).get(ri, rj)
        }
    }

    #[test]
    fn potri_inverts_matrix() {
        for (nt, b) in [(1, 4), (3, 3), (5, 3)] {
            let a0 = random_spd(41, nt, b);
            let mut inv = a0.clone();
            potri_tiled(&mut inv).unwrap();
            let res = inverse_residual(&a0, &inv);
            assert!(res < 1e-9, "nt={nt} b={b} residual={res}");
        }
    }

    #[test]
    fn lauum_matches_dense_ltl() {
        let nt = 4;
        let b = 3;
        let a0 = random_spd(51, nt, b);
        let mut l = a0.clone();
        potrf_tiled(&mut l).unwrap();
        let mut out = l.clone();
        lauum_tiled(&mut out);
        let n = nt * b;
        for r in 0..n {
            for c in 0..=r {
                // (L^T L)[r][c] = sum_t L[t][r] * L[t][c]
                let mut s = 0.0;
                for t in r..n {
                    s += lower_elem(&l, t, r) * lower_elem(&l, t, c);
                }
                assert!((lower_elem(&out, r, c) - s).abs() < 1e-9, "({r},{c})");
            }
        }
    }

    #[test]
    fn potrf_rejects_indefinite_matrix() {
        let mut a = SymmetricTiledMatrix::from_tile_fn(2, 2, |i, j| {
            if i == j {
                // negative diagonal
                Tile::from_fn(2, |r, c| if r == c { -1.0 } else { 0.0 })
            } else {
                Tile::zeros(2)
            }
        });
        assert!(potrf_tiled(&mut a).is_err());
    }

    #[test]
    fn solve_sweeps_are_inverse_of_multiplication() {
        let nt = 5;
        let b = 3;
        let a0 = random_spd(61, nt, b);
        let mut l = a0.clone();
        potrf_tiled(&mut l).unwrap();
        let x0 = random_panel(62, nt, b);
        let mut y = x0.clone();
        solve_lower(&l, &mut y);
        solve_lower_trans(&l, &mut y);
        // now y = L^{-T} L^{-1} x0 = A^{-1} x0; multiply back via solve check
        let res = solve_residual(&a0, &y, &x0);
        assert!(res < 1e-10);
    }

    #[test]
    fn lu_matches_dense_factorization() {
        use crate::generate::random_general;
        use crate::verify::lu_residual;
        for (nt, b) in [(1, 4), (3, 3), (6, 4)] {
            let a0 = random_general(13, nt, b);
            let mut f = a0.clone();
            lu_tiled(&mut f).unwrap();
            let res = lu_residual(&a0, &f);
            assert!(res < 1e-12, "nt={nt} b={b} residual={res}");
        }
    }

    #[test]
    fn lu_scalar_tiles_match_dense_lu() {
        use crate::generate::random_general;
        // b = 1 reduces the tiled algorithm to scalar LU
        let nt = 7;
        let a0 = random_general(17, nt, 1);
        let mut f = a0.clone();
        lu_tiled(&mut f).unwrap();
        let n = nt;
        let mut d: Vec<f64> = (0..n * n).map(|x| a0.element(x / n, x % n)).collect();
        for kk in 0..n {
            let piv = d[kk * n + kk];
            for i in kk + 1..n {
                d[i * n + kk] /= piv;
            }
            for i in kk + 1..n {
                for j in kk + 1..n {
                    d[i * n + j] -= d[i * n + kk] * d[kk * n + j];
                }
            }
        }
        for r in 0..n {
            for c in 0..n {
                assert!((f.element(r, c) - d[r * n + c]).abs() < 1e-10, "({r},{c})");
            }
        }
    }
}
