//! Tiled matrix containers.

use sbc_kernels::Tile;

/// A symmetric `N x N`-tile matrix storing only the lower-triangular tiles,
/// each a `b x b` [`Tile`].
///
/// Tile `(i, j)` exists for `0 <= j <= i < N`; accesses with `j > i` panic.
/// Elements above the diagonal *within* a diagonal tile are kept (the tile is
/// stored fully) but the tiled Cholesky kernels only touch its lower part,
/// matching LAPACK convention.
///
/// Storage is a packed `Vec<Tile>` in row-major lower-triangular order:
/// index of `(i, j)` is `i (i + 1) / 2 + j`.
#[derive(Clone)]
pub struct SymmetricTiledMatrix {
    nt: usize,
    b: usize,
    tiles: Vec<Tile>,
}

impl SymmetricTiledMatrix {
    /// Creates a zero matrix with `nt x nt` tiles of dimension `b`.
    pub fn zeros(nt: usize, b: usize) -> Self {
        let count = nt * (nt + 1) / 2;
        SymmetricTiledMatrix {
            nt,
            b,
            tiles: vec![Tile::zeros(b); count],
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` for every stored tile
    /// (`j <= i`).
    pub fn from_tile_fn(nt: usize, b: usize, mut f: impl FnMut(usize, usize) -> Tile) -> Self {
        let mut tiles = Vec::with_capacity(nt * (nt + 1) / 2);
        for i in 0..nt {
            for j in 0..=i {
                let t = f(i, j);
                assert_eq!(t.dim(), b, "tile ({i},{j}) has wrong dimension");
                tiles.push(t);
            }
        }
        SymmetricTiledMatrix { nt, b, tiles }
    }

    /// Number of tile rows/columns `N`.
    #[inline]
    pub fn tile_count(&self) -> usize {
        self.nt
    }

    /// Tile dimension `b`.
    #[inline]
    pub fn tile_dim(&self) -> usize {
        self.b
    }

    /// Matrix order `n = N * b`.
    #[inline]
    pub fn order(&self) -> usize {
        self.nt * self.b
    }

    /// Number of stored tiles, `N (N + 1) / 2` — the paper's `S` when
    /// multiplied by the tile payload.
    #[inline]
    pub fn stored_tiles(&self) -> usize {
        self.tiles.len()
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        assert!(
            j <= i && i < self.nt,
            "tile index ({i},{j}) outside lower triangle of {0}x{0}",
            self.nt
        );
        i * (i + 1) / 2 + j
    }

    /// Borrows tile `(i, j)`, `j <= i`.
    #[inline]
    pub fn tile(&self, i: usize, j: usize) -> &Tile {
        &self.tiles[self.idx(i, j)]
    }

    /// Mutably borrows tile `(i, j)`, `j <= i`.
    #[inline]
    pub fn tile_mut(&mut self, i: usize, j: usize) -> &mut Tile {
        let k = self.idx(i, j);
        &mut self.tiles[k]
    }

    /// Replaces tile `(i, j)`.
    pub fn set_tile(&mut self, i: usize, j: usize, t: Tile) {
        assert_eq!(t.dim(), self.b);
        let k = self.idx(i, j);
        self.tiles[k] = t;
    }

    /// Mutably borrows two distinct tiles at once (needed by kernels that
    /// read one tile while updating another).
    pub fn two_tiles_mut(
        &mut self,
        a: (usize, usize),
        b: (usize, usize),
    ) -> (&mut Tile, &mut Tile) {
        let ia = self.idx(a.0, a.1);
        let ib = self.idx(b.0, b.1);
        assert_ne!(ia, ib, "two_tiles_mut requires distinct tiles");
        if ia < ib {
            let (lo, hi) = self.tiles.split_at_mut(ib);
            (&mut lo[ia], &mut hi[0])
        } else {
            let (lo, hi) = self.tiles.split_at_mut(ia);
            let second = &mut lo[ib];
            (&mut hi[0], second)
        }
    }

    /// Borrows two tiles immutably and a third mutably, all distinct. Needed
    /// by the GEMM update of the tiled algorithms, which reads two tiles and
    /// writes a third.
    pub fn tiles_rrw(
        &mut self,
        r1: (usize, usize),
        r2: (usize, usize),
        w: (usize, usize),
    ) -> (&Tile, &Tile, &mut Tile) {
        let i1 = self.idx(r1.0, r1.1);
        let i2 = self.idx(r2.0, r2.1);
        let iw = self.idx(w.0, w.1);
        assert!(
            i1 != iw && i2 != iw,
            "tiles_rrw: write tile must differ from read tiles"
        );
        let ptr = self.tiles.as_mut_ptr();
        // SAFETY: all three indices are in bounds (checked by `idx`), and the
        // mutable reference targets an element distinct from both shared
        // references (asserted above). The two shared references may alias
        // each other, which is fine.
        unsafe { (&*ptr.add(i1), &*ptr.add(i2), &mut *ptr.add(iw)) }
    }

    /// Scalar element access treating the matrix as symmetric: `(r, c)` in
    /// `0..n` with `A[r][c] == A[c][r]`.
    pub fn element(&self, r: usize, c: usize) -> f64 {
        let (r, c) = if r >= c { (r, c) } else { (c, r) };
        let (ti, tj) = (r / self.b, c / self.b);
        let (ri, rj) = (r % self.b, c % self.b);
        if ti == tj && rj > ri {
            // within a diagonal tile, mirror to the lower part
            self.tile(ti, tj).get(rj, ri)
        } else {
            self.tile(ti, tj).get(ri, rj)
        }
    }

    /// Frobenius norm of the full symmetric matrix (off-diagonal tiles
    /// counted twice, diagonal tiles using their lower parts mirrored).
    pub fn norm_fro(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.nt {
            for j in 0..=i {
                let t = self.tile(i, j);
                if i == j {
                    for c in 0..self.b {
                        for r in c..self.b {
                            let v = t.get(r, c);
                            s += if r == c { v * v } else { 2.0 * v * v };
                        }
                    }
                } else {
                    let f = t.norm_fro();
                    s += 2.0 * f * f;
                }
            }
        }
        s.sqrt()
    }

    /// Iterates over stored tile coordinates in row-major order.
    pub fn tile_coords(&self) -> impl Iterator<Item = (usize, usize)> {
        let nt = self.nt;
        (0..nt).flat_map(move |i| (0..=i).map(move |j| (i, j)))
    }
}

/// A general (non-symmetric) `N x N`-tile matrix storing every tile — the
/// container for the LU substrate of Section III-E.
#[derive(Clone)]
pub struct FullTiledMatrix {
    nt: usize,
    b: usize,
    tiles: Vec<Tile>,
}

impl FullTiledMatrix {
    /// Creates a zero matrix of `nt x nt` tiles of dimension `b`.
    pub fn zeros(nt: usize, b: usize) -> Self {
        FullTiledMatrix {
            nt,
            b,
            tiles: vec![Tile::zeros(b); nt * nt],
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` for every tile.
    pub fn from_tile_fn(nt: usize, b: usize, mut f: impl FnMut(usize, usize) -> Tile) -> Self {
        let mut tiles = Vec::with_capacity(nt * nt);
        for i in 0..nt {
            for j in 0..nt {
                let t = f(i, j);
                assert_eq!(t.dim(), b, "tile ({i},{j}) has wrong dimension");
                tiles.push(t);
            }
        }
        FullTiledMatrix { nt, b, tiles }
    }

    /// Number of tile rows/columns.
    #[inline]
    pub fn tile_count(&self) -> usize {
        self.nt
    }

    /// Tile dimension.
    #[inline]
    pub fn tile_dim(&self) -> usize {
        self.b
    }

    /// Matrix order `n = N * b`.
    #[inline]
    pub fn order(&self) -> usize {
        self.nt * self.b
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        assert!(
            i < self.nt && j < self.nt,
            "tile index ({i},{j}) out of range"
        );
        i * self.nt + j
    }

    /// Borrows tile `(i, j)`.
    #[inline]
    pub fn tile(&self, i: usize, j: usize) -> &Tile {
        &self.tiles[self.idx(i, j)]
    }

    /// Mutably borrows tile `(i, j)`.
    #[inline]
    pub fn tile_mut(&mut self, i: usize, j: usize) -> &mut Tile {
        let k = self.idx(i, j);
        &mut self.tiles[k]
    }

    /// Mutably borrows two distinct tiles.
    pub fn two_tiles_mut(
        &mut self,
        a: (usize, usize),
        b: (usize, usize),
    ) -> (&mut Tile, &mut Tile) {
        let ia = self.idx(a.0, a.1);
        let ib = self.idx(b.0, b.1);
        assert_ne!(ia, ib, "two_tiles_mut requires distinct tiles");
        if ia < ib {
            let (lo, hi) = self.tiles.split_at_mut(ib);
            (&mut lo[ia], &mut hi[0])
        } else {
            let (lo, hi) = self.tiles.split_at_mut(ia);
            let second = &mut lo[ib];
            (&mut hi[0], second)
        }
    }

    /// Borrows two tiles immutably and a third (distinct) tile mutably.
    pub fn tiles_rrw(
        &mut self,
        r1: (usize, usize),
        r2: (usize, usize),
        w: (usize, usize),
    ) -> (&Tile, &Tile, &mut Tile) {
        let i1 = self.idx(r1.0, r1.1);
        let i2 = self.idx(r2.0, r2.1);
        let iw = self.idx(w.0, w.1);
        assert!(
            i1 != iw && i2 != iw,
            "tiles_rrw: write tile must differ from read tiles"
        );
        let ptr = self.tiles.as_mut_ptr();
        // SAFETY: indices in bounds (checked by `idx`); the mutable element
        // is distinct from both shared ones (asserted); shared aliasing of
        // the two reads is allowed.
        unsafe { (&*ptr.add(i1), &*ptr.add(i2), &mut *ptr.add(iw)) }
    }

    /// Scalar element `(r, c)` in `0..n`.
    pub fn element(&self, r: usize, c: usize) -> f64 {
        self.tile(r / self.b, c / self.b)
            .get(r % self.b, c % self.b)
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.tiles
            .iter()
            .map(|t| {
                let f = t.norm_fro();
                f * f
            })
            .sum::<f64>()
            .sqrt()
    }
}

/// A tall panel of `N x 1` tiles (the POSV right-hand side `B`, one tile
/// wide as in Section V-F.1 of the paper).
#[derive(Clone)]
pub struct TiledPanel {
    b: usize,
    tiles: Vec<Tile>,
}

impl TiledPanel {
    /// Creates a zero panel of `nt` tiles of dimension `b`.
    pub fn zeros(nt: usize, b: usize) -> Self {
        TiledPanel {
            b,
            tiles: vec![Tile::zeros(b); nt],
        }
    }

    /// Builds a panel by evaluating `f(i)` for each tile row.
    pub fn from_tile_fn(nt: usize, b: usize, f: impl FnMut(usize) -> Tile) -> Self {
        let tiles: Vec<Tile> = (0..nt).map(f).collect();
        for t in &tiles {
            assert_eq!(t.dim(), b);
        }
        TiledPanel { b, tiles }
    }

    /// Number of tile rows.
    #[inline]
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Tile dimension.
    #[inline]
    pub fn tile_dim(&self) -> usize {
        self.b
    }

    /// Borrows tile row `i`.
    #[inline]
    pub fn tile(&self, i: usize) -> &Tile {
        &self.tiles[i]
    }

    /// Mutably borrows tile row `i`.
    #[inline]
    pub fn tile_mut(&mut self, i: usize) -> &mut Tile {
        &mut self.tiles[i]
    }

    /// Mutably borrows two distinct tile rows at once.
    pub fn two_tiles_mut(&mut self, a: usize, b: usize) -> (&mut Tile, &mut Tile) {
        assert_ne!(a, b);
        if a < b {
            let (lo, hi) = self.tiles.split_at_mut(b);
            (&mut lo[a], &mut hi[0])
        } else {
            let (lo, hi) = self.tiles.split_at_mut(a);
            let second = &mut lo[b];
            (&mut hi[0], second)
        }
    }

    /// Maximum absolute element-wise difference with another panel.
    pub fn max_abs_diff(&self, other: &TiledPanel) -> f64 {
        assert_eq!(self.tiles.len(), other.tiles.len());
        self.tiles
            .iter()
            .zip(other.tiles.iter())
            .fold(0.0_f64, |m, (a, b)| m.max(a.max_abs_diff(b)))
    }

    /// Frobenius norm of the panel.
    pub fn norm_fro(&self) -> f64 {
        self.tiles
            .iter()
            .map(|t| {
                let f = t.norm_fro();
                f * f
            })
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_indexing_roundtrip() {
        let nt = 5;
        let mut m = SymmetricTiledMatrix::zeros(nt, 2);
        for i in 0..nt {
            for j in 0..=i {
                let mut t = Tile::zeros(2);
                t.set(0, 0, (i * 10 + j) as f64);
                m.set_tile(i, j, t);
            }
        }
        for i in 0..nt {
            for j in 0..=i {
                assert_eq!(m.tile(i, j).get(0, 0), (i * 10 + j) as f64);
            }
        }
        assert_eq!(m.stored_tiles(), 15);
    }

    #[test]
    #[should_panic(expected = "outside lower triangle")]
    fn upper_tile_access_panics() {
        let m = SymmetricTiledMatrix::zeros(3, 2);
        let _ = m.tile(0, 1);
    }

    #[test]
    fn element_access_is_symmetric() {
        let m = SymmetricTiledMatrix::from_tile_fn(3, 2, |i, j| {
            Tile::from_fn(2, |r, c| (1000 * i + 100 * j + 10 * r + c) as f64)
        });
        for r in 0..6 {
            for c in 0..6 {
                assert_eq!(m.element(r, c), m.element(c, r), "({r},{c})");
            }
        }
    }

    #[test]
    fn two_tiles_mut_returns_requested_tiles() {
        let mut m = SymmetricTiledMatrix::zeros(4, 2);
        m.tile_mut(2, 1).set(0, 0, 21.0);
        m.tile_mut(3, 0).set(0, 0, 30.0);
        let (a, b) = m.two_tiles_mut((2, 1), (3, 0));
        assert_eq!(a.get(0, 0), 21.0);
        assert_eq!(b.get(0, 0), 30.0);
        let (a, b) = m.two_tiles_mut((3, 0), (2, 1));
        assert_eq!(a.get(0, 0), 30.0);
        assert_eq!(b.get(0, 0), 21.0);
    }

    #[test]
    fn norm_counts_symmetry() {
        // Matrix with a single off-diagonal tile entry v: ||A||_F = v*sqrt(2).
        let mut m = SymmetricTiledMatrix::zeros(2, 2);
        m.tile_mut(1, 0).set(0, 0, 3.0);
        assert!((m.norm_fro() - 3.0 * 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn panel_two_tiles_mut() {
        let mut p = TiledPanel::zeros(4, 3);
        p.tile_mut(1).set(0, 0, 1.0);
        p.tile_mut(3).set(0, 0, 3.0);
        let (a, b) = p.two_tiles_mut(3, 1);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(b.get(0, 0), 1.0);
    }

    #[test]
    fn tile_coords_covers_lower_triangle() {
        let m = SymmetricTiledMatrix::zeros(4, 1);
        let coords: Vec<_> = m.tile_coords().collect();
        assert_eq!(coords.len(), 10);
        assert_eq!(coords[0], (0, 0));
        assert_eq!(coords[9], (3, 3));
        assert!(coords.iter().all(|&(i, j)| j <= i));
    }
}
