//! Seeded random generation of SPD tiled matrices and right-hand sides.
//!
//! Matches the paper's experimental setup (Section V-A): "a random symmetric
//! positive definite matrix A is generated (along with a matrix B as
//! right-hand-side for POSV)". We generate `A = R + R^T + 2n * I` elementwise
//! with `R` uniform in [-1, 1): symmetric, and strictly diagonally dominant,
//! hence SPD. Generation is per-tile and seeded per tile coordinate so that
//! distributed runtimes can generate tiles independently on their owner node
//! and still agree bit-for-bit with the sequential reference.

use crate::storage::{SymmetricTiledMatrix, TiledPanel};
use sbc_kernels::reference::SplitMix64;
use sbc_kernels::Tile;

/// Mixes a global seed with a tile coordinate to get a per-tile stream.
fn tile_seed(seed: u64, i: usize, j: usize) -> u64 {
    let mut h = SplitMix64::new(
        seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    );
    h.next_u64()
}

/// Generates one tile `(i, j)` (with `j <= i`) of the random SPD matrix of
/// order `n = nt * b` with the given seed.
///
/// Public so the distributed runtime can create exactly the tiles a node
/// owns, without materializing the whole matrix anywhere.
pub fn spd_tile(seed: u64, nt: usize, b: usize, i: usize, j: usize) -> Tile {
    assert!(j <= i && i < nt);
    let n = (nt * b) as f64;
    if i == j {
        let mut rng = SplitMix64::new(tile_seed(seed, i, j));
        // diagonal tile: symmetric random + dominant diagonal
        let mut t = Tile::zeros(b);
        for c in 0..b {
            for r in c..b {
                let v = 2.0 * rng.next_f64() - 1.0;
                if r == c {
                    t.set(r, c, v + 2.0 * n);
                } else {
                    t.set(r, c, v);
                    t.set(c, r, v);
                }
            }
        }
        t
    } else {
        let mut rng = SplitMix64::new(tile_seed(seed, i, j));
        Tile::from_fn(b, |_, _| 2.0 * rng.next_f64() - 1.0)
    }
}

/// Generates a random SPD [`SymmetricTiledMatrix`] of `nt x nt` tiles of
/// dimension `b`.
pub fn random_spd(seed: u64, nt: usize, b: usize) -> SymmetricTiledMatrix {
    SymmetricTiledMatrix::from_tile_fn(nt, b, |i, j| spd_tile(seed, nt, b, i, j))
}

/// Generates one tile `(i, j)` (any position) of a random diagonally
/// dominant general matrix of order `n = nt * b`: uniform in [-1, 1) off
/// the diagonal, diagonal shifted by `2n`. Dominance guarantees LU without
/// pivoting succeeds. Lower tiles agree with [`spd_tile`]'s construction
/// philosophy but the matrix is *not* symmetric.
pub fn general_tile(seed: u64, nt: usize, b: usize, i: usize, j: usize) -> Tile {
    assert!(i < nt && j < nt);
    let n = (nt * b) as f64;
    let mut rng = SplitMix64::new(tile_seed(seed ^ 0x6E6E, i, j));
    let mut t = Tile::from_fn(b, |_, _| 2.0 * rng.next_f64() - 1.0);
    if i == j {
        for d in 0..b {
            let v = t.get(d, d) + 2.0 * n;
            t.set(d, d, v);
        }
    }
    t
}

/// Generates a random diagonally dominant general (non-symmetric)
/// [`FullTiledMatrix`] for the LU substrate.
pub fn random_general(seed: u64, nt: usize, b: usize) -> crate::storage::FullTiledMatrix {
    crate::storage::FullTiledMatrix::from_tile_fn(nt, b, |i, j| general_tile(seed, nt, b, i, j))
}

/// Generates one tile of the random right-hand-side panel.
pub fn rhs_tile(seed: u64, b: usize, i: usize) -> Tile {
    let mut rng = SplitMix64::new(tile_seed(seed ^ 0xB5, i, usize::MAX >> 1));
    Tile::from_fn(b, |_, _| 2.0 * rng.next_f64() - 1.0)
}

/// Generates a random `nt x 1`-tile right-hand-side panel.
pub fn random_panel(seed: u64, nt: usize, b: usize) -> TiledPanel {
    TiledPanel::from_tile_fn(nt, b, |i| rhs_tile(seed, b, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = random_spd(42, 4, 3);
        let b = random_spd(42, 4, 3);
        for (i, j) in a.tile_coords() {
            assert!(a.tile(i, j).max_abs_diff(b.tile(i, j)) == 0.0);
        }
        let c = random_spd(43, 4, 3);
        assert!(a.tile(1, 0).max_abs_diff(c.tile(1, 0)) > 0.0);
    }

    #[test]
    fn per_tile_generation_matches_whole_matrix() {
        let a = random_spd(7, 5, 4);
        for (i, j) in a.tile_coords() {
            let t = spd_tile(7, 5, 4, i, j);
            assert!(a.tile(i, j).max_abs_diff(&t) == 0.0);
        }
    }

    #[test]
    fn diagonal_tiles_are_symmetric_and_dominant() {
        let nt = 3;
        let b = 4;
        let a = random_spd(1, nt, b);
        let n = (nt * b) as f64;
        for k in 0..nt {
            let t = a.tile(k, k);
            for r in 0..b {
                for c in 0..b {
                    assert_eq!(t.get(r, c), t.get(c, r));
                }
                assert!(t.get(r, r) > 2.0 * n - 1.0);
            }
        }
    }

    #[test]
    fn generated_matrix_is_positive_definite() {
        // Gershgorin: diagonal 2n +/- 1 dominates row sums < n.
        // Empirically verify via Cholesky of the dense expansion for small n.
        let nt = 3;
        let b = 3;
        let a = random_spd(5, nt, b);
        let n = nt * b;
        // dense in-place Cholesky
        let mut d = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                d[c * n + r] = a.element(r, c);
            }
        }
        for k in 0..n {
            let piv = d[k * n + k];
            assert!(piv > 0.0, "pivot {k} not positive");
            let piv = piv.sqrt();
            for r in k..n {
                d[k * n + r] /= piv;
            }
            for c in k + 1..n {
                let s = d[k * n + c];
                for r in c..n {
                    d[c * n + r] -= s * d[k * n + r];
                }
            }
        }
    }

    #[test]
    fn rhs_panel_deterministic_and_per_tile() {
        let p = random_panel(9, 6, 2);
        for i in 0..6 {
            assert!(p.tile(i).max_abs_diff(&rhs_tile(9, 2, i)) == 0.0);
        }
    }
}
