//! # sbc-matrix — tiled matrices and sequential tiled algorithms
//!
//! This crate provides the data containers and the *sequential* ground-truth
//! algorithms of the SBC reproduction:
//!
//! * [`SymmetricTiledMatrix`] — an `N x N`-tile symmetric matrix storing only
//!   the lower-triangular tiles (the layout Cholesky works on, Section III-A
//!   of the paper: `A[i][j]` for `0 <= j <= i < N`),
//! * [`TiledPanel`] — a tall tile panel (`N x 1` tiles) for POSV right-hand
//!   sides,
//! * [`generate`] — seeded random SPD matrix and RHS generation,
//! * [`algorithms`] — sequential tiled POTRF (Algorithm 1 verbatim), the
//!   POSV forward/backward sweeps, tiled TRTRI and LAUUM, and the POTRI
//!   composition. These define the *exact* dependency structure that the
//!   task-graph crate encodes, and serve as the reference the distributed
//!   runtimes are validated against.
//! * [`verify`] — scaled residual checks.

#![warn(missing_docs)]

pub mod algorithms;
pub mod generate;
pub mod storage;
pub mod verify;

pub use algorithms::{
    lauum_tiled, lu_tiled, posv_tiled, potrf_tiled, potri_tiled, solve_lower, solve_lower_trans,
    trtri_tiled,
};
pub use generate::{random_general, random_panel, random_spd};
pub use storage::{FullTiledMatrix, SymmetricTiledMatrix, TiledPanel};
pub use verify::{cholesky_residual, inverse_residual, lu_residual, solve_residual};
