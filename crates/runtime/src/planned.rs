//! Executing a planner-produced [`Plan`] directly.
//!
//! [`Executor`] borrows its task graph, which is exactly right when the
//! caller already built one — but a [`Plan`] *describes* a graph rather
//! than holding it. [`PlannedExecutor`] closes the gap: it materializes
//! the plan's graph once, owns it, and exposes the same `run`/`try_run`
//! surface, so callers go from `(op, nt, b)` to a distributed execution
//! without naming a distribution anywhere.

use sbc_obs::Recorder;
use sbc_planner::Plan;

use crate::executor::{ExecError, ExecOutcome, Executor, ExecutorBuilder, Policy};

/// An executor that owns the task graph described by a [`Plan`].
pub struct PlannedExecutor {
    plan: Plan,
    graph: sbc_taskgraph::TaskGraph,
    seed: u64,
    seed_rhs: u64,
    workers: Option<usize>,
    policy: Policy,
}

impl PlannedExecutor {
    /// Materializes `plan`'s task graph with the default seeded input
    /// generators (`seed` for the SPD matrix, `seed_rhs` for right-hand
    /// sides). The scheduling policy follows the plan's `use_priorities`
    /// flag; override with [`Self::priorities`].
    pub fn new(plan: Plan, seed: u64, seed_rhs: u64) -> Self {
        let graph = plan.build_graph();
        let policy = if plan.use_priorities {
            Policy::CriticalPath
        } else {
            Policy::SubmissionOrder
        };
        PlannedExecutor {
            plan,
            graph,
            seed,
            seed_rhs,
            workers: None,
            policy,
        }
    }

    /// Sets the worker-thread count per node (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Overrides the ready-heap scheduling policy inherited from the plan.
    pub fn priorities(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// The plan being executed.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The materialized task graph.
    pub fn graph(&self) -> &sbc_taskgraph::TaskGraph {
        &self.graph
    }

    /// Runs the plan to completion.
    ///
    /// # Panics
    /// Panics on kernel failure; use [`Self::try_run`] to handle it.
    pub fn run(&self) -> ExecOutcome {
        self.builder().build().run()
    }

    /// Runs the plan to completion, propagating kernel failures.
    pub fn try_run(&self) -> Result<ExecOutcome, ExecError> {
        self.builder().build().try_run()
    }

    /// Runs the plan with every worker thread recording into `recorder` —
    /// the measured timeline the planner's drift report and the Chrome
    /// exporter consume. Drain the recorder after this returns.
    ///
    /// # Panics
    /// Panics on kernel failure; use [`Self::try_run_recorded`] to handle
    /// it.
    pub fn run_recorded(&self, recorder: &Recorder) -> ExecOutcome {
        self.try_run_recorded(recorder)
            .expect("distributed execution failed")
    }

    /// Recording variant of [`Self::try_run`].
    pub fn try_run_recorded(&self, recorder: &Recorder) -> Result<ExecOutcome, ExecError> {
        self.builder().recorder(recorder).build().try_run()
    }

    fn builder(&self) -> ExecutorBuilder<'_> {
        let mut b = Executor::builder(&self.graph)
            .block(self.plan.b)
            .seeds(self.seed, self.seed_rhs)
            .priorities(self.policy);
        if let Some(w) = self.workers {
            b = b.workers(w);
        }
        b
    }
}

/// One-shot convenience: materialize and run `plan` in one call.
pub fn run_plan(plan: &Plan, seed: u64, seed_rhs: u64) -> ExecOutcome {
    PlannedExecutor::new(*plan, seed, seed_rhs).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_dist::comm::potrf_messages;
    use sbc_dist::SbcExtended;
    use sbc_planner::{Op, Planner};
    use sbc_simgrid::Platform;

    #[test]
    fn planned_execution_matches_analytic_messages() {
        let planner = Planner::new(Platform::bora(15));
        let plan = planner.plan(Op::Potrf, 16, 8);
        // At 15 nodes (paper regime) the planner picks extended SBC r = 6;
        // the measured traffic must equal the analytic counter for it.
        assert_eq!(plan.choice, sbc_planner::DistChoice::SbcExtended { r: 6 });
        let out = run_plan(&plan, 42, 43);
        assert_eq!(out.stats.messages, potrf_messages(&SbcExtended::new(6), 16));
    }

    #[test]
    fn planned_executor_exposes_plan_and_graph() {
        let planner = Planner::new(Platform::bora(6));
        let plan = planner.plan(Op::Trtri, 8, 4);
        let exec = PlannedExecutor::new(plan, 1, 2);
        assert_eq!(exec.plan().nt, 8);
        assert_eq!(exec.graph().count_messages(), plan.cost.messages);
        exec.run();
    }

    #[test]
    fn worker_count_does_not_change_planned_traffic() {
        let planner = Planner::new(Platform::bora(10));
        let plan = planner.plan(Op::Potrf, 12, 8);
        let base = PlannedExecutor::new(plan, 3, 4).workers(1).run();
        let pooled = PlannedExecutor::new(plan, 3, 4)
            .workers(4)
            .priorities(Policy::CriticalPath)
            .run();
        assert_eq!(base.stats, pooled.stats);
    }
}
