//! High-level distributed operations: build the graph, execute it, gather
//! the result.

use crate::executor::{CommStats, Executor};
use sbc_dist::{Distribution, RowCyclic, TwoPointFiveD};
use sbc_matrix::{FullTiledMatrix, SymmetricTiledMatrix, TiledPanel};
use sbc_taskgraph::{
    build_lauum, build_lu, build_posv, build_potrf, build_potrf_25d, build_potri,
    build_potri_remap, build_trtri, TaskGraph, TileRef,
};
use std::collections::HashMap;

fn gather_matrix(
    tiles: &HashMap<TileRef, sbc_kernels::Tile>,
    nt: usize,
    b: usize,
    phase: u8,
    slice_of: impl Fn(usize) -> u8,
) -> SymmetricTiledMatrix {
    SymmetricTiledMatrix::from_tile_fn(nt, b, |i, j| {
        let r = TileRef::A {
            phase,
            slice: slice_of(j),
            i: i as u32,
            j: j as u32,
        };
        tiles
            .get(&r)
            .unwrap_or_else(|| panic!("missing result tile {r:?}"))
            .clone()
    })
}

fn run(graph: &TaskGraph, b: usize, seed: u64) -> (HashMap<TileRef, sbc_kernels::Tile>, CommStats) {
    let out = Executor::new(graph, b, seed, seed ^ 0x05EE_D0FB).run();
    (out.tiles, out.stats)
}

/// Distributed Cholesky factorization of the seeded random SPD matrix:
/// returns the factor (lower tiles hold `L`) and communication statistics.
pub fn run_potrf<D: Distribution>(
    dist: &D,
    nt: usize,
    b: usize,
    seed: u64,
) -> (SymmetricTiledMatrix, CommStats) {
    let g = build_potrf(dist, nt);
    let (tiles, stats) = run(&g, b, seed);
    (gather_matrix(&tiles, nt, b, 0, |_| 0), stats)
}

/// Distributed 2.5D Cholesky factorization (Section IV). The final value of
/// tile `(i, j)` lives on the slice that executed iteration `j`.
pub fn run_potrf_25d<D: Distribution>(
    d25: &TwoPointFiveD<D>,
    nt: usize,
    b: usize,
    seed: u64,
) -> (SymmetricTiledMatrix, CommStats) {
    let g = build_potrf_25d(d25, nt);
    let (tiles, stats) = run(&g, b, seed);
    let c = d25.slices();
    (gather_matrix(&tiles, nt, b, 0, |j| (j % c) as u8), stats)
}

/// Distributed POSV: factorizes the seeded SPD matrix and solves against the
/// seeded right-hand side; returns the solution panel and statistics.
pub fn run_posv<D: Distribution>(
    dist: &D,
    rhs_dist: &RowCyclic,
    nt: usize,
    b: usize,
    seed: u64,
) -> (TiledPanel, CommStats) {
    let g = build_posv(dist, rhs_dist, nt);
    let (tiles, stats) = run(&g, b, seed);
    let x = TiledPanel::from_tile_fn(nt, b, |i| {
        tiles
            .get(&TileRef::B { i: i as u32 })
            .expect("solution tile present")
            .clone()
    });
    (x, stats)
}

/// Distributed LU factorization (no pivoting) of the seeded diagonally
/// dominant general matrix: returns the packed factors and statistics.
pub fn run_lu<D: Distribution>(
    dist: &D,
    nt: usize,
    b: usize,
    seed: u64,
) -> (FullTiledMatrix, CommStats) {
    let g = build_lu(dist, nt);
    // LU inputs are general (non-symmetric) tiles everywhere, unlike the
    // symmetric operations' default provider
    let exec = Executor::with_provider(&g, b, move |r| match r {
        TileRef::A { phase: 0, i, j, .. } => {
            sbc_matrix::generate::general_tile(seed, nt, b, i as usize, j as usize)
        }
        _ => unreachable!("LU graphs only touch phase-0 matrix tiles"),
    });
    let out = exec.run();
    let (tiles, stats) = (out.tiles, out.stats);
    let m = FullTiledMatrix::from_tile_fn(nt, b, |i, j| {
        let r = TileRef::A {
            phase: 0,
            slice: 0,
            i: i as u32,
            j: j as u32,
        };
        tiles
            .get(&r)
            .unwrap_or_else(|| panic!("missing result tile {r:?}"))
            .clone()
    });
    (m, stats)
}

/// Distributed TRTRI of the lower triangle of the seeded matrix.
pub fn run_trtri<D: Distribution>(
    dist: &D,
    nt: usize,
    b: usize,
    seed: u64,
) -> (SymmetricTiledMatrix, CommStats) {
    let g = build_trtri(dist, nt);
    let (tiles, stats) = run(&g, b, seed);
    (gather_matrix(&tiles, nt, b, 0, |_| 0), stats)
}

/// Distributed LAUUM of the lower triangle of the seeded matrix.
pub fn run_lauum<D: Distribution>(
    dist: &D,
    nt: usize,
    b: usize,
    seed: u64,
) -> (SymmetricTiledMatrix, CommStats) {
    let g = build_lauum(dist, nt);
    let (tiles, stats) = run(&g, b, seed);
    (gather_matrix(&tiles, nt, b, 0, |_| 0), stats)
}

/// Distributed POTRI (inverse of the seeded SPD matrix) under one
/// distribution.
pub fn run_potri<D: Distribution>(
    dist: &D,
    nt: usize,
    b: usize,
    seed: u64,
) -> (SymmetricTiledMatrix, CommStats) {
    let g = build_potri(dist, nt);
    let (tiles, stats) = run(&g, b, seed);
    (gather_matrix(&tiles, nt, b, 0, |_| 0), stats)
}

/// Distributed POTRI with the paper's "SBC remap 2DBC" strategy
/// (Section V-F.2). The result lives on phase 2 (back under `sym`).
pub fn run_potri_remap<A: Distribution, B: Distribution>(
    sym: &A,
    bc: &B,
    nt: usize,
    b: usize,
    seed: u64,
) -> (SymmetricTiledMatrix, CommStats) {
    let g = build_potri_remap(sym, bc, nt);
    let (tiles, stats) = run(&g, b, seed);
    (gather_matrix(&tiles, nt, b, 2, |_| 0), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_dist::comm;
    use sbc_dist::{SbcBasic, SbcExtended, TwoDBlockCyclic};
    use sbc_matrix::{
        cholesky_residual, inverse_residual, lauum_tiled, posv_tiled, potrf_tiled, random_panel,
        random_spd, solve_residual, trtri_tiled,
    };

    const B: usize = 8;
    const SEED: u64 = 2022;

    #[test]
    fn potrf_matches_sequential_bitwise() {
        for (dist, nt) in [
            (
                Box::new(TwoDBlockCyclic::new(2, 3)) as Box<dyn Distribution>,
                13,
            ),
            (Box::new(SbcExtended::new(5)), 12),
            (Box::new(SbcBasic::new(4)), 11),
        ] {
            let (l, stats) = run_potrf(&dist.as_ref(), nt, B, SEED);
            let mut seq = random_spd(SEED, nt, B);
            potrf_tiled(&mut seq).unwrap();
            for (i, j) in seq.tile_coords() {
                assert!(
                    l.tile(i, j).max_abs_diff(seq.tile(i, j)) == 0.0,
                    "{} tile ({i},{j}) differs",
                    dist.name()
                );
            }
            // measured communication equals the analytic count
            assert_eq!(
                stats.messages,
                comm::potrf_messages(&dist.as_ref(), nt),
                "{}",
                dist.name()
            );
        }
    }

    #[test]
    fn potrf_residual_is_tiny() {
        let dist = SbcExtended::new(6);
        let nt = 14;
        let (l, _) = run_potrf(&dist, nt, B, SEED);
        let a0 = random_spd(SEED, nt, B);
        assert!(cholesky_residual(&a0, &l) < 1e-12);
    }

    #[test]
    fn potrf_25d_matches_sequential() {
        for c in [2, 3] {
            let d25 = TwoPointFiveD::new(SbcBasic::new(4), c);
            let nt = 12;
            let (l, stats) = run_potrf_25d(&d25, nt, B, SEED);
            let mut seq = random_spd(SEED, nt, B);
            potrf_tiled(&mut seq).unwrap();
            let a0 = random_spd(SEED, nt, B);
            assert!(cholesky_residual(&a0, &l) < 1e-12, "c={c}");
            let _ = seq;
            assert_eq!(
                stats.messages,
                comm::potrf_25d_messages(&d25, nt).total(),
                "c={c}"
            );
        }
    }

    #[test]
    fn posv_solves_and_counts() {
        let dist = SbcExtended::new(5);
        let rhs_dist = RowCyclic::new(10);
        let nt = 11;
        let (x, stats) = run_posv(&dist, &rhs_dist, nt, B, SEED);
        let a0 = random_spd(SEED, nt, B);
        let rhs = random_panel(SEED ^ 0x05EE_D0FB, nt, B);
        assert!(solve_residual(&a0, &x, &rhs) < 1e-10);
        // sequential comparison (same kernel order => bitwise equal)
        let mut a = a0.clone();
        let mut xs = rhs.clone();
        posv_tiled(&mut a, &mut xs).unwrap();
        assert!(x.max_abs_diff(&xs) == 0.0);
        // caching makes traffic at most the sum of the parts
        let parts =
            comm::potrf_messages(&dist, nt) + comm::solve_messages(&dist, &rhs_dist, nt).total();
        assert!(stats.messages <= parts);
    }

    #[test]
    fn trtri_matches_sequential() {
        let dist = TwoDBlockCyclic::new(3, 2);
        let nt = 10;
        let (w, stats) = run_trtri(&dist, nt, B, SEED);
        let mut seq = random_spd(SEED, nt, B);
        trtri_tiled(&mut seq).unwrap();
        for (i, j) in seq.tile_coords() {
            assert!(
                w.tile(i, j).max_abs_diff(seq.tile(i, j)) == 0.0,
                "({i},{j})"
            );
        }
        assert_eq!(stats.messages, comm::trtri_messages(&dist, nt));
    }

    #[test]
    fn lauum_matches_sequential() {
        let dist = SbcExtended::new(5);
        let nt = 10;
        let (w, stats) = run_lauum(&dist, nt, B, SEED);
        let mut seq = random_spd(SEED, nt, B);
        lauum_tiled(&mut seq);
        for (i, j) in seq.tile_coords() {
            assert!(
                w.tile(i, j).max_abs_diff(seq.tile(i, j)) == 0.0,
                "({i},{j})"
            );
        }
        assert_eq!(stats.messages, comm::lauum_messages(&dist, nt));
    }

    #[test]
    fn potri_inverts() {
        let dist = SbcExtended::new(5);
        let nt = 8;
        let (w, _) = run_potri(&dist, nt, B, SEED);
        let a0 = random_spd(SEED, nt, B);
        assert!(inverse_residual(&a0, &w) < 1e-9);
    }

    #[test]
    fn potri_remap_matches_plain_potri() {
        let sym = SbcExtended::new(5);
        let bc = TwoDBlockCyclic::new(5, 2);
        let nt = 8;
        let (plain, _) = run_potri(&sym, nt, B, SEED);
        let (remap, _) = run_potri_remap(&sym, &bc, nt, B, SEED);
        for (i, j) in plain.tile_coords() {
            assert!(
                plain.tile(i, j).max_abs_diff(remap.tile(i, j)) == 0.0,
                "({i},{j})"
            );
        }
    }

    #[test]
    fn single_node_runs_without_messages() {
        let dist = TwoDBlockCyclic::new(1, 1);
        let (l, stats) = run_potrf(&dist, 9, B, SEED);
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.recv_per_node, vec![0]);
        let a0 = random_spd(SEED, 9, B);
        assert!(cholesky_residual(&a0, &l) < 1e-12);
    }

    #[test]
    fn per_node_accounting_is_consistent() {
        let dist = SbcExtended::new(6); // 15 nodes
        let (_, stats) = run_potrf(&dist, 13, B, SEED);
        assert_eq!(stats.sent_per_node.iter().sum::<u64>(), stats.messages);
        assert_eq!(stats.sent_per_node.len(), 15);
        // on a clean run every sent message is received and applied
        assert_eq!(stats.recv_per_node.iter().sum::<u64>(), stats.messages);
        // every payload is one b x b tile — fetches (Msg::Orig) included
        assert_eq!(stats.bytes_per_node.iter().sum::<u64>(), stats.bytes);
        assert_eq!(stats.bytes, stats.messages * (B * B * 8) as u64);
        for (sent, bytes) in stats.sent_per_node.iter().zip(&stats.bytes_per_node) {
            assert_eq!(*bytes, sent * (B * B * 8) as u64);
        }
    }

    #[test]
    fn fetch_traffic_is_counted_in_bytes() {
        // TRTRI consumes original input tiles, so remote readers trigger
        // Msg::Orig fetches — those must appear in both messages and bytes.
        let dist = SbcExtended::new(5);
        let nt = 9;
        let g = sbc_taskgraph::build_trtri(&dist, nt);
        assert!(!g.initial_fetches().is_empty());
        let (_, stats) = run_trtri(&dist, nt, B, SEED);
        assert_eq!(stats.messages, g.count_messages());
        assert_eq!(stats.bytes, stats.messages * (B * B * 8) as u64);
    }

    #[test]
    fn recorded_run_observes_every_task_and_message() {
        use sbc_obs::{ExecProfile, Recorder};
        use sbc_taskgraph::build_potrf;

        let dist = SbcExtended::new(5); // 10 nodes
        let nt = 10;
        let g = build_potrf(&dist, nt);
        let rec = Recorder::new();
        let out = Executor::new(&g, B, SEED, SEED ^ 1)
            .with_recorder(&rec)
            .run();
        let recording = rec.drain();
        let profile = ExecProfile::from_recording(&recording);
        // one task span per graph task, one send event per message
        let spans = sbc_obs::task_spans(&recording);
        assert_eq!(spans.len(), g.len());
        assert_eq!(profile.messages, out.stats.messages);
        assert_eq!(profile.bytes, out.stats.bytes);
        assert_eq!(profile.nodes, 10);
        // per-kind counts: nt potrf, nt*(nt-1)/2 trsm
        assert_eq!(profile.per_kind["potrf"].count, nt as u64);
        assert_eq!(profile.per_kind["trsm"].count, (nt * (nt - 1) / 2) as u64);
        // timeline is sane: spans are within the recording's wall window
        assert!(profile.wall_seconds > 0.0);
        assert!(spans.iter().all(|s| s.end >= s.start));
    }
}
