//! The resident multi-job execution engine.
//!
//! [`crate::Executor`] is one-shot: it meshes nodes up, runs a single task
//! graph and tears everything down. A factorization *service* cannot afford
//! that — mesh setup, session handshakes and planning dominate small jobs —
//! so this module keeps every rank's worker pool and transport endpoint
//! **resident** and streams jobs through them:
//!
//! - A [`JobTable`] is the in-process control plane: clients submit
//!   [`JobSpec`]s (admission-controlled), rank engines pick them up, and
//!   finished [`JobOutcome`]s are published back with exact per-job
//!   [`CommStats`]. Only tile payloads ever cross the transport; control
//!   stays in shared memory because every deployment shape (in-process
//!   mesh, one thread per UDS session endpoint) keeps the ranks in one
//!   process.
//! - [`run_jobs_rank`] is one rank's resident engine: a worker pool
//!   draining a ready heap keyed by **(job priority, task priority)** —
//!   the extension of the one-shot scheduler's task-priority key — with
//!   per-job tile stores namespaced by the job id that
//!   [`sbc_net::Payload`] now carries, so concurrent jobs share the mesh
//!   without clobbering each other.
//!
//! The liveness watchdog arms **per job**: the no-progress clock only runs
//! while this rank has jobs in flight and is re-armed at every job
//! registration, so an idle resident rank waiting for its next job never
//! trips [`ExecError::Stalled`].

use crate::executor::{default_original, run_kernel, CommStats, ExecError};
use sbc_dist::comm::messages_to_bytes;
use sbc_kernels::{KernelBackend, Tile};
use sbc_net::{Message, NodeId, Payload, RecvTimeout, Transport};
use sbc_obs::{Counter, EventKind, EventLog, Gauge, Histogram, Metrics, RateWindow, Severity};
use sbc_taskgraph::{flops_priorities, EdgeKind, TaskGraph, TaskId, TaskKind, TileRef};
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Identifies one job across the table, the engines and the wire.
pub type JobId = u32;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An admitted factorization job, shared between the table and every rank
/// engine. Built by [`JobTable::submit`].
pub struct JobSpec {
    /// Table-assigned id; also the namespace tag on every payload.
    pub id: JobId,
    /// The task graph to execute (shared — same-shape jobs reuse one).
    pub graph: Arc<TaskGraph>,
    /// Tile dimension.
    pub b: usize,
    /// SPD input seed.
    pub seed: u64,
    /// Right-hand-side seed.
    pub seed_rhs: u64,
    /// Job priority: higher jumps the shared ready heap.
    pub prio: u8,
    /// Critical-path task priorities as raw f32 bits; empty = submission
    /// order.
    prio_bits: Arc<Vec<u32>>,
}

impl JobSpec {
    fn task_prio(&self, t: TaskId) -> u32 {
        self.prio_bits.get(t as usize).copied().unwrap_or(0)
    }
}

/// One finished job: the merged tile stores of every rank plus the job's
/// own communication statistics — exactly what a one-shot
/// [`crate::ExecOutcome`] reports, per job.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job.
    pub id: JobId,
    /// Final tile values, merged across ranks.
    pub tiles: HashMap<TileRef, Tile>,
    /// This job's communication (payloads carrying its job id only).
    pub stats: CommStats,
    /// Wall-clock from admission to the last rank finishing.
    pub elapsed: Duration,
}

/// Why a submission was refused at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The in-flight bound is reached; retry after a completion.
    QueueFull {
        /// Jobs currently admitted and not yet finished.
        inflight: usize,
        /// The configured bound.
        max: usize,
    },
    /// The table is draining; no further work is accepted.
    ShuttingDown,
    /// The mesh died (a rank failed); the service must be restarted.
    Dead,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull { inflight, max } => {
                write!(f, "queue full: {inflight} jobs in flight (max {max})")
            }
            Rejection::ShuttingDown => write!(f, "service is shutting down"),
            Rejection::Dead => write!(f, "mesh failed; service needs a restart"),
        }
    }
}

/// Admission→completion latency buckets (seconds) for `serve.job.latency`.
pub const JOB_LATENCY_BOUNDS: [f64; 10] =
    [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0];

/// Per-rank live engine gauges, published from the engine loop as plain
/// atomic stores (the scrape side reads them without any engine lock).
struct RankObs {
    ready: Arc<Gauge>,
    pending: Arc<Gauge>,
    inflight: Arc<Gauge>,
    busy: Arc<Gauge>,
}

/// The table's telemetry bundle, bound once via [`JobTable::bind_obs`].
/// Every instrument is registered eagerly so a scrape before any traffic
/// still shows the full vocabulary at zero.
struct TableObs {
    submitted: Arc<Counter>,
    rejected: Arc<Counter>,
    done: Arc<Counter>,
    failed: Arc<Counter>,
    latency: Arc<Histogram>,
    drift_ok: Arc<Counter>,
    drift_messages: Arc<Counter>,
    drift_bytes: Arc<Counter>,
    inflight: Arc<Gauge>,
    rate: RateWindow,
    ranks: Vec<Arc<RankObs>>,
    events: Arc<EventLog>,
}

impl TableObs {
    /// Records one completed job: throughput, latency, lifecycle event and
    /// the continuous comm-drift check against the analytic prediction. A
    /// non-zero drift counter is a standing correctness alarm.
    fn job_done(&self, id: JobId, elapsed: Duration, measured: (u64, u64), expected: (u64, u64)) {
        self.done.inc();
        self.rate.record();
        self.latency.observe(elapsed.as_secs_f64());
        let (msgs, bytes) = measured;
        let (exp_msgs, exp_bytes) = expected;
        if msgs != exp_msgs {
            self.drift_messages.inc();
        }
        if bytes != exp_bytes {
            self.drift_bytes.inc();
        }
        if msgs == exp_msgs && bytes == exp_bytes {
            self.drift_ok.inc();
            self.events.push(
                Severity::Info,
                EventKind::Done,
                Some(id),
                format!(
                    "{msgs} msgs / {bytes} B as planned, {:.4}s",
                    elapsed.as_secs_f64()
                ),
            );
        } else {
            self.events.push(
                Severity::Warn,
                EventKind::Done,
                Some(id),
                format!(
                    "comm drift: measured {msgs} msgs / {bytes} B, planned {exp_msgs} / {exp_bytes}"
                ),
            );
        }
    }
}

/// Per-job accumulator while ranks report in.
struct JobAccum {
    tiles: HashMap<TileRef, Tile>,
    sent_per_node: Vec<u64>,
    recv_per_node: Vec<u64>,
    bytes_per_node: Vec<u64>,
    ranks_done: usize,
    admitted: Instant,
    /// Analytic `(messages, bytes)` the finished job must have measured.
    expected: (u64, u64),
    /// Whether the `Started` lifecycle event has fired (first rank pickup).
    started_emitted: bool,
}

struct TableState {
    next_id: JobId,
    /// Admitted specs each rank engine has not yet picked up.
    incoming: Vec<VecDeque<Arc<JobSpec>>>,
    accum: HashMap<JobId, JobAccum>,
    done: HashMap<JobId, JobOutcome>,
    inflight: usize,
    completed: u64,
    shutdown: bool,
    /// First engine-level failure; everything in flight fails with it.
    dead: Option<ExecError>,
}

/// The in-process control plane of a resident mesh: admission, job
/// hand-off to the rank engines, result accumulation and completion
/// signalling. One table serves one mesh for its whole lifetime.
pub struct JobTable {
    n_nodes: usize,
    max_inflight: usize,
    state: Mutex<TableState>,
    cv: Condvar,
    /// Lock-free mirrors of `TableState::{inflight, completed}` so a
    /// telemetry scrape never touches the state mutex the engines use.
    inflight_now: AtomicU64,
    completed_ever: AtomicU64,
    obs: OnceLock<TableObs>,
}

impl JobTable {
    /// A table for an `n_nodes` mesh admitting at most `max_inflight`
    /// concurrent jobs (clamped to at least 1).
    pub fn new(n_nodes: usize, max_inflight: usize) -> Self {
        JobTable {
            n_nodes,
            max_inflight: max_inflight.max(1),
            state: Mutex::new(TableState {
                next_id: 0,
                incoming: (0..n_nodes).map(|_| VecDeque::new()).collect(),
                accum: HashMap::new(),
                done: HashMap::new(),
                inflight: 0,
                completed: 0,
                shutdown: false,
                dead: None,
            }),
            cv: Condvar::new(),
            inflight_now: AtomicU64::new(0),
            completed_ever: AtomicU64::new(0),
            obs: OnceLock::new(),
        }
    }

    /// Mesh size this table was built for.
    pub fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Binds the table (and every rank engine started against it) to a
    /// metrics registry and an event log. Call once, before engines start;
    /// later calls are ignored. Registers the full instrument vocabulary
    /// eagerly — `serve.jobs.{submitted,rejected,done,failed}`,
    /// `serve.jobs.inflight`, the `serve.job.latency` histogram, the
    /// `obs.drift.{ok,messages,bytes}` alarm counters and per-rank
    /// `jobs.rank<r>.{ready,pending,inflight,busy}` gauges — so a scrape
    /// before any traffic shows them all at zero. `rate_slots` bounds the
    /// sliding-window throughput ring (events remembered for
    /// [`JobTable::completion_rate`]).
    pub fn bind_obs(&self, metrics: &Metrics, events: Arc<EventLog>, rate_slots: usize) {
        let ranks = (0..self.n_nodes)
            .map(|r| {
                Arc::new(RankObs {
                    ready: metrics.gauge(&format!("jobs.rank{r}.ready")),
                    pending: metrics.gauge(&format!("jobs.rank{r}.pending")),
                    inflight: metrics.gauge(&format!("jobs.rank{r}.inflight")),
                    busy: metrics.gauge(&format!("jobs.rank{r}.busy")),
                })
            })
            .collect();
        let _ = self.obs.set(TableObs {
            submitted: metrics.counter("serve.jobs.submitted"),
            rejected: metrics.counter("serve.jobs.rejected"),
            done: metrics.counter("serve.jobs.done"),
            failed: metrics.counter("serve.jobs.failed"),
            latency: metrics.histogram("serve.job.latency", &JOB_LATENCY_BOUNDS),
            drift_ok: metrics.counter("obs.drift.ok"),
            drift_messages: metrics.counter("obs.drift.messages"),
            drift_bytes: metrics.counter("obs.drift.bytes"),
            inflight: metrics.gauge("serve.jobs.inflight"),
            rate: RateWindow::new(rate_slots.max(1)),
            ranks,
            events,
        });
    }

    /// Jobs per second over the trailing `window`, measured at completion
    /// times. Zero when [`JobTable::bind_obs`] was never called. Lock-free.
    pub fn completion_rate(&self, window: Duration) -> f64 {
        self.obs.get().map_or(0.0, |o| o.rate.rate(window))
    }

    fn rank_obs(&self, rank: NodeId) -> Option<Arc<RankObs>> {
        self.obs
            .get()
            .and_then(|o| o.ranks.get(rank as usize))
            .map(Arc::clone)
    }

    /// Submits one job. `use_priorities` selects critical-path task
    /// ordering within the job (the graph-level half of the heap key;
    /// `prio` is the job-level half). Returns the job id, or the admission
    /// verdict when the queue is full or the table is draining.
    pub fn submit(
        &self,
        graph: Arc<TaskGraph>,
        b: usize,
        seed: u64,
        seed_rhs: u64,
        prio: u8,
        use_priorities: bool,
    ) -> Result<JobId, Rejection> {
        // the analytic prediction the finished job is checked against: the
        // graph's exact message count (== the planner's cost model) and the
        // tile-payload bytes those messages carry
        let msgs = graph.count_messages();
        let expected = (msgs, messages_to_bytes(msgs, b));
        self.submit_expecting(graph, b, seed, seed_rhs, prio, use_priorities, expected)
    }

    /// [`JobTable::submit`] with an explicit `(messages, bytes)` comm
    /// prediction instead of the graph's own analytic count. The drift
    /// monitor compares the job's measured [`CommStats`] against this at
    /// completion, so planting a wrong prediction here is how tests prove
    /// the `obs.drift.*` alarms fire.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_expecting(
        &self,
        graph: Arc<TaskGraph>,
        b: usize,
        seed: u64,
        seed_rhs: u64,
        prio: u8,
        use_priorities: bool,
        expected: (u64, u64),
    ) -> Result<JobId, Rejection> {
        let prio_bits = Arc::new(if use_priorities {
            flops_priorities(&graph, b)
                .into_iter()
                .map(f32::to_bits)
                .collect()
        } else {
            Vec::new()
        });
        let mut st = lock(&self.state);
        let verdict = if st.dead.is_some() {
            Some(Rejection::Dead)
        } else if st.shutdown {
            Some(Rejection::ShuttingDown)
        } else if st.inflight >= self.max_inflight {
            Some(Rejection::QueueFull {
                inflight: st.inflight,
                max: self.max_inflight,
            })
        } else {
            None
        };
        if let Some(rej) = verdict {
            drop(st);
            if let Some(obs) = self.obs.get() {
                obs.rejected.inc();
                obs.events
                    .push(Severity::Warn, EventKind::Rejected, None, rej.to_string());
            }
            return Err(rej);
        }
        let id = st.next_id;
        st.next_id += 1;
        st.inflight += 1;
        let inflight = st.inflight;
        let spec = Arc::new(JobSpec {
            id,
            graph,
            b,
            seed,
            seed_rhs,
            prio,
            prio_bits,
        });
        let (nt, b) = (spec.graph.nt, spec.b);
        st.accum.insert(
            id,
            JobAccum {
                tiles: HashMap::new(),
                sent_per_node: vec![0; self.n_nodes],
                recv_per_node: vec![0; self.n_nodes],
                bytes_per_node: vec![0; self.n_nodes],
                ranks_done: 0,
                admitted: Instant::now(),
                expected,
                started_emitted: false,
            },
        );
        for q in &mut st.incoming {
            q.push_back(Arc::clone(&spec));
        }
        drop(st);
        self.inflight_now.store(inflight as u64, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.submitted.inc();
            obs.inflight.set(inflight as f64);
            obs.events.push(
                Severity::Info,
                EventKind::Admitted,
                Some(id),
                format!("nt={nt} b={b} prio={prio}"),
            );
        }
        self.cv.notify_all();
        Ok(id)
    }

    /// Blocks until `id` finishes, returning its outcome — or the engine
    /// failure that killed the mesh while it was in flight.
    pub fn wait(&self, id: JobId) -> Result<JobOutcome, ExecError> {
        let mut st = lock(&self.state);
        loop {
            if let Some(out) = st.done.remove(&id) {
                return Ok(out);
            }
            if let Some(e) = &st.dead {
                return Err(e.clone());
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Stops admitting jobs; resident engines exit once everything already
    /// admitted has drained.
    pub fn shutdown(&self) {
        lock(&self.state).shutdown = true;
        self.cv.notify_all();
    }

    /// Jobs admitted and not yet finished. Lock-free (reads an atomic
    /// mirror), so telemetry scrapes never contend with the engines.
    pub fn inflight(&self) -> usize {
        self.inflight_now.load(Ordering::Relaxed) as usize
    }

    /// Jobs completed since the table was built. Lock-free.
    pub fn completed(&self) -> u64 {
        self.completed_ever.load(Ordering::Relaxed)
    }

    /// Engine side: drains `rank`'s pending registrations and reports
    /// whether the table is draining.
    fn take_incoming(&self, rank: NodeId) -> (Vec<Arc<JobSpec>>, bool) {
        let mut st = lock(&self.state);
        let q = &mut st.incoming[rank as usize];
        let specs: Vec<Arc<JobSpec>> = q.drain(..).collect();
        // the first rank to pick a job up marks it started
        let mut started: Vec<JobId> = Vec::new();
        for spec in &specs {
            if let Some(acc) = st.accum.get_mut(&spec.id) {
                if !acc.started_emitted {
                    acc.started_emitted = true;
                    started.push(spec.id);
                }
            }
        }
        let shutdown = st.shutdown;
        drop(st);
        if let Some(obs) = self.obs.get() {
            for id in started {
                obs.events.push(
                    Severity::Info,
                    EventKind::Started,
                    Some(id),
                    format!("picked up by rank {rank}"),
                );
            }
        }
        (specs, shutdown)
    }

    /// Engine side: one rank's share of `id` is finished. The final rank
    /// to report completes the job and wakes the waiters.
    fn rank_done(
        &self,
        id: JobId,
        rank: NodeId,
        tiles: HashMap<TileRef, Tile>,
        sent: u64,
        sent_bytes: u64,
        applied: u64,
    ) {
        let mut st = lock(&self.state);
        let Some(acc) = st.accum.get_mut(&id) else {
            return; // job already failed via poison
        };
        acc.sent_per_node[rank as usize] = sent;
        acc.bytes_per_node[rank as usize] = sent_bytes;
        acc.recv_per_node[rank as usize] = applied;
        for (r, t) in tiles {
            let prev = acc.tiles.insert(r, t);
            debug_assert!(prev.is_none(), "tile {r:?} reported by two ranks");
        }
        acc.ranks_done += 1;
        if acc.ranks_done == self.n_nodes {
            let acc = st.accum.remove(&id).expect("accumulator present");
            let stats = CommStats {
                messages: acc.sent_per_node.iter().sum(),
                bytes: acc.bytes_per_node.iter().sum(),
                sent_per_node: acc.sent_per_node,
                recv_per_node: acc.recv_per_node,
                bytes_per_node: acc.bytes_per_node,
            };
            let measured = (stats.messages, stats.bytes);
            let expected = acc.expected;
            let elapsed = acc.admitted.elapsed();
            st.done.insert(
                id,
                JobOutcome {
                    id,
                    tiles: acc.tiles,
                    stats,
                    elapsed,
                },
            );
            st.inflight -= 1;
            st.completed += 1;
            let inflight = st.inflight;
            drop(st);
            self.inflight_now.store(inflight as u64, Ordering::Relaxed);
            self.completed_ever.fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = self.obs.get() {
                obs.inflight.set(inflight as f64);
                obs.job_done(id, elapsed, measured, expected);
            }
            self.cv.notify_all();
        }
    }

    /// Engine side: the mesh failed. Every in-flight job fails with the
    /// first reported error; future submissions are rejected.
    fn poison(&self, e: ExecError) {
        let mut st = lock(&self.state);
        let first = st.dead.is_none();
        if first {
            st.dead = Some(e.clone());
        }
        let mut failed: Vec<JobId> = st.accum.keys().copied().collect();
        failed.sort_unstable();
        st.inflight = 0;
        st.accum.clear();
        for q in &mut st.incoming {
            q.clear();
        }
        drop(st);
        self.inflight_now.store(0, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.inflight.set(0.0);
            if first {
                if let ExecError::Stalled { rank, .. } = &e {
                    obs.events.push(
                        Severity::Error,
                        EventKind::Stalled,
                        None,
                        format!("rank {rank} watchdog: {e}"),
                    );
                }
                obs.failed.add(failed.len() as u64);
                for id in failed {
                    obs.events
                        .push(Severity::Error, EventKind::Failed, Some(id), e.to_string());
                }
            }
        }
        self.cv.notify_all();
    }
}

/// One rank engine's knobs.
#[derive(Debug, Clone, Copy)]
pub struct JobEngineConfig {
    /// Worker threads in this rank's resident pool (at least 1).
    pub workers: usize,
    /// Receive poll tick: how often a parked receiver re-checks for new
    /// job registrations and (under a session) drives retransmissions.
    pub heartbeat: Duration,
    /// Per-job no-progress watchdog; `None` disables it. The clock only
    /// runs while this rank has jobs in flight.
    pub deadline: Option<Duration>,
    /// Kernel backend the pool's workers dispatch through. All backends
    /// produce bit-identical tiles; callers should pass it through
    /// [`sbc_kernels::KernelBackend::resolve`] so `SBC_KERNELS` wins.
    pub kernels: KernelBackend,
}

impl Default for JobEngineConfig {
    fn default() -> Self {
        JobEngineConfig {
            workers: 1,
            heartbeat: Duration::from_millis(2),
            deadline: None,
            kernels: KernelBackend::default(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum WaitKey {
    Task(TaskId),
    Orig(TileRef),
}

/// Job-private tile stores: the namespace that lets concurrent jobs share
/// one mesh. `local` holds tiles this rank owns for the job, `cache` holds
/// remote arrivals keyed by producer task or fetched original.
struct JobTiles {
    local: RwLock<HashMap<TileRef, Tile>>,
    cache: RwLock<HashMap<WaitKey, Tile>>,
}

/// One rank's in-flight share of a job.
struct JobRun {
    spec: Arc<JobSpec>,
    tiles: Arc<JobTiles>,
    deps: HashMap<TaskId, u32>,
    waits: HashMap<WaitKey, Vec<TaskId>>,
    fetch_sends: Vec<(TileRef, NodeId)>,
    /// Tasks with no dependencies, released when shipping completes.
    initial_ready: Vec<TaskId>,
    shipped: bool,
    remaining: u64,
    sent: u64,
    sent_bytes: u64,
    applied: u64,
}

/// Ready-heap key: job priority (descending), task priority (descending),
/// then job id and task id (ascending) for determinism.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct ReadyKey {
    jprio: u8,
    tprio: u32,
    job: std::cmp::Reverse<JobId>,
    task: std::cmp::Reverse<TaskId>,
}

struct EngineState {
    ready: BinaryHeap<ReadyKey>,
    jobs: HashMap<JobId, JobRun>,
    /// Jobs whose original-tile fetches have not been shipped yet; drained
    /// before the heap so no task of a job outruns its fetch sends.
    unshipped: VecDeque<JobId>,
    /// Payloads that arrived before their job was registered on this rank
    /// (registration races remote ships).
    pending: HashMap<JobId, Vec<Payload>>,
    /// Jobs this rank completed; late duplicates for them are dropped.
    finished: HashSet<JobId>,
    receiving: bool,
    active: u32,
    poisoned: bool,
    error: Option<ExecError>,
}

struct Engine<'e> {
    net: &'e dyn Transport,
    table: &'e JobTable,
    cfg: JobEngineConfig,
    me: NodeId,
    state: Mutex<EngineState>,
    cv: Condvar,
    started: Instant,
    progress_ns: AtomicU64,
    /// Nanoseconds this rank's workers spent shipping or running tasks,
    /// summed across the pool; `busy / (workers * elapsed)` is the
    /// engine's busy fraction.
    busy_ns: AtomicU64,
    /// Live per-rank gauges, present when the table is obs-bound.
    obs: Option<Arc<RankObs>>,
}

/// What one worker decides to do after inspecting the engine state.
enum Step {
    Ship(JobId),
    Run(JobId, TaskId),
    Receive,
    Wait,
    Exit,
}

/// Runs one rank's resident engine over `net` until [`JobTable::shutdown`]
/// drains it (returning `Ok`) or the mesh fails (returning the error after
/// poisoning peers and failing every in-flight job in the table).
///
/// Every rank of the mesh must run this against the same table. The caller
/// owns the thread: spawn one per rank over an in-process mesh for a
/// service, or one per session endpoint for a socket mesh.
pub fn run_jobs_rank(
    net: &dyn Transport,
    table: &JobTable,
    cfg: JobEngineConfig,
) -> Result<(), ExecError> {
    let engine = Engine {
        net,
        table,
        cfg,
        me: net.rank(),
        state: Mutex::new(EngineState {
            ready: BinaryHeap::new(),
            jobs: HashMap::new(),
            unshipped: VecDeque::new(),
            pending: HashMap::new(),
            finished: HashSet::new(),
            receiving: false,
            active: 0,
            poisoned: false,
            error: None,
        }),
        cv: Condvar::new(),
        started: Instant::now(),
        progress_ns: AtomicU64::new(0),
        busy_ns: AtomicU64::new(0),
        obs: table.rank_obs(net.rank()),
    };
    std::thread::scope(|scope| {
        for _ in 0..cfg.workers.max(1) {
            scope.spawn(|| engine.worker_loop());
        }
    });
    let st = engine
        .state
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match st.error {
        Some(e) => Err(e),
        None if st.poisoned => Err(ExecError::Remote),
        None => Ok(()),
    }
}

impl Engine<'_> {
    /// Publishes this rank's live gauges: ready-heap depth, early-payload
    /// stash size, jobs in flight here, and the pool's busy fraction.
    fn publish_gauges(&self, (ready, pending, jobs): (usize, usize, usize)) {
        let Some(obs) = &self.obs else { return };
        obs.ready.set(ready as f64);
        obs.pending.set(pending as f64);
        obs.inflight.set(jobs as f64);
        let elapsed = self.started.elapsed().as_nanos() as u64;
        if elapsed > 0 {
            let pool = elapsed.saturating_mul(self.cfg.workers.max(1) as u64);
            let busy = self.busy_ns.load(Ordering::Relaxed) as f64 / pool as f64;
            obs.busy.set(busy.min(1.0));
        }
    }

    fn touch_progress(&self) {
        self.progress_ns
            .store(self.started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn stalled_for(&self) -> Duration {
        self.started.elapsed().saturating_sub(Duration::from_nanos(
            self.progress_ns.load(Ordering::Relaxed),
        ))
    }

    fn worker_loop(&self) {
        loop {
            // pick up new registrations (table lock only — never nested
            // inside the engine lock)
            let (specs, shutdown) = self.table.take_incoming(self.me);
            let mut completions = Vec::new();
            for spec in specs {
                if let Some(done) = self.register(spec) {
                    completions.push(done);
                }
            }
            self.report(completions);

            let (step, depths) = {
                let mut st = lock(&self.state);
                let drained = shutdown
                    && st.jobs.is_empty()
                    && st.unshipped.is_empty()
                    && st.ready.is_empty();
                let step = if st.poisoned || drained {
                    Step::Exit
                } else if let Some(j) = st.unshipped.pop_front() {
                    st.active += 1;
                    Step::Ship(j)
                } else if let Some(k) = st.ready.pop() {
                    st.active += 1;
                    Step::Run(k.job.0, k.task.0)
                } else if !st.receiving {
                    st.receiving = true;
                    Step::Receive
                } else {
                    Step::Wait
                };
                // depths are captured under the lock the engine already
                // holds and published as plain atomic stores after release,
                // so scrapers never take this lock
                let depths = (st.ready.len(), st.pending.len(), st.jobs.len());
                (step, depths)
            };
            self.publish_gauges(depths);
            match step {
                Step::Exit => break,
                Step::Ship(j) => {
                    let t0 = Instant::now();
                    self.ship(j);
                    self.busy_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
                Step::Run(j, t) => {
                    let t0 = Instant::now();
                    self.run_task(j, t);
                    self.busy_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
                Step::Receive => self.receive_once(),
                Step::Wait => {
                    let st = lock(&self.state);
                    if !st.poisoned && st.unshipped.is_empty() && st.ready.is_empty() {
                        // bounded wait: new registrations arrive via the
                        // table, which cannot poke this condvar directly
                        drop(
                            self.cv
                                .wait_timeout(st, self.cfg.heartbeat)
                                .unwrap_or_else(std::sync::PoisonError::into_inner),
                        );
                    }
                }
            }
        }
        self.cv.notify_all();
    }

    /// Builds this rank's share of `spec` and installs it. Returns the
    /// completion report when the job has nothing to do here (no local
    /// tasks and no fetches to ship).
    fn register(&self, spec: Arc<JobSpec>) -> Option<Completion> {
        let g = spec.graph.as_ref();
        let me = self.me;
        let mut deps_global = g.in_degrees();
        for (t, extra) in g.fetch_deps().into_iter().enumerate() {
            deps_global[t] += extra;
        }
        let mut deps: HashMap<TaskId, u32> = HashMap::new();
        let mut initial_ready: Vec<TaskId> = Vec::new();
        let mut remaining = 0u64;
        let mut waits: HashMap<WaitKey, Vec<TaskId>> = HashMap::new();
        let mut fetch_sends: Vec<(TileRef, NodeId)> = Vec::new();
        for t in 0..g.len() as TaskId {
            if g.tasks()[t as usize].node != me {
                continue;
            }
            remaining += 1;
            deps.insert(t, deps_global[t as usize]);
            if deps_global[t as usize] == 0 {
                initial_ready.push(t);
            }
            for (p, kind) in g.preds(t) {
                if g.tasks()[p as usize].node != me {
                    debug_assert_eq!(kind, EdgeKind::Data);
                    let w = waits.entry(WaitKey::Task(p)).or_default();
                    if w.last() != Some(&t) {
                        w.push(t);
                    }
                }
            }
        }
        for f in g.initial_fetches() {
            if f.home == me {
                fetch_sends.push((f.tile, f.dest));
            }
            if f.dest == me {
                waits
                    .entry(WaitKey::Orig(f.tile))
                    .or_default()
                    .extend(f.consumers.iter().copied());
            }
        }

        // arm the per-job watchdog clock: a rank that was idle until now
        // must measure no-progress from this registration, not from the
        // end of the previous job
        self.touch_progress();

        let id = spec.id;
        let shipped = fetch_sends.is_empty();
        let run = JobRun {
            spec,
            tiles: Arc::new(JobTiles {
                local: RwLock::new(HashMap::new()),
                cache: RwLock::new(HashMap::new()),
            }),
            deps,
            waits,
            fetch_sends,
            initial_ready,
            shipped,
            remaining,
            sent: 0,
            sent_bytes: 0,
            applied: 0,
        };

        let mut st = lock(&self.state);
        if st.poisoned {
            return None;
        }
        st.jobs.insert(id, run);
        if shipped {
            Self::release_initial(&mut st, id);
        } else {
            st.unshipped.push_back(id);
        }
        // payloads that beat the registration
        if let Some(pend) = st.pending.remove(&id) {
            for payload in pend {
                Self::apply_payload(&mut st, payload);
            }
        }
        let done = Self::try_finish(&mut st, id);
        drop(st);
        self.cv.notify_all();
        done
    }

    /// Pushes a registered job's zero-dependency tasks onto the shared
    /// heap (call with `shipped` already true).
    fn release_initial(st: &mut EngineState, id: JobId) {
        let run = st.jobs.get_mut(&id).expect("job registered");
        let tasks = std::mem::take(&mut run.initial_ready);
        let (jprio, spec) = (run.spec.prio, Arc::clone(&run.spec));
        for t in tasks {
            st.ready.push(ReadyKey {
                jprio,
                tprio: spec.task_prio(t),
                job: std::cmp::Reverse(id),
                task: std::cmp::Reverse(t),
            });
        }
    }

    /// If `id` has shipped its fetches and run out of local tasks, remove
    /// it and return what the table must be told. Caller reports after
    /// releasing the engine lock.
    fn try_finish(st: &mut EngineState, id: JobId) -> Option<Completion> {
        let run = st.jobs.get(&id)?;
        if !(run.shipped && run.remaining == 0) {
            return None;
        }
        let run = st.jobs.remove(&id).expect("job present");
        st.finished.insert(id);
        st.pending.remove(&id);
        let tiles = std::mem::take(
            &mut *run
                .tiles
                .local
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        Some(Completion {
            id,
            tiles,
            sent: run.sent,
            sent_bytes: run.sent_bytes,
            applied: run.applied,
        })
    }

    fn report(&self, completions: Vec<Completion>) {
        for c in completions {
            self.table
                .rank_done(c.id, self.me, c.tiles, c.sent, c.sent_bytes, c.applied);
        }
    }

    /// Ships a job's original tiles to their remote consumers, then
    /// releases the job's initial tasks. Runs outside the engine lock; the
    /// job's tasks cannot start (and thus cannot overwrite an original a
    /// remote consumer still needs) until the release below.
    fn ship(&self, id: JobId) {
        let (spec, tiles, sends) = {
            let st = lock(&self.state);
            let run = &st.jobs[&id];
            (
                Arc::clone(&run.spec),
                Arc::clone(&run.tiles),
                run.fetch_sends.clone(),
            )
        };
        let (nt, b, seed, seed_rhs) = (spec.graph.nt, spec.b, spec.seed, spec.seed_rhs);
        let mut sent = 0u64;
        let mut sent_bytes = 0u64;
        for (tile_ref, dest) in sends {
            let tile = {
                let mut local = tiles
                    .local
                    .write()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                local
                    .entry(tile_ref)
                    .or_insert_with(|| default_original(tile_ref, nt, b, seed, seed_rhs))
                    .clone()
            };
            let payload = Payload::Orig {
                job: id,
                tile_ref,
                tile,
            };
            let bytes = payload.payload_bytes();
            if self.net.send_payload(dest, payload).is_some() {
                sent += 1;
                sent_bytes += bytes;
            }
        }
        self.touch_progress();
        let done = {
            let mut st = lock(&self.state);
            st.active -= 1;
            if let Some(run) = st.jobs.get_mut(&id) {
                run.sent += sent;
                run.sent_bytes += sent_bytes;
                run.shipped = true;
                Self::release_initial(&mut st, id);
                Self::try_finish(&mut st, id)
            } else {
                None
            }
        };
        self.cv.notify_all();
        self.report(done.into_iter().collect());
    }

    /// Executes one popped task of one job, publishes its output to remote
    /// consumer ranks (tagged with the job id) and resolves successors.
    fn run_task(&self, id: JobId, t: TaskId) {
        let (spec, tiles) = {
            let st = lock(&self.state);
            let run = &st.jobs[&id];
            (Arc::clone(&run.spec), Arc::clone(&run.tiles))
        };
        let g = spec.graph.as_ref();
        let c = g.slices;

        if let Err(error) = execute_task(self.cfg.kernels, &spec, &tiles, t) {
            self.fail(
                ExecError::Kernel {
                    task: t,
                    node: self.me,
                    error,
                },
                true,
            );
            return;
        }
        self.touch_progress();

        let mut consumer_nodes: Vec<NodeId> = Vec::new();
        for (s, _) in g.succs(t) {
            let snode = g.tasks()[s as usize].node;
            if snode != self.me && !consumer_nodes.contains(&snode) {
                consumer_nodes.push(snode);
            }
        }
        let mut sent = 0u64;
        let mut sent_bytes = 0u64;
        if !consumer_nodes.is_empty() {
            let out = tiles
                .local
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .get(&g.tasks()[t as usize].output(c))
                .expect("task output in local store")
                .clone();
            for &dest in &consumer_nodes {
                let payload = Payload::Data {
                    job: id,
                    producer: t,
                    tile: out.clone(),
                };
                let bytes = payload.payload_bytes();
                if self.net.send_payload(dest, payload).is_some() {
                    sent += 1;
                    sent_bytes += bytes;
                }
            }
        }

        let done = {
            let mut st = lock(&self.state);
            st.active -= 1;
            match st.jobs.get_mut(&id) {
                None => None, // engine poisoned concurrently
                Some(run) => {
                    run.sent += sent;
                    run.sent_bytes += sent_bytes;
                    run.remaining -= 1;
                    let mut released: Vec<TaskId> = Vec::new();
                    for (s, _) in g.succs(t) {
                        if g.tasks()[s as usize].node == self.me {
                            let d = run.deps.get_mut(&s).expect("successor on this node");
                            *d -= 1;
                            if *d == 0 {
                                released.push(s);
                            }
                        }
                    }
                    for s in released {
                        st.ready.push(ReadyKey {
                            jprio: spec.prio,
                            tprio: spec.task_prio(s),
                            job: std::cmp::Reverse(id),
                            task: std::cmp::Reverse(s),
                        });
                    }
                    Self::try_finish(&mut st, id)
                }
            }
        };
        self.cv.notify_all();
        self.report(done.into_iter().collect());
    }

    /// Blocks on the transport for one heartbeat as the designated
    /// receiver, applies whatever arrived, and re-checks the per-job
    /// watchdog on timeouts.
    fn receive_once(&self) {
        let mut batch = Vec::new();
        let mut poisoned = false;
        match self.net.recv_timeout(self.cfg.heartbeat) {
            RecvTimeout::Msg(m) => {
                batch.push(m);
                while let Some(m) = self.net.try_recv() {
                    batch.push(m);
                }
            }
            RecvTimeout::Closed => poisoned = true,
            RecvTimeout::TimedOut => {
                // the per-job watchdog: only a rank with work in flight can
                // stall — an idle resident rank waits for its next job
                // indefinitely without tripping
                let busy = {
                    let mut st = lock(&self.state);
                    st.receiving = false;
                    !st.jobs.is_empty() || !st.unshipped.is_empty()
                };
                self.cv.notify_all();
                if let Some(deadline) = self.cfg.deadline {
                    if busy && self.stalled_for() > deadline {
                        let waiting_on = self.describe_waiting();
                        self.fail(
                            ExecError::Stalled {
                                rank: self.me,
                                waiting_on,
                            },
                            false,
                        );
                    }
                }
                return;
            }
        }

        let mut completions = Vec::new();
        let mut fresh = 0u64;
        {
            let mut st = lock(&self.state);
            for msg in batch {
                match msg {
                    // a bare Seq means no session wraps this endpoint; the
                    // cache occupancy check deduplicates it regardless
                    Message::Payload { payload, .. } | Message::Seq { payload, .. } => {
                        if let Some(id) = Self::apply_payload(&mut st, payload) {
                            fresh += 1;
                            if let Some(done) = Self::try_finish(&mut st, id) {
                                completions.push(done);
                            }
                        }
                    }
                    Message::Poison => poisoned = true,
                    Message::Wake | Message::Ack { .. } => {}
                    // gather control traffic never flows on a jobs mesh
                    Message::Result { .. } | Message::Done { .. } => {}
                }
            }
            st.receiving = false;
            if poisoned {
                st.poisoned = true;
            }
        }
        self.cv.notify_all();
        if fresh > 0 {
            self.touch_progress();
        }
        self.report(completions);
        if poisoned {
            self.fail(ExecError::Remote, false);
        }
    }

    /// Applies one payload to its job under the engine lock. Returns the
    /// job id when the payload was fresh (not a duplicate, not early, not
    /// late), so the caller can check for completion.
    fn apply_payload(st: &mut EngineState, payload: Payload) -> Option<JobId> {
        let id = payload.job();
        if st.finished.contains(&id) {
            return None; // late duplicate for a completed job
        }
        let Some(run) = st.jobs.get_mut(&id) else {
            // registration has not happened here yet; stash for it
            st.pending.entry(id).or_default().push(payload);
            return None;
        };
        let key = match &payload {
            Payload::Data { producer, .. } => WaitKey::Task(*producer),
            Payload::Orig { tile_ref, .. } => WaitKey::Orig(*tile_ref),
        };
        let tile = match payload {
            Payload::Data { tile, .. } | Payload::Orig { tile, .. } => tile,
        };
        // each producer output / original fetch arrives at most once per
        // rank by protocol; an occupied slot is a transport-injected
        // duplicate and must not touch counters or dependency counts
        let duplicate = {
            let mut cache = run
                .tiles
                .cache
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match cache.entry(key) {
                Entry::Occupied(_) => true,
                Entry::Vacant(slot) => {
                    slot.insert(tile);
                    false
                }
            }
        };
        if duplicate {
            return None;
        }
        run.applied += 1;
        let jprio = run.spec.prio;
        let spec = Arc::clone(&run.spec);
        if let Some(waiting) = run.waits.get(&key) {
            let waiting = waiting.clone();
            for t in waiting {
                let run = st.jobs.get_mut(&id).expect("job still present");
                let d = run.deps.get_mut(&t).expect("waiting task is local");
                *d -= 1;
                if *d == 0 && run.shipped {
                    st.ready.push(ReadyKey {
                        jprio,
                        tprio: spec.task_prio(t),
                        job: std::cmp::Reverse(id),
                        task: std::cmp::Reverse(t),
                    });
                } else if *d == 0 {
                    run.initial_ready.push(t);
                }
            }
        }
        Some(id)
    }

    fn describe_waiting(&self) -> String {
        let st = lock(&self.state);
        let mut missing: Vec<String> = Vec::new();
        for (id, run) in &st.jobs {
            let cache = run
                .tiles
                .cache
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for k in run.waits.keys() {
                if !cache.contains_key(k) {
                    missing.push(format!("job {id} {k:?}"));
                }
            }
        }
        if missing.is_empty() {
            return "no undelivered remote dependencies".to_string();
        }
        missing.sort();
        format!(
            "{} undelivered remote arrivals, first {}",
            missing.len(),
            missing[0]
        )
    }

    /// Records a failure, poisons peers, fails every in-flight job in the
    /// table and stops this engine. `dec_active` is true when called from
    /// a task/ship path that incremented the active count.
    fn fail(&self, e: ExecError, dec_active: bool) {
        {
            let mut st = lock(&self.state);
            if dec_active {
                st.active -= 1;
            }
            if st.error.is_none() {
                st.error = Some(e.clone());
            }
            st.poisoned = true;
        }
        self.cv.notify_all();
        for n in 0..self.net.num_nodes() as NodeId {
            if n != self.me {
                self.net.send_poison(n);
            }
        }
        self.net.wake();
        self.table.poison(e);
    }
}

/// One rank's finished share of a job, ready to report to the table.
struct Completion {
    id: JobId,
    tiles: HashMap<TileRef, Tile>,
    sent: u64,
    sent_bytes: u64,
    applied: u64,
}

/// Resolves a read operand of task `t`: remote producer output or fetched
/// original from the job's cache, else the job-local store (originals
/// generated on first use).
fn resolve_read(spec: &JobSpec, tiles: &JobTiles, t: TaskId, r: TileRef) -> Tile {
    let g = spec.graph.as_ref();
    let c = g.slices;
    let me = g.tasks()[t as usize].node;
    for (p, kind) in g.preds(t) {
        if kind == EdgeKind::Data && g.tasks()[p as usize].output(c) == r {
            return if g.tasks()[p as usize].node == me {
                tiles
                    .local
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .get(&r)
                    .expect("local producer wrote the tile")
                    .clone()
            } else {
                tiles
                    .cache
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .get(&WaitKey::Task(p))
                    .expect("dependency ensured arrival")
                    .clone()
            };
        }
    }
    if let Some(tile) = tiles
        .cache
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&WaitKey::Orig(r))
    {
        return tile.clone();
    }
    tiles
        .local
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .entry(r)
        .or_insert_with(|| default_original(r, g.nt, spec.b, spec.seed, spec.seed_rhs))
        .clone()
}

/// Executes one task's kernel against the job's private stores (the
/// job-namespace twin of the one-shot executor's `execute_task`).
fn execute_task(
    kernels: KernelBackend,
    spec: &JobSpec,
    tiles: &JobTiles,
    t: TaskId,
) -> Result<(), sbc_kernels::KernelError> {
    let g = spec.graph.as_ref();
    let c = g.slices;
    let task = g.tasks()[t as usize];
    let reads = task.reads(c);
    let read_tiles: Vec<Tile> = reads
        .as_slice()
        .iter()
        .map(|&r| resolve_read(spec, tiles, t, r))
        .collect();
    let target_ref = task.output(c);
    let mut target = {
        let mut local = tiles
            .local
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        local.remove(&target_ref).unwrap_or_else(|| {
            if matches!(task.kind, TaskKind::Move { .. }) {
                Tile::zeros(spec.b)
            } else {
                default_original(target_ref, g.nt, spec.b, spec.seed, spec.seed_rhs)
            }
        })
    };
    let result = run_kernel(kernels, task.kind, &read_tiles, &mut target);
    tiles
        .local
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(target_ref, target);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use sbc_dist::{SbcExtended, TwoDBlockCyclic};
    use sbc_net::inproc_mesh;
    use sbc_taskgraph::build_potrf;

    const B: usize = 8;

    fn run_mesh(table: &JobTable, n: usize, cfg: JobEngineConfig, body: impl FnOnce() + Send) {
        let mesh = inproc_mesh(n);
        std::thread::scope(|scope| {
            for net in &mesh {
                scope.spawn(move || run_jobs_rank(net, table, cfg));
            }
            scope.spawn(move || {
                body();
                table.shutdown();
            });
        });
    }

    fn one_shot_reference(graph: &TaskGraph, seed: u64, seed_rhs: u64) -> crate::ExecOutcome {
        Executor::builder(graph)
            .block(B)
            .seeds(seed, seed_rhs)
            .workers(1)
            .build()
            .run()
    }

    #[test]
    fn ready_heap_orders_by_job_then_task_priority() {
        let mut heap = BinaryHeap::new();
        for (jprio, tprio, job, task) in [
            (1u8, 5.0f32, 2u32, 9u32),
            (1, 5.0, 1, 3),
            (3, 0.0, 7, 0),
            (1, 9.0, 2, 4),
        ] {
            heap.push(ReadyKey {
                jprio,
                tprio: tprio.to_bits(),
                job: std::cmp::Reverse(job),
                task: std::cmp::Reverse(task),
            });
        }
        let order: Vec<(JobId, TaskId)> =
            std::iter::from_fn(|| heap.pop().map(|k| (k.job.0, k.task.0))).collect();
        // highest job priority first; within a job priority, highest task
        // priority; ties broken by ascending job then task id
        assert_eq!(order, vec![(7, 0), (2, 4), (1, 3), (2, 9)]);
    }

    #[test]
    fn two_concurrent_jobs_match_their_one_shot_runs() {
        let d = SbcExtended::new(4); // 6 nodes
        let graph = Arc::new(build_potrf(&d, 10));
        let exp_a = one_shot_reference(&graph, 2022, 7);
        let exp_b = one_shot_reference(&graph, 99, 100);

        let table = JobTable::new(graph.num_nodes(), 8);
        let (ga, gb) = (Arc::clone(&graph), Arc::clone(&graph));
        let mut results = Vec::new();
        {
            let results = &mut results;
            let table_ref = &table;
            run_mesh(
                &table,
                graph.num_nodes(),
                JobEngineConfig::default(),
                move || {
                    let a = table_ref.submit(ga, B, 2022, 7, 1, true).unwrap();
                    let b = table_ref.submit(gb, B, 99, 100, 2, true).unwrap();
                    results.push(table_ref.wait(a).unwrap());
                    results.push(table_ref.wait(b).unwrap());
                },
            );
        }
        for (out, exp) in results.iter().zip([&exp_a, &exp_b]) {
            assert_eq!(out.stats, exp.stats, "per-job stats must stay exact");
            assert_eq!(out.tiles.len(), exp.tiles.len());
            for (r, t) in &exp.tiles {
                assert_eq!(
                    out.tiles[r].as_slice(),
                    t.as_slice(),
                    "tile {r:?} differs from the one-shot run"
                );
            }
        }
    }

    #[test]
    fn admission_control_bounds_inflight_jobs() {
        let d = TwoDBlockCyclic::new(2, 2);
        let graph = Arc::new(build_potrf(&d, 6));
        let table = JobTable::new(graph.num_nodes(), 1);
        // no engines are running, so the first job can never finish and
        // the second must bounce with a reason
        let first = table
            .submit(Arc::clone(&graph), B, 1, 2, 0, true)
            .expect("first admitted");
        let err = table
            .submit(Arc::clone(&graph), B, 3, 4, 0, true)
            .expect_err("second rejected");
        assert_eq!(
            err,
            Rejection::QueueFull {
                inflight: 1,
                max: 1
            }
        );
        assert!(err.to_string().contains("queue full"));
        let _ = first;
    }

    #[test]
    fn idle_resident_rank_does_not_trip_the_watchdog() {
        let d = TwoDBlockCyclic::new(2, 2);
        let graph = Arc::new(build_potrf(&d, 6));
        let exp = one_shot_reference(&graph, 5, 6);
        let table = JobTable::new(graph.num_nodes(), 4);
        let cfg = JobEngineConfig {
            deadline: Some(Duration::from_millis(80)),
            ..Default::default()
        };
        let table_ref = &table;
        let g = Arc::clone(&graph);
        let mut got = None;
        {
            let got = &mut got;
            run_mesh(&table, graph.num_nodes(), cfg, move || {
                // idle for several deadlines: a per-process no-progress
                // clock would declare a stall here
                std::thread::sleep(Duration::from_millis(400));
                let id = table_ref.submit(g, B, 5, 6, 0, true).unwrap();
                *got = Some(table_ref.wait(id));
            });
        }
        let out = got.expect("job ran").expect("idle ranks must not stall");
        assert_eq!(out.stats, exp.stats);
    }

    #[test]
    fn clean_runs_feed_the_drift_ok_counter_and_the_event_log() {
        let d = SbcExtended::new(3); // 3 nodes
        let graph = Arc::new(build_potrf(&d, 8));
        let table = JobTable::new(graph.num_nodes(), 8);
        let metrics = Metrics::new();
        let events = Arc::new(EventLog::with_capacity(64));
        table.bind_obs(&metrics, Arc::clone(&events), 64);
        let table_ref = &table;
        let g = &graph;
        run_mesh(
            &table,
            graph.num_nodes(),
            JobEngineConfig::default(),
            move || {
                for s in 0..3u64 {
                    let id = table_ref
                        .submit(Arc::clone(g), B, 10 + s, 20 + s, 0, true)
                        .unwrap();
                    table_ref.wait(id).unwrap();
                }
            },
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("serve.jobs.submitted"), Some(3));
        assert_eq!(snap.counter("serve.jobs.done"), Some(3));
        assert_eq!(snap.counter("serve.jobs.failed"), Some(0));
        // the acceptance invariant: on a clean run every job's measured
        // comm matches the analytic prediction
        assert_eq!(snap.counter("obs.drift.ok"), Some(3));
        assert_eq!(snap.counter("obs.drift.messages"), Some(0));
        assert_eq!(snap.counter("obs.drift.bytes"), Some(0));
        let h = snap.histogram("serve.job.latency").unwrap();
        assert_eq!(h.count, 3, "latency recorded at completion");
        assert!(table.completion_rate(Duration::from_secs(3600)) > 0.0);

        let log = events.snapshot();
        for kind in [EventKind::Admitted, EventKind::Started, EventKind::Done] {
            assert_eq!(
                log.iter().filter(|e| e.kind == kind).count(),
                3,
                "{} events",
                kind.name()
            );
        }
        assert!(log.iter().all(|e| e.severity == Severity::Info), "{log:?}");
    }

    #[test]
    fn planted_comm_miscount_fires_the_drift_alarm() {
        let d = SbcExtended::new(3);
        let graph = Arc::new(build_potrf(&d, 8));
        let table = JobTable::new(graph.num_nodes(), 8);
        let metrics = Metrics::new();
        let events = Arc::new(EventLog::with_capacity(64));
        table.bind_obs(&metrics, Arc::clone(&events), 64);
        let real_msgs = graph.count_messages();
        let table_ref = &table;
        let g = &graph;
        run_mesh(
            &table,
            graph.num_nodes(),
            JobEngineConfig::default(),
            move || {
                // a prediction that is off by one message (and its bytes)
                let planted = (real_msgs + 1, messages_to_bytes(real_msgs, B));
                let id = table_ref
                    .submit_expecting(Arc::clone(g), B, 7, 8, 0, true, planted)
                    .unwrap();
                table_ref.wait(id).unwrap();
            },
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("obs.drift.ok"), Some(0));
        assert_eq!(snap.counter("obs.drift.messages"), Some(1));
        assert_eq!(snap.counter("obs.drift.bytes"), Some(0));
        let done: Vec<_> = events
            .snapshot()
            .into_iter()
            .filter(|e| e.kind == EventKind::Done)
            .collect();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].severity, Severity::Warn);
        assert!(done[0].detail.contains("drift"), "{}", done[0].detail);
    }

    #[test]
    fn rejections_and_rank_gauges_reach_the_registry() {
        let d = TwoDBlockCyclic::new(2, 2);
        let graph = Arc::new(build_potrf(&d, 6));
        let table = JobTable::new(graph.num_nodes(), 1);
        let metrics = Metrics::new();
        let events = Arc::new(EventLog::with_capacity(8));
        table.bind_obs(&metrics, Arc::clone(&events), 8);
        // eager registration: the full vocabulary exists before traffic
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("serve.jobs.rejected"), Some(0));
        assert_eq!(snap.counter("obs.drift.ok"), Some(0));
        assert!(snap.gauges.iter().any(|(n, _, _)| n == "jobs.rank3.busy"));
        assert_eq!(snap.histogram("serve.job.latency").unwrap().count, 0);

        let first = table.submit(Arc::clone(&graph), B, 1, 2, 0, true).unwrap();
        table
            .submit(Arc::clone(&graph), B, 3, 4, 0, true)
            .expect_err("queue full");
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("serve.jobs.rejected"), Some(1));
        assert_eq!(snap.counter("serve.jobs.submitted"), Some(1));
        assert_eq!(table.inflight(), 1);
        let rej: Vec<_> = events
            .snapshot()
            .into_iter()
            .filter(|e| e.kind == EventKind::Rejected)
            .collect();
        assert_eq!(rej.len(), 1);
        assert_eq!(rej[0].severity, Severity::Warn);
        assert!(rej[0].detail.contains("queue full"), "{}", rej[0].detail);
        let _ = first;
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let d = TwoDBlockCyclic::new(2, 2);
        let graph = Arc::new(build_potrf(&d, 6));
        let table = JobTable::new(graph.num_nodes(), 4);
        table.shutdown();
        assert_eq!(
            table.submit(graph, B, 1, 2, 0, true).unwrap_err(),
            Rejection::ShuttingDown
        );
    }

    #[test]
    fn high_priority_jobs_jump_the_shared_heap() {
        // behavioural smoke: many jobs at mixed priorities all complete
        // and each stays bit-identical to its one-shot run
        let d = SbcExtended::new(3); // 3 nodes
        let graph = Arc::new(build_potrf(&d, 8));
        let mut exps = Vec::new();
        for s in 0..4u64 {
            exps.push(one_shot_reference(&graph, 100 + s, 200 + s));
        }
        let table = JobTable::new(graph.num_nodes(), 8);
        let table_ref = &table;
        let g = &graph;
        let mut outs = Vec::new();
        {
            let outs = &mut outs;
            run_mesh(
                &table,
                graph.num_nodes(),
                JobEngineConfig::default(),
                move || {
                    let ids: Vec<JobId> = (0..4u64)
                        .map(|s| {
                            table_ref
                                .submit(Arc::clone(g), B, 100 + s, 200 + s, (s % 3) as u8, true)
                                .unwrap()
                        })
                        .collect();
                    for id in ids {
                        outs.push(table_ref.wait(id).unwrap());
                    }
                },
            );
        }
        assert_eq!(table.completed(), 4);
        for (out, exp) in outs.iter().zip(&exps) {
            assert_eq!(out.stats, exp.stats);
            for (r, t) in &exp.tiles {
                assert_eq!(out.tiles[r].as_slice(), t.as_slice());
            }
        }
    }
}
