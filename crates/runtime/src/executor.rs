//! The threaded execution engine.

use crossbeam::channel::{unbounded, Receiver, Sender};
use sbc_kernels as k;
use sbc_kernels::{KernelError, Tile, Trans};
use sbc_matrix::generate;
use sbc_obs::{GaugeKind, NodeRecorder, Recorder};
use sbc_taskgraph::{EdgeKind, TaskGraph, TaskId, TaskKind, TileRef};
use std::collections::{BinaryHeap, HashMap};

/// Communication statistics of one distributed execution.
///
/// Every payload message — producer-output tiles (`Data`) *and*
/// original-tile fetches (`Orig`) — is counted at its actual byte size on
/// the sending and the receiving side. On a clean run the receive total
/// equals `messages`; after an aborted run (kernel failure) it may be
/// smaller, because poisoned nodes stop draining their channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommStats {
    /// Total inter-node messages (tiles sent).
    pub messages: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Messages sent per node.
    pub sent_per_node: Vec<u64>,
    /// Messages received (and applied) per node.
    pub recv_per_node: Vec<u64>,
    /// Bytes sent per node (sums to `bytes`).
    pub bytes_per_node: Vec<u64>,
}

/// Result of a distributed execution: the final content of every node's
/// tile store, merged, plus communication statistics.
#[derive(Debug)]
pub struct ExecOutcome {
    /// Final tile values keyed by logical tile. For each tile the entry
    /// comes from the single node that owned (wrote or generated) it.
    pub tiles: HashMap<TileRef, Tile>,
    /// Measured communication.
    pub stats: CommStats,
}

/// A kernel failure during distributed execution, localized to the task
/// and node where it occurred. All other nodes are shut down cleanly
/// before this is returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// The failing task's index in the graph.
    pub task: TaskId,
    /// The node executing it.
    pub node: u32,
    /// The kernel error (e.g. a non-SPD pivot).
    pub error: KernelError,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task {} on node {} failed: {}",
            self.task, self.node, self.error
        )
    }
}

impl std::error::Error for ExecError {}

enum Msg {
    /// Output tile of a remote producer task.
    Data { producer: TaskId, tile: Tile },
    /// Original input tile fetched from its home node.
    Orig { tile_ref: TileRef, tile: Tile },
    /// Another node failed; abort cleanly.
    Poison,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum WaitKey {
    Task(TaskId),
    Orig(TileRef),
}

/// What a node thread reports back when it terminates.
struct NodeResult {
    node: usize,
    store: HashMap<TileRef, Tile>,
    sent: u64,
    sent_bytes: u64,
    recv: u64,
    error: Option<ExecError>,
}

/// Per-node communication tally, updated at every send/receive.
#[derive(Default)]
struct CommTally {
    sent: u64,
    sent_bytes: u64,
    recv: u64,
}

/// Provides original (input) tile contents to the executor.
///
/// The default provider generates the seeded random SPD matrix and RHS of
/// `sbc_matrix::generate`; custom providers let callers factor real data
/// or inject failures (see the failure-injection tests).
pub type TileProvider<'a> = dyn Fn(TileRef) -> Tile + Sync + 'a;

/// Executes a [`TaskGraph`] with one thread per node and channels as the
/// interconnect.
pub struct Executor<'g> {
    graph: &'g TaskGraph,
    /// Tile dimension.
    pub b: usize,
    provider: Box<TileProvider<'g>>,
    recorder: Option<&'g Recorder>,
}

impl<'g> Executor<'g> {
    /// Creates an executor for `graph` with tile size `b` and the default
    /// seeded generators (`seed` for the SPD matrix, `seed_rhs` for the
    /// right-hand side).
    pub fn new(graph: &'g TaskGraph, b: usize, seed: u64, seed_rhs: u64) -> Self {
        let nt = graph.nt;
        Executor {
            graph,
            b,
            provider: Box::new(move |r| default_original(r, nt, b, seed, seed_rhs)),
            recorder: None,
        }
    }

    /// Creates an executor with a custom original-tile provider. The
    /// provider is called on a tile's *home* node the first time the tile
    /// is needed; it must be a pure function of the [`TileRef`].
    pub fn with_provider(
        graph: &'g TaskGraph,
        b: usize,
        provider: impl Fn(TileRef) -> Tile + Sync + 'g,
    ) -> Self {
        Executor {
            graph,
            b,
            provider: Box::new(provider),
            recorder: None,
        }
    }

    /// Attaches an [`sbc_obs::Recorder`]: every node thread will record
    /// task spans, message sends/receives, dependency waits and scheduler
    /// gauges into it. Recording costs two clock reads and a buffer push
    /// per task; without a recorder the instrumentation compiles down to a
    /// branch on `None`.
    pub fn with_recorder(mut self, recorder: &'g Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    fn original(&self, r: TileRef) -> Tile {
        let t = (self.provider)(r);
        assert_eq!(
            t.dim(),
            self.b,
            "provider returned a tile of wrong dimension"
        );
        t
    }

    /// Runs the graph to completion.
    ///
    /// # Panics
    /// Panics on kernel failure (e.g. a non-SPD input); use [`Self::try_run`]
    /// to handle that case.
    pub fn run(&self) -> ExecOutcome {
        self.try_run().expect("distributed execution failed")
    }

    /// Runs the graph to completion, propagating kernel failures.
    ///
    /// On failure every node is shut down via poison messages and the first
    /// failure (in node order) is returned.
    pub fn try_run(&self) -> Result<ExecOutcome, ExecError> {
        let g = self.graph;
        let n_nodes = g.num_nodes();
        let c = g.slices;

        // global dependency counts
        let mut deps = g.in_degrees();
        for (t, extra) in g.fetch_deps().into_iter().enumerate() {
            deps[t] += extra;
        }

        // per-node setup
        let mut per_node_deps: Vec<HashMap<TaskId, u32>> =
            (0..n_nodes).map(|_| HashMap::new()).collect();
        let mut per_node_ready: Vec<Vec<TaskId>> = vec![Vec::new(); n_nodes];
        let mut per_node_count: Vec<u64> = vec![0; n_nodes];
        let mut per_node_waits: Vec<HashMap<WaitKey, Vec<TaskId>>> =
            (0..n_nodes).map(|_| HashMap::new()).collect();
        let mut per_node_fetch_sends: Vec<Vec<(TileRef, u32)>> = vec![Vec::new(); n_nodes];

        for t in 0..g.len() as TaskId {
            let node = g.tasks()[t as usize].node as usize;
            per_node_count[node] += 1;
            per_node_deps[node].insert(t, deps[t as usize]);
            if deps[t as usize] == 0 {
                per_node_ready[node].push(t);
            }
            for (p, kind) in g.preds(t) {
                let pnode = g.tasks()[p as usize].node;
                if pnode != node as u32 {
                    debug_assert_eq!(kind, EdgeKind::Data);
                    let w = per_node_waits[node].entry(WaitKey::Task(p)).or_default();
                    if w.last() != Some(&t) {
                        w.push(t);
                    }
                }
            }
        }
        for f in g.initial_fetches() {
            per_node_fetch_sends[f.home as usize].push((f.tile, f.dest));
            per_node_waits[f.dest as usize]
                .entry(WaitKey::Orig(f.tile))
                .or_default()
                .extend(f.consumers.iter().copied());
        }

        // channels
        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(n_nodes);
        let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let (result_tx, result_rx) = unbounded::<NodeResult>();

        std::thread::scope(|scope| {
            for node in 0..n_nodes {
                let rx = receivers[node].take().expect("receiver taken once");
                let senders = senders.clone();
                let my_deps = std::mem::take(&mut per_node_deps[node]);
                let ready0 = std::mem::take(&mut per_node_ready[node]);
                let waits = std::mem::take(&mut per_node_waits[node]);
                let fetch_sends = std::mem::take(&mut per_node_fetch_sends[node]);
                let count = per_node_count[node];
                let result_tx = result_tx.clone();
                let exec = &*self;
                scope.spawn(move || {
                    node_main(
                        exec,
                        node as u32,
                        c,
                        rx,
                        &senders,
                        my_deps,
                        ready0,
                        waits,
                        fetch_sends,
                        count,
                        &result_tx,
                    );
                });
            }
            drop(result_tx);
        });

        // gather results
        let mut tiles = HashMap::new();
        let mut sent_per_node = vec![0u64; n_nodes];
        let mut recv_per_node = vec![0u64; n_nodes];
        let mut bytes_per_node = vec![0u64; n_nodes];
        let mut first_error: Option<ExecError> = None;
        for res in result_rx.iter() {
            sent_per_node[res.node] = res.sent;
            recv_per_node[res.node] = res.recv;
            bytes_per_node[res.node] = res.sent_bytes;
            if let Some(e) = res.error {
                match &first_error {
                    Some(cur) if cur.node <= e.node => {}
                    _ => first_error = Some(e),
                }
            }
            for (r, tile) in res.store {
                let prev = tiles.insert(r, tile);
                debug_assert!(prev.is_none(), "tile {r:?} stored on two nodes");
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        let messages: u64 = sent_per_node.iter().sum();
        Ok(ExecOutcome {
            tiles,
            stats: CommStats {
                messages,
                bytes: bytes_per_node.iter().sum(),
                sent_per_node,
                recv_per_node,
                bytes_per_node,
            },
        })
    }
}

/// Default original-tile contents: seeded SPD matrix, zero buffers, seeded
/// RHS. General (full-matrix) tiles for the LU substrate come from the
/// diagonally dominant generator.
fn default_original(r: TileRef, nt: usize, b: usize, seed: u64, seed_rhs: u64) -> Tile {
    match r {
        TileRef::A { phase: 0, i, j, .. } if j <= i => {
            generate::spd_tile(seed, nt, b, i as usize, j as usize)
        }
        TileRef::A { phase: 0, i, j, .. } => {
            // strictly-upper tile: only the LU (full-matrix) graphs read
            // these; mirror of the dominant generator
            generate::general_tile(seed, nt, b, i as usize, j as usize)
        }
        TileRef::A { phase, .. } => {
            panic!("phase-{phase} tiles are always produced by Move tasks")
        }
        TileRef::Buf { .. } => Tile::zeros(b),
        TileRef::B { i } => generate::rhs_tile(seed_rhs, b, i as usize),
    }
}

/// Main loop of one node thread.
#[allow(clippy::too_many_arguments)]
fn node_main(
    exec: &Executor<'_>,
    me: u32,
    c: usize,
    rx: Receiver<Msg>,
    senders: &[Sender<Msg>],
    mut deps: HashMap<TaskId, u32>,
    ready0: Vec<TaskId>,
    waits: HashMap<WaitKey, Vec<TaskId>>,
    fetch_sends: Vec<(TileRef, u32)>,
    mut remaining: u64,
    result_tx: &Sender<NodeResult>,
) {
    let g = exec.graph;
    let mut local: HashMap<TileRef, Tile> = HashMap::new();
    let mut cache: HashMap<WaitKey, Tile> = HashMap::new();
    // execute in submission order among ready tasks (deterministic and
    // close to the sequential schedule)
    let mut ready: BinaryHeap<std::cmp::Reverse<TaskId>> =
        ready0.into_iter().map(std::cmp::Reverse).collect();
    let mut tally = CommTally::default();
    let mut obs: Option<NodeRecorder<'_>> = exec.recorder.map(|r| r.node(me));
    let mut consumer_nodes: Vec<u32> = Vec::new();
    let mut error: Option<ExecError> = None;

    // sending may fail once peers have shut down after a poison; that is
    // expected during teardown, so sends never unwrap. Both payload kinds
    // (producer outputs and original fetches) count at their real byte
    // size.
    let send = |dest: u32, msg: Msg, tally: &mut CommTally, obs: &mut Option<NodeRecorder<'_>>| {
        let (bytes, orig) = match &msg {
            Msg::Data { tile, .. } => ((tile.dim() * tile.dim() * 8) as u64, false),
            Msg::Orig { tile, .. } => ((tile.dim() * tile.dim() * 8) as u64, true),
            Msg::Poison => (0, false),
        };
        if senders[dest as usize].send(msg).is_ok() {
            tally.sent += 1;
            tally.sent_bytes += bytes;
            if let Some(o) = obs.as_mut() {
                o.send(dest, bytes, orig);
            }
        }
    };

    // ship originals to remote consumers before anything else
    for (tile_ref, dest) in fetch_sends {
        let tile = local
            .entry(tile_ref)
            .or_insert_with(|| exec.original(tile_ref))
            .clone();
        send(dest, Msg::Orig { tile_ref, tile }, &mut tally, &mut obs);
    }

    // returns false when poisoned
    let apply_msg = |msg: Msg,
                     cache: &mut HashMap<WaitKey, Tile>,
                     deps: &mut HashMap<TaskId, u32>,
                     ready: &mut BinaryHeap<std::cmp::Reverse<TaskId>>,
                     tally: &mut CommTally,
                     obs: &mut Option<NodeRecorder<'_>>|
     -> bool {
        let (key, orig) = match &msg {
            Msg::Data { producer, .. } => (WaitKey::Task(*producer), false),
            Msg::Orig { tile_ref, .. } => (WaitKey::Orig(*tile_ref), true),
            Msg::Poison => return false,
        };
        let tile = match msg {
            Msg::Data { tile, .. } | Msg::Orig { tile, .. } => tile,
            Msg::Poison => unreachable!(),
        };
        tally.recv += 1;
        if let Some(o) = obs.as_mut() {
            o.recv((tile.dim() * tile.dim() * 8) as u64, orig);
        }
        cache.insert(key, tile);
        if let Some(waiting) = waits.get(&key) {
            for &t in waiting {
                let d = deps.get_mut(&t).expect("waiting task is local");
                *d -= 1;
                if *d == 0 {
                    ready.push(std::cmp::Reverse(t));
                }
            }
        }
        true
    };

    'outer: while remaining > 0 {
        while let Some(std::cmp::Reverse(t)) = ready.pop() {
            let span_start = obs.as_ref().map(|o| o.now());
            if let Err(e) = execute_task(exec, g, t, c, &mut local, &cache) {
                error = Some(ExecError {
                    task: t,
                    node: me,
                    error: e,
                });
                // poison every other node so they stop waiting on us
                for (n, s) in senders.iter().enumerate() {
                    if n != me as usize {
                        let _ = s.send(Msg::Poison);
                    }
                }
                break 'outer;
            }
            if let Some(o) = obs.as_mut() {
                let end = o.now();
                o.task(
                    t,
                    g.tasks()[t as usize].kind,
                    span_start.unwrap_or(end),
                    end,
                );
            }
            remaining -= 1;
            // resolve successors
            consumer_nodes.clear();
            for (s, _) in g.succs(t) {
                let snode = g.tasks()[s as usize].node;
                if snode == me {
                    let d = deps.get_mut(&s).expect("successor on this node");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(std::cmp::Reverse(s));
                    }
                } else if !consumer_nodes.contains(&snode) {
                    consumer_nodes.push(snode);
                }
            }
            if !consumer_nodes.is_empty() {
                let out = local
                    .get(&g.tasks()[t as usize].output(c))
                    .expect("task output in local store")
                    .clone();
                for &dest in &consumer_nodes {
                    send(
                        dest,
                        Msg::Data {
                            producer: t,
                            tile: out.clone(),
                        },
                        &mut tally,
                        &mut obs,
                    );
                }
            }
        }
        if remaining == 0 {
            break;
        }
        // block until something arrives, then drain opportunistically
        let wait_start = obs.as_ref().map(|o| o.now());
        let Ok(msg) = rx.recv() else { break };
        if let Some(o) = obs.as_mut() {
            let end = o.now();
            o.dep_wait(wait_start.unwrap_or(end), end);
        }
        if !apply_msg(msg, &mut cache, &mut deps, &mut ready, &mut tally, &mut obs) {
            break; // poisoned
        }
        while let Ok(m) = rx.try_recv() {
            if !apply_msg(m, &mut cache, &mut deps, &mut ready, &mut tally, &mut obs) {
                break 'outer;
            }
        }
        // sample scheduler state once per wakeup, not per task
        if let Some(o) = obs.as_mut() {
            o.gauge(GaugeKind::TileStore, local.len() as f64);
            o.gauge(GaugeKind::ReadyQueue, ready.len() as f64);
        }
    }

    drop(obs); // flush this node's event buffer into the recorder
    let _ = result_tx.send(NodeResult {
        node: me as usize,
        store: local,
        sent: tally.sent,
        sent_bytes: tally.sent_bytes,
        recv: tally.recv,
        error,
    });
}

/// Resolves a read operand: remote original (fetch cache), remote producer
/// output (data cache), or local store (local producer or local original,
/// generated on first use).
fn resolve_read(
    exec: &Executor<'_>,
    g: &TaskGraph,
    t: TaskId,
    r: TileRef,
    c: usize,
    local: &mut HashMap<TileRef, Tile>,
    cache: &HashMap<WaitKey, Tile>,
) -> Tile {
    let me = g.tasks()[t as usize].node;
    // a data predecessor producing r?
    for (p, kind) in g.preds(t) {
        if kind == EdgeKind::Data && g.tasks()[p as usize].output(c) == r {
            return if g.tasks()[p as usize].node == me {
                local
                    .get(&r)
                    .expect("local producer wrote the tile")
                    .clone()
            } else {
                cache
                    .get(&WaitKey::Task(p))
                    .expect("dependency ensured arrival")
                    .clone()
            };
        }
    }
    // original data: fetched, or home-local (generate lazily)
    if let Some(tile) = cache.get(&WaitKey::Orig(r)) {
        return tile.clone();
    }
    local.entry(r).or_insert_with(|| exec.original(r)).clone()
}

/// Executes one task against the node-local stores.
fn execute_task(
    exec: &Executor<'_>,
    g: &TaskGraph,
    t: TaskId,
    c: usize,
    local: &mut HashMap<TileRef, Tile>,
    cache: &HashMap<WaitKey, Tile>,
) -> Result<(), KernelError> {
    let task = g.tasks()[t as usize];
    let reads = task.reads(c);
    let read_tiles: Vec<Tile> = reads
        .as_slice()
        .iter()
        .map(|&r| resolve_read(exec, g, t, r, c, local, cache))
        .collect();
    let target_ref = task.output(c);
    let target = local.entry(target_ref).or_insert_with(|| {
        if matches!(task.kind, TaskKind::Move { .. }) {
            // a Move fully overwrites its target; never generate data for a
            // later-phase tile
            Tile::zeros(exec.b)
        } else {
            exec.original(target_ref)
        }
    });

    match task.kind {
        TaskKind::Potrf { .. } => k::potrf(target)?,
        TaskKind::Trsm { .. } => k::trsm_right_lower_trans(1.0, &read_tiles[0], target),
        TaskKind::Syrk { .. } => k::syrk(Trans::No, -1.0, &read_tiles[0], 1.0, target),
        TaskKind::Gemm { .. } => k::gemm(
            Trans::No,
            Trans::Yes,
            -1.0,
            &read_tiles[0],
            &read_tiles[1],
            1.0,
            target,
        ),
        TaskKind::Reduce { .. } => target.add_assign(&read_tiles[0]),
        TaskKind::TrsmFwd { .. } => k::trsm_left_lower(1.0, &read_tiles[0], target),
        TaskKind::GemmFwd { .. } => k::gemm(
            Trans::No,
            Trans::No,
            -1.0,
            &read_tiles[0],
            &read_tiles[1],
            1.0,
            target,
        ),
        TaskKind::TrsmBwd { .. } => k::trsm_left_lower_trans(1.0, &read_tiles[0], target),
        TaskKind::GemmBwd { .. } => k::gemm(
            Trans::Yes,
            Trans::No,
            -1.0,
            &read_tiles[0],
            &read_tiles[1],
            1.0,
            target,
        ),
        TaskKind::TrsmRInv { .. } => k::trsm_right_lower(-1.0, &read_tiles[0], target),
        TaskKind::GemmInv { .. } => k::gemm(
            Trans::No,
            Trans::No,
            1.0,
            &read_tiles[0],
            &read_tiles[1],
            1.0,
            target,
        ),
        TaskKind::TrsmLInv { .. } => k::trsm_left_lower(1.0, &read_tiles[0], target),
        TaskKind::TrtriDiag { .. } => k::trtri(target)?,
        TaskKind::SyrkLu { .. } => k::syrk(Trans::Yes, 1.0, &read_tiles[0], 1.0, target),
        TaskKind::GemmLu { .. } => k::gemm(
            Trans::Yes,
            Trans::No,
            1.0,
            &read_tiles[0],
            &read_tiles[1],
            1.0,
            target,
        ),
        TaskKind::TrmmLu { .. } => k::trmm_left_lower_trans(&read_tiles[0], target),
        TaskKind::LauumDiag { .. } => k::lauum(target),
        TaskKind::Getrf { .. } => k::getrf(target)?,
        TaskKind::TrsmRow { .. } => k::trsm_left_unit_lower(&read_tiles[0], target),
        TaskKind::TrsmCol { .. } => k::trsm_right_upper(&read_tiles[0], target),
        TaskKind::GemmTrail { .. } => k::gemm(
            Trans::No,
            Trans::No,
            -1.0,
            &read_tiles[0],
            &read_tiles[1],
            1.0,
            target,
        ),
        TaskKind::Move { .. } => *target = read_tiles[0].clone(),
    }
    Ok(())
}
