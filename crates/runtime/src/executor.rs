//! The threaded execution engine.
//!
//! Every node of the virtual platform is a small **worker pool** draining a
//! shared per-node ready heap ([`NodeScheduler`]): workers pull the
//! highest-priority ready task, execute its kernel against the node's tile
//! stores, resolve successors and push producer outputs to remote consumer
//! nodes. The ready heap is keyed by upward-rank critical-path priorities
//! ([`Policy::CriticalPath`], the StarPU list-scheduler heuristic) or by
//! plain submission order ([`Policy::SubmissionOrder`]).
//!
//! Communication is *schedule-invariant*: which tiles cross node boundaries
//! is decided by placement (the data edges of the graph plus the initial
//! fetches), never by execution order, so [`CommStats`] is bit-identical at
//! any worker count and under either policy.

use crossbeam::channel::{unbounded, Receiver, Sender};
use sbc_kernels as k;
use sbc_kernels::{KernelError, Tile, Trans};
use sbc_matrix::generate;
use sbc_obs::{GaugeKind, NodeRecorder, Recorder};
use sbc_taskgraph::{flops_priorities, EdgeKind, TaskGraph, TaskId, TaskKind, TileRef};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, RwLock};

/// Communication statistics of one distributed execution.
///
/// Every payload message — producer-output tiles (`Data`) *and*
/// original-tile fetches (`Orig`) — is counted at its actual byte size on
/// the sending and the receiving side. On a clean run the receive total
/// equals `messages`; after an aborted run (kernel failure) it may be
/// smaller, because poisoned nodes stop draining their channels.
///
/// These counts depend only on the task graph (placement), not on the
/// schedule: they are identical at every `workers_per_node` and under
/// either [`Policy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommStats {
    /// Total inter-node messages (tiles sent).
    pub messages: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Messages sent per node.
    pub sent_per_node: Vec<u64>,
    /// Messages received (and applied) per node.
    pub recv_per_node: Vec<u64>,
    /// Bytes sent per node (sums to `bytes`).
    pub bytes_per_node: Vec<u64>,
}

/// Result of a distributed execution: the final content of every node's
/// tile store, merged, plus communication statistics.
#[derive(Debug)]
pub struct ExecOutcome {
    /// Final tile values keyed by logical tile. For each tile the entry
    /// comes from the single node that owned (wrote or generated) it.
    pub tiles: HashMap<TileRef, Tile>,
    /// Measured communication.
    pub stats: CommStats,
}

/// A failure during (or after) distributed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A kernel failed on a node, localized to the task and node where it
    /// occurred. All other nodes are shut down cleanly before this is
    /// returned.
    Kernel {
        /// The failing task's index in the graph.
        task: TaskId,
        /// The node executing it.
        node: u32,
        /// The kernel error (e.g. a non-SPD pivot).
        error: KernelError,
    },
    /// A tile expected in the gathered result was never produced by the
    /// execution — the graph did not cover the requested output.
    MissingTile {
        /// The absent tile.
        tile: TileRef,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Kernel { task, node, error } => {
                write!(f, "task {task} on node {node} failed: {error}")
            }
            ExecError::MissingTile { tile } => {
                write!(f, "result tile {tile:?} was never produced")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Scheduling policy for each node's ready heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Pop ready tasks in submission (TaskId) order — deterministic and
    /// close to the sequential schedule; the historical behavior.
    SubmissionOrder,
    /// Pop ready tasks by upward-rank critical-path priority (flop-costed),
    /// the paper's StarPU list-scheduler configuration. The default.
    #[default]
    CriticalPath,
}

enum Msg {
    /// Output tile of a remote producer task.
    Data { producer: TaskId, tile: Tile },
    /// Original input tile fetched from its home node.
    Orig { tile_ref: TileRef, tile: Tile },
    /// Another node failed; abort cleanly.
    Poison,
    /// No-op used to unblock a node's own receiver at completion. Never
    /// counted as traffic.
    Wake,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum WaitKey {
    Task(TaskId),
    Orig(TileRef),
}

/// A ready heap entry: priority (descending), then TaskId (ascending) so
/// pops are deterministic. Priorities are non-negative f32s stored as raw
/// bits, which preserves their order.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct ReadyTask {
    prio: u32,
    task: std::cmp::Reverse<TaskId>,
}

/// Mutable scheduler state shared by one node's workers, guarded by
/// [`NodeScheduler::state`].
struct SchedState {
    ready: BinaryHeap<ReadyTask>,
    deps: HashMap<TaskId, u32>,
    /// Local tasks not yet completed; the node is done at zero.
    remaining: u64,
    /// Workers currently executing a kernel.
    active: u32,
    /// A worker is blocked on (or draining) the message channel.
    receiving: bool,
    /// Worker 0 has shipped the node's original-tile fetches. No task may
    /// run before this: a local task could overwrite a tile whose original
    /// value a remote consumer still needs.
    shipped: bool,
    /// Set on local kernel failure or a received poison; workers exit.
    poisoned: bool,
    error: Option<ExecError>,
}

/// Per-node scheduler: the dependency bookkeeping and message-apply loop
/// factored out of the worker threads. Workers take the `state` lock only
/// to pop/push ready tasks and update counters; tiles live in `RwLock`
/// stores that readers share.
struct NodeScheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    /// The node's message endpoint. Exactly one worker at a time holds this
    /// lock and blocks in `recv` (the `receiving` flag routes the others to
    /// the condvar instead).
    rx: Mutex<Receiver<Msg>>,
    /// Tiles owned (generated or written) by this node.
    local: RwLock<HashMap<TileRef, Tile>>,
    /// Tiles received from other nodes, keyed by producer task or fetched
    /// original.
    cache: RwLock<HashMap<WaitKey, Tile>>,
    /// Which local tasks each remote arrival unblocks (immutable).
    waits: HashMap<WaitKey, Vec<TaskId>>,
    /// Original tiles this node must ship to remote consumers at startup.
    fetch_sends: Vec<(TileRef, u32)>,
    sent: AtomicU64,
    sent_bytes: AtomicU64,
    recv: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Provides original (input) tile contents to the executor.
///
/// The default provider generates the seeded random SPD matrix and RHS of
/// `sbc_matrix::generate`; custom providers let callers factor real data
/// or inject failures (see the failure-injection tests). Providers must be
/// pure functions of the [`TileRef`]: with several workers per node a tile
/// may be generated concurrently on overlapping paths, and every
/// generation must agree.
pub type TileProvider<'a> = dyn Fn(TileRef) -> Tile + Sync + 'a;

/// Executes a [`TaskGraph`] with a pool of worker threads per node and
/// channels as the interconnect.
///
/// Configure through [`Executor::builder`]:
///
/// ```
/// # let g = sbc_taskgraph::build_potrf(&sbc_dist::SbcExtended::new(4), 6);
/// use sbc_runtime::{Executor, Policy};
/// let out = Executor::builder(&g)
///     .block(8)
///     .seeds(42, 43)
///     .workers(2)
///     .priorities(Policy::CriticalPath)
///     .build()
///     .run();
/// assert_eq!(out.stats.messages, g.count_messages());
/// ```
pub struct Executor<'g> {
    graph: &'g TaskGraph,
    /// Tile dimension.
    pub b: usize,
    provider: Box<TileProvider<'g>>,
    recorder: Option<&'g Recorder>,
    workers: Option<usize>,
    policy: Policy,
}

/// Configures and builds an [`Executor`] — the single surface for every
/// knob: block size, seeds, tile provider, recorder, worker count and
/// scheduling policy.
pub struct ExecutorBuilder<'g> {
    graph: &'g TaskGraph,
    b: usize,
    seed: u64,
    seed_rhs: Option<u64>,
    provider: Option<Box<TileProvider<'g>>>,
    recorder: Option<&'g Recorder>,
    workers: Option<usize>,
    policy: Policy,
}

impl<'g> ExecutorBuilder<'g> {
    /// Tile dimension of the matrices being executed (default 32).
    pub fn block(mut self, b: usize) -> Self {
        self.b = b;
        self
    }

    /// Seeds for the default input generators: `seed` for the SPD matrix,
    /// `seed_rhs` for right-hand sides. Ignored when a custom provider is
    /// set.
    pub fn seeds(mut self, seed: u64, seed_rhs: u64) -> Self {
        self.seed = seed;
        self.seed_rhs = Some(seed_rhs);
        self
    }

    /// Seed for the default SPD generator; the RHS seed is derived from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Custom original-tile provider, replacing the seeded generators. It
    /// is called on a tile's *home* node the first time the tile is needed
    /// and must be a pure function of the [`TileRef`].
    pub fn provider(mut self, provider: impl Fn(TileRef) -> Tile + Sync + 'g) -> Self {
        self.provider = Some(Box::new(provider));
        self
    }

    /// Attaches an [`sbc_obs::Recorder`]: every worker thread records task
    /// spans (on its own per-worker track), message sends/receives,
    /// dependency waits and scheduler gauges into it.
    pub fn recorder(mut self, recorder: &'g Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Worker threads per node (clamped to at least 1). Default: available
    /// cores divided by the node count, at least 1.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Ready-heap ordering (default [`Policy::CriticalPath`]).
    pub fn priorities(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> Executor<'g> {
        let (nt, b) = (self.graph.nt, self.b);
        let seed = self.seed;
        let seed_rhs = self.seed_rhs.unwrap_or(seed ^ 0x05EE_D0FB);
        let provider = self
            .provider
            .unwrap_or_else(|| Box::new(move |r| default_original(r, nt, b, seed, seed_rhs)));
        Executor {
            graph: self.graph,
            b,
            provider,
            recorder: self.recorder,
            workers: self.workers,
            policy: self.policy,
        }
    }
}

impl<'g> Executor<'g> {
    /// Starts configuring an execution of `graph`. See
    /// [`ExecutorBuilder`] for the knobs and their defaults.
    pub fn builder(graph: &'g TaskGraph) -> ExecutorBuilder<'g> {
        ExecutorBuilder {
            graph,
            b: 32,
            seed: 42,
            seed_rhs: None,
            provider: None,
            recorder: None,
            workers: None,
            policy: Policy::default(),
        }
    }

    /// Creates an executor for `graph` with tile size `b` and the default
    /// seeded generators.
    #[deprecated(note = "use `Executor::builder(graph).block(b).seeds(seed, seed_rhs).build()`")]
    pub fn new(graph: &'g TaskGraph, b: usize, seed: u64, seed_rhs: u64) -> Self {
        Self::builder(graph).block(b).seeds(seed, seed_rhs).build()
    }

    /// Creates an executor with a custom original-tile provider.
    #[deprecated(note = "use `Executor::builder(graph).block(b).provider(p).build()`")]
    pub fn with_provider(
        graph: &'g TaskGraph,
        b: usize,
        provider: impl Fn(TileRef) -> Tile + Sync + 'g,
    ) -> Self {
        Self::builder(graph).block(b).provider(provider).build()
    }

    /// Attaches an [`sbc_obs::Recorder`] to an already-built executor.
    #[deprecated(note = "use `.recorder(&rec)` on `Executor::builder`")]
    pub fn with_recorder(mut self, recorder: &'g Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    fn original(&self, r: TileRef) -> Tile {
        let t = (self.provider)(r);
        assert_eq!(
            t.dim(),
            self.b,
            "provider returned a tile of wrong dimension"
        );
        t
    }

    /// Worker threads per node for this run.
    fn workers_per_node(&self, n_nodes: usize) -> usize {
        self.workers.unwrap_or_else(|| {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            (cores / n_nodes.max(1)).max(1)
        })
    }

    /// Runs the graph to completion.
    ///
    /// # Panics
    /// Panics on kernel failure (e.g. a non-SPD input); use [`Self::try_run`]
    /// to handle that case.
    pub fn run(&self) -> ExecOutcome {
        self.try_run().expect("distributed execution failed")
    }

    /// Runs the graph to completion, propagating kernel failures.
    ///
    /// On failure every node is shut down via poison messages and the first
    /// failure (in node order) is returned.
    pub fn try_run(&self) -> Result<ExecOutcome, ExecError> {
        let g = self.graph;
        let n_nodes = g.num_nodes();
        let c = g.slices;
        let workers = self.workers_per_node(n_nodes);

        // critical-path priorities as raw f32 bits (non-negative floats
        // order like their bit patterns); empty = submission order
        let prio: Vec<u32> = match self.policy {
            Policy::SubmissionOrder => Vec::new(),
            Policy::CriticalPath => flops_priorities(g, self.b)
                .into_iter()
                .map(f32::to_bits)
                .collect(),
        };
        let prio_of = |t: TaskId| prio.get(t as usize).copied().unwrap_or(0);

        // global dependency counts
        let mut deps = g.in_degrees();
        for (t, extra) in g.fetch_deps().into_iter().enumerate() {
            deps[t] += extra;
        }

        // per-node scheduler setup
        let mut per_node_deps: Vec<HashMap<TaskId, u32>> =
            (0..n_nodes).map(|_| HashMap::new()).collect();
        let mut per_node_ready: Vec<Vec<TaskId>> = vec![Vec::new(); n_nodes];
        let mut per_node_count: Vec<u64> = vec![0; n_nodes];
        let mut per_node_waits: Vec<HashMap<WaitKey, Vec<TaskId>>> =
            (0..n_nodes).map(|_| HashMap::new()).collect();
        let mut per_node_fetch_sends: Vec<Vec<(TileRef, u32)>> = vec![Vec::new(); n_nodes];

        for t in 0..g.len() as TaskId {
            let node = g.tasks()[t as usize].node as usize;
            per_node_count[node] += 1;
            per_node_deps[node].insert(t, deps[t as usize]);
            if deps[t as usize] == 0 {
                per_node_ready[node].push(t);
            }
            for (p, kind) in g.preds(t) {
                let pnode = g.tasks()[p as usize].node;
                if pnode != node as u32 {
                    debug_assert_eq!(kind, EdgeKind::Data);
                    let w = per_node_waits[node].entry(WaitKey::Task(p)).or_default();
                    if w.last() != Some(&t) {
                        w.push(t);
                    }
                }
            }
        }
        for f in g.initial_fetches() {
            per_node_fetch_sends[f.home as usize].push((f.tile, f.dest));
            per_node_waits[f.dest as usize]
                .entry(WaitKey::Orig(f.tile))
                .or_default()
                .extend(f.consumers.iter().copied());
        }

        // channels + per-node schedulers
        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(n_nodes);
        let mut scheds: Vec<NodeScheduler> = Vec::with_capacity(n_nodes);
        for node in 0..n_nodes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            let fetch_sends = std::mem::take(&mut per_node_fetch_sends[node]);
            scheds.push(NodeScheduler {
                state: Mutex::new(SchedState {
                    ready: std::mem::take(&mut per_node_ready[node])
                        .into_iter()
                        .map(|t| ReadyTask {
                            prio: prio_of(t),
                            task: std::cmp::Reverse(t),
                        })
                        .collect(),
                    deps: std::mem::take(&mut per_node_deps[node]),
                    remaining: per_node_count[node],
                    active: 0,
                    receiving: false,
                    shipped: fetch_sends.is_empty(),
                    poisoned: false,
                    error: None,
                }),
                cv: Condvar::new(),
                rx: Mutex::new(rx),
                local: RwLock::new(HashMap::new()),
                cache: RwLock::new(HashMap::new()),
                waits: std::mem::take(&mut per_node_waits[node]),
                fetch_sends,
                sent: AtomicU64::new(0),
                sent_bytes: AtomicU64::new(0),
                recv: AtomicU64::new(0),
            });
        }

        std::thread::scope(|scope| {
            for (node, sched) in scheds.iter().enumerate() {
                for widx in 0..workers {
                    let ctx = WorkerCtx {
                        exec: self,
                        g,
                        me: node as u32,
                        c,
                        sched,
                        senders: &senders,
                        prio: &prio,
                    };
                    scope.spawn(move || ctx.worker_loop(widx as u32));
                }
            }
        });

        // gather results out of the schedulers
        let mut tiles = HashMap::new();
        let mut sent_per_node = vec![0u64; n_nodes];
        let mut recv_per_node = vec![0u64; n_nodes];
        let mut bytes_per_node = vec![0u64; n_nodes];
        let mut first_error: Option<ExecError> = None;
        for (node, sched) in scheds.into_iter().enumerate() {
            sent_per_node[node] = sched.sent.into_inner();
            recv_per_node[node] = sched.recv.into_inner();
            bytes_per_node[node] = sched.sent_bytes.into_inner();
            let state = sched
                .state
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let (None, Some(e)) = (&first_error, state.error) {
                first_error = Some(e);
            }
            let store = sched
                .local
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (r, tile) in store {
                let prev = tiles.insert(r, tile);
                debug_assert!(prev.is_none(), "tile {r:?} stored on two nodes");
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        let messages: u64 = sent_per_node.iter().sum();
        Ok(ExecOutcome {
            tiles,
            stats: CommStats {
                messages,
                bytes: bytes_per_node.iter().sum(),
                sent_per_node,
                recv_per_node,
                bytes_per_node,
            },
        })
    }
}

/// Default original-tile contents: seeded SPD matrix, zero buffers, seeded
/// RHS. General (full-matrix) tiles for the LU substrate come from the
/// diagonally dominant generator.
fn default_original(r: TileRef, nt: usize, b: usize, seed: u64, seed_rhs: u64) -> Tile {
    match r {
        TileRef::A { phase: 0, i, j, .. } if j <= i => {
            generate::spd_tile(seed, nt, b, i as usize, j as usize)
        }
        TileRef::A { phase: 0, i, j, .. } => {
            // strictly-upper tile: only the LU (full-matrix) graphs read
            // these; mirror of the dominant generator
            generate::general_tile(seed, nt, b, i as usize, j as usize)
        }
        TileRef::A { phase, .. } => {
            panic!("phase-{phase} tiles are always produced by Move tasks")
        }
        TileRef::Buf { .. } => Tile::zeros(b),
        TileRef::B { i } => generate::rhs_tile(seed_rhs, b, i as usize),
    }
}

/// What a worker decides to do after inspecting the scheduler state.
enum Step {
    Run(TaskId),
    Receive,
    Wait,
    Exit,
}

/// Everything one worker thread needs: the executor, its node's scheduler
/// and the shared channel endpoints.
#[derive(Clone, Copy)]
struct WorkerCtx<'w, 'g> {
    exec: &'w Executor<'g>,
    g: &'g TaskGraph,
    me: u32,
    c: usize,
    sched: &'w NodeScheduler,
    senders: &'w [Sender<Msg>],
    prio: &'w [u32],
}

impl WorkerCtx<'_, '_> {
    fn prio_of(&self, t: TaskId) -> u32 {
        self.prio.get(t as usize).copied().unwrap_or(0)
    }

    /// Sends one payload message, counting it at its real byte size. Both
    /// payload kinds (producer outputs and original fetches) count;
    /// `Poison`/`Wake` control messages go through the raw senders and are
    /// never tallied.
    fn send_payload(&self, dest: u32, msg: Msg, obs: &mut Option<NodeRecorder<'_>>) {
        let (bytes, orig) = match &msg {
            Msg::Data { tile, .. } => ((tile.dim() * tile.dim() * 8) as u64, false),
            Msg::Orig { tile, .. } => ((tile.dim() * tile.dim() * 8) as u64, true),
            Msg::Poison | Msg::Wake => unreachable!("control messages are not payload"),
        };
        if self.senders[dest as usize].send(msg).is_ok() {
            self.sched.sent.fetch_add(1, Ordering::Relaxed);
            self.sched.sent_bytes.fetch_add(bytes, Ordering::Relaxed);
            if let Some(o) = obs.as_mut() {
                o.send(dest, bytes, orig);
            }
        }
    }

    /// Main loop of one worker thread.
    fn worker_loop(&self, widx: u32) {
        let mut obs: Option<NodeRecorder<'_>> = self.exec.recorder.map(|r| r.worker(self.me, widx));

        // Worker 0 ships originals to remote consumers before any local
        // task may run (a local write could otherwise clobber an original
        // a remote consumer still needs); the other workers hold at the
        // condvar until `shipped` flips.
        if widx == 0 && !self.sched.fetch_sends.is_empty() {
            for &(tile_ref, dest) in &self.sched.fetch_sends {
                let tile = {
                    let mut local = self
                        .sched
                        .local
                        .write()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    local
                        .entry(tile_ref)
                        .or_insert_with(|| self.exec.original(tile_ref))
                        .clone()
                };
                self.send_payload(dest, Msg::Orig { tile_ref, tile }, &mut obs);
            }
            let mut st = lock(&self.sched.state);
            st.shipped = true;
            drop(st);
            self.sched.cv.notify_all();
        }

        loop {
            let step = {
                let mut st = lock(&self.sched.state);
                if st.poisoned || st.remaining == 0 {
                    Step::Exit
                } else if !st.shipped {
                    Step::Wait
                } else if let Some(rt) = st.ready.pop() {
                    st.active += 1;
                    if let Some(o) = obs.as_mut() {
                        o.gauge(GaugeKind::ActiveWorkers, st.active as f64);
                    }
                    Step::Run(rt.task.0)
                } else if !st.receiving {
                    st.receiving = true;
                    Step::Receive
                } else {
                    Step::Wait
                }
            };
            match step {
                Step::Exit => break,
                Step::Run(t) => self.run_task(t, &mut obs),
                Step::Receive => {
                    if !self.receive_and_apply(&mut obs) {
                        break;
                    }
                }
                Step::Wait => {
                    let st = lock(&self.sched.state);
                    if !(st.poisoned || st.remaining == 0)
                        && (!st.shipped || (st.ready.is_empty() && st.receiving))
                    {
                        // spurious wakeups only cost a loop iteration
                        drop(
                            self.sched
                                .cv
                                .wait(st)
                                .unwrap_or_else(std::sync::PoisonError::into_inner),
                        );
                    }
                }
            }
        }
        // flush this worker's event buffer into the recorder
        drop(obs);
    }

    /// Blocks on the node's channel as the designated receiver, applies the
    /// arrived batch and wakes the other workers. Returns `false` when the
    /// channel is dead (all senders gone — cannot happen on a healthy run).
    fn receive_and_apply(&self, obs: &mut Option<NodeRecorder<'_>>) -> bool {
        let wait_start = obs.as_ref().map(|o| o.now());
        let mut batch = Vec::new();
        let alive = {
            let rx = lock(&self.sched.rx);
            match rx.recv() {
                Ok(m) => {
                    batch.push(m);
                    while let Ok(m) = rx.try_recv() {
                        batch.push(m);
                    }
                    true
                }
                Err(_) => false,
            }
        };
        if let Some(o) = obs.as_mut() {
            let end = o.now();
            o.dep_wait(wait_start.unwrap_or(end), end);
        }

        // Stash payload tiles into the cache *before* releasing any waiting
        // task (under the state lock below), so a task that becomes ready
        // always finds its operands.
        let mut arrived: Vec<WaitKey> = Vec::with_capacity(batch.len());
        let mut poisoned = !alive;
        for msg in batch {
            let (key, orig) = match &msg {
                Msg::Data { producer, .. } => (WaitKey::Task(*producer), false),
                Msg::Orig { tile_ref, .. } => (WaitKey::Orig(*tile_ref), true),
                Msg::Poison => {
                    poisoned = true;
                    continue;
                }
                Msg::Wake => continue,
            };
            let tile = match msg {
                Msg::Data { tile, .. } | Msg::Orig { tile, .. } => tile,
                Msg::Poison | Msg::Wake => unreachable!(),
            };
            self.sched.recv.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = obs.as_mut() {
                o.recv((tile.dim() * tile.dim() * 8) as u64, orig);
            }
            self.sched
                .cache
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(key, tile);
            arrived.push(key);
        }

        let store_tiles = self
            .sched
            .local
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        let mut st = lock(&self.sched.state);
        if poisoned {
            st.poisoned = true;
        }
        for key in arrived {
            if let Some(waiting) = self.sched.waits.get(&key) {
                for &t in waiting {
                    let d = st.deps.get_mut(&t).expect("waiting task is local");
                    *d -= 1;
                    if *d == 0 {
                        st.ready.push(ReadyTask {
                            prio: self.prio_of(t),
                            task: std::cmp::Reverse(t),
                        });
                    }
                }
            }
        }
        st.receiving = false;
        if let Some(o) = obs.as_mut() {
            // sample scheduler state once per wakeup, not per task
            o.gauge(GaugeKind::TileStore, store_tiles as f64);
            o.gauge(GaugeKind::ReadyQueue, st.ready.len() as f64);
            o.gauge(GaugeKind::ActiveWorkers, st.active as f64);
        }
        let poisoned = st.poisoned;
        drop(st);
        self.sched.cv.notify_all();
        !poisoned
    }

    /// Executes one popped task, then resolves successors, publishes the
    /// output to remote consumers and updates completion bookkeeping.
    fn run_task(&self, t: TaskId, obs: &mut Option<NodeRecorder<'_>>) {
        let span_start = obs.as_ref().map(|o| o.now());
        match self.execute_task(t) {
            Ok(()) => {}
            Err(e) => {
                self.fail(
                    ExecError::Kernel {
                        task: t,
                        node: self.me,
                        error: e,
                    },
                    obs,
                );
                return;
            }
        }
        if let Some(o) = obs.as_mut() {
            let end = o.now();
            o.task(
                t,
                self.g.tasks()[t as usize].kind,
                span_start.unwrap_or(end),
                end,
            );
        }

        // successors: local ones get a dependency decrement, remote ones a
        // copy of the output (one message per distinct consumer node)
        let mut consumer_nodes: Vec<u32> = Vec::new();
        for (s, _) in self.g.succs(t) {
            let snode = self.g.tasks()[s as usize].node;
            if snode != self.me && !consumer_nodes.contains(&snode) {
                consumer_nodes.push(snode);
            }
        }
        if !consumer_nodes.is_empty() {
            let out = self
                .sched
                .local
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .get(&self.g.tasks()[t as usize].output(self.c))
                .expect("task output in local store")
                .clone();
            for &dest in &consumer_nodes {
                self.send_payload(
                    dest,
                    Msg::Data {
                        producer: t,
                        tile: out.clone(),
                    },
                    obs,
                );
            }
        }

        let done = {
            let mut st = lock(&self.sched.state);
            st.active -= 1;
            st.remaining -= 1;
            for (s, _) in self.g.succs(t) {
                if self.g.tasks()[s as usize].node == self.me {
                    let d = st.deps.get_mut(&s).expect("successor on this node");
                    *d -= 1;
                    if *d == 0 {
                        st.ready.push(ReadyTask {
                            prio: self.prio_of(s),
                            task: std::cmp::Reverse(s),
                        });
                    }
                }
            }
            if let Some(o) = obs.as_mut() {
                o.gauge(GaugeKind::ActiveWorkers, st.active as f64);
            }
            st.remaining == 0 && !st.poisoned
        };
        self.sched.cv.notify_all();
        if done {
            // unblock our own receiver, if one is parked in recv
            let _ = self.senders[self.me as usize].send(Msg::Wake);
        }
    }

    /// Records a local failure, poisons every other node and unblocks this
    /// node's receiver.
    fn fail(&self, e: ExecError, obs: &mut Option<NodeRecorder<'_>>) {
        let _ = obs;
        {
            let mut st = lock(&self.sched.state);
            st.active -= 1;
            if st.error.is_none() {
                st.error = Some(e);
            }
            st.poisoned = true;
        }
        self.sched.cv.notify_all();
        for (n, s) in self.senders.iter().enumerate() {
            if n != self.me as usize {
                let _ = s.send(Msg::Poison);
            }
        }
        let _ = self.senders[self.me as usize].send(Msg::Wake);
    }

    /// Resolves a read operand: remote original (fetch cache), remote
    /// producer output (data cache), or local store (local producer or
    /// local original, generated on first use).
    fn resolve_read(&self, t: TaskId, r: TileRef) -> Tile {
        let g = self.g;
        // a data predecessor producing r?
        for (p, kind) in g.preds(t) {
            if kind == EdgeKind::Data && g.tasks()[p as usize].output(self.c) == r {
                return if g.tasks()[p as usize].node == self.me {
                    self.sched
                        .local
                        .read()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .get(&r)
                        .expect("local producer wrote the tile")
                        .clone()
                } else {
                    self.sched
                        .cache
                        .read()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .get(&WaitKey::Task(p))
                        .expect("dependency ensured arrival")
                        .clone()
                };
            }
        }
        // original data: fetched, or home-local (generate lazily)
        if let Some(tile) = self
            .sched
            .cache
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&WaitKey::Orig(r))
        {
            return tile.clone();
        }
        self.sched
            .local
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(r)
            .or_insert_with(|| self.exec.original(r))
            .clone()
    }

    /// Executes one task's kernel against the node-local stores.
    ///
    /// The target tile is *removed* from the store for the kernel call and
    /// reinserted afterwards; this is safe because the graph's ordering
    /// edges guarantee no same-node reader of the current version is
    /// running concurrently with its writer (remote readers use received
    /// copies).
    fn execute_task(&self, t: TaskId) -> Result<(), KernelError> {
        let task = self.g.tasks()[t as usize];
        let reads = task.reads(self.c);
        let read_tiles: Vec<Tile> = reads
            .as_slice()
            .iter()
            .map(|&r| self.resolve_read(t, r))
            .collect();
        let target_ref = task.output(self.c);
        let mut target = {
            let mut local = self
                .sched
                .local
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            local.remove(&target_ref).unwrap_or_else(|| {
                if matches!(task.kind, TaskKind::Move { .. }) {
                    // a Move fully overwrites its target; never generate
                    // data for a later-phase tile
                    Tile::zeros(self.exec.b)
                } else {
                    self.exec.original(target_ref)
                }
            })
        };

        let result = run_kernel(task.kind, &read_tiles, &mut target);
        self.sched
            .local
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(target_ref, target);
        result
    }
}

/// Dispatches one task kind to its kernel.
fn run_kernel(kind: TaskKind, read_tiles: &[Tile], target: &mut Tile) -> Result<(), KernelError> {
    match kind {
        TaskKind::Potrf { .. } => k::potrf(target)?,
        TaskKind::Trsm { .. } => k::trsm_right_lower_trans(1.0, &read_tiles[0], target),
        TaskKind::Syrk { .. } => k::syrk(Trans::No, -1.0, &read_tiles[0], 1.0, target),
        TaskKind::Gemm { .. } => k::gemm(
            Trans::No,
            Trans::Yes,
            -1.0,
            &read_tiles[0],
            &read_tiles[1],
            1.0,
            target,
        ),
        TaskKind::Reduce { .. } => target.add_assign(&read_tiles[0]),
        TaskKind::TrsmFwd { .. } => k::trsm_left_lower(1.0, &read_tiles[0], target),
        TaskKind::GemmFwd { .. } => k::gemm(
            Trans::No,
            Trans::No,
            -1.0,
            &read_tiles[0],
            &read_tiles[1],
            1.0,
            target,
        ),
        TaskKind::TrsmBwd { .. } => k::trsm_left_lower_trans(1.0, &read_tiles[0], target),
        TaskKind::GemmBwd { .. } => k::gemm(
            Trans::Yes,
            Trans::No,
            -1.0,
            &read_tiles[0],
            &read_tiles[1],
            1.0,
            target,
        ),
        TaskKind::TrsmRInv { .. } => k::trsm_right_lower(-1.0, &read_tiles[0], target),
        TaskKind::GemmInv { .. } => k::gemm(
            Trans::No,
            Trans::No,
            1.0,
            &read_tiles[0],
            &read_tiles[1],
            1.0,
            target,
        ),
        TaskKind::TrsmLInv { .. } => k::trsm_left_lower(1.0, &read_tiles[0], target),
        TaskKind::TrtriDiag { .. } => k::trtri(target)?,
        TaskKind::SyrkLu { .. } => k::syrk(Trans::Yes, 1.0, &read_tiles[0], 1.0, target),
        TaskKind::GemmLu { .. } => k::gemm(
            Trans::Yes,
            Trans::No,
            1.0,
            &read_tiles[0],
            &read_tiles[1],
            1.0,
            target,
        ),
        TaskKind::TrmmLu { .. } => k::trmm_left_lower_trans(&read_tiles[0], target),
        TaskKind::LauumDiag { .. } => k::lauum(target),
        TaskKind::Getrf { .. } => k::getrf(target)?,
        TaskKind::TrsmRow { .. } => k::trsm_left_unit_lower(&read_tiles[0], target),
        TaskKind::TrsmCol { .. } => k::trsm_right_upper(&read_tiles[0], target),
        TaskKind::GemmTrail { .. } => k::gemm(
            Trans::No,
            Trans::No,
            -1.0,
            &read_tiles[0],
            &read_tiles[1],
            1.0,
            target,
        ),
        TaskKind::Move { .. } => *target = read_tiles[0].clone(),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_dist::{SbcExtended, TwoDBlockCyclic};
    use sbc_taskgraph::build_potrf;

    #[test]
    fn ready_heap_pops_high_priority_then_low_task_id() {
        let mut heap = BinaryHeap::new();
        for (prio, task) in [(1.0f32, 5u32), (3.0, 9), (3.0, 2), (0.0, 0)] {
            heap.push(ReadyTask {
                prio: prio.to_bits(),
                task: std::cmp::Reverse(task),
            });
        }
        let order: Vec<TaskId> = std::iter::from_fn(|| heap.pop().map(|r| r.task.0)).collect();
        assert_eq!(order, vec![2, 9, 5, 0]);
    }

    type TileSnapshot = Vec<(TileRef, Vec<f64>)>;

    #[test]
    fn worker_counts_do_not_change_results_or_traffic() {
        let d = SbcExtended::new(5); // 10 nodes
        let g = build_potrf(&d, 12);
        let mut base: Option<(TileSnapshot, CommStats)> = None;
        for workers in [1usize, 2, 4] {
            let out = Executor::builder(&g)
                .block(8)
                .seeds(2022, 7)
                .workers(workers)
                .build()
                .run();
            let mut tiles: TileSnapshot = out
                .tiles
                .iter()
                .map(|(r, t)| (*r, t.as_slice().to_vec()))
                .collect();
            tiles.sort_by_key(|(r, _)| format!("{r:?}"));
            match &base {
                None => base = Some((tiles, out.stats)),
                Some((t0, s0)) => {
                    assert_eq!(t0, &tiles, "tiles differ at workers={workers}");
                    assert_eq!(s0, &out.stats, "stats differ at workers={workers}");
                }
            }
        }
    }

    #[test]
    fn policies_agree_on_results_and_traffic() {
        let d = TwoDBlockCyclic::new(3, 2);
        let g = build_potrf(&d, 10);
        let run = |p: Policy| {
            Executor::builder(&g)
                .block(8)
                .seeds(1, 2)
                .workers(2)
                .priorities(p)
                .build()
                .run()
        };
        let a = run(Policy::CriticalPath);
        let b = run(Policy::SubmissionOrder);
        assert_eq!(a.stats, b.stats);
        for (r, t) in &a.tiles {
            assert_eq!(
                t.as_slice(),
                b.tiles[r].as_slice(),
                "tile {r:?} differs between policies"
            );
        }
    }

    #[test]
    fn builder_defaults_match_explicit_configuration() {
        let d = SbcExtended::new(4);
        let g = build_potrf(&d, 8);
        let a = Executor::builder(&g).block(8).seed(9).build().run();
        let b = Executor::builder(&g)
            .block(8)
            .seeds(9, 9 ^ 0x05EE_D0FB)
            .build()
            .run();
        assert_eq!(a.stats, b.stats);
        for (r, t) in &a.tiles {
            assert_eq!(t.as_slice(), b.tiles[r].as_slice());
        }
    }
}
